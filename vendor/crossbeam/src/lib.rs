//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no route to the crates.io registry, so the
//! workspace vendors the *subset* of crossbeam it actually uses:
//! [`thread::scope`] with crossbeam's callback signature (the spawned
//! closure receives a `&Scope` so it can spawn further siblings). It is
//! implemented directly on `std::thread::scope`, which provides the same
//! structured-concurrency guarantee (all threads joined before the scope
//! returns).

pub mod thread {
    use std::any::Any;

    /// A scope for spawning threads that borrow from the enclosing stack
    /// frame. Mirrors `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread. Mirrors
    /// `crossbeam::thread::ScopedJoinHandle`.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. As in crossbeam, the closure
        /// receives the scope itself so it can spawn nested siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish, returning `Err` if it panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    /// Create a scope, run `f` inside it, and join every spawned thread
    /// before returning. Unlike crossbeam (which collects child panics
    /// into the `Err` arm), unjoined child panics propagate as a panic —
    /// callers in this workspace always join and `.unwrap()` anyway.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let total = super::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let counter = &counter;
                    s.spawn(move |_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                        i * 2
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<usize>()
        })
        .unwrap();
        assert_eq!(total, 12);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let n = super::thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 7).join().unwrap()).join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 7);
    }
}
