//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API this workspace's
//! `harness = false` benchmarks use, with a deliberately simple
//! measurement loop: a short warm-up, then timed iterations until a small
//! time budget (or iteration cap) is reached, reporting min/mean. There is
//! no statistical analysis, HTML report, or baseline comparison — the
//! numbers print to stdout, which is all the repo's bench harness records.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-iteration batching mode (API compatibility; the stand-in times each
/// batch individually regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// The timing engine handed to benchmark closures.
pub struct Bencher {
    /// Target measurement budget per benchmark.
    budget: Duration,
    /// Iteration cap (keeps huge per-iteration benchmarks bounded).
    max_iters: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(budget: Duration, max_iters: u64) -> Bencher {
        Bencher {
            budget,
            max_iters,
            samples: Vec::new(),
        }
    }

    /// Time `routine` repeatedly.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up (not recorded).
        black_box(routine());
        let started = Instant::now();
        while (self.samples.len() as u64) < self.max_iters
            && (self.samples.is_empty() || started.elapsed() < self.budget)
        {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    /// Time `routine` over inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let started = Instant::now();
        while (self.samples.len() as u64) < self.max_iters
            && (self.samples.is_empty() || started.elapsed() < self.budget)
        {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }

    /// `iter_batched` variant taking the input by reference.
    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        let mut first = setup();
        black_box(routine(&mut first));
        let started = Instant::now();
        while (self.samples.len() as u64) < self.max_iters
            && (self.samples.is_empty() || started.elapsed() < self.budget)
        {
            let mut input = setup();
            let t = Instant::now();
            black_box(routine(&mut input));
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().unwrap();
        println!(
            "{name:<50} time: [min {min:>12?}  mean {mean:>12?}]  ({} samples)",
            self.samples.len()
        );
    }
}

fn run_one(name: &str, budget: Duration, max_iters: u64, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher::new(budget, max_iters);
    f(&mut b);
    b.report(name);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    max_iters: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// In real criterion this sets the statistical sample count; here it
    /// bounds the iteration cap proportionally.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.max_iters = n as u64;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.budget = d;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.budget,
            self.max_iters,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.budget,
            self.max_iters,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    budget: Duration,
    max_iters: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            budget: Duration::from_millis(300),
            max_iters: 50,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group: {name}");
        BenchmarkGroup {
            name,
            budget: self.budget,
            max_iters: self.max_iters,
            _criterion: self,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(&id.id, self.budget, self.max_iters, f);
        self
    }
}

/// Define a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher::new(Duration::from_millis(5), 10);
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            n
        });
        assert!(!b.samples.is_empty());
        assert!(b.samples.len() as u64 <= 10);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3)
            .bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| 2 + 2))
            .bench_with_input(BenchmarkId::new("g", 2), &5, |b, &x| {
                b.iter_batched(|| x, |v| v * 2, BatchSize::LargeInput)
            });
        g.finish();
    }
}
