//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no route to the crates.io registry, so the
//! workspace vendors the subset of the rand 0.8 API it actually uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`rngs::SmallRng`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`]. The generator core is xoshiro256** seeded through
//! SplitMix64 — the same family the real `SmallRng` uses. Streams are NOT
//! bit-compatible with crates.io rand; everything in this workspace only
//! relies on seeded determinism, not on specific streams.

use std::ops::Range;

/// The core of a random number generator (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable generators (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types sampleable uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as u128) - (range.start as u128);
                let r = ((rng.next_u64() as u128) % span) as $t;
                range.start + r
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let r = (rng.next_u64() as u128) % span;
                (range.start as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty gen_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

/// Types sampleable from the "standard" distribution (`Rng::gen`).
pub trait StandardSample {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via SplitMix64 (the family the real `SmallRng`
    /// uses on 64-bit targets).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = SmallRng::splitmix(&mut sm);
            }
            // Avoid the all-zero state (cannot occur from splitmix, but be
            // defensive: xoshiro's only bad state is all zeros).
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// The "standard" RNG: same core as [`SmallRng`] here (deterministic,
    /// seedable — everything this workspace needs).
    pub type StdRng = SmallRng;
}

pub mod seq {
    use super::Rng;

    /// Subset of `rand::seq::SliceRandom`: `shuffle` and `choose`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-100i64..100);
            assert!((-100..100).contains(&y));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..1000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((500..900).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
