//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides `Mutex` and `RwLock` with parking_lot's poison-free API (the
//! guard is returned directly from `lock()`), implemented over `std::sync`.
//! A poisoned std lock means a thread panicked while holding the guard; the
//! paniced test is failing anyway, so we recover the guard and continue,
//! matching parking_lot's behavior of not propagating poisoning.

use std::sync::{self, TryLockError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive with parking_lot's poison-free interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's poison-free interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
