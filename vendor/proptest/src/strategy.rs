//! The [`Strategy`] trait and primitive strategies: integer ranges, tuples,
//! constants, and mapping.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike crates.io proptest there is no value tree / shrinking machinery:
/// a strategy is just a deterministic function of the test RNG.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Generate a dependent second stage from each value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }
}

/// Every strategy reference is itself a strategy (the runner takes `&S`).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// Result of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = (rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A/0);
impl_tuple_strategy!(A/0, B/1);
impl_tuple_strategy!(A/0, B/1, C/2);
impl_tuple_strategy!(A/0, B/1, C/2, D/3);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6);
impl_tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7);
