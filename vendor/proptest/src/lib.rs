//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no route to the crates.io registry, so the
//! workspace vendors the subset of the proptest 1.x API its test suites
//! actually use: the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! [`strategy::Strategy`] with `prop_map`, integer-range / tuple / `any`
//! strategies, [`collection::vec`] and [`collection::btree_set`], and the
//! `prop_assert*` macros.
//!
//! Differences from crates.io proptest, deliberately accepted:
//! - **No shrinking.** A failing case prints its seed, case index, and the
//!   full generated input; re-running with `PROPTEST_SEED=<seed>` replays
//!   the identical sequence.
//! - **`*.proptest-regressions` files are not replayed** (their `cc` lines
//!   encode upstream's internal RNG stream). They remain in-tree as
//!   documentation of historical failures.
//! - Generation is deterministic per (test name, case index) by default, so
//!   CI runs are reproducible without any persisted state.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a property test. Maps onto `assert!` — the runner catches
/// the panic and reports the generated input before re-raising.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The `proptest!` block: a sequence of test functions whose arguments are
/// drawn from strategies. Supports the leading
/// `#![proptest_config(expr)]` attribute of the real macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr);) => {};
    (($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::test_runner::run(
                &config,
                concat!(module_path!(), "::", stringify!($name)),
                &($($strat,)+),
                |($($pat,)+)| $body,
            );
        }
        $crate::__proptest_items!(($config); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(a in 0u32..16, b in -100i64..100) {
            prop_assert!(a < 16);
            prop_assert!((-100..100).contains(&b));
        }

        #[test]
        fn vec_sizes_respect_bounds(v in crate::collection::vec(0u8..10, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn btree_set_is_deduped(s in crate::collection::btree_set((0u64..4, 0u64..4), 0..10)) {
            prop_assert!(s.len() <= 10);
        }

        #[test]
        fn prop_map_applies(x in (0u64..100).prop_map(|v| v * 2)) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn any_bool_and_u64_generate((b, x) in (any::<bool>(), any::<u64>())) {
            // Smoke check that the tuple strategy produces well-typed
            // values for both element strategies.
            prop_assert!(u64::from(b) <= 1);
            prop_assert!(x.count_ones() <= 64);
        }
    }

    #[test]
    fn determinism_same_name_same_values() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u64..1000, 1..20);
        let mut rng1 = crate::test_runner::TestRng::new(99);
        let mut rng2 = crate::test_runner::TestRng::new(99);
        assert_eq!(strat.generate(&mut rng1), strat.generate(&mut rng2));
    }
}
