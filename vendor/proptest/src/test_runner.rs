//! The case runner: deterministic per-test seeding, input reporting on
//! failure, seed override via `PROPTEST_SEED`.

use crate::strategy::Strategy;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Runner configuration (subset of crates.io proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// The generation RNG: xoshiro256** seeded via SplitMix64.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        TestRng { s }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// FNV-1a, used to give each test its own deterministic stream.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run `test` against `config.cases` inputs generated from `strategy`.
///
/// The base seed is `PROPTEST_SEED` when set (decimal or 0x-hex), otherwise
/// a fixed default — either way each test name gets its own stream, and a
/// failure report carries everything needed to replay it.
pub fn run<S: Strategy>(
    config: &ProptestConfig,
    name: &str,
    strategy: &S,
    test: impl Fn(S::Value),
) {
    let base_seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| {
            let s = s.trim();
            if let Some(hex) = s.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).ok()
            } else {
                s.parse().ok()
            }
        })
        .unwrap_or(0x1735_0A8C_39B6_72D1);
    let stream = base_seed ^ hash_name(name);
    for case in 0..config.cases {
        let mut rng = TestRng::new(stream.wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        let input = strategy.generate(&mut rng);
        let rendered = format!("{input:?}");
        if let Err(panic) = catch_unwind(AssertUnwindSafe(|| test(input))) {
            eprintln!(
                "proptest stand-in: `{name}` failed at case {case}/{} \
                 (base seed {base_seed:#x}; rerun with PROPTEST_SEED={base_seed}).\n\
                 input: {rendered}",
                config.cases
            );
            resume_unwind(panic);
        }
    }
}
