//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;
use std::ops::Range;

/// A `Vec` of `size` elements drawn from `element`, where `size` is drawn
/// uniformly from the half-open range.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `BTreeSet` with a size drawn from the range. Duplicate draws are
/// retried a bounded number of times, so for tight element domains the
/// resulting set may be smaller than the drawn size (the same concession
/// crates.io proptest makes when the domain is exhausted).
pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    assert!(size.start < size.end, "empty btree_set size range");
    BTreeSetStrategy { element, size }
}

pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let n = self.size.generate(rng);
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < n && attempts < n * 10 + 16 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}
