//! Writing a *new* algorithm in `L_NGA`: weighted two-hop influence.
//!
//! Each vertex scores the reach of its two-hop neighborhood — a
//! neighbor-centric computation that a vertex-centric system would need
//! multiple supersteps of message encoding to express (paper §1/Figure 3),
//! and whose incremental version would otherwise have to be written and
//! verified by hand. Here both fall out of the compiler.
//!
//! Run with: `cargo run --release --example custom_algorithm`

use iturbograph::prelude::*;

/// Two-hop influence: each vertex u accumulates, over every distinct walk
/// u → v → w with w ≠ u, one unit weighted against u's own degree — a
/// reach-per-connection score.
const TWO_HOP_INFLUENCE: &str = r#"
    Vertex (id, active, nbrs, degree,
            reach: Accm<long, SUM>, influence: long)
    Initialize (u): {
        u.active = true;
    }
    Traverse (u): {
        For v in u.nbrs {
            For w in v.nbrs Where (w != u) {
                u.reach.Accumulate(1);
            }
        }
    }
    Update (u): {
        u.influence = (1000 * u.reach) / (u.degree + 1);
    }
"#;

fn main() {
    // A hub-and-chain graph: hub 0 with spokes, chain hanging off spoke 1.
    let edges = vec![
        (0, 1),
        (0, 2),
        (0, 3),
        (0, 4),
        (1, 5),
        (5, 6),
        (6, 7),
    ];
    let graph = GraphInput::undirected(edges);
    let mut session = SessionBuilder::new()
        .from_source(TWO_HOP_INFLUENCE, &graph)
        .expect("custom program compiles");

    println!("compiled plans for a user-defined NGA program:");
    println!("{}", session.program.algebra.explain());
    println!(
        "automatic incrementalization produced {} Δ-walk sub-queries\n",
        session.program.delta_traverse.len()
    );

    session.run_oneshot();
    print_scores(&session, 8);

    // Wire vertex 7 into the hub: influence shifts along the chain, and
    // only the affected region is recomputed.
    session.apply_mutations(&MutationBatch::new(vec![EdgeMutation::insert(7, 0)]));
    let inc = session.run_incremental();
    println!(
        "\nafter inserting (7,0): {} Δ-walk work units, {} walks",
        inc.work_units, inc.io.walks_enumerated
    );
    print_scores(&session, 8);
}

fn print_scores(session: &Session, n: u64) {
    for v in 0..n {
        println!(
            "  v{v}: influence {}",
            session.attr_value(v, "influence").unwrap()
        );
    }
}
