//! Quickstart: write an analytics program once in `L_NGA`, run it, stream
//! mutations in, and let the automatically-derived incremental plan keep
//! the results fresh.
//!
//! Run with: `cargo run --release --example quickstart`

use iturbograph::prelude::*;

fn main() {
    // The paper's running-example graph G_0 (Figure 6): one triangle.
    let g0 = GraphInput::undirected(vec![
        (0, 1),
        (0, 5),
        (1, 5),
        (2, 3),
        (2, 5),
        (3, 4),
        (4, 5),
        (6, 7),
    ]);

    // Triangle Counting in L_NGA (Figure 5 of the paper): a 3-hop
    // neighbor-centric traversal as three nested For loops. No incremental
    // logic is written anywhere — the compiler derives P_ΔQ from P_Q.
    let mut session = SessionBuilder::new()
        .from_source(iturbograph::algorithms::TRIANGLE_COUNT, &g0)
        .expect("program compiles");

    // Inspect the compiled plans.
    println!("=== one-shot plan P_Q ===\n{}", session.program.algebra.explain());
    println!("=== incremental plan P_ΔQ ===\n{}", session.program.algebra_delta.explain());

    let one = session.run_oneshot();
    println!(
        "G_0: triangles = {}   ({})",
        session.global_value("cnts", None).unwrap(),
        one.summary()
    );

    // ΔG_1 (Figure 10): inserting (3,5) creates triangles <2,3,5> and
    // <3,4,5>.
    session.apply_mutations(&MutationBatch::new(vec![EdgeMutation::insert(3, 5)]));
    let inc = session.run_incremental();
    println!(
        "G_1 = G_0 + (3,5): triangles = {}   ({})",
        session.global_value("cnts", None).unwrap(),
        inc.summary()
    );

    // Deletions work through the same plan: tuples with multiplicity −1.
    session.apply_mutations(&MutationBatch::new(vec![EdgeMutation::delete(0, 5)]));
    session.run_incremental();
    println!(
        "G_2 = G_1 - (0,5): triangles = {}",
        session.global_value("cnts", None).unwrap()
    );
}
