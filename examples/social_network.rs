//! Social-network community structure under a live edge stream — the
//! motivating scenario of the paper's introduction (Figure 1): local
//! clustering coefficients reveal cohesive friend groups, and keeping them
//! fresh as friendships form and dissolve demands incremental NGA.
//!
//! Run with: `cargo run --release --example social_network`

use iturbograph::graphgen::{watts_strogatz, BatchSpec, Workload};
use iturbograph::prelude::*;

fn main() {
    // A small-world "friendship" graph: high clustering, short paths.
    let n = 400;
    let edges = watts_strogatz(n, 8, 0.1, 42);
    let canonical = iturbograph::graphgen::canonical_undirected(&edges);
    let mut workload = Workload::split(&canonical, 42);

    let mut input = GraphInput::undirected(workload.initial.clone());
    input.num_vertices = n;

    let mut session = SessionBuilder::new()
        .machines(4)
        .from_source(iturbograph::algorithms::LCC, &input)
        .expect("LCC compiles");

    let one = session.run_oneshot();
    println!("one-shot LCC over {} friendships: {}", workload.alive_len(), one.summary());
    report_communities(&session, n);

    // Stream friendship churn: 75% new friendships, 25% dissolved.
    for round in 1..=3 {
        let batch = workload.next_batch(BatchSpec {
            size: 40,
            insert_pct: 75,
        });
        session.apply_mutations(&batch);
        let inc = session.run_incremental();
        println!("\nround {round}: {} mutations — {}", batch.len(), inc.summary());
        report_communities(&session, n);
    }
}

/// Group vertices into cohesion bands by clustering coefficient (scaled by
/// 1000), the signal community detection builds on (paper §2).
fn report_communities(session: &Session, n: usize) {
    let lcc = session.attr_column("lcc").expect("lcc attr");
    let mut bands = [0usize; 4];
    for v in lcc.iter().take(n) {
        let x = v.as_i64().unwrap_or(0);
        let band = match x {
            0..=99 => 0,
            100..=299 => 1,
            300..=599 => 2,
            _ => 3,
        };
        bands[band] += 1;
    }
    let avg: f64 =
        lcc.iter().map(|v| v.as_i64().unwrap_or(0) as f64 / 1000.0).sum::<f64>() / n as f64;
    println!(
        "  cohesion: avg LCC {:.3} | loose {} | weak {} | cohesive {} | tight {}",
        avg, bands[0], bands[1], bands[2], bands[3]
    );
}
