//! Continuous PageRank over a stream of snapshots: the delta-based vertex
//! store keeps attribute history per superstep, and the cost-based merge
//! policy (paper §5.5 / Figure 17) keeps the delta chains from growing
//! without bound across many snapshots.
//!
//! Run with: `cargo run --release --example streaming_pagerank`

use iturbograph::graphgen::{generate, BatchSpec, RmatConfig, Workload};
use iturbograph::prelude::*;
use std::time::Instant;

fn main() {
    let cfg = RmatConfig::paper_scale(13, 7);
    let edges = generate(&cfg);
    let mut workload = Workload::split(&edges, 7);
    let mut input = GraphInput::directed(workload.initial.clone());
    input.num_vertices = cfg.num_vertices();

    let mut session = SessionBuilder::new()
        .machines(2)
        .parallel(false)
        .max_supersteps(10)
        .maintenance(MaintenancePolicy::CostBased)
        .from_source(iturbograph::algorithms::PAGERANK, &input)
        .expect("PageRank compiles");

    let t0 = Instant::now();
    let one = session.run_oneshot();
    println!(
        "one-shot PR over {} edges: {:.3}s ({} supersteps)",
        workload.alive_len(),
        t0.elapsed().as_secs_f64(),
        one.supersteps
    );

    let mut total_inc = 0.0f64;
    let snapshots = 8;
    for t in 1..=snapshots {
        let batch = workload.next_batch(BatchSpec {
            size: 64,
            insert_pct: 75,
        });
        session.apply_mutations(&batch);
        let inc = session.run_incremental();
        total_inc += inc.secs();
        println!(
            "snapshot {t}: {} mutations refreshed in {:.4}s (disk r/w {}/{} B, store {} B)",
            batch.len(),
            inc.secs(),
            inc.io.disk_read_bytes,
            inc.io.disk_write_bytes,
            session.store_bytes(),
        );
    }
    println!(
        "\nmean incremental refresh: {:.4}s vs one-shot {:.3}s → speedup {:.1}x",
        total_inc / snapshots as f64,
        one.secs(),
        one.secs() / (total_inc / snapshots as f64)
    );

    // Top-ranked vertices of the final snapshot.
    let ranks = session.attr_column("rank").expect("rank attr");
    let mut ranked: Vec<(usize, i64)> = ranks
        .iter()
        .enumerate()
        .map(|(v, r)| (v, r.as_i64().unwrap_or(0)))
        .collect();
    ranked.sort_by_key(|&(_, r)| std::cmp::Reverse(r));
    println!("\ntop 5 vertices by rank (scaled by 1000):");
    for (v, r) in ranked.iter().take(5) {
        println!("  v{v}: {r}");
    }
}
