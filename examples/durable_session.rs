//! Durability walkthrough (DESIGN.md §9): run a triangle-count session
//! with a write-ahead log, "crash" it (drop without cleanup), recover it
//! from disk in a fresh session, and keep streaming mutations — the
//! recovered state is byte-identical to where the first session stopped.
//!
//! Run with: `cargo run --release --example durable_session`

use iturbograph::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("itg-durable-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let graph = GraphInput::undirected(vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    let mut session = SessionBuilder::new()
        .durability(DurabilityKind::Wal { dir: dir.clone() })
        .from_source(iturbograph::algorithms::TRIANGLE_COUNT, &graph)?;

    // Every command below is fsynced to `wal.log` *before* it executes.
    session.run_oneshot();
    session.apply_mutations(&MutationBatch::new(vec![EdgeMutation::insert(1, 3)]));
    session.run_incremental();
    println!("before crash: cnts = {:?}", session.global_value("cnts", None)?);

    // Optional: a checkpoint snapshots full state and bounds WAL replay.
    let snap = session.checkpoint()?;
    println!("checkpointed epoch {}", snap.0);

    // Simulate a crash: the process state is gone, only `dir` survives.
    drop(session);

    // Recovery = latest snapshot + WAL-tail replay, to the exact state.
    let mut session = Session::recover(&dir)?;
    println!("recovered:    cnts = {:?}", session.global_value("cnts", None)?);
    assert_eq!(session.global_value("cnts", None)?, Value::Long(2));

    // The recovered session keeps working — still durable. Edge (0, 3)
    // closes two new triangles: (0, 1, 3) and (0, 2, 3).
    session.apply_mutations(&MutationBatch::new(vec![EdgeMutation::insert(0, 3)]));
    session.run_incremental();
    println!("after batch:  cnts = {:?}", session.global_value("cnts", None)?);
    assert_eq!(session.global_value("cnts", None)?, Value::Long(4));

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
