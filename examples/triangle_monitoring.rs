//! Triangle monitoring: keep a global triangle count fresh over mutation
//! batches, and compare the incremental path against naive re-execution —
//! the core trade-off the paper quantifies for multi-hop NGA (Group 3).
//!
//! Run with: `cargo run --release --example triangle_monitoring`

use iturbograph::graphgen::{generate_undirected, BatchSpec, RmatConfig, Workload};
use iturbograph::prelude::*;

fn main() {
    let cfg = RmatConfig::paper_scale(12, 3);
    let edges = generate_undirected(&cfg);
    let canonical = iturbograph::graphgen::canonical_undirected(&edges);
    let mut workload = Workload::split(&canonical, 3);

    let mk_input = |edges: Vec<(u64, u64)>| {
        let mut i = GraphInput::undirected(edges);
        i.num_vertices = cfg.num_vertices();
        i
    };

    // Incremental session.
    let mut session = SessionBuilder::new()
        .from_source(
            iturbograph::algorithms::TRIANGLE_COUNT,
            &mk_input(workload.initial.clone()),
        )
        .expect("TC compiles");
    let one = session.run_oneshot();
    println!(
        "initial graph: {} edges, {} triangles ({:.3}s one-shot)",
        workload.alive_len(),
        session.global_value("cnts", None).unwrap(),
        one.secs()
    );

    let mut alive = workload.initial.clone();
    for t in 1..=5 {
        let batch = workload.next_batch(BatchSpec {
            size: 32,
            insert_pct: 60,
        });
        // Track the graph for the re-execution comparison.
        for m in batch.edges() {
            let key = (m.src.min(m.dst), m.src.max(m.dst));
            if m.is_insert() {
                alive.push(key);
            } else {
                alive.retain(|&e| e != key);
            }
        }

        session.apply_mutations(&batch);
        let inc = session.run_incremental();
        let incremental_count = session.global_value("cnts", None).unwrap();

        // Naive alternative: re-run the one-shot analytics from scratch.
        let mut fresh = SessionBuilder::new()
            .from_source(iturbograph::algorithms::TRIANGLE_COUNT, &mk_input(alive.clone()))
            .unwrap();
        let rerun = fresh.run_oneshot();
        assert_eq!(incremental_count, fresh.global_value("cnts", None).unwrap());

        println!(
            "batch {t} ({} muts): {} triangles | incremental {:.4}s vs re-execution {:.4}s \
             ({:.0}x) | Δ-walks {} vs walks {}",
            batch.len(),
            incremental_count,
            inc.secs(),
            rerun.secs(),
            rerun.secs() / inc.secs().max(1e-9),
            inc.io.walks_enumerated,
            rerun.io.walks_enumerated,
        );
    }
}
