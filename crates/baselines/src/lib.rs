//! # itg-baselines — the paper's comparison systems, reimplemented (§6.1)
//!
//! - [`dd_iterative`]: a Differential-Dataflow-style incremental engine
//!   for the Group 1/2 algorithms — per-iteration arranged message and
//!   aggregation state, delta-joins for updates.
//! - [`dd_tc`]: the DD self-join formulation of Triangle Counting with the
//!   maintained wedge arrangement whose O(Σ deg²) size is the paper's
//!   Group 3 scalability headline.
//! - [`graphbolt`]: a GraphBolt-style dependency-driven refinement engine
//!   for PR/LP (Table 6), with the transitive (non-value-pruned) affected
//!   set the paper contrasts against.
//! - [`memory`]: byte-accounted budgets so the OOM behaviour of the real
//!   systems is reproducible at laptop scale.

pub mod dd_iterative;
pub mod dd_tc;
pub mod graphbolt;
pub mod memory;

pub use dd_iterative::{AggKind, DdIterative, ValueRule};
pub use dd_tc::DdTriangles;
pub use graphbolt::GraphBolt;
pub use memory::{MemoryBudget, OutOfMemory};
