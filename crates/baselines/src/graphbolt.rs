//! A GraphBolt-style dependency-driven refinement engine for PR and LP
//! (the algorithms Table 6 compares against GrB).
//!
//! GraphBolt keeps the aggregation values of *every* vertex at *every*
//! superstep in memory and, on a mutation batch, refines them iteration by
//! iteration: the affected set starts at the mutated edges' endpoints and
//! propagates *transitively along the neighbor relationship* — whether or
//! not a recomputed value actually changed. The paper's observation (§6.2.1)
//! is precisely that this over-propagation leaves redundant refinement
//! work on the table, which iTurboGraph's value-change check avoids; this
//! reimplementation keeps that behaviour so the Table 6 contrast is
//! reproducible. (Refined values are still exact — only the work differs.)

use crate::dd_iterative::ValueRule;
use crate::memory::{MemoryBudget, OutOfMemory};
use itg_gsa::FxHashSet;

/// The GraphBolt-style engine (PR / LP value rules).
pub struct GraphBolt {
    rule: ValueRule,
    iterations: usize,
    n: usize,
    adj: Vec<Vec<u32>>,
    radj: Vec<Vec<u32>>,
    /// Aggregation value of every vertex at every superstep (the
    /// dependency structure GrB retains in memory).
    sums: Vec<Vec<i64>>,
    /// Vertex values at every superstep.
    values: Vec<Vec<i64>>,
    pub budget: MemoryBudget,
    /// Vertices refined during the last delta (the work metric).
    pub last_refined: u64,
}

impl GraphBolt {
    pub fn new(rule: ValueRule, iterations: usize, budget: MemoryBudget) -> GraphBolt {
        assert!(
            matches!(rule, ValueRule::PageRank | ValueRule::LabelProp),
            "GraphBolt baseline implements the Group 1 algorithms"
        );
        GraphBolt {
            rule,
            iterations,
            n: 0,
            adj: Vec::new(),
            radj: Vec::new(),
            sums: Vec::new(),
            values: Vec::new(),
            budget,
            last_refined: 0,
        }
    }

    /// One-shot computation, retaining all per-iteration dependency state.
    pub fn initial(&mut self, n: usize, edges: &[(u64, u64)]) -> Result<(), OutOfMemory> {
        self.n = n;
        self.adj = vec![Vec::new(); n];
        self.radj = vec![Vec::new(); n];
        for &(s, d) in edges {
            self.adj[s as usize].push(d as u32);
            self.radj[d as usize].push(s as u32);
        }
        for a in self.adj.iter_mut().chain(self.radj.iter_mut()) {
            a.sort_unstable();
            a.dedup();
        }
        self.budget.alloc(edges.len() as u64 * 16)?;
        // 2 arrays of n i64 per iteration.
        self.budget
            .alloc(self.iterations as u64 * n as u64 * 16)?;
        self.sums.clear();
        self.values.clear();
        let mut vals: Vec<i64> = (0..n as u32).map(|v| rule_init(self.rule, v)).collect();
        for _ in 0..self.iterations {
            let mut sums = vec![0i64; n];
            for (src, &val) in vals.iter().enumerate() {
                let deg = self.adj[src].len();
                if deg == 0 {
                    continue;
                }
                let msg = val / deg as i64;
                for &d in &self.adj[src] {
                    sums[d as usize] += msg;
                }
            }
            let next: Vec<i64> = (0..n as u32)
                .map(|v| rule_value(self.rule, v, sums[v as usize], !self.radj[v as usize].is_empty()))
                .collect();
            self.sums.push(sums);
            self.values.push(next.clone());
            vals = next;
        }
        Ok(())
    }

    pub fn values(&self) -> &[i64] {
        self.values.last().map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Refine after a mutation batch. The affected set propagates
    /// transitively from the mutated endpoints regardless of value change.
    pub fn delta(
        &mut self,
        inserts: &[(u64, u64)],
        deletes: &[(u64, u64)],
    ) -> Result<(), OutOfMemory> {
        self.last_refined = 0;
        let mut frontier: FxHashSet<u32> = FxHashSet::default();
        for &(s, d) in inserts {
            insert_sorted(&mut self.adj[s as usize], d as u32);
            insert_sorted(&mut self.radj[d as usize], s as u32);
            frontier.insert(s as u32);
            frontier.insert(d as u32);
        }
        for &(s, d) in deletes {
            remove_sorted(&mut self.adj[s as usize], d as u32);
            remove_sorted(&mut self.radj[d as usize], s as u32);
            frontier.insert(s as u32);
            frontier.insert(d as u32);
        }

        for i in 0..self.iterations {
            // Refine the aggregation of every vertex whose in-neighborhood
            // intersects the affected set (or that is itself affected).
            let mut to_refine: FxHashSet<u32> = frontier.clone();
            for &v in &frontier {
                for &d in &self.adj[v as usize] {
                    to_refine.insert(d);
                }
            }
            let prev_vals: Vec<i64> = if i == 0 {
                (0..self.n as u32).map(|v| rule_init(self.rule, v)).collect()
            } else {
                self.values[i - 1].clone()
            };
            for &v in &to_refine {
                // Recompute v's aggregation from its (current) in-edges.
                let mut sum = 0i64;
                for &s in &self.radj[v as usize] {
                    let deg = self.adj[s as usize].len();
                    if deg > 0 {
                        sum += prev_vals[s as usize] / deg as i64;
                    }
                }
                self.sums[i][v as usize] = sum;
                self.values[i][v as usize] =
                    rule_value(self.rule, v, sum, !self.radj[v as usize].is_empty());
                self.last_refined += 1;
            }
            // Transitive propagation: the affected set grows along the
            // neighbor relationship (no value-change pruning — GrB's
            // documented behaviour the paper contrasts against).
            frontier = to_refine;
        }
        Ok(())
    }
}

fn rule_init(rule: ValueRule, v: u32) -> i64 {
    match rule {
        ValueRule::PageRank => 1000,
        ValueRule::LabelProp => (v as i64 % 97) * 10,
        _ => unreachable!(),
    }
}

fn rule_value(rule: ValueRule, v: u32, sum: i64, has_in: bool) -> i64 {
    match rule {
        ValueRule::PageRank => {
            if has_in {
                150 + (850 * sum) / 1000
            } else {
                1000
            }
        }
        ValueRule::LabelProp => {
            let seed = ((v as i64 % 97) * 10 * 100) / 1000;
            if has_in {
                (900 * sum) / 1000 + seed
            } else {
                (v as i64 % 97) * 10
            }
        }
        _ => unreachable!(),
    }
}

fn insert_sorted(v: &mut Vec<u32>, x: u32) {
    if let Err(pos) = v.binary_search(&x) {
        v.insert(pos, x);
    }
}

fn remove_sorted(v: &mut Vec<u32>, x: u32) {
    if let Ok(pos) = v.binary_search(&x) {
        v.remove(pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: u64) -> Vec<(u64, u64)> {
        (0..n)
            .flat_map(|i| {
                let j = (i + 1) % n;
                [(i, j), (j, i)]
            })
            .collect()
    }

    #[test]
    fn refinement_matches_fresh_computation() {
        let mut edges = ring(12);
        edges.push((0, 6));
        let mut gb = GraphBolt::new(ValueRule::PageRank, 10, MemoryBudget::unlimited());
        gb.initial(12, &edges).unwrap();

        let ins = [(3u64, 9u64), (9, 3)];
        let del = [(0u64, 6u64)];
        gb.delta(&ins, &del).unwrap();
        edges.extend_from_slice(&ins);
        edges.retain(|e| !del.contains(e));

        let mut fresh = GraphBolt::new(ValueRule::PageRank, 10, MemoryBudget::unlimited());
        fresh.initial(12, &edges).unwrap();
        assert_eq!(gb.values(), fresh.values());
        assert!(gb.last_refined > 0);
    }

    #[test]
    fn affected_set_grows_transitively() {
        // On a long path, one mutated edge drags its whole forward cone
        // into refinement even though far values cannot change — the
        // over-refinement the paper describes.
        let n = 40u64;
        let path: Vec<(u64, u64)> = (0..n - 1).flat_map(|i| [(i, i + 1), (i + 1, i)]).collect();
        let mut gb = GraphBolt::new(ValueRule::LabelProp, 10, MemoryBudget::unlimited());
        gb.initial(n as usize, &path).unwrap();
        gb.delta(&[(0, 2), (2, 0)], &[]).unwrap();
        // Refined work exceeds the handful of vertices whose values can
        // differ within one hop of the mutation.
        assert!(
            gb.last_refined > 30,
            "expected transitive over-refinement, refined {}",
            gb.last_refined
        );
    }

    #[test]
    fn memory_scales_with_iterations() {
        let edges = ring(64);
        let mut a = GraphBolt::new(ValueRule::PageRank, 2, MemoryBudget::unlimited());
        a.initial(64, &edges).unwrap();
        let mut b = GraphBolt::new(ValueRule::PageRank, 20, MemoryBudget::unlimited());
        b.initial(64, &edges).unwrap();
        assert!(b.budget.peak() > a.budget.peak() * 5);
    }
}
