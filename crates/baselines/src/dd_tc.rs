//! Differential-Dataflow-style incremental Triangle Counting.
//!
//! DD expresses TC as a self-join of the edge table, which means the
//! *wedge* (2-path) intermediate collection must be arranged and
//! maintained: its size reaches Σ_v deg(v)² — 199 trillion for the
//! Twitter graph (paper §6.2.2, Group 3). That arranged state is what
//! makes DD OOM even on the smallest graph; this reimplementation keeps
//! the same structure with byte accounting so the harness reproduces the
//! failure point, and remains exactly correct below it.
//!
//! Ordered formulation: triangles a < b < c are wedge (a, c) through b
//! (with a < b < c) joined with edge (a, c).

use crate::memory::{MemoryBudget, OutOfMemory};
use itg_gsa::{FxHashMap, FxHashSet};

const WEDGE_BYTES: u64 = 24; // (a, c) -> count entry
const EDGE_BYTES: u64 = 16;

/// The DD-style TC engine over an undirected graph (edges stored as
/// canonical (min, max) pairs).
pub struct DdTriangles {
    /// Sorted adjacency (full, both directions) for wedge enumeration.
    adj: Vec<Vec<u32>>,
    edge_set: FxHashSet<(u32, u32)>,
    /// Arranged wedges: (a, c) with a < c → number of b with a < b < c,
    /// (a,b), (b,c) ∈ E.
    wedges: FxHashMap<(u32, u32), i64>,
    /// Current triangle count.
    count: i64,
    pub budget: MemoryBudget,
}

impl DdTriangles {
    pub fn new(budget: MemoryBudget) -> DdTriangles {
        DdTriangles {
            adj: Vec::new(),
            edge_set: FxHashSet::default(),
            wedges: FxHashMap::default(),
            count: 0,
            budget,
        }
    }

    pub fn triangles(&self) -> i64 {
        self.count
    }

    /// Build the arranged state from scratch and count triangles.
    pub fn initial(&mut self, n: usize, edges: &[(u64, u64)]) -> Result<(), OutOfMemory> {
        self.adj = vec![Vec::new(); n];
        self.edge_set.clear();
        self.wedges.clear();
        self.count = 0;
        for &(a, b) in edges {
            let (a, b) = (a as u32, b as u32);
            if a == b {
                continue;
            }
            let key = (a.min(b), a.max(b));
            if self.edge_set.insert(key) {
                self.budget.alloc(EDGE_BYTES)?;
                self.adj[a as usize].push(b);
                self.adj[b as usize].push(a);
            }
        }
        for a in &mut self.adj {
            a.sort_unstable();
        }
        // Arrange all ordered wedges.
        for b in 0..self.adj.len() as u32 {
            let nb = &self.adj[b as usize];
            for (i, &a) in nb.iter().enumerate() {
                if a >= b {
                    break;
                }
                for &c in &nb[i + 1..] {
                    if c <= b {
                        continue;
                    }
                    let e = self.wedges.entry((a, c)).or_insert(0);
                    if *e == 0 {
                        self.budget.alloc(WEDGE_BYTES)?;
                    }
                    *e += 1;
                }
            }
        }
        // Join wedges with edges.
        for (&(a, c), &cnt) in &self.wedges {
            if self.edge_set.contains(&(a, c)) {
                self.count += cnt;
            }
        }
        Ok(())
    }

    /// Incrementally maintain the count and the wedge arrangement under
    /// one edge mutation batch (canonical undirected pairs; `mult` ±1).
    pub fn delta(&mut self, muts: &[(u64, u64, i64)]) -> Result<(), OutOfMemory> {
        for &(x, y, m) in muts {
            let (x, y) = (x as u32, y as u32);
            let key = (x.min(y), x.max(y));
            let grow = key.1 as usize + 1;
            if grow > self.adj.len() {
                self.adj.resize(grow, Vec::new());
            }
            if m > 0 {
                if !self.edge_set.insert(key) {
                    continue;
                }
                self.budget.alloc(EDGE_BYTES)?;
            } else {
                if !self.edge_set.remove(&key) {
                    continue;
                }
                self.budget.free(EDGE_BYTES);
            }
            // Triangle count delta 1: wedges closed/opened by (x, y).
            if let Some(&cnt) = self.wedges.get(&key) {
                self.count += m * cnt;
            }
            // Wedge deltas: the new/removed edge creates/destroys wedges
            // through x and through y. (Adjacency not yet updated for an
            // insert / already updated order matters — compute against the
            // *other* endpoint's adjacency excluding the mutated edge.)
            for (mid, other) in [(x, y), (y, x)] {
                // Wedges with `mid` as the middle: pairs (other, z).
                for &z in &self.adj[mid as usize] {
                    if z == other {
                        continue;
                    }
                    let (lo, hi) = (other.min(z), other.max(z));
                    // Ordered wedge requires lo < mid < hi.
                    if !(lo < mid && mid < hi) {
                        continue;
                    }
                    let closes = self.edge_set.contains(&(lo, hi));
                    let e = self.wedges.entry((lo, hi)).or_insert(0);
                    if *e == 0 && m > 0 {
                        self.budget.alloc(WEDGE_BYTES)?;
                    }
                    *e += m;
                    let emptied = *e == 0;
                    // Triangle count delta 2: this wedge joins with an
                    // existing edge (lo, hi).
                    if closes {
                        self.count += m;
                    }
                    if emptied {
                        self.wedges.remove(&(lo, hi));
                        self.budget.free(WEDGE_BYTES);
                    }
                }
            }
            // Apply the mutation to the adjacency.
            if m > 0 {
                insert_sorted(&mut self.adj[x as usize], y);
                insert_sorted(&mut self.adj[y as usize], x);
            } else {
                remove_sorted(&mut self.adj[x as usize], y);
                remove_sorted(&mut self.adj[y as usize], x);
            }
        }
        Ok(())
    }

    /// Number of arranged wedge entries (the memory hog).
    pub fn wedge_entries(&self) -> usize {
        self.wedges.len()
    }
}

fn insert_sorted(v: &mut Vec<u32>, x: u32) {
    if let Err(pos) = v.binary_search(&x) {
        v.insert(pos, x);
    }
}

fn remove_sorted(v: &mut Vec<u32>, x: u32) {
    if let Ok(pos) = v.binary_search(&x) {
        v.remove(pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itg_algorithms::native::{self, SimpleGraph};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn paper_edges() -> Vec<(u64, u64)> {
        vec![
            (0, 1),
            (0, 5),
            (1, 5),
            (2, 3),
            (2, 5),
            (3, 4),
            (4, 5),
            (6, 7),
        ]
    }

    #[test]
    fn initial_count_on_paper_graph() {
        let mut dd = DdTriangles::new(MemoryBudget::unlimited());
        dd.initial(8, &paper_edges()).unwrap();
        assert_eq!(dd.triangles(), 1);
        assert!(dd.wedge_entries() > 0);
    }

    #[test]
    fn paper_delta_insert_3_5() {
        let mut dd = DdTriangles::new(MemoryBudget::unlimited());
        dd.initial(8, &paper_edges()).unwrap();
        dd.delta(&[(3, 5, 1)]).unwrap();
        assert_eq!(dd.triangles(), 3, "Figure 10: two new triangles");
        dd.delta(&[(3, 5, -1)]).unwrap();
        assert_eq!(dd.triangles(), 1);
    }

    #[test]
    fn random_mutations_match_reference() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 16u64;
        let mut edges: FxHashSet<(u64, u64)> = FxHashSet::default();
        for _ in 0..40 {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                edges.insert((a.min(b), a.max(b)));
            }
        }
        let edge_list: Vec<_> = edges.iter().copied().collect();
        let mut dd = DdTriangles::new(MemoryBudget::unlimited());
        dd.initial(n as usize, &edge_list).unwrap();

        for step in 0..60 {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a == b {
                continue;
            }
            let key = (a.min(b), a.max(b));
            let m: i64 = if edges.contains(&key) { -1 } else { 1 };
            dd.delta(&[(key.0, key.1, m)]).unwrap();
            if m > 0 {
                edges.insert(key);
            } else {
                edges.remove(&key);
            }
            let list: Vec<_> = edges.iter().copied().collect();
            let g = SimpleGraph::undirected(n as usize, &list);
            assert_eq!(
                dd.triangles(),
                native::triangle_count(&g),
                "diverged at step {step}"
            );
        }
    }

    #[test]
    fn wedge_memory_blows_up_on_a_hub() {
        // A star of degree d (hub id in the middle of its leaves' id
        // range) arranges ~d²/4 ordered wedges: the maintained state grows
        // quadratically in the degree — exactly DD's failure mode on
        // skewed graphs.
        let d = 64u64;
        let hub = d / 2;
        let star: Vec<(u64, u64)> = (0..=d).filter(|&i| i != hub).map(|i| (hub, i)).collect();
        let mut dd = DdTriangles::new(MemoryBudget::unlimited());
        dd.initial(d as usize + 1, &star).unwrap();
        assert!(
            dd.wedge_entries() as u64 >= (d / 2) * (d / 2),
            "only {} wedges",
            dd.wedge_entries()
        );
        // With a tight budget, the same build OOMs.
        let mut small = DdTriangles::new(MemoryBudget::new(10_000));
        assert!(small.initial(d as usize + 1, &star).is_err());
    }
}
