//! Memory budget accounting for the baseline engines.
//!
//! The paper's cluster machines have 64 GB each, and Differential
//! Dataflow's strategy of arranging all intermediate state in memory is
//! what makes it crash with OOM on NGA workloads (§6.2). The baselines
//! here account every arranged entry against a configurable budget and
//! fail exactly the way the real system does — so the experiment harness
//! can reproduce the O/T/F failure markers of Figure 12.

use std::fmt;

/// A byte budget with running usage.
#[derive(Debug, Clone)]
pub struct MemoryBudget {
    limit: u64,
    used: u64,
    peak: u64,
}

/// The out-of-memory failure, carrying what was used when the limit hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    pub used: u64,
    pub limit: u64,
}

impl fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of memory: {} bytes requested against a {} byte budget",
            self.used, self.limit
        )
    }
}

impl std::error::Error for OutOfMemory {}

impl MemoryBudget {
    pub fn new(limit: u64) -> MemoryBudget {
        MemoryBudget {
            limit,
            used: 0,
            peak: 0,
        }
    }

    /// An effectively unlimited budget.
    pub fn unlimited() -> MemoryBudget {
        MemoryBudget::new(u64::MAX)
    }

    pub fn alloc(&mut self, bytes: u64) -> Result<(), OutOfMemory> {
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        if self.used > self.limit {
            Err(OutOfMemory {
                used: self.used,
                limit: self.limit,
            })
        } else {
            Ok(())
        }
    }

    pub fn free(&mut self, bytes: u64) {
        self.used = self.used.saturating_sub(bytes);
    }

    pub fn used(&self) -> u64 {
        self.used
    }

    pub fn peak(&self) -> u64 {
        self.peak
    }

    pub fn limit(&self) -> u64 {
        self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_usage_and_peak() {
        let mut b = MemoryBudget::new(100);
        b.alloc(60).unwrap();
        b.free(20);
        b.alloc(40).unwrap();
        assert_eq!(b.used(), 80);
        assert_eq!(b.peak(), 80);
    }

    #[test]
    fn fails_over_limit() {
        let mut b = MemoryBudget::new(100);
        b.alloc(90).unwrap();
        let err = b.alloc(20).unwrap_err();
        assert_eq!(err.limit, 100);
        assert_eq!(err.used, 110);
    }
}
