//! A Differential-Dataflow-style incremental engine for the iterative
//! one-hop algorithms (Groups 1 and 2).
//!
//! DD's strategy (§6.2): every operator's state is *arranged* in memory —
//! per iteration, the full message collection produced by joining vertex
//! values with the edge table, and the per-destination aggregation inputs
//! (a sorted multiset for Min). Incremental updates are delta-joins over
//! this retained state: retract the old messages of changed vertices,
//! insert the new ones, re-reduce the touched destinations. This makes
//! updates fast but costs memory proportional to iterations × messages —
//! the scalability wall the paper measures (2.1 TB for PR at TWT₅).
//!
//! This reimplementation keeps that exact cost structure, accounted
//! byte-by-byte against a [`MemoryBudget`].

use crate::memory::{MemoryBudget, OutOfMemory};
use itg_gsa::{FxHashMap, FxHashSet};
use std::collections::BTreeMap;

/// Which aggregation the iteration uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// PR / LP: sum of incoming contributions.
    Sum,
    /// WCC / BFS: minimum of incoming contributions.
    Min,
}

/// The per-vertex value rule, matching the engine's integer algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueRule {
    /// PR: value = 150 + 850·sum/1000; message = value / out_degree.
    PageRank,
    /// LP: value = 900·sum/1000 + seed(v)·100/1000; message = value/degree.
    LabelProp,
    /// WCC: value = min(init, min_msg); message = value.
    Wcc,
    /// BFS from root: value = min(init, min_msg); message = value + 1.
    Bfs { root: u32 },
}

impl ValueRule {
    fn init(&self, v: u32) -> i64 {
        match self {
            ValueRule::PageRank => 1000,
            ValueRule::LabelProp => (v as i64 % 97) * 10,
            ValueRule::Wcc => v as i64,
            ValueRule::Bfs { root } => {
                if v == *root {
                    0
                } else {
                    itg_algorithms::programs::BFS_INF
                }
            }
        }
    }

    fn agg(&self) -> AggKind {
        match self {
            ValueRule::PageRank | ValueRule::LabelProp => AggKind::Sum,
            ValueRule::Wcc | ValueRule::Bfs { .. } => AggKind::Min,
        }
    }

    /// Value of `v` given its aggregated input (`None` = no messages).
    fn value(&self, v: u32, agg: Option<i64>) -> i64 {
        match self {
            ValueRule::PageRank => match agg {
                Some(sum) => 150 + (850 * sum) / 1000,
                None => 1000,
            },
            ValueRule::LabelProp => {
                let seed = ((v as i64 % 97) * 10 * 100) / 1000;
                match agg {
                    Some(sum) => (900 * sum) / 1000 + seed,
                    None => (v as i64 % 97) * 10,
                }
            }
            ValueRule::Wcc => {
                let init = v as i64;
                agg.map_or(init, |m| m.min(init))
            }
            ValueRule::Bfs { .. } => {
                let init = self.init(v);
                agg.map_or(init, |m| m.min(init))
            }
        }
    }

    /// The message `src` sends along each out-edge, given its value and
    /// degree.
    fn message(&self, value: i64, degree: usize) -> i64 {
        match self {
            ValueRule::PageRank | ValueRule::LabelProp => {
                if degree == 0 {
                    0
                } else {
                    value / degree as i64
                }
            }
            ValueRule::Wcc => value,
            ValueRule::Bfs { .. } => value + 1,
        }
    }
}

/// Arranged per-iteration state.
struct IterState {
    /// Vertex values after this iteration.
    values: Vec<i64>,
    /// Every message, arranged by source — the retained join output.
    messages: FxHashMap<u32, Vec<(u32, i64)>>,
    /// Per-destination aggregation inputs: value → multiplicity (the
    /// "sorted messages" DD keeps as Min-reduce inputs; also serves Sum
    /// retraction).
    agg_inputs: FxHashMap<u32, BTreeMap<i64, u32>>,
}

const MSG_BYTES: u64 = 24; // (src, dst, value)
const AGG_BYTES: u64 = 16; // (value, count) in the per-dst multiset

/// The DD-style iterative engine.
pub struct DdIterative {
    rule: ValueRule,
    iterations: usize,
    n: usize,
    adj: Vec<Vec<u32>>,
    iters: Vec<IterState>,
    pub budget: MemoryBudget,
    /// Messages retracted+inserted during the last delta (work proxy).
    pub last_delta_messages: u64,
}

impl DdIterative {
    pub fn new(rule: ValueRule, iterations: usize, budget: MemoryBudget) -> DdIterative {
        DdIterative {
            rule,
            iterations,
            n: 0,
            adj: Vec::new(),
            iters: Vec::new(),
            budget,
            last_delta_messages: 0,
        }
    }

    /// Full (one-shot) computation, arranging all per-iteration state.
    pub fn initial(&mut self, n: usize, edges: &[(u64, u64)]) -> Result<(), OutOfMemory> {
        self.n = n;
        self.adj = vec![Vec::new(); n];
        for &(s, d) in edges {
            self.adj[s as usize].push(d as u32);
        }
        for a in &mut self.adj {
            a.sort_unstable();
            a.dedup();
        }
        self.budget
            .alloc(edges.len() as u64 * 8 + n as u64 * 8)?;
        let mut values: Vec<i64> = (0..n as u32).map(|v| self.rule.init(v)).collect();
        self.iters.clear();
        for _ in 0..self.iterations {
            let mut messages: FxHashMap<u32, Vec<(u32, i64)>> = FxHashMap::default();
            let mut agg_inputs: FxHashMap<u32, BTreeMap<i64, u32>> = FxHashMap::default();
            let mut n_msgs = 0u64;
            for src in 0..n as u32 {
                let deg = self.adj[src as usize].len();
                if deg == 0 {
                    continue;
                }
                let msg = self.rule.message(values[src as usize], deg);
                let out: Vec<(u32, i64)> = self.adj[src as usize]
                    .iter()
                    .map(|&dst| {
                        *agg_inputs.entry(dst).or_default().entry(msg).or_insert(0) += 1;
                        (dst, msg)
                    })
                    .collect();
                n_msgs += out.len() as u64;
                messages.insert(src, out);
            }
            self.budget.alloc(
                n_msgs * MSG_BYTES
                    + agg_inputs.values().map(|m| m.len() as u64 * AGG_BYTES).sum::<u64>()
                    + n as u64 * 8,
            )?;
            let mut next = values.clone();
            for v in 0..n as u32 {
                let agg = agg_inputs.get(&v).map(|m| reduce(self.rule.agg(), m));
                if agg.is_some() {
                    next[v as usize] = self.rule.value(v, agg);
                }
            }
            self.iters.push(IterState {
                values: next.clone(),
                messages,
                agg_inputs,
            });
            values = next;
        }
        Ok(())
    }

    /// Final vertex values.
    pub fn values(&self) -> &[i64] {
        self.iters
            .last()
            .map(|it| it.values.as_slice())
            .unwrap_or(&[])
    }

    /// Incremental update: delta-join against the arranged state.
    pub fn delta(
        &mut self,
        inserts: &[(u64, u64)],
        deletes: &[(u64, u64)],
    ) -> Result<(), OutOfMemory> {
        self.last_delta_messages = 0;
        // Apply edge mutations; every endpoint's messages change (degree
        // and adjacency both feed the message join).
        let mut dirty: FxHashSet<u32> = FxHashSet::default();
        let grow = inserts
            .iter()
            .map(|&(s, d)| s.max(d) as usize + 1)
            .max()
            .unwrap_or(0);
        if grow > self.n {
            self.adj.resize(grow, Vec::new());
            for v in self.n..grow {
                dirty.insert(v as u32);
            }
            self.n = grow;
            for it in &mut self.iters {
                it.values.resize(grow, 0);
            }
            for (i, it) in self.iters.iter_mut().enumerate() {
                let _ = i;
                for v in it.values.len()..grow {
                    it.values[v] = 0;
                }
            }
        }
        for &(s, d) in inserts {
            let a = &mut self.adj[s as usize];
            if let Err(pos) = a.binary_search(&(d as u32)) {
                a.insert(pos, d as u32);
            }
            dirty.insert(s as u32);
        }
        for &(s, d) in deletes {
            let a = &mut self.adj[s as usize];
            if let Ok(pos) = a.binary_search(&(d as u32)) {
                a.remove(pos);
            }
            dirty.insert(s as u32);
        }

        // Per iteration: changed sources re-emit; touched dsts re-reduce.
        let mut prev_values: Vec<i64> = (0..self.n as u32).map(|v| self.rule.init(v)).collect();
        let mut changed: FxHashSet<u32> = dirty.clone();
        for i in 0..self.iterations {
            // Split borrows: values of iteration i-1 are `prev_values`.
            let it = &mut self.iters[i];
            it.values.resize(self.n, 0);
            let mut touched_dsts: FxHashSet<u32> = FxHashSet::default();
            let mut work: FxHashSet<u32> = changed.clone();
            work.extend(dirty.iter().copied());
            for &src in &work {
                let deg = self.adj[src as usize].len();
                let new_msg = if deg > 0 {
                    Some(self.rule.message(prev_values[src as usize], deg))
                } else {
                    None
                };
                // Retract every stored message of src, insert the new ones.
                if let Some(old) = it.messages.remove(&src) {
                    for (dst, val) in old {
                        self.budget.free(MSG_BYTES);
                        retract_agg(&mut it.agg_inputs, dst, val, &mut self.budget);
                        touched_dsts.insert(dst);
                        self.last_delta_messages += 1;
                    }
                }
                if let Some(msg) = new_msg {
                    let mut out = Vec::with_capacity(deg);
                    for &dst in &self.adj[src as usize] {
                        out.push((dst, msg));
                        self.budget.alloc(MSG_BYTES)?;
                        insert_agg(&mut it.agg_inputs, dst, msg, &mut self.budget)?;
                        touched_dsts.insert(dst);
                        self.last_delta_messages += 1;
                    }
                    it.messages.insert(src, out);
                }
            }
            // Re-reduce touched destinations; next iteration's changed set
            // is the set of vertices whose value actually changed.
            let mut next_changed: FxHashSet<u32> = FxHashSet::default();
            for &dst in &touched_dsts {
                let agg = it
                    .agg_inputs
                    .get(&dst)
                    .filter(|m| !m.is_empty())
                    .map(|m| reduce(self.rule.agg(), m));
                let new_val = self.rule.value(dst, agg);
                if it.values[dst as usize] != new_val {
                    it.values[dst as usize] = new_val;
                    next_changed.insert(dst);
                }
            }
            // New vertices take their rule value at every iteration.
            for &v in &dirty {
                let agg = it
                    .agg_inputs
                    .get(&v)
                    .filter(|m| !m.is_empty())
                    .map(|m| reduce(self.rule.agg(), m));
                let new_val = self.rule.value(v, agg);
                if it.values[v as usize] != new_val {
                    it.values[v as usize] = new_val;
                    next_changed.insert(v);
                }
            }
            prev_values = it.values.clone();
            changed = next_changed;
        }
        Ok(())
    }
}

fn reduce(kind: AggKind, inputs: &BTreeMap<i64, u32>) -> i64 {
    match kind {
        AggKind::Min => *inputs.keys().next().expect("non-empty"),
        AggKind::Sum => inputs.iter().map(|(v, c)| v * *c as i64).sum(),
    }
}

fn insert_agg(
    aggs: &mut FxHashMap<u32, BTreeMap<i64, u32>>,
    dst: u32,
    val: i64,
    budget: &mut MemoryBudget,
) -> Result<(), OutOfMemory> {
    let m = aggs.entry(dst).or_default();
    let e = m.entry(val).or_insert(0);
    if *e == 0 {
        budget.alloc(AGG_BYTES)?;
    }
    *e += 1;
    Ok(())
}

fn retract_agg(
    aggs: &mut FxHashMap<u32, BTreeMap<i64, u32>>,
    dst: u32,
    val: i64,
    budget: &mut MemoryBudget,
) {
    if let Some(m) = aggs.get_mut(&dst) {
        if let Some(e) = m.get_mut(&val) {
            *e -= 1;
            if *e == 0 {
                m.remove(&val);
                budget.free(AGG_BYTES);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itg_algorithms::native::{self, SimpleGraph};

    fn ring(n: u64) -> Vec<(u64, u64)> {
        (0..n)
            .flat_map(|i| {
                let j = (i + 1) % n;
                [(i, j), (j, i)]
            })
            .collect()
    }

    #[test]
    fn dd_pagerank_matches_ungated_iteration() {
        // DD computes all-vertices-every-iteration; on a symmetric ring PR
        // converges immediately, so it matches the BSP-gated reference.
        let edges = ring(8);
        let mut dd = DdIterative::new(ValueRule::PageRank, 10, MemoryBudget::unlimited());
        dd.initial(8, &edges).unwrap();
        let g = SimpleGraph::directed(8, &edges);
        assert_eq!(dd.values(), native::pagerank(&g, 10).as_slice());
    }

    #[test]
    fn dd_wcc_matches_reference() {
        let edges = vec![(0, 1), (1, 0), (1, 2), (2, 1), (4, 5), (5, 4)];
        let mut dd = DdIterative::new(ValueRule::Wcc, 8, MemoryBudget::unlimited());
        dd.initial(6, &edges).unwrap();
        let g = SimpleGraph::directed(6, &edges);
        assert_eq!(dd.values(), native::wcc(&g).as_slice());
    }

    #[test]
    fn dd_incremental_matches_fresh_initial() {
        let mut edges = ring(12);
        let mut dd = DdIterative::new(ValueRule::Wcc, 14, MemoryBudget::unlimited());
        dd.initial(12, &edges).unwrap();
        // Insert a chord, delete a ring edge (both directions).
        let ins = [(0u64, 6u64), (6, 0)];
        let del = [(3u64, 4u64), (4, 3)];
        dd.delta(&ins, &del).unwrap();
        edges.extend_from_slice(&ins);
        edges.retain(|e| !del.contains(e));
        let mut fresh = DdIterative::new(ValueRule::Wcc, 14, MemoryBudget::unlimited());
        fresh.initial(12, &edges).unwrap();
        assert_eq!(dd.values(), fresh.values());
        assert!(dd.last_delta_messages > 0);
    }

    #[test]
    fn dd_incremental_pagerank_matches_fresh() {
        let mut edges = ring(10);
        edges.push((0, 5));
        let mut dd = DdIterative::new(ValueRule::PageRank, 10, MemoryBudget::unlimited());
        dd.initial(10, &edges).unwrap();
        let ins = [(2u64, 7u64)];
        dd.delta(&ins, &[]).unwrap();
        edges.extend_from_slice(&ins);
        let mut fresh = DdIterative::new(ValueRule::PageRank, 10, MemoryBudget::unlimited());
        fresh.initial(10, &edges).unwrap();
        assert_eq!(dd.values(), fresh.values());
    }

    #[test]
    fn memory_grows_with_iterations_and_ooms() {
        let edges = ring(64);
        // Budget that admits the graph but not 10 iterations of arranged
        // messages (128 msgs × 24B × 10 + agg inputs ≫ 4 KiB).
        let mut dd = DdIterative::new(ValueRule::PageRank, 10, MemoryBudget::new(4096));
        let err = dd.initial(64, &edges).unwrap_err();
        assert!(err.used > err.limit);
        // Unlimited: usage scales ~linearly in iterations.
        let mut a = DdIterative::new(ValueRule::PageRank, 2, MemoryBudget::unlimited());
        a.initial(64, &edges).unwrap();
        let mut b = DdIterative::new(ValueRule::PageRank, 8, MemoryBudget::unlimited());
        b.initial(64, &edges).unwrap();
        assert!(b.budget.peak() > a.budget.peak() * 3);
    }

    #[test]
    fn dd_bfs_matches_reference() {
        let edges = vec![(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)];
        let mut dd = DdIterative::new(ValueRule::Bfs { root: 0 }, 8, MemoryBudget::unlimited());
        dd.initial(5, &edges).unwrap();
        let g = SimpleGraph::directed(5, &edges);
        assert_eq!(dd.values(), native::bfs(&g, 0).as_slice());
    }
}
