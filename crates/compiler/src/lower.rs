//! Lowering `L_NGA` ASTs to executable plans.
//!
//! The paper compiles each statement to an algebra sub-expression and
//! removes the Apply operators through query decorrelation (§4.4). The
//! lowered executable form reached here is the decorrelated result: each
//! chain of nested For loops becomes one Walk query; Let bindings are
//! substituted into their uses (the paper: "all followed references to
//! `val` are replaced with the expression"); If conditions are folded into
//! hop constraints when they only reference already-bound walk positions,
//! and kept as residual action conditions otherwise.

use crate::plan::*;
use itg_gsa::expr::Expr;
use itg_gsa::value::{PrimType, ValueType};
use itg_lnga::ast::{AstExpr, Place, Stmt, Udf};
use itg_lnga::{CheckedProgram, LngaError, Symbols};
use std::collections::HashMap;

/// Which UDF an expression is lowered inside (affects name resolution of
/// globals and accumulator reads; mirrors the checker's rules).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Ctx {
    Initialize,
    Traverse,
    Update,
}

struct Lowerer<'a> {
    symbols: &'a Symbols,
    ctx: Ctx,
    /// Vertex variable name → walk position.
    vertex_vars: Vec<String>,
    /// Let name → substituted lowered expression.
    lets: HashMap<String, Expr>,
}

impl<'a> Lowerer<'a> {
    fn new(symbols: &'a Symbols, ctx: Ctx, param: &str) -> Lowerer<'a> {
        Lowerer {
            symbols,
            ctx,
            vertex_vars: vec![param.to_string()],
            lets: HashMap::new(),
        }
    }

    fn vertex_pos(&self, name: &str) -> Option<usize> {
        self.vertex_vars.iter().position(|v| v == name)
    }

    fn lower_expr(&self, e: &AstExpr) -> Result<Expr, LngaError> {
        Ok(match e {
            AstExpr::IntLit(v) => Expr::lit_long(*v),
            AstExpr::FloatLit(v) => Expr::lit_double(*v),
            AstExpr::BoolLit(v) => Expr::lit_bool(*v),
            AstExpr::Ident(name, span) => {
                if let Some(sub) = self.lets.get(name) {
                    sub.clone()
                } else if let Some(pos) = self.vertex_pos(name) {
                    Expr::WalkVertex(pos)
                } else if name == "V" {
                    Expr::NumVertices
                } else if let Some(idx) = self.symbols.global_index(name) {
                    debug_assert_eq!(self.ctx, Ctx::Update);
                    Expr::Global(idx)
                } else {
                    return Err(LngaError::check(*span, format!("unknown name `{name}`")));
                }
            }
            AstExpr::Attr { var, attr, span } => {
                let pos = self.vertex_pos(var).ok_or_else(|| {
                    LngaError::check(*span, format!("unknown vertex variable `{var}`"))
                })?;
                self.lower_attr(pos, attr, *span)?
            }
            AstExpr::Index {
                var,
                attr,
                idx,
                span,
            } => {
                let pos = self.vertex_pos(var).ok_or_else(|| {
                    LngaError::check(*span, format!("unknown vertex variable `{var}`"))
                })?;
                let attr_idx = self.symbols.attr_index(attr).ok_or_else(|| {
                    LngaError::check(*span, format!("`{attr}` is not an array attribute"))
                })?;
                Expr::AttrElem {
                    pos,
                    attr: attr_idx,
                    idx: Box::new(self.lower_expr(idx)?),
                }
            }
            AstExpr::Unary(op, inner) => Expr::Unary(*op, Box::new(self.lower_expr(inner)?)),
            AstExpr::Binary(op, l, r) => {
                Expr::bin(*op, self.lower_expr(l)?, self.lower_expr(r)?)
            }
            AstExpr::Call { func, args, span } => {
                let f = match func.as_str() {
                    "Abs" => itg_gsa::Func::Abs,
                    "Min" => itg_gsa::Func::Min,
                    "Max" => itg_gsa::Func::Max,
                    other => {
                        return Err(LngaError::check(
                            *span,
                            format!("unknown function `{other}`"),
                        ))
                    }
                };
                let lowered = args
                    .iter()
                    .map(|a| self.lower_expr(a))
                    .collect::<Result<Vec<_>, _>>()?;
                Expr::Call(f, lowered)
            }
        })
    }

    fn lower_attr(
        &self,
        pos: usize,
        attr: &str,
        span: itg_lnga::token::Span,
    ) -> Result<Expr, LngaError> {
        if attr == "id" {
            return Ok(Expr::WalkVertex(pos));
        }
        if let Some(dir) = self.symbols.degrees.get(attr) {
            return Ok(Expr::Degree { pos, dir: *dir });
        }
        if let Some(idx) = self.symbols.attr_index(attr) {
            return Ok(Expr::Attr { pos, attr: idx });
        }
        if let Some(idx) = self.symbols.accm_index(attr) {
            // Update context: accumulators are addressed past the non-accm
            // columns (see CompiledProgram::accm_attr_base).
            debug_assert_eq!(self.ctx, Ctx::Update);
            debug_assert_eq!(pos, 0);
            return Ok(Expr::Attr {
                pos,
                attr: self.symbols.attrs.len() + idx,
            });
        }
        Err(LngaError::check(
            span,
            format!("unknown vertex attribute `{attr}`"),
        ))
    }

    /// Insert a numeric cast to the declared slot type when needed.
    fn cast_to(&self, value: Expr, ty: ValueType) -> Expr {
        match ty {
            ValueType::Prim(PrimType::Bool) | ValueType::Array(..) => value,
            ValueType::Prim(p) => match &value {
                // A literal of the right family is cast at compile time.
                Expr::Lit(v) => v
                    .cast(p)
                    .map(Expr::Lit)
                    .unwrap_or(Expr::Cast(p, Box::new(value))),
                _ => Expr::Cast(p, Box::new(value)),
            },
        }
    }
}

/// Lower a per-vertex UDF (Initialize / Update) to a statement program.
fn lower_vertex_program(
    symbols: &Symbols,
    udf: &Udf,
    ctx: Ctx,
) -> Result<VertexProgram, LngaError> {
    let mut lo = Lowerer::new(symbols, ctx, &udf.param);
    let stmts = lower_vstmts(&mut lo, &udf.body)?;
    Ok(VertexProgram { stmts })
}

fn lower_vstmts(lo: &mut Lowerer<'_>, body: &[Stmt]) -> Result<Vec<VStmt>, LngaError> {
    let mut out = Vec::new();
    for stmt in body {
        match stmt {
            Stmt::Let { name, expr, .. } => {
                let e = lo.lower_expr(expr)?;
                lo.lets.insert(name.clone(), e);
            }
            Stmt::Assign { target, expr } => {
                let Place::VertexAttr { attr, .. } = target else {
                    unreachable!("checker rejects global assignment")
                };
                let idx = lo.symbols.attr_index(attr).expect("checked attr");
                let ty = lo.symbols.attrs[idx].ty;
                let value = lo.cast_to(lo.lower_expr(expr)?, ty);
                out.push(VStmt::Assign { attr: idx, value });
            }
            Stmt::Accumulate { target, expr } => {
                let Place::Global { name, .. } = target else {
                    unreachable!("checker rejects vertex accumulate outside Traverse")
                };
                let idx = lo.symbols.global_index(name).expect("checked global");
                let info = &lo.symbols.globals[idx];
                let value = lo.cast_to(lo.lower_expr(expr)?, ValueType::Prim(info.prim));
                out.push(VStmt::AccumGlobal {
                    global: idx,
                    op: info.op,
                    prim: info.prim,
                    value,
                });
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = lo.lower_expr(cond)?;
                let saved = lo.lets.clone();
                let t = lower_vstmts(lo, then_body)?;
                lo.lets = saved.clone();
                let e = lower_vstmts(lo, else_body)?;
                lo.lets = saved;
                out.push(VStmt::If {
                    cond: c,
                    then_body: t,
                    else_body: e,
                });
            }
            Stmt::For { span, .. } => {
                return Err(LngaError::check(*span, "For is only allowed in Traverse"))
            }
        }
    }
    Ok(out)
}

/// Lowering state for Traverse: the current chain of hops and pending If
/// conditions, with completed walk queries accumulated.
struct TraverseLowerer<'a> {
    lo: Lowerer<'a>,
    hops: Vec<HopSpec>,
    /// If conditions in scope, with the depth at which they were opened.
    conds: Vec<(usize, Expr)>,
    queries: Vec<WalkQuery>,
}

impl TraverseLowerer<'_> {
    fn depth(&self) -> usize {
        self.hops.len()
    }

    /// Residual condition for an action at the current depth: the
    /// conjunction of If conditions not already folded into hops. Hop
    /// folding happens at For entry; conditions opened after the last For
    /// stay residual.
    fn residual_cond(&self) -> Option<Expr> {
        let mut out: Option<Expr> = None;
        for (_, c) in &self.conds {
            out = Expr::and_opt(out, Some(c.clone()));
        }
        out
    }

    fn flush_action(&mut self, action: WalkAction) {
        // Attach to an existing query with an identical hop chain, if any.
        let start_filter = self.start_filter();
        for q in &mut self.queries {
            if q.hops == self.hops && q.start_filter == start_filter {
                q.actions.push(action);
                return;
            }
        }
        self.queries.push(WalkQuery {
            op_id: 0,
            start_filter,
            hops: self.hops.clone(),
            actions: vec![action],
            closes_to: None,
        });
    }

    /// Depth-0 conditions that only reference position 0 become the start
    /// filter.
    fn start_filter(&self) -> Option<Expr> {
        let mut out: Option<Expr> = None;
        for (d, c) in &self.conds {
            if *d == 0 && c.max_walk_pos().unwrap_or(0) == 0 {
                out = Expr::and_opt(out, Some(c.clone()));
            }
        }
        out
    }

    fn lower_body(&mut self, body: &[Stmt]) -> Result<(), LngaError> {
        for stmt in body {
            match stmt {
                Stmt::Let { name, expr, .. } => {
                    let e = self.lo.lower_expr(expr)?;
                    self.lo.lets.insert(name.clone(), e);
                }
                Stmt::For {
                    var,
                    source_var,
                    source_attr,
                    where_clause,
                    body,
                    span,
                } => {
                    let source = self.lo.vertex_pos(source_var).ok_or_else(|| {
                        LngaError::check(*span, format!("unknown variable `{source_var}`"))
                    })?;
                    let dir = *self
                        .lo
                        .symbols
                        .nbrs
                        .get(source_attr)
                        .expect("checker validated adjacency");
                    self.lo.vertex_vars.push(var.clone());
                    // The new vertex is position depth+1; fold the Where
                    // clause plus any pending conditions that reference only
                    // bound positions into this hop's constraint.
                    let mut constraint = where_clause
                        .as_ref()
                        .map(|w| self.lo.lower_expr(w))
                        .transpose()?;
                    let new_pos = self.depth() + 1;
                    // Conditions opened above this For (not yet folded into a
                    // hop because they arrived after the previous For) fold
                    // here when they fit; deeper-position conditions cannot
                    // exist (the checker scopes variables).
                    let mut remaining = Vec::new();
                    for (d, c) in std::mem::take(&mut self.conds) {
                        if c.max_walk_pos().unwrap_or(0) <= new_pos {
                            constraint = Expr::and_opt(constraint, Some(c));
                        } else {
                            remaining.push((d, c));
                        }
                    }
                    self.conds = remaining;
                    self.hops.push(HopSpec {
                        source,
                        dir,
                        constraint,
                    });
                    let saved_lets = self.lo.lets.clone();
                    self.lower_body(body)?;
                    self.lo.lets = saved_lets;
                    self.hops.pop();
                    self.lo.vertex_vars.pop();
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    let c = self.lo.lower_expr(cond)?;
                    let saved_lets = self.lo.lets.clone();
                    self.conds.push((self.depth(), c.clone()));
                    self.lower_body(then_body)?;
                    self.conds.pop();
                    self.lo.lets = saved_lets.clone();
                    if !else_body.is_empty() {
                        self.conds.push((
                            self.depth(),
                            Expr::Unary(itg_gsa::UnOp::Not, Box::new(c)),
                        ));
                        self.lower_body(else_body)?;
                        self.conds.pop();
                        self.lo.lets = saved_lets;
                    }
                }
                Stmt::Accumulate { target, expr } => {
                    let value = self.lo.lower_expr(expr)?;
                    let action = match target {
                        Place::VertexAttr { var, attr, .. } => {
                            let pos = self.lo.vertex_pos(var).expect("checked var");
                            let accm = self.lo.symbols.accm_index(attr).expect("checked accm");
                            let info = &self.lo.symbols.accms[accm];
                            WalkAction {
                                depth: self.depth(),
                                cond: self.residual_cond(),
                                target: ActionTarget::VertexAccm { pos, accm },
                                op: info.op,
                                prim: info.prim,
                                value: self
                                    .lo
                                    .cast_to(value, ValueType::Prim(info.prim)),
                            }
                        }
                        Place::Global { name, .. } => {
                            let idx = self.lo.symbols.global_index(name).expect("checked");
                            let info = &self.lo.symbols.globals[idx];
                            WalkAction {
                                depth: self.depth(),
                                cond: self.residual_cond(),
                                target: ActionTarget::Global(idx),
                                op: info.op,
                                prim: info.prim,
                                value: self
                                    .lo
                                    .cast_to(value, ValueType::Prim(info.prim)),
                            }
                        }
                    };
                    self.flush_action(action);
                }
                Stmt::Assign { .. } => {
                    unreachable!("checker rejects assignment in Traverse")
                }
            }
        }
        Ok(())
    }
}

/// Lower the three UDFs of a checked program into executable plans
/// (Traverse into walk queries; Initialize/Update into vertex programs).
pub fn lower(
    checked: &CheckedProgram,
) -> Result<(VertexProgram, TraversePlan, VertexProgram), LngaError> {
    let init = lower_vertex_program(&checked.symbols, &checked.program.initialize, Ctx::Initialize)?;
    let update = lower_vertex_program(&checked.symbols, &checked.program.update, Ctx::Update)?;

    let mut tl = TraverseLowerer {
        lo: Lowerer::new(&checked.symbols, Ctx::Traverse, &checked.program.traverse.param),
        hops: Vec::new(),
        conds: Vec::new(),
        queries: Vec::new(),
    };
    tl.lower_body(&checked.program.traverse.body)?;
    Ok((init, TraversePlan { queries: tl.queries }, update))
}
