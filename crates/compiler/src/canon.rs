//! Canonical forms and structural hashes of compiled plans (DESIGN.md §11).
//!
//! The standing-query server shares work across registered queries by
//! recognizing *structurally identical* sub-plans: two queries whose
//! compiled forms differ only in declared names (attributes, accumulators,
//! globals, adjacency sets) must hash equal, because the lowered plans
//! reference everything by index and the engine's execution is a pure
//! function of those indexes. Conversely any difference that can change an
//! enumerated walk or an accumulated value — hop shape, constraint
//! structure, action targets, literals — must change the hash.
//!
//! Three levels of fingerprint, coarsest last:
//!
//! - [`expr_fingerprint`] — a stable byte-encoding hash of one [`Expr`]
//!   tree (names are already gone at this level: attrs/globals are
//!   indexes).
//! - [`walk_shape_hash`] — one [`WalkQuery`]'s *enumeration shape*: hops,
//!   constraints, start filter, and the multi-way-intersection close, with
//!   the attached actions deliberately excluded. Two queries with the same
//!   shape hash enumerate the same walks; only what they do per walk
//!   differs. `share/unique_subplans` counts distinct values of this hash
//!   across the registry.
//! - [`program_hash`] — the whole compiled program: symbol layout (types
//!   only, never names), Initialize/Update statement programs, every walk
//!   query *including* actions, and the Rule ⑦ sub-query list. Queries
//!   with equal program hashes are execution-equivalent and the registry
//!   backs them with one shared session (DESIGN.md §11.2).
//!
//! All hashes are 64-bit FNV-1a over a tagged pre-order byte encoding —
//! deterministic across processes and platforms (no `std` hasher
//! randomization), so worker processes and coordinators agree on share
//! keys without communicating.

use crate::plan::{
    ActionTarget, CompiledProgram, DeltaSubQuery, HopSpec, VStmt, VertexProgram, WalkAction,
    WalkQuery,
};
use itg_gsa::accm::AccmOp;
use itg_gsa::expr::{BinOp, EdgeDir, Expr, Func, UnOp};
use itg_gsa::value::{PrimType, Value, ValueType};

/// Streaming 64-bit FNV-1a over a tagged byte encoding.
#[derive(Debug, Clone)]
pub struct Fingerprint(u64);

impl Default for Fingerprint {
    fn default() -> Fingerprint {
        Fingerprint::new()
    }
}

impl Fingerprint {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub fn new() -> Fingerprint {
        Fingerprint(Self::OFFSET)
    }

    pub fn finish(&self) -> u64 {
        self.0
    }

    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u64).wrapping_mul(Self::PRIME);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn bool(&mut self, v: bool) {
        self.byte(v as u8);
    }

    /// Tag then length — keeps adjacent variable-length lists from
    /// aliasing each other's encodings.
    fn seq(&mut self, tag: u8, len: usize) {
        self.byte(tag);
        self.usize(len);
    }
}

fn prim_tag(p: PrimType) -> u8 {
    match p {
        PrimType::Bool => 0,
        PrimType::Int => 1,
        PrimType::Long => 2,
        PrimType::Float => 3,
        PrimType::Double => 4,
    }
}

fn op_tag(op: AccmOp) -> u8 {
    match op {
        AccmOp::Sum => 0,
        AccmOp::Prod => 1,
        AccmOp::Min => 2,
        AccmOp::Max => 3,
        AccmOp::Or => 4,
        AccmOp::And => 5,
    }
}

fn dir_tag(d: EdgeDir) -> u8 {
    match d {
        EdgeDir::Out => 0,
        EdgeDir::In => 1,
        EdgeDir::Both => 2,
    }
}

fn put_value(fp: &mut Fingerprint, v: &Value) {
    match v {
        Value::Bool(b) => {
            fp.byte(0x10);
            fp.bool(*b);
        }
        Value::Int(x) => {
            fp.byte(0x11);
            fp.u64(*x as u64);
        }
        Value::Long(x) => {
            fp.byte(0x12);
            fp.u64(*x as u64);
        }
        Value::Float(x) => {
            fp.byte(0x13);
            fp.u64(x.to_bits() as u64);
        }
        Value::Double(x) => {
            fp.byte(0x14);
            fp.u64(x.to_bits());
        }
        Value::Array(items) => {
            fp.seq(0x15, items.len());
            for item in items {
                put_value(fp, item);
            }
        }
    }
}

fn put_expr(fp: &mut Fingerprint, e: &Expr) {
    match e {
        Expr::Lit(v) => {
            fp.byte(0x20);
            put_value(fp, v);
        }
        Expr::WalkVertex(pos) => {
            fp.byte(0x21);
            fp.usize(*pos);
        }
        Expr::Attr { pos, attr } => {
            fp.byte(0x22);
            fp.usize(*pos);
            fp.usize(*attr);
        }
        Expr::Global(idx) => {
            fp.byte(0x23);
            fp.usize(*idx);
        }
        Expr::Degree { pos, dir } => {
            fp.byte(0x24);
            fp.usize(*pos);
            fp.byte(dir_tag(*dir));
        }
        Expr::AttrElem { pos, attr, idx } => {
            fp.byte(0x25);
            fp.usize(*pos);
            fp.usize(*attr);
            put_expr(fp, idx);
        }
        Expr::NumVertices => fp.byte(0x26),
        Expr::Unary(op, inner) => {
            fp.byte(0x27);
            fp.byte(match op {
                UnOp::Neg => 0,
                UnOp::Not => 1,
            });
            put_expr(fp, inner);
        }
        Expr::Binary(op, l, r) => {
            fp.byte(0x28);
            fp.byte(match op {
                BinOp::Add => 0,
                BinOp::Sub => 1,
                BinOp::Mul => 2,
                BinOp::Div => 3,
                BinOp::Mod => 4,
                BinOp::Lt => 5,
                BinOp::Le => 6,
                BinOp::Gt => 7,
                BinOp::Ge => 8,
                BinOp::Eq => 9,
                BinOp::Ne => 10,
                BinOp::And => 11,
                BinOp::Or => 12,
            });
            put_expr(fp, l);
            put_expr(fp, r);
        }
        Expr::Call(f, args) => {
            fp.seq(0x29, args.len());
            fp.byte(match f {
                Func::Abs => 0,
                Func::Min => 1,
                Func::Max => 2,
            });
            for a in args {
                put_expr(fp, a);
            }
        }
        Expr::Cast(ty, inner) => {
            fp.byte(0x2a);
            fp.byte(prim_tag(*ty));
            put_expr(fp, inner);
        }
    }
}

fn put_opt_expr(fp: &mut Fingerprint, e: &Option<Expr>) {
    match e {
        None => fp.byte(0x00),
        Some(e) => {
            fp.byte(0x01);
            put_expr(fp, e);
        }
    }
}

fn put_hop(fp: &mut Fingerprint, h: &HopSpec) {
    fp.usize(h.source);
    fp.byte(dir_tag(h.dir));
    put_opt_expr(fp, &h.constraint);
}

fn put_action(fp: &mut Fingerprint, a: &WalkAction) {
    fp.usize(a.depth);
    put_opt_expr(fp, &a.cond);
    match &a.target {
        ActionTarget::VertexAccm { pos, accm } => {
            fp.byte(0x30);
            fp.usize(*pos);
            fp.usize(*accm);
        }
        ActionTarget::Global(g) => {
            fp.byte(0x31);
            fp.usize(*g);
        }
    }
    fp.byte(op_tag(a.op));
    fp.byte(prim_tag(a.prim));
    put_expr(fp, &a.value);
}

/// The enumeration shape of one walk query — hops, constraints, start
/// filter, and the intersection close. Actions are *excluded*: the shape
/// determines which walks are enumerated, not what they contribute.
fn put_walk_shape(fp: &mut Fingerprint, q: &WalkQuery) {
    put_opt_expr(fp, &q.start_filter);
    fp.seq(0x40, q.hops.len());
    for h in &q.hops {
        put_hop(fp, h);
    }
    match q.closes_to {
        None => fp.byte(0x00),
        Some(i) => {
            fp.byte(0x01);
            fp.usize(i);
        }
    }
}

fn put_walk(fp: &mut Fingerprint, q: &WalkQuery) {
    put_walk_shape(fp, q);
    fp.seq(0x41, q.actions.len());
    for a in &q.actions {
        put_action(fp, a);
    }
}

fn put_vstmts(fp: &mut Fingerprint, stmts: &[VStmt]) {
    fp.seq(0x50, stmts.len());
    for s in stmts {
        match s {
            VStmt::Assign { attr, value } => {
                fp.byte(0x51);
                fp.usize(*attr);
                put_expr(fp, value);
            }
            VStmt::AccumGlobal {
                global,
                op,
                prim,
                value,
            } => {
                fp.byte(0x52);
                fp.usize(*global);
                fp.byte(op_tag(*op));
                fp.byte(prim_tag(*prim));
                put_expr(fp, value);
            }
            VStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                fp.byte(0x53);
                put_expr(fp, cond);
                put_vstmts(fp, then_body);
                put_vstmts(fp, else_body);
            }
        }
    }
}

fn put_vprogram(fp: &mut Fingerprint, p: &VertexProgram) {
    put_vstmts(fp, &p.stmts);
}

fn put_subquery(fp: &mut Fingerprint, sq: &DeltaSubQuery) {
    fp.usize(sq.query);
    fp.usize(sq.delta_stream);
    fp.seq(0x60, sq.pruning_path.len());
    for &h in &sq.pruning_path {
        fp.usize(h);
    }
}

/// Fingerprint of one compiled expression tree. Stable across processes
/// and compilations; insensitive to anything but structure (names are
/// already resolved to indexes at this level).
pub fn expr_fingerprint(e: &Expr) -> u64 {
    let mut fp = Fingerprint::new();
    put_expr(&mut fp, e);
    fp.finish()
}

/// Hash of one walk query's *enumeration shape* — hops, constraints,
/// start filter, `closes_to` — with actions excluded. Queries sharing
/// this hash enumerate identical walk sets over the same graph, which is
/// the unit the registry's `share/unique_subplans` counter measures.
pub fn walk_shape_hash(q: &WalkQuery) -> u64 {
    let mut fp = Fingerprint::new();
    put_walk_shape(&mut fp, q);
    fp.finish()
}

/// Name-insensitive structural hash of a whole compiled program.
///
/// Covers everything execution depends on: the symbol *layout* (attribute
/// types, accumulator `(op, prim)` pairs — never names), the Initialize
/// and Update statement programs, every walk query including its actions,
/// the Rule ⑦ delta sub-queries, and the static analysis flags. Excludes
/// declared names, the source text, and operator ids (which are a pure
/// function of plan positions anyway).
///
/// Equal hashes ⇒ execution-equivalent programs: the engine interprets
/// plans by index only, so two programs with identical structure produce
/// byte-identical dynamic state from identical inputs (the sharing
/// correctness argument of DESIGN.md §11.3). Per-name accessors
/// (`Session::global_value` etc.) still go through each query's own
/// symbol table.
pub fn program_hash(p: &CompiledProgram) -> u64 {
    let mut fp = Fingerprint::new();
    // Symbol layout: types only. attrs[0] is always `active: bool`.
    fp.seq(0x70, p.symbols.attrs.len());
    for a in &p.symbols.attrs {
        match a.ty {
            ValueType::Prim(prim) => {
                fp.byte(0x71);
                fp.byte(prim_tag(prim));
            }
            ValueType::Array(prim, n) => {
                fp.byte(0x72);
                fp.byte(prim_tag(prim));
                fp.usize(n);
            }
        }
    }
    fp.seq(0x73, p.symbols.accms.len());
    for a in &p.symbols.accms {
        fp.byte(op_tag(a.op));
        fp.byte(prim_tag(a.prim));
    }
    fp.seq(0x74, p.symbols.globals.len());
    for g in &p.symbols.globals {
        fp.byte(op_tag(g.op));
        fp.byte(prim_tag(g.prim));
    }
    fp.bool(p.symbols.uses_in_direction);
    put_vprogram(&mut fp, &p.init);
    put_vprogram(&mut fp, &p.update);
    fp.seq(0x75, p.traverse.queries.len());
    for q in &p.traverse.queries {
        put_walk(&mut fp, q);
    }
    fp.seq(0x76, p.delta_traverse.len());
    for sq in &p.delta_traverse {
        put_subquery(&mut fp, sq);
    }
    fp.bool(p.incremental_safe);
    fp.usize(p.max_hops);
    fp.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_source;

    const TC: &str = r#"
        Vertex (id, active, nbrs)
        GlobalVariable (cnts: Accm<long, SUM>)
        Initialize (u1): { u1.active = true; }
        Traverse (u1): {
            For u2 in u1.nbrs Where (u1 < u2) {
                For u3 in u2.nbrs Where (u2 < u3) {
                    For u4 in u3.nbrs Where (u4 == u1) { cnts.Accumulate(1); }
                }
            }
        }
        Update (u1): { }
    "#;

    /// TC with every user-declared name alpha-renamed (the global and all
    /// vertex variables; `nbrs`/`active` are predefined and fixed).
    const TC_RENAMED: &str = r#"
        Vertex (id, active, nbrs)
        GlobalVariable (triangles: Accm<long, SUM>)
        Initialize (w): { w.active = true; }
        Traverse (w): {
            For x in w.nbrs Where (w < x) {
                For y in x.nbrs Where (x < y) {
                    For z in y.nbrs Where (z == w) { triangles.Accumulate(1); }
                }
            }
        }
        Update (w): { }
    "#;

    /// Same walk shape as TC, but accumulating 2 instead of 1.
    const TC_DOUBLED: &str = r#"
        Vertex (id, active, nbrs)
        GlobalVariable (cnts: Accm<long, SUM>)
        Initialize (u1): { u1.active = true; }
        Traverse (u1): {
            For u2 in u1.nbrs Where (u1 < u2) {
                For u3 in u2.nbrs Where (u2 < u3) {
                    For u4 in u3.nbrs Where (u4 == u1) { cnts.Accumulate(2); }
                }
            }
        }
        Update (u1): { }
    "#;

    #[test]
    fn identical_programs_hash_equal() {
        let a = compile_source(TC).unwrap();
        let b = compile_source(TC).unwrap();
        assert_eq!(program_hash(&a), program_hash(&b));
    }

    #[test]
    fn alpha_renamed_programs_hash_equal() {
        let a = compile_source(TC).unwrap();
        let b = compile_source(TC_RENAMED).unwrap();
        assert_eq!(
            program_hash(&a),
            program_hash(&b),
            "the hash must be name-insensitive"
        );
    }

    #[test]
    fn different_action_values_hash_differently() {
        let a = compile_source(TC).unwrap();
        let b = compile_source(TC_DOUBLED).unwrap();
        assert_ne!(program_hash(&a), program_hash(&b));
        // … but their enumeration shapes are identical.
        assert_eq!(
            walk_shape_hash(&a.traverse.queries[0]),
            walk_shape_hash(&b.traverse.queries[0]),
        );
    }

    #[test]
    fn different_walk_shapes_hash_differently() {
        let two_hop = compile_source(
            "Vertex (id, active, nbrs)
             GlobalVariable (c: Accm<long, SUM>)
             Initialize (u): { u.active = true; }
             Traverse (u): { For v in u.nbrs { For w in v.nbrs { c.Accumulate(1); } } }
             Update (u): { }",
        )
        .unwrap();
        let tc = compile_source(TC).unwrap();
        assert_ne!(program_hash(&two_hop), program_hash(&tc));
        assert_ne!(
            walk_shape_hash(&two_hop.traverse.queries[0]),
            walk_shape_hash(&tc.traverse.queries[0]),
        );
    }

    #[test]
    fn expr_fingerprint_distinguishes_structure() {
        use itg_gsa::expr::BinOp;
        let lt = Expr::bin(BinOp::Lt, Expr::WalkVertex(0), Expr::WalkVertex(1));
        let gt = Expr::bin(BinOp::Gt, Expr::WalkVertex(0), Expr::WalkVertex(1));
        let lt2 = Expr::bin(BinOp::Lt, Expr::WalkVertex(0), Expr::WalkVertex(1));
        assert_ne!(expr_fingerprint(&lt), expr_fingerprint(&gt));
        assert_eq!(expr_fingerprint(&lt), expr_fingerprint(&lt2));
        // Literal payloads matter, including float bit patterns.
        let a = Expr::lit_double(0.15);
        let b = Expr::lit_double(0.25);
        assert_ne!(expr_fingerprint(&a), expr_fingerprint(&b));
    }

    #[test]
    fn builtin_suite_hashes_are_pairwise_distinct() {
        // The six evaluation programs are structurally distinct; their
        // hashes must be too (no accidental collisions in the suite the
        // registry will serve).
        let sources = [TC, TC_RENAMED, TC_DOUBLED];
        let hashes: Vec<u64> = sources
            .iter()
            .map(|s| program_hash(&compile_source(s).unwrap()))
            .collect();
        assert_eq!(hashes[0], hashes[1]);
        assert_ne!(hashes[0], hashes[2]);
    }
}
