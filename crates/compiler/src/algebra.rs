//! Building the formal GSA algebra plan from the lowered Traverse plan,
//! and applying the automatic incrementalization of §5.1.

use crate::plan::{ActionTarget, DeltaSubQuery, TraversePlan, WalkQuery};
use itg_gsa::incremental::incrementalize;
use itg_gsa::plan::{AlgebraNode, StreamRef, WriteTarget};
use itg_gsa::Expr;

/// Build the formal one-shot algebra plan `P_Q` for a Traverse plan: the
/// union over walk queries of ⊎(Π(ω(vs, es_1, ..., es_k))) shapes.
pub fn build_algebra(plan: &TraversePlan) -> AlgebraNode {
    let mut nodes: Vec<AlgebraNode> = Vec::new();
    for q in &plan.queries {
        let walk = AlgebraNode::Walk {
            streams: (0..=q.hops.len()).map(StreamRef::base).collect(),
            start_filter: q.start_filter.clone(),
            hop_constraints: q.hops.iter().map(|h| h.constraint.clone()).collect(),
            final_constraint: None,
            delta_start_images: false,
        };
        for a in &q.actions {
            let input = match &a.cond {
                Some(c) => AlgebraNode::Filter {
                    pred: c.clone(),
                    input: Box::new(walk.clone()),
                },
                None => walk.clone(),
            };
            let target = match &a.target {
                ActionTarget::VertexAccm { pos, accm } => WriteTarget::VertexAttr {
                    key: Expr::WalkVertex(*pos),
                    attr: *accm,
                },
                ActionTarget::Global(g) => WriteTarget::Global(*g),
            };
            nodes.push(AlgebraNode::Accumulate {
                target,
                op: a.op,
                ty: a.prim,
                value: a.value.clone(),
                input: Box::new(AlgebraNode::Map {
                    exprs: vec![a.value.clone()],
                    input: Box::new(input),
                }),
            });
        }
    }
    match nodes.len() {
        1 => nodes.pop().unwrap(),
        _ => AlgebraNode::Union(nodes),
    }
}

/// Derive the formal `P_ΔQ` via the Table 4 rules.
pub fn build_delta_algebra(algebra: &AlgebraNode) -> AlgebraNode {
    incrementalize(algebra)
}

/// Enumerate the executable delta sub-queries (Rule ⑦): for each walk
/// query with k hops, k+1 sub-queries — delta at the vertex stream, then at
/// each hop's edge stream — each carrying the backward pruning path used by
/// the MS-BFS neighbor-pruning optimization.
pub fn build_delta_subqueries(plan: &TraversePlan) -> Vec<DeltaSubQuery> {
    let mut out = Vec::new();
    for (qi, q) in plan.queries.iter().enumerate() {
        for d in 0..=q.hops.len() {
            let pruning_path = if d == 0 {
                Vec::new()
            } else {
                // Hops on the path from the start vertex to the delta hop's
                // *source* position: the backward MS-BFS starts from the
                // delta edges' sources and walks these hops in reverse to
                // find the candidate start vertices V_Δ.
                q.path_to(q.hops[d - 1].source)
            };
            out.push(DeltaSubQuery {
                op_id: 0,
                query: qi,
                delta_stream: d,
                pruning_path,
            });
        }
    }
    out
}

/// Whether the walk queries are safe for incremental execution: value
/// expressions, constraints, and action conditions may only read vertex
/// attributes at position 0 (ids are fine anywhere) — the condition under
/// which vs_2.. drop out of `P_ω` (§4.4) and Rule ⑦ applies as
/// implemented.
pub fn incremental_safe(plan: &TraversePlan) -> bool {
    plan.queries.iter().all(|q: &WalkQuery| {
        let exprs = q
            .hops
            .iter()
            .filter_map(|h| h.constraint.as_ref())
            .chain(q.actions.iter().filter_map(|a| a.cond.as_ref()))
            .chain(q.actions.iter().map(|a| &a.value))
            .chain(q.start_filter.as_ref());
        exprs.into_iter().all(|e| !e.reads_deep_attrs())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{HopSpec, WalkAction};
    use itg_gsa::accm::AccmOp;
    use itg_gsa::expr::{BinOp, EdgeDir};
    use itg_gsa::value::PrimType;

    fn pr_like_plan() -> TraversePlan {
        TraversePlan {
            queries: vec![WalkQuery {
                op_id: 0,
                start_filter: None,
                hops: vec![HopSpec {
                    source: 0,
                    dir: EdgeDir::Out,
                    constraint: None,
                }],
                actions: vec![WalkAction {
                    depth: 1,
                    cond: None,
                    target: ActionTarget::VertexAccm { pos: 1, accm: 0 },
                    op: AccmOp::Sum,
                    prim: PrimType::Double,
                    value: Expr::bin(
                        BinOp::Div,
                        Expr::Attr { pos: 0, attr: 1 },
                        Expr::Degree {
                            pos: 0,
                            dir: EdgeDir::Out,
                        },
                    ),
                }],
                closes_to: None,
            }],
        }
    }

    #[test]
    fn algebra_has_accumulate_map_walk_shape() {
        let alg = build_algebra(&pr_like_plan());
        let text = alg.explain();
        assert!(text.contains("⊎"));
        assert!(text.contains("ω(vs, es1)"));
    }

    #[test]
    fn delta_subqueries_count_and_paths() {
        let subs = build_delta_subqueries(&pr_like_plan());
        assert_eq!(subs.len(), 2);
        assert_eq!(subs[0].delta_stream, 0);
        assert!(subs[0].pruning_path.is_empty());
        // Delta at hop 0: its source *is* the start position, so no
        // backward traversal is needed to find V_Δ.
        assert_eq!(subs[1].delta_stream, 1);
        assert_eq!(subs[1].pruning_path, Vec::<usize>::new());
    }

    #[test]
    fn delta_algebra_is_union_of_walks() {
        let alg = build_algebra(&pr_like_plan());
        let d = build_delta_algebra(&alg);
        assert_eq!(itg_gsa::delta_subqueries(&d).len(), 2);
    }

    #[test]
    fn deep_attr_reads_flagged_unsafe() {
        let mut plan = pr_like_plan();
        plan.queries[0].actions[0].value = Expr::Attr { pos: 1, attr: 1 };
        assert!(!incremental_safe(&plan));
        assert!(incremental_safe(&pr_like_plan()));
    }
}
