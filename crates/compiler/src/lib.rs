//! # itg-compiler — the `L_NGA` → GSA query compiler (paper §4.4, §5.1)
//!
//! Takes a checked `L_NGA` program and produces:
//! - the executable one-shot plans (Initialize / Traverse / Update), with
//!   Let substitution, decorrelated nested-For walk queries, folded
//!   constraints, and the multi-way-intersection annotation;
//! - the automatically incrementalized Traverse: the Rule ⑦ sub-queries
//!   plus the backward pruning paths the engine's MS-BFS neighbor pruning
//!   uses;
//! - the formal algebra trees `P_Q` and `P_ΔQ` (for EXPLAIN output and the
//!   algebraic test suite).

pub mod algebra;
pub mod canon;
pub mod lower;
pub mod optimize;
pub mod plan;

pub use canon::{expr_fingerprint, program_hash, walk_shape_hash};
pub use plan::{
    AccmLane, ActionTarget, CompiledProgram, DeltaSubQuery, HopSpec, ProgramAnalysis, TraversePlan,
    VStmt, VertexProgram, WalkAction, WalkQuery,
};

use itg_lnga::{CheckedProgram, LngaError};

/// Compile a checked program into one-shot and incremental plans.
pub fn compile(checked: &CheckedProgram) -> Result<CompiledProgram, LngaError> {
    let (init, mut traverse, update) = lower::lower(checked)?;
    optimize::annotate_intersections(&mut traverse);
    let algebra = algebra::build_algebra(&traverse);
    let algebra_delta = algebra::build_delta_algebra(&algebra);
    let delta_traverse = algebra::build_delta_subqueries(&traverse);
    let incremental_safe = algebra::incremental_safe(&traverse);
    let max_hops = traverse
        .queries
        .iter()
        .map(|q| q.hops.len())
        .max()
        .unwrap_or(0);
    let analysis = analyze(&init, &traverse, &update, checked);
    let mut program = CompiledProgram {
        symbols: checked.symbols.clone(),
        init,
        update,
        traverse,
        delta_traverse,
        algebra,
        algebra_delta,
        incremental_safe,
        max_hops,
        analysis,
        source: String::new(),
    };
    program.assign_operator_ids();
    Ok(program)
}

fn analyze(
    init: &VertexProgram,
    traverse: &TraversePlan,
    update: &VertexProgram,
    _checked: &CheckedProgram,
) -> plan::ProgramAnalysis {
    use itg_gsa::Expr;

    fn expr_reads_degree(e: &Expr) -> bool {
        let mut found = false;
        e.visit(&mut |n| {
            if matches!(n, Expr::Degree { .. }) {
                found = true;
            }
        });
        found
    }

    fn expr_reads_global(e: &Expr) -> bool {
        let mut found = false;
        e.visit(&mut |n| {
            if matches!(n, Expr::Global(_)) {
                found = true;
            }
        });
        found
    }

    fn vstmts_facts(stmts: &[VStmt]) -> (bool, bool, bool) {
        // (reads_degree, reads_global, accumulates_global)
        let mut out = (false, false, false);
        fn walk(stmts: &[VStmt], out: &mut (bool, bool, bool)) {
            for s in stmts {
                match s {
                    VStmt::Assign { value, .. } => {
                        out.0 |= expr_reads_degree(value);
                        out.1 |= expr_reads_global(value);
                    }
                    VStmt::AccumGlobal { value, .. } => {
                        out.0 |= expr_reads_degree(value);
                        out.1 |= expr_reads_global(value);
                        out.2 = true;
                    }
                    VStmt::If {
                        cond,
                        then_body,
                        else_body,
                    } => {
                        out.0 |= expr_reads_degree(cond);
                        out.1 |= expr_reads_global(cond);
                        walk(then_body, out);
                        walk(else_body, out);
                    }
                }
            }
        }
        walk(stmts, &mut out);
        out
    }

    let traverse_reads_degree = traverse.queries.iter().any(|q| {
        q.hops
            .iter()
            .filter_map(|h| h.constraint.as_ref())
            .chain(q.actions.iter().filter_map(|a| a.cond.as_ref()))
            .chain(q.actions.iter().map(|a| &a.value))
            .chain(q.start_filter.as_ref())
            .any(expr_reads_degree)
    });
    let (init_reads_degree, _, _) = vstmts_facts(&init.stmts);
    let (update_reads_degree, update_reads_globals, update_accumulates_globals) =
        vstmts_facts(&update.stmts);
    plan::ProgramAnalysis {
        traverse_reads_degree,
        update_reads_degree,
        init_reads_degree,
        update_reads_globals,
        update_accumulates_globals,
    }
}

/// Front end + compiler in one call: `L_NGA` source text to compiled plans.
pub fn compile_source(src: &str) -> Result<CompiledProgram, LngaError> {
    let mut program = compile(&itg_lnga::frontend(src)?)?;
    program.source = src.to_string();
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ActionTarget, VStmt};
    use itg_gsa::expr::{BinOp, EdgeDir, Expr};
    use itg_gsa::AccmOp;

    const PR: &str = r#"
        Vertex (id, active, out_nbrs, out_degree,
                rank: double, sum: Accm<double, SUM>)
        Initialize (u): { u.rank = 1.0; u.active = true; }
        Traverse (u): {
            Let val = u.rank / u.out_degree;
            For v in u.out_nbrs { v.sum.Accumulate(val); }
        }
        Update (u): {
            Let val = 0.15 / V + 0.85 * u.sum;
            If (Abs(val - u.rank) > 0.001) { u.rank = val; u.active = true; }
        }
    "#;

    const TC: &str = r#"
        Vertex (id, active, nbrs)
        GlobalVariable (cnts: Accm<long, SUM>)
        Initialize (u1): { u1.active = true; }
        Traverse (u1): {
            For u2 in u1.nbrs Where (u1 < u2) {
                For u3 in u2.nbrs Where (u2 < u3) {
                    For u4 in u3.nbrs Where (u4 == u1) {
                        cnts.Accumulate(1);
                    }
                }
            }
        }
        Update (u1): { }
    "#;

    #[test]
    fn pagerank_compiles_to_one_hop_walk() {
        let p = compile_source(PR).unwrap();
        assert_eq!(p.traverse.queries.len(), 1);
        let q = &p.traverse.queries[0];
        assert_eq!(q.hops.len(), 1);
        assert_eq!(q.hops[0].dir, EdgeDir::Out);
        assert_eq!(q.actions.len(), 1);
        let a = &q.actions[0];
        assert_eq!(a.depth, 1);
        assert_eq!(a.op, AccmOp::Sum);
        assert!(matches!(
            a.target,
            ActionTarget::VertexAccm { pos: 1, accm: 0 }
        ));
        // Let substitution: the value expression contains rank / degree.
        let mut saw_degree = false;
        a.value.visit(&mut |e| {
            if matches!(e, Expr::Degree { pos: 0, .. }) {
                saw_degree = true;
            }
        });
        assert!(saw_degree, "Let val was not substituted: {:?}", a.value);
        assert!(p.incremental_safe);
        // Incremental plan: vs-delta + es1-delta sub-queries.
        assert_eq!(p.delta_traverse.len(), 2);
    }

    #[test]
    fn pagerank_update_lowered_with_accm_read() {
        let p = compile_source(PR).unwrap();
        // Update: If(...) { Assign rank; Assign active; }
        assert_eq!(p.update.stmts.len(), 1);
        let VStmt::If { cond, then_body, .. } = &p.update.stmts[0] else {
            panic!("expected If, got {:?}", p.update.stmts[0]);
        };
        // The condition references the accumulator via the offset index.
        let base = p.accm_attr_base();
        let mut saw_accm = false;
        cond.visit(&mut |e| {
            if let Expr::Attr { attr, .. } = e {
                if *attr >= base {
                    saw_accm = true;
                }
            }
        });
        assert!(saw_accm);
        assert_eq!(then_body.len(), 2);
        // Initialize assigns rank (attr 1) and active (attr 0).
        assert!(p.init.assigns(0));
        assert!(p.init.assigns(1));
    }

    #[test]
    fn tc_compiles_to_three_hop_walk_with_intersection() {
        let p = compile_source(TC).unwrap();
        assert_eq!(p.traverse.queries.len(), 1);
        let q = &p.traverse.queries[0];
        assert_eq!(q.hops.len(), 3);
        // The closing constraint u4 == u1 is detected.
        assert_eq!(q.closes_to, Some(0));
        // Ordering constraints on the first two hops.
        assert!(matches!(
            q.hops[0].constraint,
            Some(Expr::Binary(BinOp::Lt, _, _))
        ));
        // Global action at depth 3.
        assert!(matches!(q.actions[0].target, ActionTarget::Global(0)));
        assert_eq!(q.actions[0].depth, 3);
        // Rule 7: 4 sub-queries, pruning paths growing along the chain.
        assert_eq!(p.delta_traverse.len(), 4);
        assert_eq!(p.delta_traverse[1].pruning_path, Vec::<usize>::new());
        assert_eq!(p.delta_traverse[2].pruning_path, vec![0]);
        assert_eq!(p.delta_traverse[3].delta_stream, 3);
        assert_eq!(p.delta_traverse[3].pruning_path, vec![0, 1]);
    }

    #[test]
    fn branching_walk_lcc_style() {
        // LCC: u3 iterates u1's neighbors again (branching), closed by
        // u4 == u3 from u2.
        let src = r#"
            Vertex (id, active, nbrs, degree, tri: Accm<long, SUM>, lcc: double)
            Initialize (u1): { u1.active = true; }
            Traverse (u1): {
                For u2 in u1.nbrs {
                    For u3 in u1.nbrs Where (u2 < u3) {
                        For u4 in u2.nbrs Where (u4 == u3) {
                            u1.tri.Accumulate(1);
                        }
                    }
                }
            }
            Update (u1): {
                If (u1.degree > 1) {
                    u1.lcc = 2.0 * u1.tri / (u1.degree * (u1.degree - 1));
                }
            }
        "#;
        let p = compile_source(src).unwrap();
        let q = &p.traverse.queries[0];
        assert_eq!(q.hops.len(), 3);
        assert_eq!(q.hops[0].source, 0);
        assert_eq!(q.hops[1].source, 0, "branching hop re-sources u1");
        assert_eq!(q.hops[2].source, 1, "closing hop draws from u2");
        assert_eq!(q.closes_to, Some(2));
        // Pruning path for the delta at the closing hop follows the parent
        // chain of its source (u2 was reached by hop 0 from u1).
        let last = p.delta_traverse.last().unwrap();
        assert_eq!(last.delta_stream, 3);
        assert_eq!(last.pruning_path, vec![0]);
    }

    #[test]
    fn sibling_for_loops_over_same_chain_merge() {
        // Two sibling loops over the identical adjacency chain share one
        // walk enumeration (both actions attach to it) — but loops with
        // *different* constraints remain separate queries.
        let src = r#"
            Vertex (id, active, nbrs, a: Accm<long, SUM>, b: Accm<long, MIN>)
            Initialize (u): { u.active = true; }
            Traverse (u): {
                For v in u.nbrs { v.a.Accumulate(1); }
                For w in u.nbrs { w.b.Accumulate(2); }
                For x in u.nbrs Where (u < x) { x.a.Accumulate(3); }
            }
            Update (u): { }
        "#;
        let p = compile_source(src).unwrap();
        assert_eq!(p.traverse.queries.len(), 2);
        assert_eq!(p.traverse.queries[0].actions.len(), 2);
        assert_eq!(p.traverse.queries[1].actions.len(), 1);
        // 2 sub-queries per 1-hop query.
        assert_eq!(p.delta_traverse.len(), 4);
    }

    #[test]
    fn actions_in_same_body_share_one_query() {
        let src = r#"
            Vertex (id, active, nbrs, a: Accm<long, SUM>, b: Accm<long, SUM>)
            Initialize (u): { u.active = true; }
            Traverse (u): {
                For v in u.nbrs { v.a.Accumulate(1); v.b.Accumulate(2); }
            }
            Update (u): { }
        "#;
        let p = compile_source(src).unwrap();
        assert_eq!(p.traverse.queries.len(), 1);
        assert_eq!(p.traverse.queries[0].actions.len(), 2);
    }

    #[test]
    fn if_condition_folds_into_hop_constraint() {
        let src = r#"
            Vertex (id, active, nbrs, g: Accm<long, SUM>)
            Initialize (u): { u.active = true; }
            Traverse (u): {
                For v in u.nbrs {
                    If (u < v) { v.g.Accumulate(1); }
                }
            }
            Update (u): { }
        "#;
        let p = compile_source(src).unwrap();
        let q = &p.traverse.queries[0];
        // The If appears after the For, so it survives as the action's
        // residual condition (or was folded into the hop constraint).
        assert!(q.actions[0].cond.is_some() || q.hops[0].constraint.is_some());
    }

    #[test]
    fn operator_ids_are_stable_and_labeled() {
        let p = compile_source(PR).unwrap();
        assert_eq!(p.traverse.queries[0].op_id, 1);
        // ΔQ0 sub-queries: (0+1)*16 + stream.
        assert_eq!(p.delta_traverse[0].op_id, 16);
        assert_eq!(p.delta_traverse[1].op_id, 17);
        let labels = p.operator_labels();
        assert!(labels.contains(&(1, "Q0 ω (1 hops)".to_string())));
        assert!(labels.contains(&(16, "ΔQ0 ω(Δvs)".to_string())));
        assert!(labels.contains(&(17, "ΔQ0 ω(Δes1)".to_string())));
        // Recompiling the same source yields identical ids.
        let p2 = compile_source(PR).unwrap();
        assert_eq!(p.operator_labels(), p2.operator_labels());
    }

    #[test]
    fn lane_selection_is_a_pure_function_of_the_declaration() {
        use crate::plan::AccmLane;
        use itg_gsa::value::PrimType;
        let cases = [
            (AccmOp::Sum, PrimType::Long, AccmLane::SumI64),
            (AccmOp::Sum, PrimType::Double, AccmLane::SumF64),
            (AccmOp::Min, PrimType::Long, AccmLane::MinI64),
            (AccmOp::Min, PrimType::Double, AccmLane::MinF64),
            (AccmOp::Max, PrimType::Long, AccmLane::MaxI64),
            (AccmOp::Max, PrimType::Double, AccmLane::MaxF64),
            (AccmOp::Or, PrimType::Bool, AccmLane::OrBool),
            (AccmOp::And, PrimType::Bool, AccmLane::AndBool),
            (AccmOp::Prod, PrimType::Double, AccmLane::Generic),
            (AccmOp::Sum, PrimType::Int, AccmLane::Generic),
        ];
        for (op, prim, want) in cases {
            assert_eq!(AccmLane::select(op, prim), want, "{op:?}/{prim:?}");
        }
        // PR's double-SUM accumulator and TC's long-SUM global both land on
        // specialized lanes.
        let pr = compile_source(PR).unwrap();
        assert_eq!(pr.vertex_lanes(), vec![AccmLane::SumF64]);
        let tc = compile_source(TC).unwrap();
        assert_eq!(tc.global_lanes(), vec![AccmLane::SumI64]);
    }

    #[test]
    fn algebra_explain_is_renderable() {
        let p = compile_source(TC).unwrap();
        let one_shot = p.algebra.explain();
        let delta = p.algebra_delta.explain();
        assert!(one_shot.contains("ω(vs, es1, es2, es3)"));
        assert!(delta.contains("Δ"));
    }
}
