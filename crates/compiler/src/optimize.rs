//! Plan-level optimizations (paper §2 and §5.3).
//!
//! - **Multi-way intersection**: nested for-loops that *close* the walk —
//!   the final hop pinned to equal an earlier position (`u4 == u1` in TC,
//!   `u4 == u3` in LCC) — are rewritten so the engine checks membership in
//!   the earlier vertex's adjacency instead of scanning the final hop's
//!   adjacency list. This is the paper's "for-loop exploiting a multi-way
//!   intersection over the adjacency lists".
//! - **Constraint classification**: hop constraints that reference only ids
//!   (pure order constraints) are marked so the engine can evaluate them
//!   without building a full evaluation context.
//!
//! Traversal reordering and neighbor pruning are *incremental-plan*
//! optimizations: the sub-query structure the engine needs for them (which
//! hop carries the delta; the backward pruning path) is produced by
//! [`crate::algebra::build_delta_subqueries`], and the engine applies them
//! at run time per its optimization flags.

use crate::plan::{TraversePlan, WalkQuery};
use itg_gsa::expr::{BinOp, Expr};

/// Detect and annotate the closing-equality pattern on every walk query.
pub fn annotate_intersections(plan: &mut TraversePlan) {
    for q in &mut plan.queries {
        q.closes_to = detect_close(q);
    }
}

/// If the last hop's constraint is exactly `u_last == u_i` (or `u_i ==
/// u_last`) for an earlier position `i` — possibly conjoined with other
/// terms — return `i`.
fn detect_close(q: &WalkQuery) -> Option<usize> {
    let last = q.hops.last()?.constraint.as_ref()?;
    let last_pos = q.hops.len();
    find_close_term(last, last_pos)
}

fn find_close_term(e: &Expr, last_pos: usize) -> Option<usize> {
    match e {
        Expr::Binary(BinOp::Eq, l, r) => match (l.as_ref(), r.as_ref()) {
            (Expr::WalkVertex(a), Expr::WalkVertex(b)) if *a == last_pos && *b < last_pos => {
                Some(*b)
            }
            (Expr::WalkVertex(a), Expr::WalkVertex(b)) if *b == last_pos && *a < last_pos => {
                Some(*a)
            }
            _ => None,
        },
        Expr::Binary(BinOp::And, l, r) => {
            find_close_term(l, last_pos).or_else(|| find_close_term(r, last_pos))
        }
        _ => None,
    }
}

/// Whether an expression references only walk positions (no attributes,
/// globals, or degrees) — such constraints are evaluable from ids alone.
pub fn is_pure_order_constraint(e: &Expr) -> bool {
    let mut pure = true;
    e.visit(&mut |n| {
        if matches!(
            n,
            Expr::Attr { .. }
                | Expr::AttrElem { .. }
                | Expr::Global(_)
                | Expr::Degree { .. }
                | Expr::NumVertices
        ) {
            pure = false;
        }
    });
    pure
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::HopSpec;
    use itg_gsa::expr::EdgeDir;

    fn hop(constraint: Option<Expr>) -> HopSpec {
        HopSpec {
            source: 0,
            dir: EdgeDir::Both,
            constraint,
        }
    }

    fn vertex_eq(a: usize, b: usize) -> Expr {
        Expr::bin(BinOp::Eq, Expr::WalkVertex(a), Expr::WalkVertex(b))
    }

    #[test]
    fn detects_tc_closing_constraint() {
        // 3 hops, last constrained u3 == u0 (TC's `u4 == u1`).
        let mut plan = TraversePlan {
            queries: vec![WalkQuery {
                op_id: 0,
                start_filter: None,
                hops: vec![hop(None), hop(None), hop(Some(vertex_eq(3, 0)))],
                actions: vec![],
                closes_to: None,
            }],
        };
        annotate_intersections(&mut plan);
        assert_eq!(plan.queries[0].closes_to, Some(0));
    }

    #[test]
    fn detects_close_inside_conjunction() {
        let c = Expr::bin(
            BinOp::And,
            Expr::bin(BinOp::Lt, Expr::WalkVertex(0), Expr::WalkVertex(1)),
            vertex_eq(2, 1),
        );
        let mut plan = TraversePlan {
            queries: vec![WalkQuery {
                op_id: 0,
                start_filter: None,
                hops: vec![hop(None), hop(Some(c))],
                actions: vec![],
                closes_to: None,
            }],
        };
        annotate_intersections(&mut plan);
        assert_eq!(plan.queries[0].closes_to, Some(1));
    }

    #[test]
    fn no_close_when_constraint_is_inequality() {
        let c = Expr::bin(BinOp::Lt, Expr::WalkVertex(1), Expr::WalkVertex(2));
        let mut plan = TraversePlan {
            queries: vec![WalkQuery {
                op_id: 0,
                start_filter: None,
                hops: vec![hop(None), hop(Some(c))],
                actions: vec![],
                closes_to: None,
            }],
        };
        annotate_intersections(&mut plan);
        assert_eq!(plan.queries[0].closes_to, None);
    }

    #[test]
    fn purity_classification() {
        assert!(is_pure_order_constraint(&vertex_eq(0, 1)));
        assert!(!is_pure_order_constraint(&Expr::Attr { pos: 0, attr: 1 }));
        assert!(!is_pure_order_constraint(&Expr::Degree {
            pos: 0,
            dir: EdgeDir::Out
        }));
    }
}
