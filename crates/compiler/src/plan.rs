//! Executable plan types produced by the compiler and interpreted by the
//! runtime engine.
//!
//! The formal representation of a query is the GSA algebra tree
//! ([`itg_gsa::plan::AlgebraNode`]); these types are the *lowered* form the
//! engine executes: walk specifications with per-hop constraints and
//! attached actions, plus per-vertex statement programs for Initialize and
//! Update.

use itg_gsa::accm::AccmOp;
use itg_gsa::expr::{EdgeDir, Expr};
use itg_gsa::value::PrimType;

/// The specialized accumulate lane an accumulator compiles to.
///
/// Selected once at plan-compile time (a pure function of the declared
/// `(op, prim)` pair), so the engine's Δ-walk accumulate path runs
/// monomorphic per-type cells instead of dispatching every contribution
/// through the generic [`itg_gsa::Value`] machinery. Every lane is
/// *bit-exact* with the generic path: the same combine/inverse/compare
/// operations in the same order, just without the enum boxing.
///
/// Anything outside the table below (Prod, `int`/`float` prims) falls back
/// to [`AccmLane::Generic`], which is the PR 5 code path unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccmLane {
    /// `Accm<long, SUM>` — wrapping i64 addition, exact inverse.
    SumI64,
    /// `Accm<double, SUM>` — IEEE f64 addition replayed in contribution
    /// order (non-associativity preserved; retraction adds `0.0 - v`).
    SumF64,
    /// `Accm<long, MIN>` — monoid lane with support counting.
    MinI64,
    /// `Accm<double, MIN>` — monoid lane via `total_cmp` (bitwise ties).
    MinF64,
    /// `Accm<long, MAX>`.
    MaxI64,
    /// `Accm<double, MAX>`.
    MaxF64,
    /// `Accm<bool, OR>` — the 1-byte existence lane (BFS/WCC frontiers).
    OrBool,
    /// `Accm<bool, AND>`.
    AndBool,
    /// The unspecialized `Value`-dispatch path.
    Generic,
}

impl AccmLane {
    /// Lane selection: the plan-compile-time mapping from a declared
    /// accumulator to its specialized lane (DESIGN.md §10.1).
    pub fn select(op: AccmOp, prim: PrimType) -> AccmLane {
        match (op, prim) {
            (AccmOp::Sum, PrimType::Long) => AccmLane::SumI64,
            (AccmOp::Sum, PrimType::Double) => AccmLane::SumF64,
            (AccmOp::Min, PrimType::Long) => AccmLane::MinI64,
            (AccmOp::Min, PrimType::Double) => AccmLane::MinF64,
            (AccmOp::Max, PrimType::Long) => AccmLane::MaxI64,
            (AccmOp::Max, PrimType::Double) => AccmLane::MaxF64,
            (AccmOp::Or, PrimType::Bool) => AccmLane::OrBool,
            (AccmOp::And, PrimType::Bool) => AccmLane::AndBool,
            _ => AccmLane::Generic,
        }
    }

    /// Whether this is a specialized (non-`Generic`) lane.
    pub fn is_specialized(&self) -> bool {
        !matches!(self, AccmLane::Generic)
    }
}

/// One hop of a walk: extend from walk position `source` along `dir`
/// adjacency; keep extensions satisfying `constraint` (which may reference
/// positions `0..=target`, where the new vertex is position `target`).
#[derive(Debug, Clone, PartialEq)]
pub struct HopSpec {
    pub source: usize,
    pub dir: EdgeDir,
    pub constraint: Option<Expr>,
}

/// Where a walk action writes.
#[derive(Debug, Clone, PartialEq)]
pub enum ActionTarget {
    /// A vertex accumulator: the target vertex is the walk position `pos`;
    /// `accm` indexes the symbol table's vertex accumulators.
    VertexAccm { pos: usize, accm: usize },
    /// A global accumulator by index.
    Global(usize),
}

/// An accumulate action attached to a walk: fires once per enumerated walk
/// of length `depth` whose condition holds, contributing `value` (with the
/// walk's multiplicity as sign) to the target.
#[derive(Debug, Clone, PartialEq)]
pub struct WalkAction {
    /// Walk length at which this action fires (= position count − 1).
    pub depth: usize,
    /// Residual condition (If conditions not foldable into hop
    /// constraints).
    pub cond: Option<Expr>,
    pub target: ActionTarget,
    pub op: AccmOp,
    pub prim: PrimType,
    pub value: Expr,
}

/// One walk query of Traverse: a chain/tree path of hops with actions.
#[derive(Debug, Clone, PartialEq)]
pub struct WalkQuery {
    /// Stable operator id for observability (see
    /// [`CompiledProgram::operator_labels`]); `0` means unassigned (plans
    /// built outside [`crate::compile`], e.g. in unit tests).
    pub op_id: u32,
    /// Start-vertex filter beyond `active = true` (If conditions at depth 0
    /// referencing only u1).
    pub start_filter: Option<Expr>,
    pub hops: Vec<HopSpec>,
    pub actions: Vec<WalkAction>,
    /// Multi-way-intersection optimization: if the final hop's constraint
    /// pins the new vertex to equal an earlier position (`u_{k+1} == u_i`),
    /// this records `i` and the engine closes the walk by membership check
    /// instead of scanning the final adjacency list.
    pub closes_to: Option<usize>,
}

impl WalkQuery {
    pub fn num_hops(&self) -> usize {
        self.hops.len()
    }

    /// Walk position `p`'s parent position (the hop source it was reached
    /// from); position 0 has no parent.
    pub fn parent(&self, p: usize) -> Option<usize> {
        if p == 0 {
            None
        } else {
            Some(self.hops[p - 1].source)
        }
    }

    /// The hop indexes on the path from position 0 to position `p`,
    /// in forward order — the path backward MS-BFS reverses for neighbor
    /// pruning.
    pub fn path_to(&self, p: usize) -> Vec<usize> {
        let mut path = Vec::new();
        let mut cur = p;
        while let Some(par) = self.parent(cur) {
            path.push(cur - 1);
            cur = par;
        }
        path.reverse();
        path
    }
}

/// One sub-query of the incremental Traverse (Rule ⑦): the walk with the
/// delta bound to one stream.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaSubQuery {
    /// Stable operator id for observability (see
    /// [`CompiledProgram::operator_labels`]); `0` means unassigned.
    pub op_id: u32,
    /// Index into `TraversePlan::queries`.
    pub query: usize,
    /// Which stream carries the delta: 0 = the vertex stream (attribute /
    /// activation changes), `j ≥ 1` = hop `j−1`'s edge stream.
    pub delta_stream: usize,
    /// For `delta_stream = j ≥ 1`: the hop indexes from the start to the
    /// delta hop (the pruning MS-BFS walks these in reverse).
    pub pruning_path: Vec<usize>,
}

/// Per-vertex statements (Initialize / Update bodies after Let
/// substitution). Expressions reference the vertex as walk position 0;
/// accumulator reads use attr indexes offset by the non-accm attr count
/// (see [`CompiledProgram::accm_attr_base`]).
#[derive(Debug, Clone, PartialEq)]
pub enum VStmt {
    /// Assign to the vertex's non-accm attribute `attr`.
    Assign { attr: usize, value: Expr },
    /// Accumulate into a global.
    AccumGlobal {
        global: usize,
        op: AccmOp,
        prim: PrimType,
        value: Expr,
    },
    If {
        cond: Expr,
        then_body: Vec<VStmt>,
        else_body: Vec<VStmt>,
    },
}

/// A per-vertex statement program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VertexProgram {
    pub stmts: Vec<VStmt>,
}

impl VertexProgram {
    /// Whether any statement (transitively) assigns `attr`.
    pub fn assigns(&self, attr: usize) -> bool {
        fn walk(stmts: &[VStmt], attr: usize) -> bool {
            stmts.iter().any(|s| match s {
                VStmt::Assign { attr: a, .. } => *a == attr,
                VStmt::If {
                    then_body,
                    else_body,
                    ..
                } => walk(then_body, attr) || walk(else_body, attr),
                VStmt::AccumGlobal { .. } => false,
            })
        }
        walk(&self.stmts, attr)
    }
}

/// The Traverse plan: a union of walk queries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraversePlan {
    pub queries: Vec<WalkQuery>,
}

/// Static facts about a program the engine's incremental scheduling needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProgramAnalysis {
    /// Traverse reads a degree: edge mutations then imply Δvs entries for
    /// the mutation endpoints even when no stored attribute changed.
    pub traverse_reads_degree: bool,
    /// Update reads a degree: degree-changed touched vertices must re-run
    /// Update.
    pub update_reads_degree: bool,
    /// Initialize reads a degree (unsupported for incremental runs).
    pub init_reads_degree: bool,
    /// Update reads global accumulators: a changed global invalidates every
    /// touched vertex.
    pub update_reads_globals: bool,
    /// Update accumulates into globals (unsupported for incremental runs).
    pub update_accumulates_globals: bool,
}

/// The full compiled program.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledProgram {
    pub symbols: itg_lnga::Symbols,
    pub init: VertexProgram,
    pub update: VertexProgram,
    pub traverse: TraversePlan,
    /// The incremental Traverse: Rule ⑦ sub-queries across all walk
    /// queries, in (query, delta_stream) order.
    pub delta_traverse: Vec<DeltaSubQuery>,
    /// The formal one-shot algebra plan `P_Q` (Traverse portion).
    pub algebra: itg_gsa::AlgebraNode,
    /// The formal incremental algebra plan `P_ΔQ`.
    pub algebra_delta: itg_gsa::AlgebraNode,
    /// Whether the program is safe for incremental execution (no deep
    /// attribute reads; see DESIGN.md §4.3). Always true for programs the
    /// compiler accepts with incrementalization enabled.
    pub incremental_safe: bool,
    /// The highest walk position whose attributes Update reads — engine
    /// uses this for scheduling (always 0 by construction).
    pub max_hops: usize,
    /// Static usage facts for the engine's incremental scheduling.
    pub analysis: ProgramAnalysis,
    /// The `L_NGA` source text this program was compiled from, when known
    /// ([`crate::compile_source`] sets it; direct [`crate::compile`] calls
    /// leave it empty). The engine's process transport ships this text to
    /// partition worker processes, which recompile it locally — compilation
    /// is deterministic, so the workers' plans (operator ids included)
    /// match the coordinator's.
    pub source: String,
}

impl CompiledProgram {
    /// Deterministic operator-id assignment for observability: one-shot
    /// walk query `i` gets id `i + 1`; Rule ⑦ sub-query `(q, j)` gets
    /// `(q + 1) · 16 + j` (a walk has well under 16 streams). Ids are
    /// stable across compilations of the same program, so profiles can be
    /// compared run to run and joined back to the algebra plan.
    pub fn assign_operator_ids(&mut self) {
        for (i, q) in self.traverse.queries.iter_mut().enumerate() {
            q.op_id = i as u32 + 1;
        }
        for sq in &mut self.delta_traverse {
            sq.op_id = (sq.query as u32 + 1) * 16 + sq.delta_stream as u32;
        }
    }

    /// Human-readable labels for every assigned operator id, used by
    /// `expt profile` to join span/counter measurements back to the plan:
    /// `Q0 ω (2 hops)` for one-shot walk queries, `ΔQ0 ω(Δvs)` /
    /// `ΔQ0 ω(Δes1)` for Rule ⑦ delta sub-queries.
    pub fn operator_labels(&self) -> Vec<(u32, String)> {
        let mut labels = Vec::new();
        for (i, q) in self.traverse.queries.iter().enumerate() {
            labels.push((q.op_id, format!("Q{i} ω ({} hops)", q.num_hops())));
        }
        for sq in &self.delta_traverse {
            let stream = if sq.delta_stream == 0 {
                "Δvs".to_string()
            } else {
                format!("Δes{}", sq.delta_stream)
            };
            labels.push((sq.op_id, format!("ΔQ{} ω({stream})", sq.query)));
        }
        labels
    }

    /// Per-vertex-accumulator lane selection (see [`AccmLane::select`]).
    /// Computed from the symbol table; the engine caches the result once
    /// per session, so lane dispatch never happens per tuple.
    pub fn vertex_lanes(&self) -> Vec<AccmLane> {
        self.symbols
            .accms
            .iter()
            .map(|a| AccmLane::select(a.op, a.prim))
            .collect()
    }

    /// Per-global-accumulator lane selection (see [`AccmLane::select`]).
    pub fn global_lanes(&self) -> Vec<AccmLane> {
        self.symbols
            .globals
            .iter()
            .map(|a| AccmLane::select(a.op, a.prim))
            .collect()
    }

    /// In Update-context expressions, accumulator `i` is addressed as
    /// attribute index `symbols.attrs.len() + i`. The engine's Update
    /// evaluation context resolves indexes past the non-accm columns into
    /// the accumulator columns.
    pub fn accm_attr_base(&self) -> usize {
        self.symbols.attrs.len()
    }
}
