//! Watts–Strogatz small-world graphs, used by the example applications
//! (social networks in the paper's introduction are small-world: high
//! clustering coefficient, short paths — the structures LCC and TC probe).

use itg_gsa::VertexId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generate an undirected Watts–Strogatz graph: a ring lattice over `n`
/// vertices where each vertex connects to its `k` nearest neighbors
/// (`k` even), with each edge rewired with probability `beta`.
/// Returns mirrored directed edges.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Vec<(VertexId, VertexId)> {
    assert!(k.is_multiple_of(2) && k < n, "k must be even and < n");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen: itg_gsa::FxHashSet<(VertexId, VertexId)> = itg_gsa::FxHashSet::default();
    let add = |a: VertexId, b: VertexId, seen: &mut itg_gsa::FxHashSet<(VertexId, VertexId)>| {
        if a != b {
            seen.insert((a.min(b), a.max(b)));
        }
    };
    for v in 0..n as VertexId {
        for j in 1..=(k / 2) as VertexId {
            let w = (v + j) % n as VertexId;
            if rng.gen::<f64>() < beta {
                // Rewire to a uniform random target.
                let mut t = rng.gen_range(0..n as VertexId);
                let mut tries = 0;
                while (t == v || seen.contains(&(v.min(t), v.max(t)))) && tries < 16 {
                    t = rng.gen_range(0..n as VertexId);
                    tries += 1;
                }
                add(v, t, &mut seen);
            } else {
                add(v, w, &mut seen);
            }
        }
    }
    let mut out = Vec::with_capacity(seen.len() * 2);
    for (a, b) in seen {
        out.push((a, b));
        out.push((b, a));
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_without_rewiring() {
        let edges = watts_strogatz(10, 4, 0.0, 1);
        // Ring lattice: 10 * 4 / 2 undirected edges, mirrored.
        assert_eq!(edges.len(), 40);
        // Vertex 0 connects to 1, 2, 8, 9.
        let n0: Vec<u64> = edges.iter().filter(|e| e.0 == 0).map(|e| e.1).collect();
        assert_eq!(n0, vec![1, 2, 8, 9]);
    }

    #[test]
    fn rewiring_keeps_graph_simple_and_mirrored() {
        let edges = watts_strogatz(100, 6, 0.3, 7);
        let set: std::collections::HashSet<_> = edges.iter().copied().collect();
        assert_eq!(set.len(), edges.len());
        for &(a, b) in &edges {
            assert!(set.contains(&(b, a)));
            assert_ne!(a, b);
        }
    }

    #[test]
    fn high_clustering_at_low_beta() {
        // A small-world graph at beta=0 has LCC = 0.5 for k=4 lattices.
        let edges = watts_strogatz(50, 4, 0.0, 3);
        let mut adj = vec![std::collections::HashSet::new(); 50];
        for &(a, b) in &edges {
            adj[a as usize].insert(b);
        }
        let mut tri = 0;
        for v in 0..50usize {
            for &x in &adj[v] {
                for &y in &adj[v] {
                    if x < y && adj[x as usize].contains(&y) {
                        tri += 1;
                    }
                }
            }
        }
        assert!(tri > 0, "lattice must contain triangles");
    }
}
