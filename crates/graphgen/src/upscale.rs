//! EvoGraph-style graph upscaling.
//!
//! The paper evaluates on `TWT_X`, the Twitter graph upscaled X times with
//! EvoGraph, which grows a graph while preserving its structural properties
//! by replaying a preferential-attachment-like edge-creation process over
//! the original topology. We implement the same idea: each upscale round
//! adds a copy of the vertex set and connects new vertices preferentially
//! to high-degree vertices of the existing graph, plus "community" edges
//! mirroring original edges between copies.

use itg_gsa::VertexId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Upscale `edges` over `n` vertices to approximately `factor` times the
/// edge count. Returns (new_n, new_edges). `factor` of 1 returns the input.
pub fn upscale(
    n: usize,
    edges: &[(VertexId, VertexId)],
    factor: usize,
    seed: u64,
) -> (usize, Vec<(VertexId, VertexId)>) {
    assert!(factor >= 1);
    if factor == 1 {
        return (n, edges.to_vec());
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut out: Vec<(VertexId, VertexId)> = edges.to_vec();
    let mut seen: itg_gsa::FxHashSet<(VertexId, VertexId)> = edges.iter().copied().collect();

    // Degree-weighted sampling table over the original vertices: an edge
    // endpoint list is itself a degree-proportional sampler.
    let endpoints: Vec<VertexId> = edges.iter().flat_map(|&(s, d)| [s, d]).collect();

    let mut total_n = n;
    for copy in 1..factor {
        let offset = (copy * n) as VertexId;
        total_n += n;
        // Mirror the original topology within the copy.
        for &(s, d) in edges {
            let e = (s + offset, d + offset);
            if seen.insert(e) {
                out.push(e);
            }
        }
        // Cross edges: each copied vertex that had edges attaches
        // preferentially into the existing graph (degree-weighted).
        let cross = edges.len() / 4;
        for _ in 0..cross {
            let u = endpoints[rng.gen_range(0..endpoints.len())] + offset;
            let v = endpoints[rng.gen_range(0..endpoints.len())];
            if u != v {
                let e = (u, v);
                if seen.insert(e) {
                    out.push(e);
                }
            }
        }
    }
    (total_n, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rmat::{generate, RmatConfig};

    #[test]
    fn factor_one_is_identity() {
        let edges = vec![(0, 1), (1, 2)];
        let (n, e) = upscale(3, &edges, 1, 9);
        assert_eq!(n, 3);
        assert_eq!(e, edges);
    }

    #[test]
    fn upscale_grows_proportionally() {
        let cfg = RmatConfig::paper_scale(10, 11);
        let base = generate(&cfg);
        let (n, e) = upscale(cfg.num_vertices(), &base, 4, 11);
        assert_eq!(n, cfg.num_vertices() * 4);
        assert!(e.len() >= base.len() * 4, "{} < {}", e.len(), base.len() * 4);
        // Simple graph preserved.
        let set: std::collections::HashSet<_> = e.iter().copied().collect();
        assert_eq!(set.len(), e.len());
        assert!(e.iter().all(|&(s, d)| (s as usize) < n && (d as usize) < n));
    }

    #[test]
    fn skew_is_preserved() {
        let cfg = RmatConfig::paper_scale(12, 13);
        let base = generate(&cfg);
        let (n, e) = upscale(cfg.num_vertices(), &base, 3, 13);
        let mut deg = vec![0u32; n];
        for &(s, _) in &e {
            deg[s as usize] += 1;
        }
        let max = *deg.iter().max().unwrap() as f64;
        let avg = e.len() as f64 / n as f64;
        assert!(max > avg * 4.0, "upscaled graph lost skew");
    }
}
