//! # itg-graphgen — synthetic graphs and mutation workloads
//!
//! Stands in for the paper's datasets and workload protocol (§6.1):
//! - [`rmat`]: the `RMAT_X` recursive-matrix generator.
//! - [`upscale`](crate::upscale()): EvoGraph-style upscaling (the `TWT_X` analogues).
//! - [`smallworld`]: Watts–Strogatz graphs for the example applications.
//! - [`workload`]: the 90/10 split with ratio- and size-controlled
//!   insertion/deletion batches.

pub mod rmat;
pub mod smallworld;
pub mod upscale;
pub mod workload;

pub use rmat::{generate, generate_undirected, RmatConfig};
pub use smallworld::watts_strogatz;
pub use upscale::upscale;
pub use workload::{canonical_undirected, BatchSpec, Workload};
