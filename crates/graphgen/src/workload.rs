//! The paper's mutation workload protocol (§6.1).
//!
//! Given a full edge list, 90% of the edges are sampled uniformly at random
//! as the initial graph G_0; insertion workloads draw from the held-out
//! 10%; deletion workloads sample uniformly from the currently-alive edges.
//! Batches mix insertions and deletions at a configurable ratio (default
//! 75:25, following LinkBench) and size (default 100k at paper scale).

use itg_gsa::VertexId;
use itg_store::{EdgeMutation, MutationBatch};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Workload generator state: the initial graph plus the pools that future
/// batches draw from.
#[derive(Debug)]
pub struct Workload {
    /// The sampled initial graph G_0 (undirected edges stored once; mirror
    /// with [`MutationBatch::mirrored`] / at load time as needed).
    pub initial: Vec<(VertexId, VertexId)>,
    /// Held-out edges available for insertion.
    insert_pool: Vec<(VertexId, VertexId)>,
    /// Currently alive edges (eligible for deletion).
    alive: Vec<(VertexId, VertexId)>,
    rng: SmallRng,
}

/// Configuration of one batch draw.
#[derive(Debug, Clone, Copy)]
pub struct BatchSpec {
    /// Total number of mutations in the batch.
    pub size: usize,
    /// Fraction of insertions, in percent (75 means 75:25).
    pub insert_pct: u32,
}

impl Default for BatchSpec {
    fn default() -> BatchSpec {
        BatchSpec {
            size: 100,
            insert_pct: 75,
        }
    }
}

impl Workload {
    /// Split `edges` into a 90% initial graph and a 10% insert pool.
    pub fn split(edges: &[(VertexId, VertexId)], seed: u64) -> Workload {
        Workload::split_frac(edges, 0.9, seed)
    }

    /// Split with an explicit initial fraction.
    pub fn split_frac(edges: &[(VertexId, VertexId)], frac: f64, seed: u64) -> Workload {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut shuffled = edges.to_vec();
        shuffled.shuffle(&mut rng);
        let cut = ((edges.len() as f64) * frac).round() as usize;
        let initial: Vec<_> = shuffled[..cut].to_vec();
        let insert_pool: Vec<_> = shuffled[cut..].to_vec();
        Workload {
            alive: initial.clone(),
            initial,
            insert_pool,
            rng,
        }
    }

    /// Remaining insertions available.
    pub fn insert_pool_len(&self) -> usize {
        self.insert_pool.len()
    }

    /// Draw the next mutation batch ΔG_t. Insertions come from the held-out
    /// pool; deletions sample the alive set uniformly. The batch shrinks if
    /// a pool runs dry.
    pub fn next_batch(&mut self, spec: BatchSpec) -> MutationBatch {
        let want_ins = (spec.size as u64 * spec.insert_pct as u64 / 100) as usize;
        let want_del = spec.size - want_ins;
        let mut edges = Vec::with_capacity(spec.size);
        for _ in 0..want_ins {
            let Some(e) = self.insert_pool.pop() else { break };
            edges.push(EdgeMutation::insert(e.0, e.1));
            self.alive.push(e);
        }
        for _ in 0..want_del {
            if self.alive.is_empty() {
                break;
            }
            let i = self.rng.gen_range(0..self.alive.len());
            let e = self.alive.swap_remove(i);
            edges.push(EdgeMutation::delete(e.0, e.1));
        }
        MutationBatch::new(edges)
    }

    /// Currently alive edge count.
    pub fn alive_len(&self) -> usize {
        self.alive.len()
    }
}

/// Deduplicate an undirected edge list down to one record per pair
/// (keeping (min, max)); useful before splitting so that a mutation acts on
/// the logical undirected edge.
pub fn canonical_undirected(edges: &[(VertexId, VertexId)]) -> Vec<(VertexId, VertexId)> {
    let mut seen = itg_gsa::FxHashSet::default();
    let mut out = Vec::new();
    for &(a, b) in edges {
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if seen.insert(key) {
            out.push(key);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges(n: u64) -> Vec<(VertexId, VertexId)> {
        (0..n).map(|i| (i, (i + 1) % n)).collect()
    }

    #[test]
    fn split_is_90_10() {
        let w = Workload::split(&edges(1000), 1);
        assert_eq!(w.initial.len(), 900);
        assert_eq!(w.insert_pool_len(), 100);
    }

    #[test]
    fn batch_respects_ratio() {
        let mut w = Workload::split(&edges(1000), 2);
        let b = w.next_batch(BatchSpec {
            size: 40,
            insert_pct: 75,
        });
        assert_eq!(b.len(), 40);
        assert_eq!(b.inserts().count(), 30);
        assert_eq!(b.deletes().count(), 10);
    }

    #[test]
    fn deletions_sample_alive_edges() {
        let mut w = Workload::split(&edges(100), 3);
        let before = w.alive_len();
        let b = w.next_batch(BatchSpec {
            size: 10,
            insert_pct: 0,
        });
        assert_eq!(b.deletes().count(), 10);
        assert_eq!(w.alive_len(), before - 10);
        // Deleted edges were alive (members of the initial graph here).
        for e in b.deletes() {
            assert!(w.initial.contains(&(e.src, e.dst)));
        }
    }

    #[test]
    fn insert_pool_exhaustion_shrinks_batch() {
        let mut w = Workload::split(&edges(100), 4); // pool of 10
        let b = w.next_batch(BatchSpec {
            size: 100,
            insert_pct: 100,
        });
        assert_eq!(b.inserts().count(), 10);
    }

    #[test]
    fn canonicalize_undirected() {
        let e = vec![(1, 2), (2, 1), (3, 3), (2, 3)];
        let c = canonical_undirected(&e);
        assert_eq!(c, vec![(1, 2), (2, 3)]);
    }
}
