//! RMAT synthetic graph generation (the paper's `RMAT_X` datasets are
//! generated with TrillionG using the recursive-matrix model; we use the
//! classic RMAT parameters a=0.57, b=0.19, c=0.19, d=0.05).
//!
//! `RMAT_X` in the paper has `2^X` edges over `2^{X-4}` vertices, i.e. an
//! average degree of 16. [`RmatConfig::paper_scale`] mirrors that ratio.

use itg_gsa::VertexId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// RMAT generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct RmatConfig {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Number of edges to generate.
    pub edges: usize,
    /// Quadrant probabilities (a + b + c + d must be ≈ 1).
    pub a: f64,
    pub b: f64,
    pub c: f64,
    pub seed: u64,
}

impl RmatConfig {
    /// The paper's `RMAT_X` shape: `2^x` edges over `2^{x-4}` vertices.
    pub fn paper_scale(x: u32, seed: u64) -> RmatConfig {
        assert!(x >= 5, "RMAT_X needs x >= 5");
        RmatConfig {
            scale: x - 4,
            edges: 1usize << x,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed,
        }
    }

    pub fn num_vertices(&self) -> usize {
        1usize << self.scale
    }
}

/// Generate a directed RMAT edge list. Self-loops and duplicates are
/// dropped (the paper models graphs as simple), so the output can contain
/// slightly fewer than `cfg.edges` edges.
pub fn generate(cfg: &RmatConfig) -> Vec<(VertexId, VertexId)> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut seen = itg_gsa::FxHashSet::default();
    let mut edges = Vec::with_capacity(cfg.edges);
    let d = 1.0 - cfg.a - cfg.b - cfg.c;
    assert!(d >= 0.0, "quadrant probabilities exceed 1");
    // Noise keeps the degree distribution from collapsing onto a grid.
    let mut attempts = 0usize;
    let max_attempts = cfg.edges * 8;
    while edges.len() < cfg.edges && attempts < max_attempts {
        attempts += 1;
        let (mut x0, mut x1) = (0u64, (1u64 << cfg.scale) - 1);
        let (mut y0, mut y1) = (0u64, (1u64 << cfg.scale) - 1);
        for _ in 0..cfg.scale {
            let r: f64 = rng.gen();
            let (right, down) = if r < cfg.a {
                (false, false)
            } else if r < cfg.a + cfg.b {
                (true, false)
            } else if r < cfg.a + cfg.b + cfg.c {
                (false, true)
            } else {
                (true, true)
            };
            let xm = (x0 + x1) / 2;
            let ym = (y0 + y1) / 2;
            if right {
                x0 = xm + 1;
            } else {
                x1 = xm;
            }
            if down {
                y0 = ym + 1;
            } else {
                y1 = ym;
            }
        }
        let (src, dst) = (y0, x0);
        if src != dst && seen.insert((src, dst)) {
            edges.push((src, dst));
        }
    }
    edges
}

/// Generate an undirected RMAT graph: each generated pair is mirrored.
pub fn generate_undirected(cfg: &RmatConfig) -> Vec<(VertexId, VertexId)> {
    let base = generate(cfg);
    let mut seen = itg_gsa::FxHashSet::default();
    let mut out = Vec::with_capacity(base.len() * 2);
    for (s, d) in base {
        let key = (s.min(d), s.max(d));
        if seen.insert(key) {
            out.push((s, d));
            out.push((d, s));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_ratio() {
        let cfg = RmatConfig::paper_scale(12, 1);
        assert_eq!(cfg.num_vertices(), 256);
        assert_eq!(cfg.edges, 4096);
    }

    #[test]
    fn generates_simple_directed_graph() {
        let cfg = RmatConfig::paper_scale(12, 42);
        let edges = generate(&cfg);
        assert!(edges.len() > 3000, "got only {} edges", edges.len());
        let mut set = std::collections::HashSet::new();
        for &(s, d) in &edges {
            assert_ne!(s, d, "self-loop");
            assert!((s as usize) < cfg.num_vertices());
            assert!((d as usize) < cfg.num_vertices());
            assert!(set.insert((s, d)), "duplicate edge");
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let cfg = RmatConfig::paper_scale(10, 7);
        assert_eq!(generate(&cfg), generate(&cfg));
        let cfg2 = RmatConfig { seed: 8, ..cfg };
        assert_ne!(generate(&cfg), generate(&cfg2));
    }

    #[test]
    fn skewed_degree_distribution() {
        let cfg = RmatConfig::paper_scale(14, 3);
        let edges = generate(&cfg);
        let mut deg = vec![0u32; cfg.num_vertices()];
        for &(s, _) in &edges {
            deg[s as usize] += 1;
        }
        let max = *deg.iter().max().unwrap();
        let avg = edges.len() as f64 / cfg.num_vertices() as f64;
        assert!(
            (max as f64) > avg * 4.0,
            "RMAT should be skewed: max {max}, avg {avg}"
        );
    }

    #[test]
    fn undirected_is_mirrored() {
        let cfg = RmatConfig::paper_scale(10, 5);
        let edges = generate_undirected(&cfg);
        let set: std::collections::HashSet<_> = edges.iter().copied().collect();
        assert_eq!(set.len(), edges.len());
        for &(s, d) in &edges {
            assert!(set.contains(&(d, s)), "missing mirror of ({s},{d})");
        }
    }
}
