//! Group-commit tests (DESIGN.md §9): concurrent appenders coalesce into
//! shared fsyncs without losing contiguity or the ack contract.
//!
//! - Concurrent appends from many threads produce a contiguous, complete,
//!   scannable log.
//! - A group-commit window amortizes fsyncs: the same 32-record history
//!   costs at least 2× fewer fsyncs with 4 concurrent committers than
//!   fsync-per-append (the CI smoke asserts the *fsync count*, which is
//!   deterministic, rather than flaky wall-clock).
//! - Killing the process mid-group-commit (`ITG_CRASH_AT`) recovers
//!   exactly the durable LSN prefix: every *acknowledged* append is in it,
//!   and unacknowledged ones past the crash point are not.

use itg_store::wal::{scan_dir, Wal, WalEntry, WalOptions};
use itg_store::{EdgeMutation, MutationBatch};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Barrier};

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("itg-group-commit-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A distinguishable batch entry so scans can prove which append wrote
/// which record.
fn batch_entry(thread: u64, seq: u64) -> WalEntry {
    WalEntry::Batch(MutationBatch::new(vec![EdgeMutation::insert(thread, seq)]))
}

const THREADS: u64 = 4;
const PER_THREAD: u64 = 8;

/// Run THREADS committers of PER_THREAD appends each and return the wal.
fn run_committers(dir: &Path, opts: WalOptions) -> Wal {
    let (wal, _) = Wal::open_with(dir, opts).unwrap();
    let barrier = Arc::new(Barrier::new(THREADS as usize));
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let wal = wal.clone();
            let barrier = barrier.clone();
            s.spawn(move || {
                barrier.wait();
                for i in 0..PER_THREAD {
                    wal.append(&batch_entry(t, i)).unwrap();
                }
            });
        }
    });
    wal
}

#[test]
fn concurrent_appends_are_contiguous_and_complete() {
    let dir = fresh_dir("contiguous");
    let wal = run_committers(
        &dir,
        WalOptions {
            segment_bytes: 256, // force rotations under concurrency too
            group_commit_us: 0,
        },
    );
    assert_eq!(wal.stats().flushed_records, THREADS * PER_THREAD);

    let scan = scan_dir(&dir).unwrap();
    assert!(!scan.torn_tail);
    assert_eq!(scan.records.len() as u64, THREADS * PER_THREAD);
    // LSNs are contiguous (scan_dir enforces it) and every (thread, seq)
    // pair appears exactly once, in per-thread order.
    let mut seen_seq = vec![Vec::new(); THREADS as usize];
    for rec in &scan.records {
        let WalEntry::Batch(b) = &rec.entry else {
            panic!("unexpected entry {:?}", rec.entry)
        };
        let m = &b.edges()[0];
        seen_seq[m.src as usize].push(m.dst);
    }
    for (t, seqs) in seen_seq.iter().enumerate() {
        let want: Vec<u64> = (0..PER_THREAD).collect();
        assert_eq!(seqs, &want, "thread {t} appends complete and ordered");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn group_commit_amortizes_fsyncs_at_depth_4() {
    // Serial baseline: one committer, no window — fsync per append.
    let serial_dir = fresh_dir("serial");
    let (serial, _) = Wal::open_with(
        &serial_dir,
        WalOptions {
            segment_bytes: 8 << 20,
            group_commit_us: 0,
        },
    )
    .unwrap();
    for i in 0..THREADS * PER_THREAD {
        serial.append(&batch_entry(i % THREADS, i / THREADS)).unwrap();
    }
    let serial_fsyncs = serial.stats().fsyncs;
    assert_eq!(serial_fsyncs, THREADS * PER_THREAD, "serial = fsync per append");

    // Grouped: 4 concurrent committers and a 5 ms leader window.
    let grouped_dir = fresh_dir("grouped");
    let wal = run_committers(
        &grouped_dir,
        WalOptions {
            segment_bytes: 8 << 20,
            group_commit_us: 5_000,
        },
    );
    let stats = wal.stats();
    assert_eq!(stats.flushed_records, THREADS * PER_THREAD);
    println!(
        "serial fsyncs: {serial_fsyncs}, grouped fsyncs: {} ({} records)",
        stats.fsyncs,
        stats.flushed_records
    );
    // The ≥2× acceptance bound, measured in fsyncs (deterministic, unlike
    // wall-clock): with 4 committers per window the leader flushes
    // multi-record groups, so the same history needs at most half the
    // syncs. In practice it is far fewer (~record count / window size).
    assert!(
        stats.fsyncs * 2 <= serial_fsyncs,
        "grouped fsyncs {} not ≥2× better than serial {serial_fsyncs}",
        stats.fsyncs
    );
    let sizes = wal.drain_group_sizes();
    assert_eq!(sizes.iter().sum::<u64>(), THREADS * PER_THREAD);
    assert!(
        sizes.iter().any(|&g| g >= 2),
        "at least one flush must have grouped multiple committers: {sizes:?}"
    );
    // Identical history either way.
    let a = scan_dir(&serial_dir).unwrap();
    let b = scan_dir(&grouped_dir).unwrap();
    let key = |s: &itg_store::wal::WalScan| {
        let mut v: Vec<(u64, u64)> = s
            .records
            .iter()
            .map(|r| match &r.entry {
                WalEntry::Batch(b) => {
                    let m = &b.edges()[0];
                    (m.src, m.dst)
                }
                _ => unreachable!(),
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(key(&a), key(&b));
    let _ = std::fs::remove_dir_all(&serial_dir);
    let _ = std::fs::remove_dir_all(&grouped_dir);
}

// ---------------------------------------------------------------
// Crash mid-group-commit: some committers acked, some not.
// ---------------------------------------------------------------

/// Child half of the partial-ack crash test. Each committer thread
/// journals every LSN it was *acknowledged* (append returned) to its own
/// side file before continuing; `ITG_CRASH_AT` kills the process inside a
/// flush, after the crash LSN's bytes are durable but while later queued
/// records — some of whose committers are still blocked in `append` — are
/// lost.
#[test]
#[ignore = "run by group_commit_partial_ack via child process"]
fn child_partial_ack() {
    let Ok(dir) = std::env::var("ITG_GC_DIR") else {
        return; // invoked directly (not as a child): nothing to do
    };
    let dir = PathBuf::from(dir);
    let (wal, _) = Wal::open_with(
        &dir,
        WalOptions {
            segment_bytes: 8 << 20,
            group_commit_us: 2_000,
        },
    )
    .unwrap();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let wal = wal.clone();
            let ack_path = dir.join(format!("acked-{t}.txt"));
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    let lsn = wal.append(&batch_entry(t, i)).unwrap();
                    // Journal the ack durably before proceeding, so the
                    // parent can trust every recorded LSN was acked.
                    let mut text = std::fs::read_to_string(&ack_path).unwrap_or_default();
                    text.push_str(&format!("{lsn}\n"));
                    std::fs::write(&ack_path, text).unwrap();
                }
            });
        }
    });
    // Reaching here means the crash LSN was never flushed — a test bug.
    std::process::abort();
}

#[test]
fn group_commit_partial_ack_crash_recovers_acked_prefix() {
    const CRASH_AT: u64 = 12;
    let dir = fresh_dir("partial-ack");
    std::fs::create_dir_all(&dir).unwrap();
    let exe = std::env::current_exe().unwrap();
    let status = std::process::Command::new(exe)
        .args(["child_partial_ack", "--exact", "--include-ignored", "--nocapture"])
        .env("ITG_GC_DIR", &dir)
        .env("ITG_CRASH_AT", CRASH_AT.to_string())
        .status()
        .unwrap();
    assert!(!status.success(), "child must die at the crash point");

    // The recovered log is exactly the acknowledged-or-durable prefix:
    // every LSN up to the crash point, nothing after.
    let scan = scan_dir(&dir).unwrap();
    let recovered: Vec<u64> = scan.records.iter().map(|r| r.lsn).collect();
    let want: Vec<u64> = (0..=CRASH_AT).collect();
    assert_eq!(recovered, want, "durable prefix is 0..=CRASH_AT exactly");

    // Every acked append is in the recovered prefix (the ack contract),
    // and the crash left most appends unacknowledged.
    let mut acked = Vec::new();
    for t in 0..THREADS {
        if let Ok(text) = std::fs::read_to_string(dir.join(format!("acked-{t}.txt"))) {
            acked.extend(text.lines().map(|l| l.parse::<u64>().unwrap()));
        }
    }
    for lsn in &acked {
        assert!(
            *lsn <= CRASH_AT,
            "acked lsn {lsn} missing from the recovered prefix"
        );
    }
    assert!(
        (acked.len() as u64) < THREADS * PER_THREAD,
        "crash at lsn {CRASH_AT} must leave some appends unacknowledged"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_group_commit_crash_truncates_to_acked_prefix() {
    // Same matrix point with ITG_CRASH_TORN: the crash record itself is
    // half-written, so recovery holds LSNs 0..CRASH_AT (exclusive).
    const CRASH_AT: u64 = 9;
    let dir = fresh_dir("partial-ack-torn");
    std::fs::create_dir_all(&dir).unwrap();
    let exe = std::env::current_exe().unwrap();
    let status = std::process::Command::new(exe)
        .args(["child_partial_ack", "--exact", "--include-ignored", "--nocapture"])
        .env("ITG_GC_DIR", &dir)
        .env("ITG_CRASH_AT", CRASH_AT.to_string())
        .env("ITG_CRASH_TORN", "true") // satellite: `true` accepted like `1`
        .status()
        .unwrap();
    assert!(!status.success());

    let scan = scan_dir(&dir).unwrap();
    assert!(scan.torn_tail, "half-written crash record reads as torn");
    let recovered: Vec<u64> = scan.records.iter().map(|r| r.lsn).collect();
    let want: Vec<u64> = (0..CRASH_AT).collect();
    assert_eq!(recovered, want, "torn record itself is not recovered");
    for t in 0..THREADS {
        if let Ok(text) = std::fs::read_to_string(dir.join(format!("acked-{t}.txt"))) {
            for lsn in text.lines().map(|l| l.parse::<u64>().unwrap()) {
                assert!(lsn < CRASH_AT, "acked lsn {lsn} lost by torn-tail truncation");
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
