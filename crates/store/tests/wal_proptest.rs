//! Property-based tests for the WAL record codec (DESIGN.md §9): for
//! arbitrary command sequences the on-disk image round-trips exactly, the
//! encoding is canonical (re-encoding a decoded log reproduces the bytes),
//! truncation at *any* byte offset is read as a torn tail rather than an
//! error, and corrupting any payload or CRC byte of a complete frame fails
//! loudly with a CRC mismatch.

use itg_store::wal::{decode_payload, encode_record, scan_bytes, WalEntry};
use itg_store::{CodecError, EdgeMutation, MutationBatch, WalError};
use proptest::prelude::*;

fn mutation() -> impl Strategy<Value = EdgeMutation> {
    (0u64..64, 0u64..64, any::<bool>()).prop_map(|(src, dst, ins)| {
        if ins {
            EdgeMutation::insert(src, dst)
        } else {
            EdgeMutation::delete(src, dst)
        }
    })
}

fn entry() -> impl Strategy<Value = WalEntry> {
    (0usize..4, proptest::collection::vec(mutation(), 0..12)).prop_map(|(kind, muts)| {
        match kind {
            0 => WalEntry::OneshotRun,
            1 => WalEntry::IncrementalRun,
            2 => WalEntry::Compact,
            _ => WalEntry::Batch(MutationBatch::new(muts)),
        }
    })
}

fn entries() -> impl Strategy<Value = Vec<WalEntry>> {
    proptest::collection::vec(entry(), 1..10)
}

/// Concatenated frames for a command sequence, LSN = index.
fn image(entries: &[WalEntry]) -> Vec<u8> {
    let mut out = Vec::new();
    for (lsn, e) in entries.iter().enumerate() {
        out.extend_from_slice(&encode_record(lsn as u64, e));
    }
    out
}

proptest! {
    #[test]
    fn roundtrip_preserves_every_record(es in entries()) {
        let scan = scan_bytes(&image(&es)).unwrap();
        prop_assert!(!scan.torn_tail);
        prop_assert_eq!(scan.records.len(), es.len());
        prop_assert_eq!(scan.next_lsn(), es.len() as u64);
        for (i, rec) in scan.records.iter().enumerate() {
            prop_assert_eq!(rec.lsn, i as u64);
            prop_assert_eq!(&rec.entry, &es[i]);
        }
    }

    #[test]
    fn encoding_is_canonical(es in entries()) {
        let bytes = image(&es);
        let scan = scan_bytes(&bytes).unwrap();
        let reencoded: Vec<u8> = scan
            .records
            .iter()
            .flat_map(|r| encode_record(r.lsn, &r.entry))
            .collect();
        prop_assert_eq!(reencoded, bytes);
    }

    #[test]
    fn truncation_at_any_offset_is_a_torn_tail_never_an_error(
        es in entries(),
        cut_seed in any::<usize>(),
    ) {
        let bytes = image(&es);
        let cut = cut_seed % (bytes.len() + 1);
        let scan = scan_bytes(&bytes[..cut]).unwrap();
        // The valid prefix is a frame boundary at or before the cut, and
        // the scan is torn exactly when the cut fell mid-frame.
        prop_assert!(scan.valid_bytes as usize <= cut);
        prop_assert_eq!(scan.torn_tail, scan.valid_bytes as usize != cut);
        // Every surviving record matches the original at its LSN.
        prop_assert!(scan.records.len() <= es.len());
        for (i, rec) in scan.records.iter().enumerate() {
            prop_assert_eq!(rec.lsn, i as u64);
            prop_assert_eq!(&rec.entry, &es[i]);
        }
    }

    #[test]
    fn corrupting_payload_or_crc_bytes_is_detected(
        es in entries(),
        which in any::<usize>(),
        flip in 1u8..255,
    ) {
        let mut bytes = image(&es);
        // Pick a byte inside some frame's payload-or-CRC region (skipping
        // the 4 `len` bytes, whose corruption legitimately reads as a torn
        // or oversized tail instead).
        let mut regions = Vec::new();
        let mut pos = 0usize;
        for e in &es {
            let frame = encode_record(0, e).len();
            regions.push(pos + 4..pos + frame);
            pos += frame;
        }
        let region = &regions[which % regions.len()];
        let target = region.start + (which / regions.len()) % region.len();
        bytes[target] ^= flip;
        prop_assert!(matches!(
            scan_bytes(&bytes),
            Err(WalError::Corrupt(CodecError::Crc { .. }))
        ));
    }
}

#[test]
fn payload_decode_rejects_unknown_tag() {
    let frame = encode_record(0, &WalEntry::Compact);
    let mut payload = frame[4..frame.len() - 4].to_vec();
    payload[3] = 0x7F; // tag byte
    assert!(matches!(
        decode_payload(&payload),
        Err(CodecError::BadTag { .. })
    ));
}
