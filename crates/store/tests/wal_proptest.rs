//! Property-based tests for the WAL record codec and the segmented layout
//! (DESIGN.md §9): for arbitrary command sequences the on-disk image
//! round-trips exactly, the encoding is canonical (re-encoding a decoded
//! log reproduces the bytes), truncation at *any* byte offset is read as a
//! torn tail rather than an error, and corrupting any payload or CRC byte
//! of a complete frame fails loudly with a CRC mismatch. The multi-segment
//! properties run the same histories through real directories with tiny
//! `segment_bytes` so every invariant also holds *across* segment
//! boundaries: round-trip, newest-segment truncation tolerated at any
//! offset, corruption detected in any segment.

use itg_store::wal::{
    decode_payload, encode_record, scan_bytes, scan_dir, Wal, WalOptions,
};
use itg_store::wal::WalEntry;
use itg_store::{CodecError, EdgeMutation, MutationBatch, WalError};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn mutation() -> impl Strategy<Value = EdgeMutation> {
    (0u64..64, 0u64..64, any::<bool>()).prop_map(|(src, dst, ins)| {
        if ins {
            EdgeMutation::insert(src, dst)
        } else {
            EdgeMutation::delete(src, dst)
        }
    })
}

fn entry() -> impl Strategy<Value = WalEntry> {
    (0usize..4, proptest::collection::vec(mutation(), 0..12)).prop_map(|(kind, muts)| {
        match kind {
            0 => WalEntry::OneshotRun,
            1 => WalEntry::IncrementalRun,
            2 => WalEntry::Compact,
            _ => WalEntry::Batch(MutationBatch::new(muts)),
        }
    })
}

fn entries() -> impl Strategy<Value = Vec<WalEntry>> {
    proptest::collection::vec(entry(), 1..10)
}

/// Concatenated frames for a command sequence, LSN = index.
fn image(entries: &[WalEntry]) -> Vec<u8> {
    let mut out = Vec::new();
    for (lsn, e) in entries.iter().enumerate() {
        out.extend_from_slice(&encode_record(lsn as u64, e));
    }
    out
}

proptest! {
    #[test]
    fn roundtrip_preserves_every_record(es in entries()) {
        let scan = scan_bytes(&image(&es)).unwrap();
        prop_assert!(!scan.torn_tail);
        prop_assert_eq!(scan.records.len(), es.len());
        prop_assert_eq!(scan.next_lsn(), es.len() as u64);
        for (i, rec) in scan.records.iter().enumerate() {
            prop_assert_eq!(rec.lsn, i as u64);
            prop_assert_eq!(&rec.entry, &es[i]);
        }
    }

    #[test]
    fn encoding_is_canonical(es in entries()) {
        let bytes = image(&es);
        let scan = scan_bytes(&bytes).unwrap();
        let reencoded: Vec<u8> = scan
            .records
            .iter()
            .flat_map(|r| encode_record(r.lsn, &r.entry))
            .collect();
        prop_assert_eq!(reencoded, bytes);
    }

    #[test]
    fn truncation_at_any_offset_is_a_torn_tail_never_an_error(
        es in entries(),
        cut_seed in any::<usize>(),
    ) {
        let bytes = image(&es);
        let cut = cut_seed % (bytes.len() + 1);
        let scan = scan_bytes(&bytes[..cut]).unwrap();
        // The valid prefix is a frame boundary at or before the cut, and
        // the scan is torn exactly when the cut fell mid-frame.
        prop_assert!(scan.valid_bytes as usize <= cut);
        prop_assert_eq!(scan.torn_tail, scan.valid_bytes as usize != cut);
        // Every surviving record matches the original at its LSN.
        prop_assert!(scan.records.len() <= es.len());
        for (i, rec) in scan.records.iter().enumerate() {
            prop_assert_eq!(rec.lsn, i as u64);
            prop_assert_eq!(&rec.entry, &es[i]);
        }
    }

    #[test]
    fn corrupting_payload_or_crc_bytes_is_detected(
        es in entries(),
        which in any::<usize>(),
        flip in 1u8..255,
    ) {
        let mut bytes = image(&es);
        // Pick a byte inside some frame's payload-or-CRC region (skipping
        // the 4 `len` bytes, whose corruption legitimately reads as a torn
        // or oversized tail instead).
        let mut regions = Vec::new();
        let mut pos = 0usize;
        for e in &es {
            let frame = encode_record(0, e).len();
            regions.push(pos + 4..pos + frame);
            pos += frame;
        }
        let region = &regions[which % regions.len()];
        let target = region.start + (which / regions.len()) % region.len();
        bytes[target] ^= flip;
        prop_assert!(matches!(
            scan_bytes(&bytes),
            Err(WalError::Corrupt(CodecError::Crc { .. }))
        ));
    }
}

// ---------------------------------------------------------------
// Multi-segment properties (real directories, tiny segment_bytes).
// ---------------------------------------------------------------

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh scratch directory per proptest case (cases run concurrently).
fn fresh_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "itg-wal-prop-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Write `es` through a real appender with the given segment bound and
/// return the directory.
fn write_segmented(es: &[WalEntry], segment_bytes: u64) -> PathBuf {
    let dir = fresh_dir();
    let opts = WalOptions {
        segment_bytes,
        group_commit_us: 0,
    };
    let (wal, _) = Wal::open_with(&dir, opts).unwrap();
    for e in es {
        wal.append(e).unwrap();
    }
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tiny_segments_roundtrip_across_boundaries(
        es in entries(),
        seg_bytes in 16u64..160,
    ) {
        let dir = write_segmented(&es, seg_bytes);
        let scan = scan_dir(&dir).unwrap();
        prop_assert!(!scan.torn_tail);
        prop_assert_eq!(scan.records.len(), es.len());
        for (i, rec) in scan.records.iter().enumerate() {
            prop_assert_eq!(rec.lsn, i as u64);
            prop_assert_eq!(&rec.entry, &es[i]);
        }
        // Reopening resumes appends at the right LSN in the live segment.
        let (wal, reopen) = Wal::open_with(
            &dir,
            WalOptions { segment_bytes: seg_bytes, group_commit_us: 0 },
        ).unwrap();
        prop_assert_eq!(reopen.next_lsn(), es.len() as u64);
        prop_assert_eq!(wal.append(&WalEntry::Compact).unwrap(), es.len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn newest_segment_truncation_is_tolerated_at_any_offset(
        es in entries(),
        seg_bytes in 16u64..160,
        cut_seed in any::<usize>(),
    ) {
        let dir = write_segmented(&es, seg_bytes);
        let scan = scan_dir(&dir).unwrap();
        let last = scan.segments.last().unwrap();
        let path = dir.join(&last.file);
        let full = std::fs::read(&path).unwrap();
        let cut = cut_seed % (full.len() + 1);
        std::fs::write(&path, &full[..cut]).unwrap();

        let cut_scan = scan_dir(&dir).unwrap();
        // Records from older segments all survive; the newest segment
        // keeps its frame-aligned prefix and reads torn iff the cut fell
        // mid-frame.
        let older: u64 = scan.records.len() as u64 - last.records;
        prop_assert!(cut_scan.records.len() as u64 >= older);
        prop_assert_eq!(cut_scan.torn_tail, cut_scan.valid_bytes as usize != cut);
        for (i, rec) in cut_scan.records.iter().enumerate() {
            prop_assert_eq!(rec.lsn, i as u64);
            prop_assert_eq!(&rec.entry, &es[i]);
        }
        // And the appender itself accepts the damage, truncates, resumes.
        let (wal, reopen) = Wal::open_with(
            &dir,
            WalOptions { segment_bytes: seg_bytes, group_commit_us: 0 },
        ).unwrap();
        let resume_at = reopen.next_lsn();
        prop_assert_eq!(resume_at, cut_scan.records.len() as u64);
        prop_assert_eq!(wal.append(&WalEntry::OneshotRun).unwrap(), resume_at);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_in_any_segment_is_detected(
        es in entries(),
        seg_bytes in 16u64..160,
        which in any::<usize>(),
        flip in 1u8..255,
    ) {
        let dir = write_segmented(&es, seg_bytes);
        let scan = scan_dir(&dir).unwrap();
        // Flip a payload-or-CRC byte in ANY segment (len-field bytes are
        // excluded: in the final segment their corruption legitimately
        // reads as a torn tail). Corrupting a non-final segment must fail
        // even where a final segment would tolerate damage.
        let mut regions = Vec::new(); // (segment file, frame-relative range)
        for seg in &scan.segments {
            let mut pos = 0usize;
            for rec in &scan.records[seg.start_lsn as usize..(seg.start_lsn + seg.records) as usize] {
                let frame = encode_record(rec.lsn, &rec.entry).len();
                regions.push((seg.file.clone(), pos + 4..pos + frame));
                pos += frame;
            }
        }
        prop_assert!(!regions.is_empty()); // entries() yields >= 1 record
        let (file, region) = &regions[which % regions.len()];
        let target = region.start + (which / regions.len().max(1)) % region.len();
        let path = dir.join(file);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[target] ^= flip;
        std::fs::write(&path, &bytes).unwrap();
        prop_assert!(matches!(
            scan_dir(&dir),
            Err(WalError::Corrupt(CodecError::Crc { .. }))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn torn_frame_in_a_non_final_segment_is_an_error_not_a_tail() {
    // Force one record per segment, then truncate the FIRST segment
    // mid-frame: unlike the newest segment, this must scan as damage.
    let es = vec![WalEntry::OneshotRun, WalEntry::IncrementalRun, WalEntry::Compact];
    let dir = write_segmented(&es, 1);
    let scan = scan_dir(&dir).unwrap();
    assert!(scan.segments.len() >= 3);
    let first = dir.join(&scan.segments[0].file);
    let full = std::fs::read(&first).unwrap();
    std::fs::write(&first, &full[..full.len() - 1]).unwrap();
    assert!(matches!(scan_dir(&dir), Err(WalError::Segment(_))));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn payload_decode_rejects_unknown_tag() {
    let frame = encode_record(0, &WalEntry::Compact);
    let mut payload = frame[4..frame.len() - 4].to_vec();
    payload[3] = 0x7F; // tag byte
    assert!(matches!(
        decode_payload(&payload),
        Err(CodecError::BadTag { .. })
    ));
}
