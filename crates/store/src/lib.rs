//! # itg-store — the dynamic graph store (paper §5.5)
//!
//! A delta-based store for dynamic graphs under analytics workloads:
//!
//! - [`edge_store`]: the base graph `G_0` and every mutation batch `ΔG_t`
//!   as separate CSR-like segments (insertions and deletions in separate
//!   files), lazy deletion masking, time-travel `Old`/`New` views, and
//!   reverse adjacency for backward MS-BFS.
//! - [`vertex_store`]: per-(snapshot, superstep) after-image delta chains
//!   for vertex attribute values, with the overlay invariant the engine's
//!   read path relies on.
//! - [`maintenance`]: the cost-based merge strategy (and the NoMerge /
//!   PeriodicMerge baselines of Figure 17).
//! - [`pager`]: the LRU page buffer pool; all reads are byte-accounted.
//! - [`stats`]: shared IO / network / work counters.
//! - [`mutation`]: `ΔG` batch representation.
//!
//! Durability (write-ahead logging + snapshot recovery) lives in:
//!
//! - [`codec`]: the little-endian byte codec shared by WAL records and
//!   snapshot payloads, plus the CRC-32 used to detect torn/corrupt frames.
//! - [`wal`]: the segmented, group-committing write-ahead log of engine
//!   commands (`wal-<start_lsn>.log` segments, rotation + GC).
//! - [`snapshot`]: the checksummed snapshot file container and value codecs.
//! - [`delta`]: the rsync-style binary diff backing incremental (delta-only)
//!   snapshots.
//! - [`manifest`]: `manifest.json`, binding snapshot epochs (full or delta)
//!   to the WAL LSN range each snapshot covers. The manifest write is the
//!   checkpoint commit point.
//! - [`fsutil`]: directory-fsync helper shared by the atomic writers.

pub mod codec;
pub mod delta;
pub mod edge_store;
pub mod fsutil;
pub mod maintenance;
pub mod manifest;
pub mod mutation;
pub mod pager;
pub mod snapshot;
pub mod stats;
pub mod vertex_store;
pub mod wal;

pub use codec::{crc32, CodecError, CodecResult, Reader, Writer};
pub use edge_store::{BatchReceipt, CsrSegment, DeltaSegment, EdgeStore, EdgeStoreDir, View};
pub use maintenance::{ChainSummary, MaintenancePolicy};
pub use manifest::{Manifest, ManifestError, SnapshotEntry, SnapshotKind, MANIFEST_FILE};
pub use mutation::{EdgeMutation, MutationBatch};
pub use pager::{BufferPool, PageId, DEFAULT_PAGE_SIZE};
pub use snapshot::SnapshotError;
pub use stats::{IoSnapshot, IoStats};
pub use vertex_store::{AttrStore, Run, WindowBase};
pub use wal::{
    scan_dir, segment_file_name, SegmentInfo, Wal, WalEntry, WalError, WalOptions, WalRecord,
    WalScan, WalStats, WAL_FILE,
};
