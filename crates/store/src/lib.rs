//! # itg-store — the dynamic graph store (paper §5.5)
//!
//! A delta-based store for dynamic graphs under analytics workloads:
//!
//! - [`edge_store`]: the base graph `G_0` and every mutation batch `ΔG_t`
//!   as separate CSR-like segments (insertions and deletions in separate
//!   files), lazy deletion masking, time-travel `Old`/`New` views, and
//!   reverse adjacency for backward MS-BFS.
//! - [`vertex_store`]: per-(snapshot, superstep) after-image delta chains
//!   for vertex attribute values, with the overlay invariant the engine's
//!   read path relies on.
//! - [`maintenance`]: the cost-based merge strategy (and the NoMerge /
//!   PeriodicMerge baselines of Figure 17).
//! - [`pager`]: the LRU page buffer pool; all reads are byte-accounted.
//! - [`stats`]: shared IO / network / work counters.
//! - [`mutation`]: `ΔG` batch representation.

pub mod edge_store;
pub mod maintenance;
pub mod mutation;
pub mod pager;
pub mod stats;
pub mod vertex_store;

pub use edge_store::{CsrSegment, DeltaSegment, EdgeStore, EdgeStoreDir, View};
pub use maintenance::{ChainSummary, MaintenancePolicy};
pub use mutation::{EdgeMutation, MutationBatch};
pub use pager::{BufferPool, PageId, DEFAULT_PAGE_SIZE};
pub use stats::{IoSnapshot, IoStats};
pub use vertex_store::{AttrStore, Run};
