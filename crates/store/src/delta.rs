//! Binary delta codec for incremental snapshots (DESIGN.md §9).
//!
//! A delta snapshot stores the byte difference between the previous
//! snapshot's state image (the *base*) and the current one (the
//! *output*), so checkpoint bytes scale with the change volume rather
//! than the graph size — the DBSP "persist deltas, not images" argument
//! applied to checkpointing.
//!
//! The scheme is the rsync/librsync one, simplified for a local base we
//! can read at encode time:
//!
//! 1. Split the base into fixed-size blocks and index them by a weak
//!    rolling hash (adler-style: two u16 running sums packed in a u32).
//! 2. Slide a window over the output. On a weak-hash hit, confirm with a
//!    byte compare (no strong-hash-collision risk), then greedily extend
//!    the match forward past the block boundary.
//! 3. Emit `Copy { base_off, len }` for matches and `Literal(bytes)` for
//!    everything between them, merging adjacent copies.
//!
//! The document header pins the base and output lengths *and* CRCs, so
//! [`apply`] fails loudly when composed against the wrong base — a delta
//! chain that lost a link cannot silently produce a plausible image.
//!
//! ## Document layout (little-endian)
//!
//! ```text
//! [magic u32 = 0x17B0_DE17] [ver u8 = 1]
//! [base_len u64] [base_crc u32] [out_len u64] [out_crc u32] [n_ops u64]
//! then per op: [tag u8 = 1 Copy | 2 Literal]
//!   Copy:    [base_off u64] [len u64]
//!   Literal: [len u64] [bytes…]
//! ```

use crate::codec::{crc32, CodecError, CodecResult, Reader, Writer};
use std::collections::HashMap;

/// Delta document magic.
pub const DELTA_MAGIC: u32 = 0x17B0_DE17;
/// Delta document version; bumped on any layout change.
pub const DELTA_VERSION: u8 = 1;

const TAG_COPY: u8 = 1;
const TAG_LITERAL: u8 = 2;

/// Pick a base block size: small enough to find matches in small images,
/// large enough that the hash index stays cheap on big ones.
fn block_size(base_len: usize) -> usize {
    // Session snapshots interleave many small structures (length-prefixed
    // lists, per-partition columns of a few hundred bytes): a fine block
    // lets a structure that merely *moved* — shifted by an append earlier
    // in the image — still match its base block. The index stays bounded
    // at base_len/1024 entries once images grow past 32 KiB.
    (base_len / 1024).clamp(32, 4096)
}

/// Weak rolling hash over `block`: adler-style `(a, s2)` u16 sums packed
/// into a u32. Rollable one byte at a time (see the scan loop).
fn weak_hash(block: &[u8]) -> u32 {
    let mut a = 0u16;
    let mut s2 = 0u16;
    for &x in block {
        a = a.wrapping_add(x as u16);
        s2 = s2.wrapping_add(a);
    }
    ((s2 as u32) << 16) | a as u32
}

enum Op {
    Copy { base_off: u64, len: u64 },
    Literal { start: usize, end: usize },
}

/// Encode the byte delta that transforms `base` into `out`.
pub fn encode(base: &[u8], out: &[u8]) -> Vec<u8> {
    let b = block_size(base.len());
    // Index base blocks by weak hash. Later blocks win ties; any block
    // with the same bytes is as good as another.
    let mut index: HashMap<u32, Vec<usize>> = HashMap::new();
    if !base.is_empty() {
        let mut off = 0;
        while off + b <= base.len() {
            index.entry(weak_hash(&base[off..off + b])).or_default().push(off);
            off += b;
        }
    }

    let mut ops: Vec<Op> = Vec::new();
    let mut lit_start = 0usize; // start of the pending literal run
    let mut i = 0usize; // window start
    let mut rolling: Option<u32> = None;
    while i + b <= out.len() {
        // `rolling` is only carried across non-match steps; both exits of
        // this iteration reassign it, so no need to store the fresh hash.
        let h = match rolling {
            Some(h) => h,
            None => weak_hash(&out[i..i + b]),
        };
        let mut matched = None;
        if let Some(cands) = index.get(&h) {
            for &base_off in cands {
                if base[base_off..base_off + b] == out[i..i + b] {
                    matched = Some(base_off);
                    break;
                }
            }
        }
        if let Some(base_off) = matched {
            // Extend the confirmed block match forward greedily.
            let mut len = b;
            while base_off + len < base.len()
                && i + len < out.len()
                && base[base_off + len] == out[i + len]
            {
                len += 1;
            }
            if lit_start < i {
                ops.push(Op::Literal { start: lit_start, end: i });
            }
            // Merge with a contiguous preceding copy.
            match ops.last_mut() {
                Some(Op::Copy { base_off: po, len: pl })
                    if *po + *pl == base_off as u64 && lit_start == i =>
                {
                    *pl += len as u64;
                }
                _ => ops.push(Op::Copy {
                    base_off: base_off as u64,
                    len: len as u64,
                }),
            }
            i += len;
            lit_start = i;
            rolling = None;
        } else {
            // Roll the hash one byte forward: drop out[i], admit out[i+b].
            if i + b < out.len() {
                let x_out = out[i] as u16;
                let x_in = out[i + b] as u16;
                let a = (h & 0xFFFF) as u16;
                let s2 = (h >> 16) as u16;
                let a2 = a.wrapping_sub(x_out).wrapping_add(x_in);
                let s22 = s2.wrapping_sub((b as u16).wrapping_mul(x_out)).wrapping_add(a2);
                rolling = Some(((s22 as u32) << 16) | a2 as u32);
            } else {
                rolling = None;
            }
            i += 1;
        }
    }
    if lit_start < out.len() {
        ops.push(Op::Literal {
            start: lit_start,
            end: out.len(),
        });
    }

    let mut w = Writer::new();
    w.u32(DELTA_MAGIC);
    w.u8(DELTA_VERSION);
    w.u64(base.len() as u64);
    w.u32(crc32(base));
    w.u64(out.len() as u64);
    w.u32(crc32(out));
    w.u64(ops.len() as u64);
    for op in &ops {
        match op {
            Op::Copy { base_off, len } => {
                w.u8(TAG_COPY);
                w.u64(*base_off);
                w.u64(*len);
            }
            Op::Literal { start, end } => {
                w.u8(TAG_LITERAL);
                w.u64((end - start) as u64);
                w.buf.extend_from_slice(&out[*start..*end]);
            }
        }
    }
    w.buf
}

/// Apply a delta document to `base`, reproducing the output image
/// byte-exactly. Fails if the document is malformed or if `base` is not
/// the image the delta was encoded against (length + CRC pinned).
pub fn apply(base: &[u8], delta: &[u8]) -> CodecResult<Vec<u8>> {
    let mut r = Reader::new(delta);
    let magic = r.u32()?;
    if magic != DELTA_MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    let ver = r.u8()?;
    if ver != DELTA_VERSION {
        return Err(CodecError::BadVersion(ver));
    }
    let base_len = r.u64()? as usize;
    let base_crc = r.u32()?;
    let out_len = r.u64()? as usize;
    let out_crc = r.u32()?;
    if base_len != base.len() {
        return Err(CodecError::Truncated);
    }
    let actual = crc32(base);
    if base_crc != actual {
        return Err(CodecError::Crc {
            expected: base_crc,
            actual,
        });
    }
    let n_ops = r.u64()?;
    let mut out = Vec::with_capacity(out_len);
    for _ in 0..n_ops {
        match r.u8()? {
            TAG_COPY => {
                let off = r.u64()? as usize;
                let len = r.u64()? as usize;
                let end = off.checked_add(len).ok_or(CodecError::Truncated)?;
                if end > base.len() {
                    return Err(CodecError::Truncated);
                }
                out.extend_from_slice(&base[off..end]);
            }
            TAG_LITERAL => {
                let len = r.u64()? as usize;
                out.extend_from_slice(r.bytes(len)?);
            }
            tag => return Err(CodecError::BadTag { what: "delta op", tag }),
        }
    }
    r.finish()?;
    if out.len() != out_len {
        return Err(CodecError::Truncated);
    }
    let actual = crc32(&out);
    if out_crc != actual {
        return Err(CodecError::Crc {
            expected: out_crc,
            actual,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    fn roundtrip(base: &[u8], out: &[u8]) -> usize {
        let d = encode(base, out);
        assert_eq!(apply(base, &d).unwrap(), out, "delta must reproduce out");
        d.len()
    }

    fn random_bytes(rng: &mut SmallRng, n: usize) -> Vec<u8> {
        (0..n).map(|_| (rng.next_u64() & 0xFF) as u8).collect()
    }

    #[test]
    fn identical_images_compress_to_one_copy() {
        let mut rng = SmallRng::seed_from_u64(1);
        let img = random_bytes(&mut rng, 50_000);
        let d = roundtrip(&img, &img);
        assert!(d < 100, "identical 50kB image became {d}B delta");
    }

    #[test]
    fn small_edit_yields_small_delta() {
        let mut rng = SmallRng::seed_from_u64(2);
        let base = random_bytes(&mut rng, 40_000);
        let mut out = base.clone();
        out[12_345] ^= 0x5A;
        out.splice(30_000..30_000, [1u8, 2, 3].iter().copied());
        let d = roundtrip(&base, &out);
        assert!(
            d < out.len() / 4,
            "3-byte insert + 1-byte flip in 40kB gave {d}B delta"
        );
    }

    #[test]
    fn disjoint_images_fall_back_to_literal() {
        let mut rng = SmallRng::seed_from_u64(3);
        let base = random_bytes(&mut rng, 5_000);
        let out = random_bytes(&mut rng, 7_000);
        let d = roundtrip(&base, &out);
        assert!(d >= out.len(), "disjoint data cannot shrink");
        assert!(d < out.len() + 256, "literal overhead must stay small");
    }

    #[test]
    fn empty_edges() {
        roundtrip(&[], &[]);
        roundtrip(&[], b"fresh");
        roundtrip(b"gone", &[]);
        roundtrip(&[0u8; 3], &[0u8; 3]); // below block size
    }

    #[test]
    fn wrong_base_is_rejected() {
        let base = vec![7u8; 10_000];
        let out = vec![9u8; 10_000];
        let d = encode(&base, &out);
        let mut wrong = base.clone();
        wrong[0] ^= 1;
        assert!(matches!(apply(&wrong, &d), Err(CodecError::Crc { .. })));
        assert_eq!(apply(&base[..999], &d), Err(CodecError::Truncated));
    }

    #[test]
    fn corrupt_document_is_rejected() {
        let base = vec![1u8; 4096];
        let out = vec![2u8; 4096];
        let mut d = encode(&base, &out);
        assert!(apply(&base, &[]).is_err());
        d[0] ^= 0xFF;
        assert!(matches!(apply(&base, &d), Err(CodecError::BadMagic(_))));
    }

    #[test]
    fn random_mutation_histories_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(0xD17A);
        let mut img = random_bytes(&mut rng, 20_000);
        for _ in 0..16 {
            let mut next = img.clone();
            // A few scattered point edits plus one splice, like a
            // state image after a small mutation batch.
            for _ in 0..8 {
                let at = (rng.next_u64() as usize) % next.len();
                next[at] = (rng.next_u64() & 0xFF) as u8;
            }
            let at = (rng.next_u64() as usize) % next.len();
            let ins_len = (rng.next_u64() % 40) as usize;
            let ins = random_bytes(&mut rng, ins_len);
            next.splice(at..at, ins.iter().copied());
            let d = roundtrip(&img, &next);
            assert!(d < next.len(), "small edits must beat a full rewrite");
            img = next;
        }
    }
}
