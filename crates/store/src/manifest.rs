//! The durability manifest: `manifest.json` in a WAL directory binds each
//! snapshot epoch to the WAL position it covers, so recovery is
//! "load the latest snapshot, then replay the WAL tail from
//! `wal_start`" (DESIGN.md §9).
//!
//! The manifest is tiny and human-inspectable, so it is JSON rather than
//! the binary codec. The build is offline and vendors no JSON crate; the
//! emitter and the (schema-restricted) recursive-descent parser below are
//! hand-rolled. Updates are atomic: write `manifest.json.tmp`, fsync,
//! rename over the old file — a crash mid-checkpoint leaves the previous
//! manifest intact and the half-written snapshot unreferenced.

use std::path::{Path, PathBuf};

/// Manifest schema version.
pub const MANIFEST_VERSION: u64 = 1;
/// The manifest file name inside a durability directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// One snapshot registration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// Monotonic snapshot epoch (0 is written at session creation).
    pub epoch: u64,
    /// Snapshot file name, relative to the durability directory.
    pub file: String,
    /// First WAL LSN *not* covered by this snapshot: recovery replays
    /// records with `lsn >= wal_start`.
    pub wal_start: u64,
}

/// The parsed manifest: every registered snapshot, oldest first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    pub snapshots: Vec<SnapshotEntry>,
}

/// Manifest failures.
#[derive(Debug)]
pub enum ManifestError {
    Io(std::io::Error),
    /// Not valid JSON, or JSON outside the manifest schema.
    Parse(String),
    /// A `format_version` this build does not understand.
    BadVersion(u64),
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::Io(e) => write!(f, "manifest io error: {e}"),
            ManifestError::Parse(m) => write!(f, "manifest parse error: {m}"),
            ManifestError::BadVersion(v) => write!(f, "unsupported manifest version {v}"),
        }
    }
}

impl std::error::Error for ManifestError {}

impl From<std::io::Error> for ManifestError {
    fn from(e: std::io::Error) -> ManifestError {
        ManifestError::Io(e)
    }
}

impl Manifest {
    /// The most recent snapshot, if any.
    pub fn latest(&self) -> Option<&SnapshotEntry> {
        self.snapshots.last()
    }

    /// The epoch the next checkpoint should use.
    pub fn next_epoch(&self) -> u64 {
        self.latest().map_or(0, |s| s.epoch + 1)
    }

    /// Serialize to the manifest JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"format_version\": {MANIFEST_VERSION},\n"));
        out.push_str("  \"snapshots\": [");
        for (i, s) in self.snapshots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"epoch\": {}, \"file\": \"{}\", \"wal_start\": {}}}",
                s.epoch,
                escape_json(&s.file),
                s.wal_start
            ));
        }
        if !self.snapshots.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parse a manifest JSON document.
    pub fn from_json(text: &str) -> Result<Manifest, ManifestError> {
        let value = JsonParser::new(text).parse()?;
        let obj = value.as_object("top level")?;
        let version = field(obj, "format_version")?.as_u64("format_version")?;
        if version != MANIFEST_VERSION {
            return Err(ManifestError::BadVersion(version));
        }
        let mut snapshots = Vec::new();
        if let Some((_, list)) = obj.iter().find(|(k, _)| k == "snapshots") {
            for item in list.as_array("snapshots")? {
                let s = item.as_object("snapshot entry")?;
                snapshots.push(SnapshotEntry {
                    epoch: field(s, "epoch")?.as_u64("epoch")?,
                    file: field(s, "file")?.as_str("file")?.to_string(),
                    wal_start: field(s, "wal_start")?.as_u64("wal_start")?,
                });
            }
        }
        for pair in snapshots.windows(2) {
            if pair[1].epoch <= pair[0].epoch {
                return Err(ManifestError::Parse("epochs not increasing".into()));
            }
        }
        Ok(Manifest { snapshots })
    }

    /// Load `dir/manifest.json`; an absent file is an empty manifest.
    pub fn load(dir: &Path) -> Result<Manifest, ManifestError> {
        match std::fs::read_to_string(dir.join(MANIFEST_FILE)) {
            Ok(text) => Manifest::from_json(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Manifest::default()),
            Err(e) => Err(e.into()),
        }
    }

    /// Atomically write `dir/manifest.json` (tmp + fsync + rename).
    pub fn store(&self, dir: &Path) -> Result<(), ManifestError> {
        let tmp: PathBuf = dir.join(format!("{MANIFEST_FILE}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            std::io::Write::write_all(&mut f, self.to_json().as_bytes())?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, dir.join(MANIFEST_FILE))?;
        Ok(())
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------
// Minimal JSON value + recursive-descent parser (manifest subset:
// objects, arrays, strings, unsigned integers).
// ---------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    U64(u64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

/// Look up a required key in an object's field list.
fn field<'v>(fields: &'v [(String, Json)], key: &str) -> Result<&'v Json, ManifestError> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| ManifestError::Parse(format!("missing {key}")))
}

impl Json {
    fn as_object(&self, what: &str) -> Result<&[(String, Json)], ManifestError> {
        match self {
            Json::Object(fields) => Ok(fields),
            _ => Err(ManifestError::Parse(format!("{what}: expected object"))),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[Json], ManifestError> {
        match self {
            Json::Array(items) => Ok(items),
            _ => Err(ManifestError::Parse(format!("{what}: expected array"))),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, ManifestError> {
        match self {
            Json::U64(v) => Ok(*v),
            _ => Err(ManifestError::Parse(format!("{what}: expected integer"))),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, ManifestError> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(ManifestError::Parse(format!("{what}: expected string"))),
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> JsonParser<'a> {
        JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse(mut self) -> Result<Json, ManifestError> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters"));
        }
        Ok(v)
    }

    fn err(&self, msg: &str) -> ManifestError {
        ManifestError::Parse(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ManifestError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, ManifestError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, ManifestError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ManifestError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ManifestError> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected a string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| b & 0xC0 == 0x80)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8 input"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ManifestError> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit())
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<u64>()
            .map(Json::U64)
            .map_err(|_| self.err("integer out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_empty_and_populated() {
        let empty = Manifest::default();
        assert_eq!(Manifest::from_json(&empty.to_json()).unwrap(), empty);

        let m = Manifest {
            snapshots: vec![
                SnapshotEntry {
                    epoch: 0,
                    file: "snapshot-0000000000.snap".into(),
                    wal_start: 0,
                },
                SnapshotEntry {
                    epoch: 1,
                    file: "snapshot-0000000001.snap".into(),
                    wal_start: 7,
                },
            ],
        };
        assert_eq!(Manifest::from_json(&m.to_json()).unwrap(), m);
        assert_eq!(m.next_epoch(), 2);
        assert_eq!(m.latest().unwrap().wal_start, 7);
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(Manifest::from_json("").is_err());
        assert!(Manifest::from_json("{}").is_err()); // missing version
        assert!(Manifest::from_json("{\"format_version\": 99}").is_err());
        assert!(Manifest::from_json("{\"format_version\": 1} junk").is_err());
        // Epochs must increase.
        let bad = "{\"format_version\": 1, \"snapshots\": [\
                   {\"epoch\": 1, \"file\": \"a\", \"wal_start\": 0},\
                   {\"epoch\": 1, \"file\": \"b\", \"wal_start\": 0}]}";
        assert!(Manifest::from_json(bad).is_err());
    }

    #[test]
    fn escaped_strings_roundtrip() {
        let m = Manifest {
            snapshots: vec![SnapshotEntry {
                epoch: 0,
                file: "we\"ird\\name\n".into(),
                wal_start: 3,
            }],
        };
        assert_eq!(Manifest::from_json(&m.to_json()).unwrap(), m);
    }

    #[test]
    fn load_store_cycle() {
        let dir = std::env::temp_dir().join(format!("itg-manifest-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), Manifest::default());
        let m = Manifest {
            snapshots: vec![SnapshotEntry {
                epoch: 0,
                file: "s0".into(),
                wal_start: 0,
            }],
        };
        m.store(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), m);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
