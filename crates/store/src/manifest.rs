//! The durability manifest: `manifest.json` in a WAL directory binds each
//! snapshot epoch to the WAL position it covers, so recovery is
//! "load the latest snapshot, then replay the WAL tail from
//! `wal_start`" (DESIGN.md §9).
//!
//! The manifest is tiny and human-inspectable, so it is JSON rather than
//! the binary codec. The build is offline and vendors no JSON crate; the
//! emitter and the (schema-restricted) recursive-descent parser below are
//! hand-rolled. Updates are atomic: write `manifest.json.tmp`, fsync,
//! rename over the old file, fsync the directory — a crash mid-checkpoint
//! leaves the previous manifest intact and the half-written snapshot
//! unreferenced. The manifest rename is the checkpoint *commit point*
//! (see [`Manifest::store`]).

use crate::fsutil::sync_dir;
use std::path::{Path, PathBuf};

/// Manifest schema version. Still 1: delta-snapshot fields are additive
/// (`kind`/`base_epoch` are optional on read and omitted for full
/// snapshots), so PR 4 manifests parse unchanged.
pub const MANIFEST_VERSION: u64 = 1;
/// The manifest file name inside a durability directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// How a snapshot file encodes the state image.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SnapshotKind {
    /// The file holds the complete state image.
    #[default]
    Full,
    /// The file holds a [`crate::delta`] document against the snapshot at
    /// `base_epoch`; recovery composes the chain back to a full snapshot.
    Delta { base_epoch: u64 },
}

/// One snapshot registration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// Monotonic snapshot epoch (0 is written at session creation).
    pub epoch: u64,
    /// Snapshot file name, relative to the durability directory.
    pub file: String,
    /// First WAL LSN *not* covered by this snapshot: recovery replays
    /// records with `lsn >= wal_start`.
    pub wal_start: u64,
    /// Full image or delta against an earlier epoch.
    pub kind: SnapshotKind,
}

/// The parsed manifest: every registered snapshot, oldest first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    pub snapshots: Vec<SnapshotEntry>,
    /// Live WAL segment file names at the last checkpoint, oldest first.
    /// Informational: recovery scans the directory (which is authoritative
    /// — segments rotate and GC between checkpoints without a manifest
    /// write), but the list makes `manifest.json` a complete human-readable
    /// inventory of the durability directory.
    pub wal_segments: Vec<String>,
}

/// Manifest failures.
#[derive(Debug)]
pub enum ManifestError {
    Io(std::io::Error),
    /// Not valid JSON, or JSON outside the manifest schema.
    Parse(String),
    /// A `format_version` this build does not understand.
    BadVersion(u64),
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::Io(e) => write!(f, "manifest io error: {e}"),
            ManifestError::Parse(m) => write!(f, "manifest parse error: {m}"),
            ManifestError::BadVersion(v) => write!(f, "unsupported manifest version {v}"),
        }
    }
}

impl std::error::Error for ManifestError {}

impl From<std::io::Error> for ManifestError {
    fn from(e: std::io::Error) -> ManifestError {
        ManifestError::Io(e)
    }
}

impl Manifest {
    /// The most recent snapshot, if any.
    pub fn latest(&self) -> Option<&SnapshotEntry> {
        self.snapshots.last()
    }

    /// The epoch the next checkpoint should use.
    pub fn next_epoch(&self) -> u64 {
        self.latest().map_or(0, |s| s.epoch + 1)
    }

    /// The entry for `epoch`, if registered.
    pub fn entry(&self, epoch: u64) -> Option<&SnapshotEntry> {
        self.snapshots.iter().find(|s| s.epoch == epoch)
    }

    /// The snapshot chain needed to materialize `epoch`: a full snapshot
    /// first, then every delta in application order, ending at `epoch`.
    /// Fails if a link is missing, a base is not older than its
    /// dependent, or the chain is longer than the snapshot list (a cycle).
    pub fn chain_for(&self, epoch: u64) -> Result<Vec<&SnapshotEntry>, ManifestError> {
        let mut chain = Vec::new();
        let mut at = epoch;
        loop {
            if chain.len() > self.snapshots.len() {
                return Err(ManifestError::Parse(format!(
                    "snapshot chain for epoch {epoch} does not terminate"
                )));
            }
            let entry = self.entry(at).ok_or_else(|| {
                ManifestError::Parse(format!(
                    "snapshot chain for epoch {epoch} is missing epoch {at}"
                ))
            })?;
            chain.push(entry);
            match entry.kind {
                SnapshotKind::Full => break,
                SnapshotKind::Delta { base_epoch } => {
                    if base_epoch >= at {
                        return Err(ManifestError::Parse(format!(
                            "delta snapshot {at} has non-decreasing base {base_epoch}"
                        )));
                    }
                    at = base_epoch;
                }
            }
        }
        chain.reverse();
        Ok(chain)
    }

    /// Serialize to the manifest JSON document. Full snapshots omit the
    /// `kind` field so PR 4 documents and new full-only documents are
    /// identical.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"format_version\": {MANIFEST_VERSION},\n"));
        out.push_str("  \"snapshots\": [");
        for (i, s) in self.snapshots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let kind = match s.kind {
                SnapshotKind::Full => String::new(),
                SnapshotKind::Delta { base_epoch } => {
                    format!(", \"kind\": \"delta\", \"base_epoch\": {base_epoch}")
                }
            };
            out.push_str(&format!(
                "\n    {{\"epoch\": {}, \"file\": \"{}\", \"wal_start\": {}{}}}",
                s.epoch,
                escape_json(&s.file),
                s.wal_start,
                kind
            ));
        }
        if !self.snapshots.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"wal_segments\": [");
        for (i, seg) in self.wal_segments.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", escape_json(seg)));
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parse a manifest JSON document.
    pub fn from_json(text: &str) -> Result<Manifest, ManifestError> {
        let value = JsonParser::new(text).parse()?;
        let obj = value.as_object("top level")?;
        let version = field(obj, "format_version")?.as_u64("format_version")?;
        if version != MANIFEST_VERSION {
            return Err(ManifestError::BadVersion(version));
        }
        let mut snapshots = Vec::new();
        if let Some((_, list)) = obj.iter().find(|(k, _)| k == "snapshots") {
            for item in list.as_array("snapshots")? {
                let s = item.as_object("snapshot entry")?;
                let epoch = field(s, "epoch")?.as_u64("epoch")?;
                // `kind` is optional (absent = full) so PR 4 manifests
                // parse unchanged.
                let kind = match opt_field(s, "kind") {
                    None => SnapshotKind::Full,
                    Some(k) => match k.as_str("kind")? {
                        "full" => SnapshotKind::Full,
                        "delta" => SnapshotKind::Delta {
                            base_epoch: field(s, "base_epoch")?.as_u64("base_epoch")?,
                        },
                        other => {
                            return Err(ManifestError::Parse(format!(
                                "unknown snapshot kind `{other}`"
                            )))
                        }
                    },
                };
                snapshots.push(SnapshotEntry {
                    epoch,
                    file: field(s, "file")?.as_str("file")?.to_string(),
                    wal_start: field(s, "wal_start")?.as_u64("wal_start")?,
                    kind,
                });
            }
        }
        let mut wal_segments = Vec::new();
        if let Some((_, list)) = obj.iter().find(|(k, _)| k == "wal_segments") {
            for item in list.as_array("wal_segments")? {
                wal_segments.push(item.as_str("wal segment")?.to_string());
            }
        }
        for pair in snapshots.windows(2) {
            if pair[1].epoch <= pair[0].epoch {
                return Err(ManifestError::Parse("epochs not increasing".into()));
            }
        }
        Ok(Manifest {
            snapshots,
            wal_segments,
        })
    }

    /// Load `dir/manifest.json`; an absent file is an empty manifest.
    pub fn load(dir: &Path) -> Result<Manifest, ManifestError> {
        match std::fs::read_to_string(dir.join(MANIFEST_FILE)) {
            Ok(text) => Manifest::from_json(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Manifest::default()),
            Err(e) => Err(e.into()),
        }
    }

    /// Atomically write `dir/manifest.json` (tmp + fsync + rename +
    /// directory fsync).
    ///
    /// Invariant: **the manifest rename is the checkpoint commit point.**
    /// A snapshot file exists-but-unreferenced until the manifest naming
    /// it is durably in place, and WAL segments may only be GC'd after
    /// the covering manifest is durable. The rename alone is not enough —
    /// POSIX makes file *contents* durable on fsync(file), but the
    /// directory entry produced by the rename needs its own fsync, or a
    /// crash can roll the directory back to the previous manifest.
    pub fn store(&self, dir: &Path) -> Result<(), ManifestError> {
        let tmp: PathBuf = dir.join(format!("{MANIFEST_FILE}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            std::io::Write::write_all(&mut f, self.to_json().as_bytes())?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, dir.join(MANIFEST_FILE))?;
        sync_dir(dir)?;
        Ok(())
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------
// Minimal JSON value + recursive-descent parser (manifest subset:
// objects, arrays, strings, unsigned integers).
// ---------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    U64(u64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

/// Look up a required key in an object's field list.
fn field<'v>(fields: &'v [(String, Json)], key: &str) -> Result<&'v Json, ManifestError> {
    opt_field(fields, key).ok_or_else(|| ManifestError::Parse(format!("missing {key}")))
}

/// Look up an optional key in an object's field list.
fn opt_field<'v>(fields: &'v [(String, Json)], key: &str) -> Option<&'v Json> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

impl Json {
    fn as_object(&self, what: &str) -> Result<&[(String, Json)], ManifestError> {
        match self {
            Json::Object(fields) => Ok(fields),
            _ => Err(ManifestError::Parse(format!("{what}: expected object"))),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[Json], ManifestError> {
        match self {
            Json::Array(items) => Ok(items),
            _ => Err(ManifestError::Parse(format!("{what}: expected array"))),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, ManifestError> {
        match self {
            Json::U64(v) => Ok(*v),
            _ => Err(ManifestError::Parse(format!("{what}: expected integer"))),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, ManifestError> {
        match self {
            Json::Str(s) => Ok(s),
            _ => Err(ManifestError::Parse(format!("{what}: expected string"))),
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> JsonParser<'a> {
        JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn parse(mut self) -> Result<Json, ManifestError> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters"));
        }
        Ok(v)
    }

    fn err(&self, msg: &str) -> ManifestError {
        ManifestError::Parse(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ManifestError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, ManifestError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, ManifestError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ManifestError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ManifestError> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected a string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| b & 0xC0 == 0x80)
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8 input"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ManifestError> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit())
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<u64>()
            .map(Json::U64)
            .map_err(|_| self.err("integer out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_empty_and_populated() {
        let empty = Manifest::default();
        assert_eq!(Manifest::from_json(&empty.to_json()).unwrap(), empty);

        let m = Manifest {
            snapshots: vec![
                SnapshotEntry {
                    epoch: 0,
                    file: "snapshot-0000000000.snap".into(),
                    wal_start: 0,
                    kind: SnapshotKind::Full,
                },
                SnapshotEntry {
                    epoch: 1,
                    file: "snapshot-0000000001.snap".into(),
                    wal_start: 7,
                    kind: SnapshotKind::Delta { base_epoch: 0 },
                },
            ],
            wal_segments: vec!["wal-00000000000000000007.log".into()],
        };
        assert_eq!(Manifest::from_json(&m.to_json()).unwrap(), m);
        assert_eq!(m.next_epoch(), 2);
        assert_eq!(m.latest().unwrap().wal_start, 7);
    }

    #[test]
    fn pr4_documents_without_kind_or_segments_still_parse() {
        let legacy = "{\"format_version\": 1, \"snapshots\": [\
                      {\"epoch\": 0, \"file\": \"snapshot-0.bin\", \"wal_start\": 0}]}";
        let m = Manifest::from_json(legacy).unwrap();
        assert_eq!(m.snapshots[0].kind, SnapshotKind::Full);
        assert!(m.wal_segments.is_empty());
    }

    #[test]
    fn chain_for_walks_delta_links_to_the_full_base() {
        let entry = |epoch, kind| SnapshotEntry {
            epoch,
            file: format!("s{epoch}"),
            wal_start: epoch,
            kind,
        };
        let m = Manifest {
            snapshots: vec![
                entry(0, SnapshotKind::Full),
                entry(1, SnapshotKind::Delta { base_epoch: 0 }),
                entry(2, SnapshotKind::Delta { base_epoch: 1 }),
                entry(3, SnapshotKind::Full),
            ],
            wal_segments: Vec::new(),
        };
        let chain: Vec<u64> = m.chain_for(2).unwrap().iter().map(|s| s.epoch).collect();
        assert_eq!(chain, vec![0, 1, 2]);
        let chain: Vec<u64> = m.chain_for(3).unwrap().iter().map(|s| s.epoch).collect();
        assert_eq!(chain, vec![3]);
        assert!(m.chain_for(9).is_err(), "unknown epoch");
        // A delta whose base is missing fails loudly.
        let broken = Manifest {
            snapshots: vec![entry(2, SnapshotKind::Delta { base_epoch: 1 })],
            wal_segments: Vec::new(),
        };
        assert!(broken.chain_for(2).is_err());
    }

    #[test]
    fn rejects_bad_documents() {
        assert!(Manifest::from_json("").is_err());
        assert!(Manifest::from_json("{}").is_err()); // missing version
        assert!(Manifest::from_json("{\"format_version\": 99}").is_err());
        assert!(Manifest::from_json("{\"format_version\": 1} junk").is_err());
        // Epochs must increase.
        let bad = "{\"format_version\": 1, \"snapshots\": [\
                   {\"epoch\": 1, \"file\": \"a\", \"wal_start\": 0},\
                   {\"epoch\": 1, \"file\": \"b\", \"wal_start\": 0}]}";
        assert!(Manifest::from_json(bad).is_err());
    }

    #[test]
    fn escaped_strings_roundtrip() {
        let m = Manifest {
            snapshots: vec![SnapshotEntry {
                epoch: 0,
                file: "we\"ird\\name\n".into(),
                wal_start: 3,
                kind: SnapshotKind::Full,
            }],
            wal_segments: vec!["al\tso \"odd\"".into()],
        };
        assert_eq!(Manifest::from_json(&m.to_json()).unwrap(), m);
    }

    #[test]
    fn load_store_cycle() {
        let dir = std::env::temp_dir().join(format!("itg-manifest-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), Manifest::default());
        let m = Manifest {
            snapshots: vec![SnapshotEntry {
                epoch: 0,
                file: "s0".into(),
                wal_start: 0,
                kind: SnapshotKind::Full,
            }],
            wal_segments: vec!["wal-00000000000000000000.log".into()],
        };
        m.store(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), m);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
