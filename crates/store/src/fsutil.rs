//! Filesystem durability helpers shared by the WAL, snapshot, and
//! manifest writers.

use std::path::Path;

/// Fsync a directory, making recently created, renamed, or unlinked
/// entries in it durable. POSIX only guarantees that *file contents*
/// survive a crash after `fsync(fd)`; the directory entry that names the
/// file needs its own fsync, or a crash can roll the rename/create/unlink
/// back and resurrect the previous directory state. Every atomic
/// tmp+rename writer in this crate (manifest, snapshot) and every WAL
/// segment creation/removal must call this afterwards.
///
/// On non-Unix platforms directory handles cannot be synced; rename
/// atomicity is the best available guarantee there.
pub fn sync_dir(dir: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        std::fs::File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Ok(())
    }
}
