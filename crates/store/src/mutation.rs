//! Graph mutation batches ΔG_t: edge insertions and deletions.

use itg_gsa::VertexId;

/// One edge mutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeMutation {
    pub src: VertexId,
    pub dst: VertexId,
    /// +1 for insertion, −1 for deletion (the stream multiplicity model).
    pub mult: i8,
}

impl EdgeMutation {
    pub fn insert(src: VertexId, dst: VertexId) -> EdgeMutation {
        EdgeMutation { src, dst, mult: 1 }
    }

    pub fn delete(src: VertexId, dst: VertexId) -> EdgeMutation {
        EdgeMutation { src, dst, mult: -1 }
    }

    pub fn is_insert(&self) -> bool {
        self.mult > 0
    }
}

/// A batch of mutations applied atomically as one snapshot transition
/// `G_{t-1} → G_t`.
///
/// Internally the batch is stored *partitioned*: all insertions first
/// (in their original relative order), then all deletions, with the
/// partition point cached. [`MutationBatch::inserts`] and
/// [`MutationBatch::deletes`] are therefore O(1) slices rather than
/// full-batch filters — the WAL encoder and receipt/LSN accounting walk
/// them without rescanning. The partition is stable, so relative order
/// within each class is preserved; stores consolidate before ingesting
/// (see [`MutationBatch::consolidated`]), so inter-class order carries
/// no meaning.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MutationBatch {
    edges: Vec<EdgeMutation>,
    /// `edges[..n_inserts]` are insertions, `edges[n_inserts..]` deletions.
    n_inserts: usize,
}

impl MutationBatch {
    pub fn new(edges: Vec<EdgeMutation>) -> MutationBatch {
        let mut ins: Vec<EdgeMutation> = Vec::with_capacity(edges.len());
        let mut del: Vec<EdgeMutation> = Vec::new();
        for e in edges {
            if e.is_insert() {
                ins.push(e);
            } else {
                del.push(e);
            }
        }
        let n_inserts = ins.len();
        ins.extend_from_slice(&del);
        MutationBatch { edges: ins, n_inserts }
    }

    pub fn len(&self) -> usize {
        self.edges.len()
    }

    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// All mutations, insertions first (see the type-level invariant).
    pub fn edges(&self) -> &[EdgeMutation] {
        &self.edges
    }

    /// The insertion prefix; O(1), no rescan.
    pub fn inserts(&self) -> impl Iterator<Item = &EdgeMutation> {
        self.edges[..self.n_inserts].iter()
    }

    /// The deletion suffix; O(1), no rescan.
    pub fn deletes(&self) -> impl Iterator<Item = &EdgeMutation> {
        self.edges[self.n_inserts..].iter()
    }

    /// How many mutations are insertions, without iterating.
    pub fn num_inserts(&self) -> usize {
        self.n_inserts
    }

    /// How many mutations are deletions, without iterating.
    pub fn num_deletes(&self) -> usize {
        self.edges.len() - self.n_inserts
    }

    /// For undirected graphs: mirror every mutation so both directions are
    /// present (the paper models an undirected graph as a directed graph
    /// with edge pairs, §4).
    pub fn mirrored(&self) -> MutationBatch {
        let mut edges = Vec::with_capacity(self.edges.len() * 2);
        for e in &self.edges {
            edges.push(*e);
            edges.push(EdgeMutation {
                src: e.dst,
                dst: e.src,
                mult: e.mult,
            });
        }
        MutationBatch::new(edges)
    }

    /// The largest vertex id referenced, if any.
    pub fn max_vertex(&self) -> Option<VertexId> {
        self.edges.iter().map(|e| e.src.max(e.dst)).max()
    }

    /// Serialize to the little-endian wire layout used by the engine's
    /// transport when shipping a batch to partition worker processes:
    /// `[count: u64][src: u64, dst: u64, mult: i8]*`. Mutations are
    /// emitted in stored (partitioned) order, so encode∘decode is the
    /// identity on the canonical form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.edges.len() * 17);
        out.extend_from_slice(&(self.edges.len() as u64).to_le_bytes());
        for e in &self.edges {
            out.extend_from_slice(&e.src.to_le_bytes());
            out.extend_from_slice(&e.dst.to_le_bytes());
            out.push(e.mult as u8);
        }
        out
    }

    /// Decode the [`MutationBatch::encode`] layout; `None` on a length
    /// mismatch or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Option<MutationBatch> {
        let count = u64::from_le_bytes(bytes.get(0..8)?.try_into().ok()?) as usize;
        let body = &bytes[8..];
        if body.len() != count.checked_mul(17)? {
            return None;
        }
        let mut edges = Vec::with_capacity(count);
        for rec in body.chunks_exact(17) {
            edges.push(EdgeMutation {
                src: u64::from_le_bytes(rec[0..8].try_into().ok()?),
                dst: u64::from_le_bytes(rec[8..16].try_into().ok()?),
                mult: rec[16] as i8,
            });
        }
        Some(MutationBatch::new(edges))
    }

    /// Consolidate to net multiplicities per edge: an insert and a delete
    /// of the same edge within one batch cancel (the ±1 multiset model),
    /// and duplicates collapse to a single ±1 mutation. Stores ingest the
    /// consolidated form so the delta stream is a canonical multiset.
    pub fn consolidated(&self) -> MutationBatch {
        let mut net: std::collections::BTreeMap<(VertexId, VertexId), i64> =
            std::collections::BTreeMap::new();
        for e in &self.edges {
            *net.entry((e.src, e.dst)).or_insert(0) += e.mult as i64;
        }
        let edges = net
            .into_iter()
            .filter(|&(_, m)| m != 0)
            .map(|((src, dst), m)| EdgeMutation {
                src,
                dst,
                mult: if m > 0 { 1 } else { -1 },
            })
            .collect();
        MutationBatch::new(edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mirrored_doubles_and_flips() {
        let b = MutationBatch::new(vec![
            EdgeMutation::insert(1, 2),
            EdgeMutation::delete(3, 4),
        ]);
        let m = b.mirrored();
        assert_eq!(m.len(), 4);
        assert!(m.edges().contains(&EdgeMutation::insert(2, 1)));
        assert!(m.edges().contains(&EdgeMutation::delete(4, 3)));
        assert_eq!(m.inserts().count(), 2);
        assert_eq!(m.deletes().count(), 2);
        assert_eq!(m.num_inserts(), 2);
        assert_eq!(m.num_deletes(), 2);
        assert_eq!(m.max_vertex(), Some(4));
    }

    #[test]
    fn partition_is_stable_and_cached() {
        let b = MutationBatch::new(vec![
            EdgeMutation::delete(9, 9),
            EdgeMutation::insert(1, 2),
            EdgeMutation::delete(5, 6),
            EdgeMutation::insert(3, 4),
        ]);
        // Insertions first, each class in original relative order.
        assert_eq!(
            b.edges(),
            &[
                EdgeMutation::insert(1, 2),
                EdgeMutation::insert(3, 4),
                EdgeMutation::delete(9, 9),
                EdgeMutation::delete(5, 6),
            ]
        );
        assert_eq!(b.num_inserts(), 2);
        assert_eq!(b.num_deletes(), 2);
        assert!(b.inserts().all(|e| e.is_insert()));
        assert!(b.deletes().all(|e| !e.is_insert()));
    }

    #[test]
    fn encode_roundtrips() {
        let b = MutationBatch::new(vec![
            EdgeMutation::insert(0, u64::MAX),
            EdgeMutation::delete(7, 3),
        ]);
        assert_eq!(MutationBatch::decode(&b.encode()), Some(b.clone()));
        // encode∘decode∘encode is the identity (canonical form).
        assert_eq!(MutationBatch::decode(&b.encode()).unwrap().encode(), b.encode());
        let empty = MutationBatch::default();
        assert_eq!(MutationBatch::decode(&empty.encode()), Some(empty));
    }

    #[test]
    fn decode_rejects_corruption() {
        let bytes = MutationBatch::new(vec![EdgeMutation::insert(1, 2)]).encode();
        assert_eq!(MutationBatch::decode(&bytes[..bytes.len() - 1]), None);
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(MutationBatch::decode(&trailing), None);
        assert_eq!(MutationBatch::decode(&[]), None);
    }
}
