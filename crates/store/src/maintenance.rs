//! Delta maintenance policies for the vertex store (paper §5.5, Figure 17).
//!
//! Keeping attribute changes as deltas minimizes disk writes, but every
//! incremental run re-reads the whole delta chain of each superstep; the
//! chains must eventually be merged. The paper's cost model compares, for
//! superstep `s` at snapshot `t`, the write cost of merging
//! `W_merge = |∪_{τ≤t} X^{(τ,s)}|` against the projected read cost of the
//! deltas `R_delta = Σ_{0<τ<t} (t−τ)·|X^{(τ,s)}|`, merging when writing the
//! consolidated file is cheaper than the repeated reads.

/// When to merge a superstep's delta chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenancePolicy {
    /// Never merge (the NoMerge baseline of §6.4.2).
    NoMerge,
    /// Merge every `period` snapshots (the PeriodicMerge baseline).
    Periodic(usize),
    /// The paper's cost-based strategy.
    CostBased,
}

/// Summary of one superstep's delta chain, fed to the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainSummary {
    /// Current snapshot t.
    pub snapshot: usize,
    /// `|∪_{τ≤t} X^{(τ,s)}|`: distinct vertices across checkpoint + runs.
    pub distinct_vertices: u64,
    /// `Σ_{0<τ<t} (t−τ)·|X^{(τ,s)}|` over the unmerged runs.
    pub weighted_run_reads: u64,
    /// Number of unmerged runs in the chain.
    pub run_count: usize,
}

impl MaintenancePolicy {
    /// Decide whether to merge the chain now.
    pub fn should_merge(&self, chain: &ChainSummary) -> bool {
        if chain.run_count == 0 {
            return false;
        }
        match self {
            MaintenancePolicy::NoMerge => false,
            MaintenancePolicy::Periodic(period) => {
                *period > 0 && chain.snapshot > 0 && chain.snapshot.is_multiple_of(*period)
            }
            MaintenancePolicy::CostBased => {
                chain.distinct_vertices < chain.weighted_run_reads
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(snapshot: usize, distinct: u64, weighted: u64, runs: usize) -> ChainSummary {
        ChainSummary {
            snapshot,
            distinct_vertices: distinct,
            weighted_run_reads: weighted,
            run_count: runs,
        }
    }

    #[test]
    fn nomerge_never_merges() {
        assert!(!MaintenancePolicy::NoMerge.should_merge(&chain(100, 1, u64::MAX, 50)));
    }

    #[test]
    fn periodic_merges_on_period() {
        let p = MaintenancePolicy::Periodic(50);
        assert!(!p.should_merge(&chain(49, 10, 10, 5)));
        assert!(p.should_merge(&chain(50, 10, 10, 5)));
        assert!(p.should_merge(&chain(100, 10, 10, 5)));
        assert!(!p.should_merge(&chain(50, 10, 10, 0)), "empty chain");
    }

    #[test]
    fn cost_based_compares_write_vs_read() {
        let p = MaintenancePolicy::CostBased;
        // Cheap write, expensive projected reads → merge.
        assert!(p.should_merge(&chain(10, 100, 5000, 9)));
        // Expensive write, cheap reads → keep deltas.
        assert!(!p.should_merge(&chain(2, 5000, 100, 1)));
    }
}
