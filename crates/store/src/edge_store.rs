//! The delta-based edge store (paper §5.5).
//!
//! `G_0` and every `ΔG_t` (t > 0) are maintained as separate CSR-like
//! segments — insertions and deletions in separate "files" — so the engine
//! accesses the initial graph and graph mutations identically, and no
//! in-place disk update is ever performed. Deletions are applied *lazily*:
//! they live in an in-memory set and on-disk edges are masked when their
//! page is loaded into the buffer pool.
//!
//! The store serves two time-travel views during an incremental run:
//! [`View::Old`] (`es`, the graph as of snapshot t−1) and [`View::New`]
//! (`es'`, as of snapshot t), plus the delta stream `Δes_t` itself — the
//! three stream versions bound by the incrementalization rules.

use crate::codec::{CodecError, CodecResult, Reader, Writer};
use crate::mutation::{EdgeMutation, MutationBatch};
use crate::pager::BufferPool;
use itg_gsa::{FxHashSet, VertexId};
use std::sync::Arc;

/// The receipt returned by the [`EdgeStore::commit`] /
/// [`EdgeStoreDir::commit`] choke point: where the store now stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchReceipt {
    /// The snapshot epoch the store advanced to (== [`EdgeStore::snapshot`]
    /// after the commit).
    pub epoch: u64,
    /// The store-local commit sequence number, 0-based and contiguous.
    /// Durable sessions bind this to the WAL LSN of the logged batch.
    pub lsn: u64,
}

/// Which snapshot view of the edge stream to read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum View {
    /// `es` — the graph as of the previous snapshot (t−1).
    Old,
    /// `es'` — the graph including the current delta (t).
    New,
}

/// One immutable CSR-like segment, the on-disk format of both the base
/// graph and each delta file.
#[derive(Debug, Clone)]
pub struct CsrSegment {
    /// `offsets[v]..offsets[v+1]` indexes `targets` for vertex v.
    offsets: Vec<u64>,
    targets: Vec<VertexId>,
}

impl CsrSegment {
    /// Build from an unsorted edge list over `n` vertices.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> CsrSegment {
        let mut degree = vec![0u64; n];
        for &(s, _) in edges {
            degree[s as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut targets = vec![0; edges.len()];
        let mut cursor = offsets.clone();
        for &(s, d) in edges {
            let c = &mut cursor[s as usize];
            targets[*c as usize] = d;
            *c += 1;
        }
        // Sort each adjacency list for deterministic scans.
        for v in 0..n {
            let (a, b) = (offsets[v] as usize, offsets[v + 1] as usize);
            targets[a..b].sort_unstable();
        }
        CsrSegment { offsets, targets }
    }

    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Grow the vertex space (new vertices have empty adjacency).
    fn grow(&mut self, n: usize) {
        let last = *self.offsets.last().unwrap();
        while self.offsets.len() < n + 1 {
            self.offsets.push(last);
        }
    }

    /// Adjacency slice of `v` (empty if `v` out of range).
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        if v + 1 >= self.offsets.len() {
            return &[];
        }
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Byte range of `v`'s adjacency within this segment (8 bytes per id),
    /// for page accounting.
    fn byte_range(&self, v: VertexId) -> (u64, u64) {
        let v = v as usize;
        if v + 1 >= self.offsets.len() {
            return (0, 0);
        }
        (self.offsets[v] * 8, self.offsets[v + 1] * 8)
    }

    /// Serialized size in bytes: offsets + targets.
    pub fn size_bytes(&self) -> u64 {
        (self.offsets.len() as u64 + self.targets.len() as u64) * 8
    }

    /// All (src, dst) pairs, in src order.
    pub fn iter_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.n()).flat_map(move |v| {
            self.neighbors(v as VertexId)
                .iter()
                .map(move |&d| (v as VertexId, d))
        })
    }
}

/// One snapshot's delta: insert and delete segments kept separately so the
/// execution engine knows the multiplicity of each edge tuple.
#[derive(Debug, Clone)]
pub struct DeltaSegment {
    pub inserts: CsrSegment,
    pub deletes: CsrSegment,
}

/// A single-direction edge store: base CSR plus the chain of delta
/// segments. Directed graphs keep two of these (out and in).
#[derive(Debug)]
pub struct EdgeStoreDir {
    n: usize,
    base: CsrSegment,
    deltas: Vec<DeltaSegment>,
    /// All deletions up to the current snapshot / the previous snapshot.
    deleted_new: FxHashSet<(VertexId, VertexId)>,
    deleted_old: FxHashSet<(VertexId, VertexId)>,
    /// Edges re-inserted after a deletion: both an old segment copy and a
    /// newer insert-segment copy exist on disk, so scans must deduplicate
    /// these (and only these) pairs.
    resurrected: FxHashSet<(VertexId, VertexId)>,
    degree_cur: Vec<u32>,
    degree_prev: Vec<u32>,
    /// Snapshots folded into the base by compaction; the logical snapshot
    /// index is `snapshot_base + deltas.len()`.
    snapshot_base: usize,
    /// Base segment id for page accounting; delta t uses seg_base + 2t − 1
    /// (inserts) and seg_base + 2t (deletes).
    seg_base: u32,
    /// Commits ingested so far; the next receipt's LSN.
    commits: u64,
    pool: Arc<BufferPool>,
}

impl EdgeStoreDir {
    pub fn new(
        n: usize,
        edges: &[(VertexId, VertexId)],
        seg_base: u32,
        pool: Arc<BufferPool>,
    ) -> EdgeStoreDir {
        let base = CsrSegment::from_edges(n, edges);
        pool.record_write(base.size_bytes());
        let mut degree = vec![0u32; n];
        for &(s, _) in edges {
            degree[s as usize] += 1;
        }
        EdgeStoreDir {
            n,
            base,
            deltas: Vec::new(),
            deleted_new: FxHashSet::default(),
            deleted_old: FxHashSet::default(),
            resurrected: FxHashSet::default(),
            degree_cur: degree.clone(),
            degree_prev: degree,
            snapshot_base: 0,
            seg_base,
            commits: 0,
            pool,
        }
    }

    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// The current snapshot index (0 = base only). Compaction folds
    /// segments into the base without resetting the numbering.
    pub fn snapshot(&self) -> usize {
        self.snapshot_base + self.deltas.len()
    }

    /// Grow the vertex space.
    pub fn grow(&mut self, n: usize) {
        if n <= self.n {
            return;
        }
        self.base.grow(n);
        for d in &mut self.deltas {
            d.inserts.grow(n);
            d.deletes.grow(n);
        }
        self.degree_cur.resize(n, 0);
        self.degree_prev.resize(n, 0);
        self.n = n;
    }

    /// Commit one snapshot's mutations through the single ingestion choke
    /// point. The batch must be *net* (consolidated — see
    /// [`MutationBatch::consolidated`]) and localized to this direction:
    /// sources index this store's CSR, destinations are global ids.
    /// Returns the receipt binding the new epoch to this commit's LSN.
    pub fn commit(&mut self, batch: &MutationBatch) -> BatchReceipt {
        let ins: Vec<(VertexId, VertexId)> =
            batch.inserts().map(|e| (e.src, e.dst)).collect();
        let del: Vec<(VertexId, VertexId)> =
            batch.deletes().map(|e| (e.src, e.dst)).collect();
        self.ingest(&ins, &del);
        let lsn = self.commits;
        self.commits += 1;
        BatchReceipt {
            epoch: self.snapshot() as u64,
            lsn,
        }
    }

    /// The segment-building core shared by [`EdgeStoreDir::commit`] and
    /// the snapshot loader.
    fn ingest(
        &mut self,
        inserts: &[(VertexId, VertexId)],
        deletes: &[(VertexId, VertexId)],
    ) {
        // Only sources index the CSR (destinations may live in another
        // partition's id space), so growth is driven by sources; callers
        // with a wider vertex space call `grow` explicitly first.
        let max_v = inserts
            .iter()
            .chain(deletes.iter())
            .map(|&(s, _)| s + 1)
            .max()
            .unwrap_or(0) as usize;
        if max_v > self.n {
            self.grow(max_v);
        }
        // The previous snapshot's view becomes the Old view.
        self.degree_prev.copy_from_slice(&self.degree_cur);
        self.deleted_old = self.deleted_new.clone();

        let ins = CsrSegment::from_edges(self.n, inserts);
        let del = CsrSegment::from_edges(self.n, deletes);
        self.pool.record_write(ins.size_bytes() + del.size_bytes());
        for &(s, _) in inserts {
            self.degree_cur[s as usize] += 1;
        }
        for &(s, d) in deletes {
            self.degree_cur[s as usize] = self.degree_cur[s as usize].saturating_sub(1);
            self.deleted_new.insert((s, d));
        }
        // An insertion of an edge that was deleted in an *earlier* snapshot
        // resurrects it: the tombstone is dropped so older on-disk copies
        // become visible again — and since the new insert segment also holds
        // a copy, the pair is recorded for scan-time deduplication.
        for &(s, d) in inserts {
            if self.deleted_new.remove(&(s, d)) {
                self.resurrected.insert((s, d));
            }
        }
        self.deltas.push(DeltaSegment {
            inserts: ins,
            deletes: del,
        });
    }

    fn deleted_set(&self, view: View) -> &FxHashSet<(VertexId, VertexId)> {
        match view {
            View::Old => &self.deleted_old,
            View::New => &self.deleted_new,
        }
    }

    /// Which delta segments are visible in `view`.
    fn visible_deltas(&self, view: View) -> &[DeltaSegment] {
        match view {
            View::New => &self.deltas,
            View::Old => {
                let t = self.deltas.len();
                &self.deltas[..t.saturating_sub(1)]
            }
        }
    }

    /// Touch the pages backing `v`'s adjacency in segment `seg_id` and
    /// perform lazy delete-masking on first load.
    fn touch_adjacency(&self, seg: &CsrSegment, seg_id: u32, v: VertexId) {
        let (a, b) = seg.byte_range(v);
        self.pool.touch_range(seg_id, a, b);
    }

    /// Visit `v`'s out-neighbors in `view`, applying tombstones. The scan
    /// order is: base segment, then delta insert segments oldest-first —
    /// the same order a disk scan over the segment files would produce.
    pub fn for_each_neighbor(&self, v: VertexId, view: View, mut f: impl FnMut(VertexId)) {
        let deleted = self.deleted_set(view);
        // Lazy dedup set, only consulted for resurrected pairs (rare).
        let mut seen: Option<FxHashSet<VertexId>> = None;
        let mut emit = |d: VertexId, f: &mut dyn FnMut(VertexId)| {
            if self.resurrected.contains(&(v, d)) {
                let s = seen.get_or_insert_with(FxHashSet::default);
                if !s.insert(d) {
                    return;
                }
            }
            f(d);
        };
        self.touch_adjacency(&self.base, self.seg_base, v);
        for &d in self.base.neighbors(v) {
            if !deleted.contains(&(v, d)) {
                emit(d, &mut f);
            }
        }
        for (i, seg) in self.visible_deltas(view).iter().enumerate() {
            let seg_id = self.seg_base + (2 * i as u32) + 1;
            self.touch_adjacency(&seg.inserts, seg_id, v);
            for &d in seg.inserts.neighbors(v) {
                // An insert from snapshot τ is visible unless a *later*
                // visible snapshot deleted it; the tombstone sets already
                // encode exactly the net-deleted pairs.
                if !deleted.contains(&(v, d)) {
                    emit(d, &mut f);
                }
            }
        }
    }

    /// Membership probe: multiplicity of edge (v, d) in `view` (1 present,
    /// 0 absent). Binary search over each sorted segment — this is the
    /// access path behind the multi-way intersection optimization, so it
    /// must not scan the adjacency list. Touches only the probed pages.
    pub fn edge_mult(&self, v: VertexId, d: VertexId, view: View) -> i64 {
        if self.deleted_set(view).contains(&(v, d)) {
            return 0;
        }
        // Probe base then visible insert segments; any hit wins (the
        // resurrect path can leave multiple copies, but presence is still
        // presence).
        if self.base.neighbors(v).binary_search(&d).is_ok() {
            let (a, _) = self.base.byte_range(v);
            self.pool.touch_range(self.seg_base, a, a + 8);
            return 1;
        }
        for (i, seg) in self.visible_deltas(view).iter().enumerate() {
            if seg.inserts.neighbors(v).binary_search(&d).is_ok() {
                let seg_id = self.seg_base + (2 * i as u32) + 1;
                let (a, _) = seg.inserts.byte_range(v);
                self.pool.touch_range(seg_id, a, a + 8);
                return 1;
            }
        }
        0
    }

    /// Membership probe into the latest delta: +1 inserted, −1 deleted,
    /// 0 untouched.
    pub fn delta_edge_mult(&self, v: VertexId, d: VertexId) -> i64 {
        let Some(seg) = self.deltas.last() else {
            return 0;
        };
        if seg.inserts.neighbors(v).binary_search(&d).is_ok() {
            return 1;
        }
        if seg.deletes.neighbors(v).binary_search(&d).is_ok() {
            return -1;
        }
        0
    }

    /// Collect `v`'s neighbors in `view`.
    pub fn neighbors(&self, v: VertexId, view: View) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.degree(v, view) as usize);
        self.for_each_neighbor(v, view, |d| out.push(d));
        out
    }

    pub fn degree(&self, v: VertexId, view: View) -> u32 {
        let v = v as usize;
        if v >= self.n {
            return 0;
        }
        match view {
            View::Old => self.degree_prev[v],
            View::New => self.degree_cur[v],
        }
    }

    /// The latest delta stream Δes_t as (src, dst, multiplicity) tuples;
    /// reading it costs its segment bytes once per call.
    pub fn for_each_delta_edge(&self, mut f: impl FnMut(VertexId, VertexId, i64)) {
        if let Some(d) = self.deltas.last() {
            let t = self.deltas.len();
            let ins_id = self.seg_base + (2 * (t as u32 - 1)) + 1;
            let del_id = ins_id + 1;
            self.pool.touch_range(ins_id, 0, d.inserts.size_bytes());
            self.pool.touch_range(del_id, 0, d.deletes.size_bytes());
            for (s, dst) in d.inserts.iter_edges() {
                f(s, dst, 1);
            }
            for (s, dst) in d.deletes.iter_edges() {
                f(s, dst, -1);
            }
        }
    }

    /// Latest delta edges of `v` only.
    pub fn for_each_delta_neighbor(&self, v: VertexId, mut f: impl FnMut(VertexId, i64)) {
        if let Some(d) = self.deltas.last() {
            let t = self.deltas.len();
            let ins_id = self.seg_base + (2 * (t as u32 - 1)) + 1;
            self.touch_adjacency(&d.inserts, ins_id, v);
            self.touch_adjacency(&d.deletes, ins_id + 1, v);
            for &dst in d.inserts.neighbors(v) {
                f(dst, 1);
            }
            for &dst in d.deletes.neighbors(v) {
                f(dst, -1);
            }
        }
    }

    /// Number of edges in the current (`New`) view.
    pub fn num_edges(&self) -> u64 {
        self.degree_cur.iter().map(|&d| d as u64).sum()
    }

    /// Total on-disk bytes across all segments (for memory/size reporting).
    pub fn size_bytes(&self) -> u64 {
        self.base.size_bytes()
            + self
                .deltas
                .iter()
                .map(|d| d.inserts.size_bytes() + d.deletes.size_bytes())
                .sum::<u64>()
    }

    /// Number of delta segments currently chained behind the base.
    pub fn delta_segments(&self) -> usize {
        self.deltas.len()
    }

    /// Compact the segment chain: rewrite the base CSR from the current
    /// (`New`) view and drop every delta segment and tombstone. Only legal
    /// *between* snapshots — compaction collapses the `Old` view and the
    /// delta stream into the new base (afterwards `Old == New` and the
    /// delta stream is empty), so callers must have finished incremental
    /// processing for the latest batch. Read cost: the whole chain; write
    /// cost: the new base.
    pub fn compact(&mut self) {
        if self.deltas.is_empty() {
            return;
        }
        let read_bytes = self.size_bytes();
        let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
        for v in 0..self.n as VertexId {
            self.for_each_neighbor_unaccounted(v, View::New, |d| edges.push((v, d)));
        }
        let base = CsrSegment::from_edges(self.n, &edges);
        self.pool.stats().add_disk_read(read_bytes);
        self.pool.record_write(base.size_bytes());
        self.base = base;
        self.snapshot_base += self.deltas.len();
        self.deltas.clear();
        self.deleted_new.clear();
        self.deleted_old.clear();
        self.resurrected.clear();
        self.degree_prev.copy_from_slice(&self.degree_cur);
        self.pool.clear();
    }

    /// Neighbor scan without buffer-pool charging (compaction's internal
    /// sequential read is accounted once, in bulk).
    fn for_each_neighbor_unaccounted(
        &self,
        v: VertexId,
        view: View,
        mut f: impl FnMut(VertexId),
    ) {
        let deleted = self.deleted_set(view);
        let mut seen: Option<FxHashSet<VertexId>> = None;
        let mut emit = |d: VertexId, f: &mut dyn FnMut(VertexId)| {
            if self.resurrected.contains(&(v, d)) {
                let s = seen.get_or_insert_with(FxHashSet::default);
                if !s.insert(d) {
                    return;
                }
            }
            f(d);
        };
        for &d in self.base.neighbors(v) {
            if !deleted.contains(&(v, d)) {
                emit(d, &mut f);
            }
        }
        for seg in self.visible_deltas(view) {
            for &d in seg.inserts.neighbors(v) {
                if !deleted.contains(&(v, d)) {
                    emit(d, &mut f);
                }
            }
        }
    }
}

/// The full edge store: out-direction always, in-direction (reverse
/// adjacency, required by backward MS-BFS) kept for directed graphs.
/// Undirected graphs store mirrored edges, so the out direction serves both.
#[derive(Debug)]
pub struct EdgeStore {
    out: EdgeStoreDir,
    rev: Option<EdgeStoreDir>,
}

impl EdgeStore {
    /// Build from a directed edge list. When `undirected`, the caller must
    /// pass mirrored edges and no separate reverse store is kept.
    pub fn new(
        n: usize,
        edges: &[(VertexId, VertexId)],
        undirected: bool,
        pool: Arc<BufferPool>,
    ) -> EdgeStore {
        let out = EdgeStoreDir::new(n, edges, 0, pool.clone());
        let rev = if undirected {
            None
        } else {
            let rev_edges: Vec<(VertexId, VertexId)> =
                edges.iter().map(|&(s, d)| (d, s)).collect();
            Some(EdgeStoreDir::new(n, &rev_edges, 1 << 16, pool))
        };
        EdgeStore { out, rev }
    }

    pub fn is_undirected(&self) -> bool {
        self.rev.is_none()
    }

    pub fn out_dir(&self) -> &EdgeStoreDir {
        &self.out
    }

    /// Reverse-direction store (identical to out for undirected graphs).
    pub fn rev_dir(&self) -> &EdgeStoreDir {
        self.rev.as_ref().unwrap_or(&self.out)
    }

    pub fn num_vertices(&self) -> usize {
        self.out.num_vertices()
    }

    pub fn num_edges(&self) -> u64 {
        self.out.num_edges()
    }

    pub fn snapshot(&self) -> usize {
        self.out.snapshot()
    }

    pub fn grow(&mut self, n: usize) {
        self.out.grow(n);
        if let Some(r) = &mut self.rev {
            r.grow(n);
        }
    }

    /// Compact both directions' segment chains (see
    /// [`EdgeStoreDir::compact`]).
    pub fn compact(&mut self) {
        self.out.compact();
        if let Some(r) = &mut self.rev {
            r.compact();
        }
    }

    /// Commit a mutation batch (already mirrored for undirected graphs)
    /// through the single ingestion choke point. The batch is consolidated
    /// first: same-edge insert/delete pairs within one batch cancel.
    /// Returns the receipt binding the new epoch to this commit's LSN.
    ///
    /// Durability ordering: a durable session logs the batch to the WAL
    /// *before* calling this (log-before-execute), and under group commit
    /// the [`crate::wal::Wal::append`] only returns once the record —
    /// possibly sharing an fsync with concurrent committers — is durable.
    /// The `BatchReceipt { epoch, lsn }` contract is unchanged: an
    /// acknowledged receipt's LSN is always recoverable.
    pub fn commit(&mut self, batch: &MutationBatch) -> BatchReceipt {
        let batch = batch.consolidated();
        let receipt = self.out.commit(&batch);
        if let Some(r) = &mut self.rev {
            let flipped: Vec<EdgeMutation> = batch
                .edges()
                .iter()
                .map(|e| EdgeMutation {
                    src: e.dst,
                    dst: e.src,
                    mult: e.mult,
                })
                .collect();
            r.commit(&MutationBatch::new(flipped));
        }
        receipt
    }
}

// ---------------------------------------------------------------
// Snapshot serialization (DESIGN.md §9). The byte image preserves the
// exact segment-chain structure — flattening would change the neighbor
// scan order and with it the engine's float accumulation order, breaking
// byte-identical recovery.
// ---------------------------------------------------------------

impl CsrSegment {
    fn encode_into(&self, w: &mut Writer) {
        w.u64(self.offsets.len() as u64);
        for &o in &self.offsets {
            w.u64(o);
        }
        w.u64(self.targets.len() as u64);
        for &t in &self.targets {
            w.u64(t);
        }
    }

    fn decode_from(r: &mut Reader<'_>) -> CodecResult<CsrSegment> {
        let n_off = r.u64()? as usize;
        if n_off == 0 {
            return Err(CodecError::Truncated);
        }
        let mut offsets = Vec::with_capacity(n_off.min(1 << 20));
        for _ in 0..n_off {
            offsets.push(r.u64()?);
        }
        let n_tgt = r.u64()? as usize;
        // Structural validation: monotone offsets covering the targets, so
        // every later index operation is in bounds.
        if offsets[0] != 0
            || *offsets.last().unwrap() != n_tgt as u64
            || offsets.windows(2).any(|p| p[0] > p[1])
        {
            return Err(CodecError::Truncated);
        }
        let mut targets = Vec::with_capacity(n_tgt.min(1 << 20));
        for _ in 0..n_tgt {
            targets.push(r.u64()?);
        }
        Ok(CsrSegment { offsets, targets })
    }
}

/// Sorted-pair-set codec: canonical (sorted) encoding, decoded back into
/// the hash set. Only membership is ever queried, so order is free.
fn put_pair_set(w: &mut Writer, set: &FxHashSet<(VertexId, VertexId)>) {
    let mut pairs: Vec<(VertexId, VertexId)> = set.iter().copied().collect();
    pairs.sort_unstable();
    w.u64(pairs.len() as u64);
    for (a, b) in pairs {
        w.u64(a);
        w.u64(b);
    }
}

fn get_pair_set(r: &mut Reader<'_>) -> CodecResult<FxHashSet<(VertexId, VertexId)>> {
    let n = r.u64()? as usize;
    let mut set = FxHashSet::default();
    for _ in 0..n {
        let a = r.u64()?;
        let b = r.u64()?;
        set.insert((a, b));
    }
    Ok(set)
}

impl EdgeStoreDir {
    /// Serialize the full segment-chain structure into `w`.
    pub fn encode_into(&self, w: &mut Writer) {
        w.u64(self.n as u64);
        w.u64(self.snapshot_base as u64);
        w.u32(self.seg_base);
        w.u64(self.commits);
        self.base.encode_into(w);
        w.u64(self.deltas.len() as u64);
        for d in &self.deltas {
            d.inserts.encode_into(w);
            d.deletes.encode_into(w);
        }
        put_pair_set(w, &self.deleted_new);
        put_pair_set(w, &self.deleted_old);
        put_pair_set(w, &self.resurrected);
        w.u64(self.degree_cur.len() as u64);
        for &d in &self.degree_cur {
            w.u32(d);
        }
        w.u64(self.degree_prev.len() as u64);
        for &d in &self.degree_prev {
            w.u32(d);
        }
    }

    /// Rebuild a store from its serialized image, attaching it to `pool`.
    /// No IO is charged: restoring a snapshot is not the workload's IO.
    pub fn decode_from(r: &mut Reader<'_>, pool: Arc<BufferPool>) -> CodecResult<EdgeStoreDir> {
        let n = r.u64()? as usize;
        let snapshot_base = r.u64()? as usize;
        let seg_base = r.u32()?;
        let commits = r.u64()?;
        let base = CsrSegment::decode_from(r)?;
        let n_deltas = r.u64()? as usize;
        let mut deltas = Vec::with_capacity(n_deltas.min(1 << 16));
        for _ in 0..n_deltas {
            let inserts = CsrSegment::decode_from(r)?;
            let deletes = CsrSegment::decode_from(r)?;
            deltas.push(DeltaSegment { inserts, deletes });
        }
        let deleted_new = get_pair_set(r)?;
        let deleted_old = get_pair_set(r)?;
        let resurrected = get_pair_set(r)?;
        let n_cur = r.u64()? as usize;
        let mut degree_cur = Vec::with_capacity(n_cur.min(1 << 20));
        for _ in 0..n_cur {
            degree_cur.push(r.u32()?);
        }
        let n_prev = r.u64()? as usize;
        let mut degree_prev = Vec::with_capacity(n_prev.min(1 << 20));
        for _ in 0..n_prev {
            degree_prev.push(r.u32()?);
        }
        if degree_cur.len() != n || degree_prev.len() != n || base.n() != n {
            return Err(CodecError::Truncated);
        }
        Ok(EdgeStoreDir {
            n,
            base,
            deltas,
            deleted_new,
            deleted_old,
            resurrected,
            degree_cur,
            degree_prev,
            snapshot_base,
            seg_base,
            commits,
            pool,
        })
    }
}

impl EdgeStore {
    /// Serialize both directions into `w`.
    pub fn encode_into(&self, w: &mut Writer) {
        w.bool(self.rev.is_some());
        self.out.encode_into(w);
        if let Some(r) = &self.rev {
            r.encode_into(w);
        }
    }

    /// Rebuild from a serialized image, attaching both directions to
    /// `pool`.
    pub fn decode_from(r: &mut Reader<'_>, pool: Arc<BufferPool>) -> CodecResult<EdgeStore> {
        let has_rev = r.bool()?;
        let out = EdgeStoreDir::decode_from(r, pool.clone())?;
        let rev = if has_rev {
            Some(EdgeStoreDir::decode_from(r, pool)?)
        } else {
            None
        };
        Ok(EdgeStore { out, rev })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutation::EdgeMutation;
    use crate::stats::IoStats;

    fn store(edges: &[(u64, u64)]) -> EdgeStore {
        let pool = Arc::new(BufferPool::new(1 << 20, 4096, IoStats::new()));
        let n = edges.iter().map(|&(a, b)| a.max(b) + 1).max().unwrap_or(0) as usize;
        EdgeStore::new(n, edges, false, pool)
    }

    #[test]
    fn csr_sorted_adjacency() {
        let seg = CsrSegment::from_edges(4, &[(1, 3), (1, 0), (2, 2), (1, 2)]);
        assert_eq!(seg.neighbors(1), &[0, 2, 3]);
        assert_eq!(seg.neighbors(0), &[] as &[u64]);
        assert_eq!(seg.neighbors(7), &[] as &[u64]);
        assert_eq!(seg.num_edges(), 4);
        let all: Vec<_> = seg.iter_edges().collect();
        assert_eq!(all, vec![(1, 0), (1, 2), (1, 3), (2, 2)]);
    }

    #[test]
    fn views_across_one_delta() {
        let mut s = store(&[(0, 1), (0, 2), (1, 2)]);
        s.commit(&MutationBatch::new(vec![
            EdgeMutation::insert(0, 3),
            EdgeMutation::delete(0, 1),
        ]));
        assert_eq!(s.out_dir().neighbors(0, View::Old), vec![1, 2]);
        assert_eq!(s.out_dir().neighbors(0, View::New), vec![2, 3]);
        assert_eq!(s.out_dir().degree(0, View::Old), 2);
        assert_eq!(s.out_dir().degree(0, View::New), 2);
        // Reverse direction is maintained for directed graphs.
        assert_eq!(s.rev_dir().neighbors(3, View::New), vec![0]);
        assert_eq!(s.rev_dir().neighbors(1, View::New), Vec::<u64>::new());
        assert_eq!(s.rev_dir().neighbors(1, View::Old), vec![0]);
    }

    #[test]
    fn delta_stream_has_signed_tuples() {
        let mut s = store(&[(0, 1)]);
        s.commit(&MutationBatch::new(vec![
            EdgeMutation::insert(2, 0),
            EdgeMutation::delete(0, 1),
        ]));
        let mut got = Vec::new();
        s.out_dir().for_each_delta_edge(|a, b, m| got.push((a, b, m)));
        got.sort();
        assert_eq!(got, vec![(0, 1, -1), (2, 0, 1)]);
    }

    #[test]
    fn chained_snapshots_resurrect_deleted_edge() {
        let mut s = store(&[(0, 1), (0, 2)]);
        s.commit(&MutationBatch::new(vec![EdgeMutation::delete(0, 1)]));
        assert_eq!(s.out_dir().neighbors(0, View::New), vec![2]);
        s.commit(&MutationBatch::new(vec![EdgeMutation::insert(0, 1)]));
        let mut n = s.out_dir().neighbors(0, View::New);
        n.sort_unstable();
        assert_eq!(n, vec![1, 2]);
        // Old view is the post-deletion snapshot.
        assert_eq!(s.out_dir().neighbors(0, View::Old), vec![2]);
    }

    #[test]
    fn growth_on_new_vertices() {
        let mut s = store(&[(0, 1)]);
        s.commit(&MutationBatch::new(vec![EdgeMutation::insert(5, 0)]));
        assert_eq!(s.num_vertices(), 6);
        assert_eq!(s.out_dir().neighbors(5, View::New), vec![0]);
        assert_eq!(s.out_dir().neighbors(5, View::Old), Vec::<u64>::new());
    }

    #[test]
    fn io_accounted_through_pool() {
        let pool = Arc::new(BufferPool::new(1 << 20, 64, IoStats::new()));
        let edges: Vec<(u64, u64)> = (0..100).map(|i| (i, (i + 1) % 100)).collect();
        let s = EdgeStore::new(100, &edges, true, pool.clone());
        let before = pool.stats().snapshot();
        assert!(before.disk_write_bytes > 0, "base CSR write accounted");
        s.out_dir().neighbors(5, View::New);
        let after = pool.stats().snapshot();
        assert!(after.page_reads > before.page_reads);
        // Re-reading the same vertex hits the pool.
        s.out_dir().neighbors(5, View::New);
        let again = pool.stats().snapshot();
        assert_eq!(again.page_reads, after.page_reads);
        assert!(again.page_hits > after.page_hits);
    }

    #[test]
    fn compaction_preserves_new_view_and_drops_chain() {
        let mut s = store(&[(0, 1), (0, 2), (1, 2)]);
        s.commit(&MutationBatch::new(vec![
            EdgeMutation::insert(0, 3),
            EdgeMutation::delete(0, 1),
        ]));
        s.commit(&MutationBatch::new(vec![EdgeMutation::insert(2, 0)]));
        let before: Vec<Vec<u64>> = (0..4)
            .map(|v| {
                let mut n = s.out_dir().neighbors(v, View::New);
                n.sort_unstable();
                n
            })
            .collect();
        assert_eq!(s.out_dir().delta_segments(), 2);
        let size_before = s.out_dir().size_bytes();

        s.compact();
        assert_eq!(s.out_dir().delta_segments(), 0);
        assert!(s.out_dir().size_bytes() <= size_before);
        for v in 0..4u64 {
            let mut n = s.out_dir().neighbors(v, View::New);
            n.sort_unstable();
            assert_eq!(n, before[v as usize], "vertex {v}");
            // After compaction Old == New and the delta stream is empty.
            let mut o = s.out_dir().neighbors(v, View::Old);
            o.sort_unstable();
            assert_eq!(o, before[v as usize]);
        }
        let mut delta = Vec::new();
        s.out_dir().for_each_delta_edge(|a, b, m| delta.push((a, b, m)));
        assert!(delta.is_empty());

        // The store keeps working across post-compaction batches.
        s.commit(&MutationBatch::new(vec![EdgeMutation::delete(2, 0)]));
        assert_eq!(s.out_dir().neighbors(2, View::New), vec![]);
        assert_eq!(s.out_dir().neighbors(2, View::Old), vec![0]);
    }

    #[test]
    fn undirected_store_uses_out_for_reverse() {
        let pool = Arc::new(BufferPool::new(1 << 20, 4096, IoStats::new()));
        let s = EdgeStore::new(3, &[(0, 1), (1, 0)], true, pool);
        assert!(s.is_undirected());
        assert_eq!(s.rev_dir().neighbors(0, View::New), vec![1]);
    }
}
