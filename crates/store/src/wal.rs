//! Write-ahead log for the mutation stream (ROADMAP item 2).
//!
//! Durable incremental sessions log every state-changing command *before*
//! executing it; because the engine's runs are deterministic given the
//! stores and the command sequence, replaying the log over the latest
//! snapshot reconstructs the exact pre-crash state (see DESIGN.md §9).
//!
//! Record frame on disk (all little-endian):
//!
//! ```text
//! [len: u32]  [magic: u16 = 0xA17C]  [ver: u8 = 1]  [tag: u8]  [lsn: u64]  [body…]  [crc: u32]
//!             ^ payload starts here; `len` counts payload bytes only
//! ```
//!
//! `crc` is [`crate::codec::crc32`] over the payload. The reader tolerates
//! exactly one failure shape without complaint: a *torn tail*, i.e. the
//! file ends mid-frame because the process died inside a write. Everything
//! else — bad magic, bad version, a CRC mismatch on a complete frame, a
//! non-consecutive LSN — is corruption and fails loudly.
//!
//! Fault injection for the kill-and-recover test: `ITG_CRASH_AT=<lsn>`
//! aborts the process immediately after record `lsn` is durably written
//! (fsync included); with `ITG_CRASH_TORN=1` the record is instead written
//! *partially* (about half its bytes) before the abort, leaving a torn
//! tail for recovery to skip.

use crate::codec::{crc32, CodecError, Reader, Writer};
use crate::mutation::MutationBatch;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

/// WAL record magic: the first two payload bytes of every record.
pub const WAL_MAGIC: u16 = 0xA17C;
/// WAL format version; bumped on any layout change.
pub const WAL_VERSION: u8 = 1;
/// Upper bound on a single record's payload, as a corruption guard.
pub const MAX_RECORD_BYTES: u32 = 1 << 30;

/// The WAL file name inside a durability directory.
pub const WAL_FILE: &str = "wal.log";

/// WAL failures: IO from the filesystem layer, corruption from the byte
/// layer.
#[derive(Debug)]
pub enum WalError {
    Io(std::io::Error),
    Corrupt(CodecError),
    /// Records must carry consecutive LSNs; a gap means a lost write.
    LsnGap { expected: u64, found: u64 },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Corrupt(e) => write!(f, "wal corrupt: {e}"),
            WalError::LsnGap { expected, found } => {
                write!(f, "wal lsn gap: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> WalError {
        WalError::Io(e)
    }
}

impl From<CodecError> for WalError {
    fn from(e: CodecError) -> WalError {
        WalError::Corrupt(e)
    }
}

/// One logged command. The engine executes these in order on replay;
/// anything that changes store or session state must pass through here
/// first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalEntry {
    /// The initial one-shot run over `G_0`.
    OneshotRun,
    /// A mutation batch `ΔG_t` (logged before `apply_mutations`).
    Batch(MutationBatch),
    /// An incremental run over the latest snapshot transition.
    IncrementalRun,
    /// An edge-store compaction (collapses delta chains; changes byte
    /// layout, so it must replay at the same point in the history).
    Compact,
}

impl WalEntry {
    fn tag(&self) -> u8 {
        match self {
            WalEntry::OneshotRun => 1,
            WalEntry::Batch(_) => 2,
            WalEntry::IncrementalRun => 3,
            WalEntry::Compact => 4,
        }
    }
}

/// A decoded record: the entry plus its log sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    pub lsn: u64,
    pub entry: WalEntry,
}

/// Encode one record into its on-disk frame (`[len][payload][crc]`).
pub fn encode_record(lsn: u64, entry: &WalEntry) -> Vec<u8> {
    let mut w = Writer::new();
    w.u16(WAL_MAGIC);
    w.u8(WAL_VERSION);
    w.u8(entry.tag());
    w.u64(lsn);
    if let WalEntry::Batch(batch) = entry {
        let body = batch.encode();
        w.buf.extend_from_slice(&body);
    }
    let payload = w.buf;
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame
}

/// Decode one payload (the bytes between `len` and `crc`, already
/// CRC-verified) into a record.
pub fn decode_payload(payload: &[u8]) -> Result<WalRecord, CodecError> {
    let mut r = Reader::new(payload);
    let magic = r.u16()?;
    if magic != WAL_MAGIC {
        return Err(CodecError::BadMagic(magic as u32));
    }
    let ver = r.u8()?;
    if ver != WAL_VERSION {
        return Err(CodecError::BadVersion(ver));
    }
    let tag = r.u8()?;
    let lsn = r.u64()?;
    let entry = match tag {
        1 => WalEntry::OneshotRun,
        2 => {
            let body = &payload[12..];
            let batch = MutationBatch::decode(body).ok_or(CodecError::Truncated)?;
            return Ok(WalRecord {
                lsn,
                entry: WalEntry::Batch(batch),
            });
        }
        3 => WalEntry::IncrementalRun,
        4 => WalEntry::Compact,
        tag => return Err(CodecError::BadTag { what: "wal entry", tag }),
    };
    r.finish()?;
    Ok(WalRecord { lsn, entry })
}

/// The result of scanning a WAL file.
#[derive(Debug)]
pub struct WalScan {
    /// All complete, CRC-valid records in LSN order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (everything after it is torn).
    pub valid_bytes: u64,
    /// Whether a torn final record was skipped.
    pub torn_tail: bool,
}

impl WalScan {
    /// The next LSN an appender should use.
    pub fn next_lsn(&self) -> u64 {
        self.records.last().map_or(0, |r| r.lsn + 1)
    }
}

/// Scan a WAL file, validating every frame. A torn final record (the file
/// ends mid-frame) is tolerated and reported; a CRC mismatch or header
/// error on a *complete* frame is corruption.
pub fn scan(path: &Path) -> Result<WalScan, WalError> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e.into()),
    }
    scan_bytes(&bytes)
}

/// [`scan`] over an in-memory image (the testable core).
pub fn scan_bytes(bytes: &[u8]) -> Result<WalScan, WalError> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut torn_tail = false;
    let mut expected_lsn = 0u64;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < 4 {
            torn_tail = true;
            break;
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap());
        if len > MAX_RECORD_BYTES {
            return Err(CodecError::Truncated.into());
        }
        let frame_len = 4 + len as usize + 4;
        if rest.len() < frame_len {
            torn_tail = true;
            break;
        }
        let payload = &rest[4..4 + len as usize];
        let stored_crc =
            u32::from_le_bytes(rest[4 + len as usize..frame_len].try_into().unwrap());
        let actual = crc32(payload);
        if stored_crc != actual {
            return Err(CodecError::Crc {
                expected: stored_crc,
                actual,
            }
            .into());
        }
        let rec = decode_payload(payload)?;
        if rec.lsn != expected_lsn {
            return Err(WalError::LsnGap {
                expected: expected_lsn,
                found: rec.lsn,
            });
        }
        expected_lsn += 1;
        records.push(rec);
        pos += frame_len;
    }
    Ok(WalScan {
        records,
        valid_bytes: pos as u64,
        torn_tail,
    })
}

/// Appender handle: owns the open file and the next LSN.
pub struct Wal {
    file: File,
    path: PathBuf,
    next_lsn: u64,
    /// Fault injection: abort after durably writing this LSN.
    crash_at: Option<u64>,
    /// Fault injection: make the crash record a torn (partial) write.
    crash_torn: bool,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("next_lsn", &self.next_lsn)
            .finish()
    }
}

impl Wal {
    /// Open (or create) the WAL at `dir/wal.log` for appending, truncating
    /// any torn tail left by a previous crash so new frames never land
    /// after garbage. Returns the appender plus the scan of the existing
    /// valid prefix.
    pub fn open(dir: &Path) -> Result<(Wal, WalScan), WalError> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(WAL_FILE);
        let scan = scan(&path)?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        if scan.torn_tail {
            file.set_len(scan.valid_bytes)?;
            file.sync_data()?;
        }
        let crash_at = std::env::var("ITG_CRASH_AT")
            .ok()
            .and_then(|v| v.parse::<u64>().ok());
        let crash_torn = std::env::var("ITG_CRASH_TORN").is_ok_and(|v| v == "1");
        let wal = Wal {
            file,
            path,
            next_lsn: scan.next_lsn(),
            crash_at,
            crash_torn,
        };
        Ok((wal, scan))
    }

    /// The LSN the next [`Wal::append`] will assign.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// The WAL file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one entry, fsync it, and return its LSN. This is the
    /// log-before-execute point: callers must not mutate state until this
    /// returns.
    pub fn append(&mut self, entry: &WalEntry) -> Result<u64, WalError> {
        let lsn = self.next_lsn;
        let frame = encode_record(lsn, entry);
        if self.crash_at == Some(lsn) && self.crash_torn {
            // Simulate dying mid-write: half a frame, then the end.
            let half = frame.len() / 2;
            self.file.write_all(&frame[..half])?;
            self.file.sync_data()?;
            std::process::abort();
        }
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        if self.crash_at == Some(lsn) {
            std::process::abort();
        }
        self.next_lsn = lsn + 1;
        Ok(lsn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutation::EdgeMutation;

    fn sample_entries() -> Vec<WalEntry> {
        vec![
            WalEntry::OneshotRun,
            WalEntry::Batch(MutationBatch::new(vec![
                EdgeMutation::insert(1, 2),
                EdgeMutation::delete(3, 4),
            ])),
            WalEntry::IncrementalRun,
            WalEntry::Compact,
            WalEntry::Batch(MutationBatch::default()),
        ]
    }

    fn image(entries: &[WalEntry]) -> Vec<u8> {
        let mut out = Vec::new();
        for (lsn, e) in entries.iter().enumerate() {
            out.extend_from_slice(&encode_record(lsn as u64, e));
        }
        out
    }

    #[test]
    fn roundtrip_all_entry_kinds() {
        let entries = sample_entries();
        let scan = scan_bytes(&image(&entries)).unwrap();
        assert!(!scan.torn_tail);
        assert_eq!(scan.records.len(), entries.len());
        for (i, rec) in scan.records.iter().enumerate() {
            assert_eq!(rec.lsn, i as u64);
            assert_eq!(&rec.entry, &entries[i]);
        }
        assert_eq!(scan.next_lsn(), entries.len() as u64);
    }

    #[test]
    fn torn_tail_is_tolerated_at_every_cut() {
        let entries = sample_entries();
        let full = image(&entries);
        let last_frame = encode_record(4, &entries[4]);
        let body_end = full.len() - last_frame.len();
        for cut in body_end + 1..full.len() {
            let scan = scan_bytes(&full[..cut]).unwrap();
            assert!(scan.torn_tail, "cut at {cut} should be torn");
            assert_eq!(scan.records.len(), 4);
            assert_eq!(scan.valid_bytes, body_end as u64);
        }
    }

    #[test]
    fn crc_corruption_is_an_error() {
        let entries = sample_entries();
        let mut bytes = image(&entries);
        // Flip a byte inside the second record's payload.
        let first_len = encode_record(0, &entries[0]).len();
        bytes[first_len + 10] ^= 0xFF;
        assert!(matches!(
            scan_bytes(&bytes),
            Err(WalError::Corrupt(CodecError::Crc { .. }))
        ));
    }

    #[test]
    fn lsn_gap_is_an_error() {
        let mut bytes = encode_record(0, &WalEntry::OneshotRun);
        bytes.extend_from_slice(&encode_record(2, &WalEntry::IncrementalRun));
        assert!(matches!(
            scan_bytes(&bytes),
            Err(WalError::LsnGap {
                expected: 1,
                found: 2
            })
        ));
    }

    #[test]
    fn appender_resumes_after_torn_tail() {
        let dir = std::env::temp_dir().join(format!("itg-wal-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (mut wal, scan) = Wal::open(&dir).unwrap();
            assert_eq!(scan.records.len(), 0);
            assert_eq!(wal.append(&WalEntry::OneshotRun).unwrap(), 0);
            assert_eq!(wal.append(&WalEntry::IncrementalRun).unwrap(), 1);
        }
        // Tear the tail by appending garbage that looks like a frame start.
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join(WAL_FILE))
                .unwrap();
            f.write_all(&[0x30, 0, 0, 0, 0xAA]).unwrap();
        }
        let (mut wal, scan) = Wal::open(&dir).unwrap();
        assert!(scan.torn_tail);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(wal.next_lsn(), 2);
        assert_eq!(wal.append(&WalEntry::Compact).unwrap(), 2);
        let rescan = scan_bytes(&std::fs::read(dir.join(WAL_FILE)).unwrap()).unwrap();
        assert!(!rescan.torn_tail);
        assert_eq!(rescan.records.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
