//! Segmented, group-committing write-ahead log for the mutation stream
//! (ROADMAP item 2, DESIGN.md §9).
//!
//! Durable incremental sessions log every state-changing command *before*
//! executing it; because the engine's runs are deterministic given the
//! stores and the command sequence, replaying the log over the latest
//! snapshot reconstructs the exact pre-crash state.
//!
//! ## Record frame (all little-endian)
//!
//! ```text
//! [len: u32]  [magic: u16 = 0xA17C]  [ver: u8 = 1]  [tag: u8]  [lsn: u64]  [body…]  [crc: u32]
//!             ^ payload starts here; `len` counts payload bytes only
//! ```
//!
//! `crc` is [`crate::codec::crc32`] over the payload. The reader tolerates
//! exactly one failure shape without complaint: a *torn tail*, i.e. the
//! newest segment ends mid-frame because the process died inside a write.
//! Everything else — bad magic, bad version, a CRC mismatch on a complete
//! frame, a non-consecutive LSN, a torn frame in any *older* segment — is
//! corruption and fails loudly.
//!
//! ## Segments
//!
//! The log is a sequence of size-bounded segment files named
//! `wal-<start_lsn:020>.log` (`ITG_WAL_SEGMENT_BYTES` bounds each one).
//! Rotation happens inside a flush: the live segment is fsynced, the new
//! segment file is created, and the directory entry is fsynced before any
//! record lands in it — a crash at any intermediate point leaves at worst
//! an empty (or unlinked) trailing segment, which recovery tolerates.
//! Once a snapshot covers a prefix of the log, [`Wal::gc_below`] unlinks
//! every segment whose records all precede the snapshot's `wal_start`.
//! The pre-segmentation single-file layout (`wal.log`) is migrated on open
//! by renaming it to the segment starting at LSN 0.
//!
//! ## Group commit
//!
//! [`Wal::append`] is `&self` and thread-safe: concurrent committers
//! enqueue encoded frames under a mutex, and one of them becomes the
//! *flush leader*, writing and fsyncing the whole queue in a single
//! `sync_data`. Committers whose records ride along simply wait on a
//! condvar until the leader reports their LSN durable — one fsync
//! amortized over the group. `ITG_GROUP_COMMIT_US` optionally makes the
//! leader linger before flushing so more committers can join; the default
//! of 0 adds no latency and still batches everything that queued while the
//! previous flush was in flight. An append returns only after its record
//! is durable, so the ack rule is unchanged from fsync-per-append:
//! acknowledged ⇒ recoverable, and recovery may additionally include a
//! durable-but-unacknowledged suffix of the final group (the crash matrix
//! in `kill_recover.rs` pins both directions).
//!
//! ## Fault injection
//!
//! For the kill-and-recover suite: `ITG_CRASH_AT=<lsn>` aborts the process
//! immediately after record `lsn` is durably written (fsync included);
//! with `ITG_CRASH_TORN=1` (or `true`) the record is instead written
//! *partially* (about half its bytes) before the abort, leaving a torn
//! tail for recovery to skip. `ITG_CRASH_ROTATION=<n>` aborts mid-way
//! through the `n`-th segment rotation (new file created, directory entry
//! not yet fsynced). Unparseable values panic loudly — a typo that
//! silently disabled the crash would make the suite vacuous.

use crate::codec::{crc32, CodecError, Reader, Writer};
use crate::fsutil::sync_dir;
use crate::mutation::MutationBatch;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};

/// WAL record magic: the first two payload bytes of every record.
pub const WAL_MAGIC: u16 = 0xA17C;
/// WAL format version; bumped on any layout change.
pub const WAL_VERSION: u8 = 1;
/// Upper bound on a single record's payload, as a corruption guard.
pub const MAX_RECORD_BYTES: u32 = 1 << 30;

/// The legacy (PR 4) single-file WAL name; migrated to the segment
/// starting at LSN 0 on open.
pub const WAL_FILE: &str = "wal.log";

/// Default [`WalOptions::segment_bytes`].
pub const DEFAULT_SEGMENT_BYTES: u64 = 8 << 20;

/// The file name of the segment whose first record carries `start_lsn`.
/// Zero-padded so lexicographic order is LSN order.
pub fn segment_file_name(start_lsn: u64) -> String {
    format!("wal-{start_lsn:020}.log")
}

/// Inverse of [`segment_file_name`]; `None` for non-segment names.
fn parse_segment_name(name: &str) -> Option<u64> {
    let digits = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if digits.len() != 20 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Appender tuning; see the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalOptions {
    /// Rotate to a new segment once the live one holds at least this many
    /// bytes (`ITG_WAL_SEGMENT_BYTES`). A single record larger than the
    /// bound gets a segment to itself.
    pub segment_bytes: u64,
    /// Group-commit window in microseconds (`ITG_GROUP_COMMIT_US`): how
    /// long a flush leader lingers before the shared fsync so more
    /// committers can join the group. 0 (the default) adds no latency and
    /// still batches whatever queued during the previous flush.
    pub group_commit_us: u64,
}

impl Default for WalOptions {
    fn default() -> WalOptions {
        WalOptions {
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            group_commit_us: 0,
        }
    }
}

impl WalOptions {
    /// Options seeded from the environment (`ITG_WAL_SEGMENT_BYTES`,
    /// `ITG_GROUP_COMMIT_US`). These are tuning knobs, so — like the
    /// `EngineConfig` env knobs — garbage values fall back to the default
    /// rather than panicking.
    pub fn from_env() -> WalOptions {
        WalOptions::from_env_lookup(|k| std::env::var(k).ok())
    }

    /// [`WalOptions::from_env`] with an injectable lookup (testable
    /// without process-global environment mutation).
    pub fn from_env_lookup(get: impl Fn(&str) -> Option<String>) -> WalOptions {
        let mut o = WalOptions::default();
        if let Some(n) = get("ITG_WAL_SEGMENT_BYTES").and_then(|v| v.trim().parse().ok()) {
            o.segment_bytes = n;
        }
        if let Some(n) = get("ITG_GROUP_COMMIT_US").and_then(|v| v.trim().parse().ok()) {
            o.group_commit_us = n;
        }
        o
    }
}

/// Parse a fault-injection integer knob. Unlike tuning knobs, an
/// unparseable value panics: a typo that silently disabled the crash
/// would make the kill-and-recover suite vacuous.
pub fn crash_env_u64(key: &str) -> Option<u64> {
    let v = std::env::var(key).ok()?;
    let t = v.trim();
    if t.is_empty() {
        return None;
    }
    match t.parse::<u64>() {
        Ok(n) => Some(n),
        Err(_) => panic!("{key} must be an unsigned integer, got `{v}`"),
    }
}

/// Parse a fault-injection boolean knob: `1`/`true` are on, `0`/`false`
/// (or unset/empty) are off, anything else panics loudly.
pub fn crash_env_bool(key: &str) -> bool {
    let Ok(v) = std::env::var(key) else {
        return false;
    };
    match v.trim().to_ascii_lowercase().as_str() {
        "" | "0" | "false" => false,
        "1" | "true" => true,
        _ => panic!("{key} must be 1/true or 0/false, got `{v}`"),
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct CrashPlan {
    at: Option<u64>,
    torn: bool,
    at_rotation: Option<u64>,
}

impl CrashPlan {
    fn from_env() -> CrashPlan {
        CrashPlan {
            at: crash_env_u64("ITG_CRASH_AT"),
            torn: crash_env_bool("ITG_CRASH_TORN"),
            at_rotation: crash_env_u64("ITG_CRASH_ROTATION"),
        }
    }
}

/// WAL failures: IO from the filesystem layer, corruption from the byte
/// layer, structural damage to the segment sequence, or a previous flush
/// failure poisoning the appender.
#[derive(Debug)]
pub enum WalError {
    Io(std::io::Error),
    Corrupt(CodecError),
    /// Records must carry consecutive LSNs; a gap means a lost write.
    LsnGap { expected: u64, found: u64 },
    /// The segment sequence itself is damaged (duplicate/misnamed start,
    /// torn frame in a non-final segment, …).
    Segment(String),
    /// A previous group flush hit an IO error; the appender refuses
    /// further work because the durable frontier is unknown.
    Poisoned(String),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io error: {e}"),
            WalError::Corrupt(e) => write!(f, "wal corrupt: {e}"),
            WalError::LsnGap { expected, found } => {
                write!(f, "wal lsn gap: expected {expected}, found {found}")
            }
            WalError::Segment(m) => write!(f, "wal segment error: {m}"),
            WalError::Poisoned(m) => write!(f, "wal poisoned by earlier flush failure: {m}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> WalError {
        WalError::Io(e)
    }
}

impl From<CodecError> for WalError {
    fn from(e: CodecError) -> WalError {
        WalError::Corrupt(e)
    }
}

/// One logged command. The engine executes these in order on replay;
/// anything that changes store or session state must pass through here
/// first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalEntry {
    /// The initial one-shot run over `G_0`.
    OneshotRun,
    /// A mutation batch `ΔG_t` (logged before `apply_mutations`).
    Batch(MutationBatch),
    /// An incremental run over the latest snapshot transition.
    IncrementalRun,
    /// An edge-store compaction (collapses delta chains; changes byte
    /// layout, so it must replay at the same point in the history).
    Compact,
}

impl WalEntry {
    fn tag(&self) -> u8 {
        match self {
            WalEntry::OneshotRun => 1,
            WalEntry::Batch(_) => 2,
            WalEntry::IncrementalRun => 3,
            WalEntry::Compact => 4,
        }
    }
}

/// A decoded record: the entry plus its log sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    pub lsn: u64,
    pub entry: WalEntry,
}

/// Encode one record into its on-disk frame (`[len][payload][crc]`).
pub fn encode_record(lsn: u64, entry: &WalEntry) -> Vec<u8> {
    let mut w = Writer::new();
    w.u16(WAL_MAGIC);
    w.u8(WAL_VERSION);
    w.u8(entry.tag());
    w.u64(lsn);
    if let WalEntry::Batch(batch) = entry {
        let body = batch.encode();
        w.buf.extend_from_slice(&body);
    }
    let payload = w.buf;
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame
}

/// Decode one payload (the bytes between `len` and `crc`, already
/// CRC-verified) into a record.
pub fn decode_payload(payload: &[u8]) -> Result<WalRecord, CodecError> {
    let mut r = Reader::new(payload);
    let magic = r.u16()?;
    if magic != WAL_MAGIC {
        return Err(CodecError::BadMagic(magic as u32));
    }
    let ver = r.u8()?;
    if ver != WAL_VERSION {
        return Err(CodecError::BadVersion(ver));
    }
    let tag = r.u8()?;
    let lsn = r.u64()?;
    let entry = match tag {
        1 => WalEntry::OneshotRun,
        2 => {
            let body = &payload[12..];
            let batch = MutationBatch::decode(body).ok_or(CodecError::Truncated)?;
            return Ok(WalRecord {
                lsn,
                entry: WalEntry::Batch(batch),
            });
        }
        3 => WalEntry::IncrementalRun,
        4 => WalEntry::Compact,
        tag => return Err(CodecError::BadTag { what: "wal entry", tag }),
    };
    r.finish()?;
    Ok(WalRecord { lsn, entry })
}

/// One discovered segment, oldest first in [`WalScan::segments`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInfo {
    /// First LSN this segment holds (also encoded in its file name).
    pub start_lsn: u64,
    /// File name relative to the WAL directory.
    pub file: String,
    /// Valid frame bytes (excluding any torn tail).
    pub bytes: u64,
    /// Number of complete records.
    pub records: u64,
}

/// The result of scanning a WAL directory (or a single in-memory image).
#[derive(Debug)]
pub struct WalScan {
    /// All complete, CRC-valid records in LSN order.
    pub records: Vec<WalRecord>,
    /// The LSN the first scanned record must carry — > 0 once GC has
    /// retired segments whose history a snapshot covers.
    pub base_lsn: u64,
    /// Byte length of the *newest* segment's valid prefix (everything
    /// after it is torn).
    pub valid_bytes: u64,
    /// Whether a torn final record was skipped.
    pub torn_tail: bool,
    /// Discovered segments, oldest first (empty for a fresh directory or
    /// an in-memory scan).
    pub segments: Vec<SegmentInfo>,
}

impl WalScan {
    /// The next LSN an appender should use.
    pub fn next_lsn(&self) -> u64 {
        self.records.last().map_or(self.base_lsn, |r| r.lsn + 1)
    }
}

/// Scan one segment image whose first record must carry `expected_lsn`.
/// Returns `(records, valid_bytes, torn_tail)`.
fn scan_segment(
    bytes: &[u8],
    mut expected_lsn: u64,
) -> Result<(Vec<WalRecord>, u64, bool), WalError> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut torn_tail = false;
    while pos < bytes.len() {
        let rest = &bytes[pos..];
        if rest.len() < 4 {
            torn_tail = true;
            break;
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap());
        if len > MAX_RECORD_BYTES {
            return Err(CodecError::Truncated.into());
        }
        let frame_len = 4 + len as usize + 4;
        if rest.len() < frame_len {
            torn_tail = true;
            break;
        }
        let payload = &rest[4..4 + len as usize];
        let stored_crc =
            u32::from_le_bytes(rest[4 + len as usize..frame_len].try_into().unwrap());
        let actual = crc32(payload);
        if stored_crc != actual {
            return Err(CodecError::Crc {
                expected: stored_crc,
                actual,
            }
            .into());
        }
        let rec = decode_payload(payload)?;
        if rec.lsn != expected_lsn {
            return Err(WalError::LsnGap {
                expected: expected_lsn,
                found: rec.lsn,
            });
        }
        expected_lsn += 1;
        records.push(rec);
        pos += frame_len;
    }
    Ok((records, pos as u64, torn_tail))
}

/// Scan a single in-memory log image starting at LSN 0 (the testable
/// core; the property tests drive it directly).
pub fn scan_bytes(bytes: &[u8]) -> Result<WalScan, WalError> {
    let (records, valid_bytes, torn_tail) = scan_segment(bytes, 0)?;
    Ok(WalScan {
        records,
        base_lsn: 0,
        valid_bytes,
        torn_tail,
        segments: Vec::new(),
    })
}

/// List the segment files in `dir`, oldest first. The legacy single-file
/// `wal.log` (not yet migrated by [`Wal::open`]) is reported as the
/// segment starting at LSN 0.
fn list_segments(dir: &Path) -> Result<Vec<(u64, String)>, WalError> {
    let mut segs: Vec<(u64, String)> = Vec::new();
    match std::fs::read_dir(dir) {
        Ok(rd) => {
            for e in rd {
                let name = e?.file_name();
                let Some(name) = name.to_str() else { continue };
                if let Some(start) = parse_segment_name(name) {
                    segs.push((start, name.to_string()));
                }
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e.into()),
    }
    if dir.join(WAL_FILE).exists() {
        if segs.iter().any(|(s, _)| *s == 0) {
            return Err(WalError::Segment(format!(
                "both the legacy {WAL_FILE} and {} exist",
                segment_file_name(0)
            )));
        }
        segs.push((0, WAL_FILE.to_string()));
    }
    segs.sort();
    for pair in segs.windows(2) {
        if pair[0].0 == pair[1].0 {
            return Err(WalError::Segment(format!(
                "segments {} and {} share start LSN {}",
                pair[0].1, pair[1].1, pair[0].0
            )));
        }
    }
    Ok(segs)
}

/// Scan every segment in a WAL directory, validating cross-segment LSN
/// continuity. A torn tail is tolerated only in the newest segment; a
/// torn frame in any older segment is corruption.
pub fn scan_dir(dir: &Path) -> Result<WalScan, WalError> {
    let segs = list_segments(dir)?;
    let base_lsn = segs.first().map_or(0, |(s, _)| *s);
    let mut records = Vec::new();
    let mut segments = Vec::new();
    let mut expected = base_lsn;
    let mut valid_bytes = 0u64;
    let mut torn_tail = false;
    let last_idx = segs.len().saturating_sub(1);
    for (i, (start, name)) in segs.iter().enumerate() {
        if *start != expected {
            return Err(WalError::Segment(format!(
                "segment {name} starts at LSN {start}, expected {expected}"
            )));
        }
        let mut bytes = Vec::new();
        File::open(dir.join(name))?.read_to_end(&mut bytes)?;
        let (recs, valid, torn) = scan_segment(&bytes, expected)?;
        if torn && i != last_idx {
            return Err(WalError::Segment(format!(
                "torn frame inside non-final segment {name}"
            )));
        }
        expected += recs.len() as u64;
        segments.push(SegmentInfo {
            start_lsn: *start,
            file: name.clone(),
            bytes: valid,
            records: recs.len() as u64,
        });
        records.extend(recs);
        if i == last_idx {
            valid_bytes = valid;
            torn_tail = torn;
        }
    }
    Ok(WalScan {
        records,
        base_lsn,
        valid_bytes,
        torn_tail,
        segments,
    })
}

/// Cumulative appender statistics; see [`Wal::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// `sync_data` calls issued on segment files carrying record bytes —
    /// the price group commit amortizes.
    pub fsyncs: u64,
    /// Records made durable.
    pub flushed_records: u64,
    /// Segment rotations performed by this handle.
    pub rotations: u64,
}

struct WalQueue {
    next_lsn: u64,
    /// Records with `lsn < durable_lsn` are fsynced.
    durable_lsn: u64,
    /// Encoded frames awaiting flush, in LSN order.
    pending: Vec<(u64, Vec<u8>)>,
    /// A flush leader is between "drained the queue" and "reported
    /// results"; exactly one at a time.
    flushing: bool,
    /// Sticky error from a failed flush: the durable frontier is unknown,
    /// so every subsequent append fails too.
    poisoned: Option<String>,
    stats: WalStats,
    /// Flush batch sizes since the last [`Wal::drain_group_sizes`] call
    /// (feeds the `wal/group_size` histogram).
    group_sizes: Vec<u64>,
}

struct WalIo {
    file: File,
    seg_bytes: u64,
    /// Live segments, oldest first; the last one is being appended to.
    segments: Vec<SegmentInfo>,
    /// Rotations performed by this handle (drives `ITG_CRASH_ROTATION`).
    rotations_seen: u64,
}

struct WalInner {
    dir: PathBuf,
    opts: WalOptions,
    crash: CrashPlan,
    queue: Mutex<WalQueue>,
    /// Separate from `queue` so committers can keep enqueuing while the
    /// leader holds the file through a flush.
    io: Mutex<WalIo>,
    flushed: Condvar,
}

/// Thread-safe appender handle over a segmented WAL directory. Cloning is
/// cheap and shares the underlying log (the group-commit tests hand one
/// clone to each committer thread).
#[derive(Clone)]
pub struct Wal {
    inner: Arc<WalInner>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.inner.dir)
            .field("next_lsn", &self.next_lsn())
            .finish()
    }
}

impl Wal {
    /// [`Wal::open_with`] using [`WalOptions::from_env`].
    pub fn open(dir: &Path) -> Result<(Wal, WalScan), WalError> {
        Wal::open_with(dir, WalOptions::from_env())
    }

    /// Open (or create) the segmented WAL in `dir` for appending:
    /// migrate a legacy `wal.log`, scan and validate every segment,
    /// truncate a torn tail in the newest one so new frames never land
    /// after garbage, and return the appender plus the scan of the valid
    /// history.
    pub fn open_with(dir: &Path, opts: WalOptions) -> Result<(Wal, WalScan), WalError> {
        std::fs::create_dir_all(dir)?;
        let legacy = dir.join(WAL_FILE);
        if legacy.exists() {
            let target = dir.join(segment_file_name(0));
            if target.exists() {
                return Err(WalError::Segment(format!(
                    "both the legacy {WAL_FILE} and {} exist",
                    segment_file_name(0)
                )));
            }
            std::fs::rename(&legacy, &target)?;
            sync_dir(dir)?;
        }
        let scan = scan_dir(dir)?;
        let mut segments = scan.segments.clone();
        let (live_name, live_valid) = match segments.last() {
            Some(s) => (s.file.clone(), s.bytes),
            None => {
                let name = segment_file_name(0);
                segments.push(SegmentInfo {
                    start_lsn: 0,
                    file: name.clone(),
                    bytes: 0,
                    records: 0,
                });
                (name, 0)
            }
        };
        let created = scan.segments.is_empty();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(&live_name))?;
        if created {
            file.sync_all()?;
            sync_dir(dir)?;
        }
        if scan.torn_tail {
            file.set_len(live_valid)?;
            file.sync_data()?;
        }
        let next_lsn = scan.next_lsn();
        let wal = Wal {
            inner: Arc::new(WalInner {
                dir: dir.to_path_buf(),
                opts,
                crash: CrashPlan::from_env(),
                queue: Mutex::new(WalQueue {
                    next_lsn,
                    durable_lsn: next_lsn,
                    pending: Vec::new(),
                    flushing: false,
                    poisoned: None,
                    stats: WalStats::default(),
                    group_sizes: Vec::new(),
                }),
                io: Mutex::new(WalIo {
                    file,
                    seg_bytes: live_valid,
                    segments,
                    rotations_seen: 0,
                }),
                flushed: Condvar::new(),
            }),
        };
        Ok((wal, scan))
    }

    /// The LSN the next [`Wal::append`] will assign.
    pub fn next_lsn(&self) -> u64 {
        self.inner.queue.lock().unwrap().next_lsn
    }

    /// The WAL directory.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// Cumulative fsync/record/rotation counts.
    pub fn stats(&self) -> WalStats {
        self.inner.queue.lock().unwrap().stats
    }

    /// Drain the flush batch sizes recorded since the last call (one
    /// entry per group fsync; feeds the `wal/group_size` histogram).
    pub fn drain_group_sizes(&self) -> Vec<u64> {
        std::mem::take(&mut self.inner.queue.lock().unwrap().group_sizes)
    }

    /// The live segment file names, oldest first.
    pub fn segment_files(&self) -> Vec<String> {
        self.inner
            .io
            .lock()
            .unwrap()
            .segments
            .iter()
            .map(|s| s.file.clone())
            .collect()
    }

    /// Unlink every segment whose records all have `lsn < keep_from`
    /// (i.e. whose successor segment starts at or before `keep_from`).
    /// The live segment is never removed. Returns the removed file names.
    /// Callers must only pass a `keep_from` covered by a durably
    /// committed snapshot — the manifest write is the commit point.
    pub fn gc_below(&self, keep_from: u64) -> Result<Vec<String>, WalError> {
        let mut io = self.inner.io.lock().unwrap();
        let mut removed = Vec::new();
        while io.segments.len() > 1 && io.segments[1].start_lsn <= keep_from {
            let seg = io.segments.remove(0);
            std::fs::remove_file(self.inner.dir.join(&seg.file))?;
            removed.push(seg.file);
        }
        if !removed.is_empty() {
            sync_dir(&self.inner.dir)?;
        }
        Ok(removed)
    }

    /// Append one entry and return its LSN once it is durable. This is
    /// the log-before-execute point: callers must not mutate state until
    /// this returns. Thread-safe; concurrent appends coalesce into group
    /// fsyncs (see the module docs).
    pub fn append(&self, entry: &WalEntry) -> Result<u64, WalError> {
        let inner = &*self.inner;
        let mut q = inner.queue.lock().unwrap();
        if let Some(msg) = &q.poisoned {
            return Err(WalError::Poisoned(msg.clone()));
        }
        let lsn = q.next_lsn;
        q.next_lsn += 1;
        let frame = encode_record(lsn, entry);
        q.pending.push((lsn, frame));
        loop {
            if q.durable_lsn > lsn {
                return Ok(lsn);
            }
            if let Some(msg) = &q.poisoned {
                return Err(WalError::Poisoned(msg.clone()));
            }
            if !q.flushing {
                // Become the flush leader for everything queued so far
                // (our own record included — it was pushed above).
                q.flushing = true;
                drop(q);
                if inner.opts.group_commit_us > 0 {
                    std::thread::sleep(std::time::Duration::from_micros(
                        inner.opts.group_commit_us,
                    ));
                }
                let batch = std::mem::take(&mut inner.queue.lock().unwrap().pending);
                let flush_res = {
                    let mut io = inner.io.lock().unwrap();
                    self.flush(&mut io, &batch)
                };
                let mut q = inner.queue.lock().unwrap();
                q.flushing = false;
                let result = match flush_res {
                    Ok((fsyncs, rotations)) => {
                        q.durable_lsn = batch.last().expect("leader flushes >= 1 record").0 + 1;
                        q.stats.fsyncs += fsyncs;
                        q.stats.rotations += rotations;
                        q.stats.flushed_records += batch.len() as u64;
                        q.group_sizes.push(batch.len() as u64);
                        Ok(lsn)
                    }
                    Err(e) => {
                        let msg = e.to_string();
                        q.poisoned = Some(msg.clone());
                        Err(WalError::Poisoned(msg))
                    }
                };
                drop(q);
                inner.flushed.notify_all();
                return result;
            }
            q = inner.flushed.wait(q).unwrap();
        }
    }

    /// Leader-only: write `batch` (rotating as needed) and fsync once at
    /// the end. Returns `(fsyncs, rotations)` performed.
    fn flush(&self, io: &mut WalIo, batch: &[(u64, Vec<u8>)]) -> Result<(u64, u64), WalError> {
        let inner = &*self.inner;
        let mut fsyncs = 0u64;
        let mut rotations = 0u64;
        for (lsn, frame) in batch {
            if io.seg_bytes > 0 && io.seg_bytes + frame.len() as u64 > inner.opts.segment_bytes
            {
                // Rotate: seal the live segment, create the next one, and
                // fsync the directory entry before any record lands in it.
                io.file.sync_data()?;
                fsyncs += 1;
                io.rotations_seen += 1;
                rotations += 1;
                let name = segment_file_name(*lsn);
                let f = OpenOptions::new()
                    .create_new(true)
                    .append(true)
                    .open(inner.dir.join(&name))?;
                if inner.crash.at_rotation == Some(io.rotations_seen) {
                    // Die between creating the segment file and fsyncing
                    // its directory entry: recovery must tolerate an
                    // empty — or vanished — trailing segment.
                    std::process::abort();
                }
                f.sync_all()?;
                sync_dir(&inner.dir)?;
                io.file = f;
                io.seg_bytes = 0;
                io.segments.push(SegmentInfo {
                    start_lsn: *lsn,
                    file: name,
                    bytes: 0,
                    records: 0,
                });
            }
            if inner.crash.at == Some(*lsn) && inner.crash.torn {
                // Simulate dying mid-write: half a frame, then the end.
                let half = frame.len() / 2;
                let _ = io.file.write_all(&frame[..half]);
                let _ = io.file.sync_data();
                std::process::abort();
            }
            io.file.write_all(frame)?;
            io.seg_bytes += frame.len() as u64;
            let live = io.segments.last_mut().expect("live segment exists");
            live.bytes += frame.len() as u64;
            live.records += 1;
            if inner.crash.at == Some(*lsn) {
                // Record `lsn` durable (fsync included), then abort —
                // mid-group, so earlier records in this flush are durable
                // and later ones are lost, whether or not their
                // committers were acknowledged.
                let _ = io.file.sync_data();
                std::process::abort();
            }
        }
        io.file.sync_data()?;
        fsyncs += 1;
        Ok((fsyncs, rotations))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutation::EdgeMutation;

    fn sample_entries() -> Vec<WalEntry> {
        vec![
            WalEntry::OneshotRun,
            WalEntry::Batch(MutationBatch::new(vec![
                EdgeMutation::insert(1, 2),
                EdgeMutation::delete(3, 4),
            ])),
            WalEntry::IncrementalRun,
            WalEntry::Compact,
            WalEntry::Batch(MutationBatch::default()),
        ]
    }

    fn image(entries: &[WalEntry]) -> Vec<u8> {
        let mut out = Vec::new();
        for (lsn, e) in entries.iter().enumerate() {
            out.extend_from_slice(&encode_record(lsn as u64, e));
        }
        out
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("itg-wal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_all_entry_kinds() {
        let entries = sample_entries();
        let scan = scan_bytes(&image(&entries)).unwrap();
        assert!(!scan.torn_tail);
        assert_eq!(scan.records.len(), entries.len());
        for (i, rec) in scan.records.iter().enumerate() {
            assert_eq!(rec.lsn, i as u64);
            assert_eq!(&rec.entry, &entries[i]);
        }
        assert_eq!(scan.next_lsn(), entries.len() as u64);
    }

    #[test]
    fn torn_tail_is_tolerated_at_every_cut() {
        let entries = sample_entries();
        let full = image(&entries);
        let last_frame = encode_record(4, &entries[4]).len();
        let body_end = full.len() - last_frame;
        for cut in body_end + 1..full.len() {
            let scan = scan_bytes(&full[..cut]).unwrap();
            assert!(scan.torn_tail, "cut at {cut} should be torn");
            assert_eq!(scan.records.len(), 4);
            assert_eq!(scan.valid_bytes, body_end as u64);
        }
    }

    #[test]
    fn crc_corruption_is_an_error() {
        let entries = sample_entries();
        let mut bytes = image(&entries);
        // Flip a byte inside the second record's payload.
        let first_len = encode_record(0, &entries[0]).len();
        bytes[first_len + 10] ^= 0xFF;
        assert!(matches!(
            scan_bytes(&bytes),
            Err(WalError::Corrupt(CodecError::Crc { .. }))
        ));
    }

    #[test]
    fn lsn_gap_is_an_error() {
        let mut bytes = encode_record(0, &WalEntry::OneshotRun);
        bytes.extend_from_slice(&encode_record(2, &WalEntry::IncrementalRun));
        assert!(matches!(
            scan_bytes(&bytes),
            Err(WalError::LsnGap {
                expected: 1,
                found: 2
            })
        ));
    }

    #[test]
    fn appender_resumes_after_torn_tail() {
        let dir = tmp_dir("resume");
        {
            let (wal, scan) = Wal::open(&dir).unwrap();
            assert_eq!(scan.records.len(), 0);
            assert_eq!(wal.append(&WalEntry::OneshotRun).unwrap(), 0);
            assert_eq!(wal.append(&WalEntry::IncrementalRun).unwrap(), 1);
        }
        // Tear the tail by appending garbage that looks like a frame start.
        {
            let mut f = OpenOptions::new()
                .append(true)
                .open(dir.join(segment_file_name(0)))
                .unwrap();
            f.write_all(&[0x30, 0, 0, 0, 0xAA]).unwrap();
        }
        let (wal, scan) = Wal::open(&dir).unwrap();
        assert!(scan.torn_tail);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(wal.next_lsn(), 2);
        assert_eq!(wal.append(&WalEntry::Compact).unwrap(), 2);
        let rescan = scan_dir(&dir).unwrap();
        assert!(!rescan.torn_tail);
        assert_eq!(rescan.records.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_splits_segments_and_scan_reassembles() {
        let dir = tmp_dir("rotate");
        let opts = WalOptions {
            segment_bytes: 48,
            group_commit_us: 0,
        };
        let entries = sample_entries();
        {
            let (wal, _) = Wal::open_with(&dir, opts.clone()).unwrap();
            for e in &entries {
                wal.append(e).unwrap();
            }
            assert!(wal.stats().rotations >= 1, "tiny segments must rotate");
            assert_eq!(wal.segment_files().len() as u64, wal.stats().rotations + 1);
        }
        let scan = scan_dir(&dir).unwrap();
        assert!(scan.segments.len() > 1);
        assert_eq!(scan.records.len(), entries.len());
        for (i, rec) in scan.records.iter().enumerate() {
            assert_eq!(rec.lsn, i as u64);
            assert_eq!(&rec.entry, &entries[i]);
        }
        // Reopen resumes in the newest segment.
        let (wal, scan) = Wal::open_with(&dir, opts).unwrap();
        assert_eq!(scan.next_lsn(), entries.len() as u64);
        assert_eq!(wal.append(&WalEntry::Compact).unwrap(), entries.len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_below_unlinks_covered_segments_only() {
        let dir = tmp_dir("gc");
        let opts = WalOptions {
            segment_bytes: 1, // every record gets its own segment
            group_commit_us: 0,
        };
        let (wal, _) = Wal::open_with(&dir, opts).unwrap();
        for _ in 0..5 {
            wal.append(&WalEntry::IncrementalRun).unwrap();
        }
        assert_eq!(wal.segment_files().len(), 5);
        let removed = wal.gc_below(3).unwrap();
        assert_eq!(removed.len(), 3, "segments for lsns 0,1,2 are covered");
        let scan = scan_dir(&dir).unwrap();
        assert_eq!(scan.base_lsn, 3);
        assert_eq!(scan.next_lsn(), 5);
        assert_eq!(
            scan.records.iter().map(|r| r.lsn).collect::<Vec<_>>(),
            vec![3, 4]
        );
        // The live segment survives even when fully covered.
        let removed = wal.gc_below(u64::MAX).unwrap();
        assert_eq!(removed.len(), 1);
        assert_eq!(wal.segment_files().len(), 1);
        // Appends continue after GC.
        assert_eq!(wal.append(&WalEntry::Compact).unwrap(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_single_file_layout_migrates_on_open() {
        let dir = tmp_dir("legacy");
        std::fs::create_dir_all(&dir).unwrap();
        let entries = sample_entries();
        std::fs::write(dir.join(WAL_FILE), image(&entries)).unwrap();
        let (wal, scan) = Wal::open(&dir).unwrap();
        assert_eq!(scan.records.len(), entries.len());
        assert!(!dir.join(WAL_FILE).exists(), "legacy file renamed");
        assert!(dir.join(segment_file_name(0)).exists());
        assert_eq!(wal.append(&WalEntry::Compact).unwrap(), entries.len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_name_roundtrip() {
        assert_eq!(segment_file_name(0), "wal-00000000000000000000.log");
        assert_eq!(parse_segment_name(&segment_file_name(7)), Some(7));
        assert_eq!(parse_segment_name(&segment_file_name(u64::MAX)), Some(u64::MAX));
        assert_eq!(parse_segment_name("wal.log"), None);
        assert_eq!(parse_segment_name("wal-123.log"), None, "unpadded");
        assert_eq!(parse_segment_name("snapshot-0.bin"), None);
    }

    #[test]
    fn wal_options_env_parsing_falls_back_on_garbage() {
        let o = WalOptions::from_env_lookup(|k| match k {
            "ITG_WAL_SEGMENT_BYTES" => Some(" 4096 ".into()),
            "ITG_GROUP_COMMIT_US" => Some("250".into()),
            _ => None,
        });
        assert_eq!(o.segment_bytes, 4096);
        assert_eq!(o.group_commit_us, 250);
        let junk = WalOptions::from_env_lookup(|k| {
            (k == "ITG_WAL_SEGMENT_BYTES").then(|| "huge".into())
        });
        assert_eq!(junk.segment_bytes, DEFAULT_SEGMENT_BYTES);
        assert_eq!(junk.group_commit_us, 0);
    }
}
