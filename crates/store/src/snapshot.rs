//! Snapshot serialization for the durability subsystem (DESIGN.md §9).
//!
//! A snapshot is a *full-fidelity* image of store state: the edge store's
//! exact segment-chain structure (base CSR, per-delta insert/delete
//! segments, tombstone and resurrection sets, degree arrays) and the
//! attribute stores' baseline plus per-superstep delta chains. Fidelity
//! matters because the engine's float accumulation order follows the
//! segment scan order — flattening the chain into one CSR would produce a
//! *semantically* equal graph whose incremental runs are no longer
//! byte-identical to the pre-crash session.
//!
//! This module holds the shared [`Value`]/[`ColumnData`] codecs (bitwise
//! floats, tag-per-variant — the same scheme as the engine's transport
//! wire format) and the snapshot *file* container:
//!
//! ```text
//! [magic: u32 = 0x17B0_5A9D]  [ver: u8 = 1]  [len: u64]  [payload…]  [crc: u32]
//! ```
//!
//! `crc` is [`crate::codec::crc32`] over the payload. Files are written
//! atomically (tmp + fsync + rename) so a crash mid-checkpoint never
//! leaves a referenced-but-torn snapshot: the manifest is only updated
//! after the rename lands.

use crate::codec::{crc32, CodecError, CodecResult, Reader, Writer};
use itg_gsa::value::{ColumnData, PrimType, Value, ValueType};
use std::io::Write as _;
use std::path::Path;

/// Snapshot file magic (first four bytes).
pub const SNAPSHOT_MAGIC: u32 = 0x17B0_5A9D;
/// Snapshot container version; bumped on any layout change.
pub const SNAPSHOT_VERSION: u8 = 1;

/// Snapshot failures: filesystem IO or byte-level corruption.
#[derive(Debug)]
pub enum SnapshotError {
    Io(std::io::Error),
    Corrupt(CodecError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::Corrupt(e) => write!(f, "snapshot corrupt: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> SnapshotError {
        SnapshotError::Io(e)
    }
}

impl From<CodecError> for SnapshotError {
    fn from(e: CodecError) -> SnapshotError {
        SnapshotError::Corrupt(e)
    }
}

/// Atomically write a snapshot payload to `path` (container framing, tmp
/// file, fsync, rename, directory fsync).
///
/// The directory fsync matters: fsync(file) makes the *contents* durable,
/// but the rename's directory entry needs its own fsync or a crash can
/// lose the file. The manifest naming this snapshot is the checkpoint
/// commit point (see [`crate::manifest::Manifest::store`]) and is written
/// only after this returns, so the entry it references must already be
/// crash-proof.
pub fn write_file(path: &Path, payload: &[u8]) -> Result<(), SnapshotError> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&SNAPSHOT_MAGIC.to_le_bytes())?;
        f.write_all(&[SNAPSHOT_VERSION])?;
        f.write_all(&(payload.len() as u64).to_le_bytes())?;
        f.write_all(payload)?;
        f.write_all(&crc32(payload).to_le_bytes())?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        crate::fsutil::sync_dir(dir)?;
    }
    Ok(())
}

/// Read and verify a snapshot file, returning its payload.
pub fn read_file(path: &Path) -> Result<Vec<u8>, SnapshotError> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < 4 + 1 + 8 + 4 {
        return Err(CodecError::Truncated.into());
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
    if magic != SNAPSHOT_MAGIC {
        return Err(CodecError::BadMagic(magic).into());
    }
    let ver = bytes[4];
    if ver != SNAPSHOT_VERSION {
        return Err(CodecError::BadVersion(ver).into());
    }
    let len = u64::from_le_bytes(bytes[5..13].try_into().unwrap()) as usize;
    if bytes.len() != 13 + len + 4 {
        return Err(CodecError::Truncated.into());
    }
    let payload = &bytes[13..13 + len];
    let stored = u32::from_le_bytes(bytes[13 + len..].try_into().unwrap());
    let actual = crc32(payload);
    if stored != actual {
        return Err(CodecError::Crc {
            expected: stored,
            actual,
        }
        .into());
    }
    Ok(payload.to_vec())
}

// ---------------------------------------------------------------
// Value / type / column codecs (shared by the store snapshot methods and
// the engine's session-state serializer).
// ---------------------------------------------------------------

pub fn put_prim_type(w: &mut Writer, t: PrimType) {
    w.u8(match t {
        PrimType::Bool => 0,
        PrimType::Int => 1,
        PrimType::Long => 2,
        PrimType::Float => 3,
        PrimType::Double => 4,
    });
}

pub fn get_prim_type(r: &mut Reader<'_>) -> CodecResult<PrimType> {
    Ok(match r.u8()? {
        0 => PrimType::Bool,
        1 => PrimType::Int,
        2 => PrimType::Long,
        3 => PrimType::Float,
        4 => PrimType::Double,
        tag => return Err(CodecError::BadTag { what: "prim type", tag }),
    })
}

pub fn put_value_type(w: &mut Writer, t: &ValueType) {
    match t {
        ValueType::Prim(p) => {
            w.u8(0);
            put_prim_type(w, *p);
        }
        ValueType::Array(p, len) => {
            w.u8(1);
            put_prim_type(w, *p);
            w.u64(*len as u64);
        }
    }
}

pub fn get_value_type(r: &mut Reader<'_>) -> CodecResult<ValueType> {
    Ok(match r.u8()? {
        0 => ValueType::Prim(get_prim_type(r)?),
        1 => {
            let p = get_prim_type(r)?;
            let len = r.u64()? as usize;
            ValueType::Array(p, len)
        }
        tag => return Err(CodecError::BadTag { what: "value type", tag }),
    })
}

pub fn put_value(w: &mut Writer, v: &Value) {
    match v {
        Value::Bool(b) => {
            w.u8(0);
            w.bool(*b);
        }
        Value::Int(x) => {
            w.u8(1);
            w.i32(*x);
        }
        Value::Long(x) => {
            w.u8(2);
            w.i64(*x);
        }
        Value::Float(x) => {
            w.u8(3);
            w.f32(*x);
        }
        Value::Double(x) => {
            w.u8(4);
            w.f64(*x);
        }
        Value::Array(items) => {
            w.u8(5);
            w.u32(items.len() as u32);
            for item in items {
                put_value(w, item);
            }
        }
    }
}

pub fn get_value(r: &mut Reader<'_>) -> CodecResult<Value> {
    Ok(match r.u8()? {
        0 => Value::Bool(r.bool()?),
        1 => Value::Int(r.i32()?),
        2 => Value::Long(r.i64()?),
        3 => Value::Float(r.f32()?),
        4 => Value::Double(r.f64()?),
        5 => {
            let n = r.u32()? as usize;
            let mut items = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                items.push(get_value(r)?);
            }
            Value::Array(items)
        }
        tag => return Err(CodecError::BadTag { what: "value", tag }),
    })
}

pub fn put_column(w: &mut Writer, col: &ColumnData) {
    match col {
        ColumnData::Bool(v) => {
            w.u8(0);
            w.u64(v.len() as u64);
            for &b in v {
                w.bool(b);
            }
        }
        ColumnData::Int(v) => {
            w.u8(1);
            w.u64(v.len() as u64);
            for &x in v {
                w.i32(x);
            }
        }
        ColumnData::Long(v) => {
            w.u8(2);
            w.u64(v.len() as u64);
            for &x in v {
                w.i64(x);
            }
        }
        ColumnData::Float(v) => {
            w.u8(3);
            w.u64(v.len() as u64);
            for &x in v {
                w.f32(x);
            }
        }
        ColumnData::Double(v) => {
            w.u8(4);
            w.u64(v.len() as u64);
            for &x in v {
                w.f64(x);
            }
        }
        ColumnData::Array(rows) => {
            w.u8(5);
            w.u64(rows.len() as u64);
            for row in rows {
                w.u32(row.len() as u32);
                for v in row {
                    put_value(w, v);
                }
            }
        }
    }
}

pub fn get_column(r: &mut Reader<'_>) -> CodecResult<ColumnData> {
    let tag = r.u8()?;
    let n = r.u64()? as usize;
    let cap = n.min(1 << 20);
    Ok(match tag {
        0 => {
            let mut v = Vec::with_capacity(cap);
            for _ in 0..n {
                v.push(r.bool()?);
            }
            ColumnData::Bool(v)
        }
        1 => {
            let mut v = Vec::with_capacity(cap);
            for _ in 0..n {
                v.push(r.i32()?);
            }
            ColumnData::Int(v)
        }
        2 => {
            let mut v = Vec::with_capacity(cap);
            for _ in 0..n {
                v.push(r.i64()?);
            }
            ColumnData::Long(v)
        }
        3 => {
            let mut v = Vec::with_capacity(cap);
            for _ in 0..n {
                v.push(r.f32()?);
            }
            ColumnData::Float(v)
        }
        4 => {
            let mut v = Vec::with_capacity(cap);
            for _ in 0..n {
                v.push(r.f64()?);
            }
            ColumnData::Double(v)
        }
        5 => {
            let mut rows = Vec::with_capacity(cap);
            for _ in 0..n {
                let m = r.u32()? as usize;
                let mut row = Vec::with_capacity(m.min(1 << 16));
                for _ in 0..m {
                    row.push(get_value(r)?);
                }
                rows.push(row);
            }
            ColumnData::Array(rows)
        }
        tag => return Err(CodecError::BadTag { what: "column", tag }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_and_column_roundtrip_bitwise() {
        let vals = [
            Value::Bool(true),
            Value::Int(-5),
            Value::Long(i64::MAX),
            Value::Float(f32::NAN),
            Value::Double(-0.0),
            Value::Array(vec![Value::Int(1), Value::Double(2.5)]),
        ];
        let mut w = Writer::new();
        for v in &vals {
            put_value(&mut w, v);
        }
        let mut r = Reader::new(&w.buf);
        for v in &vals {
            let got = get_value(&mut r).unwrap();
            // Bitwise comparison through re-encode.
            let mut a = Writer::new();
            put_value(&mut a, v);
            let mut b = Writer::new();
            put_value(&mut b, &got);
            assert_eq!(a.buf, b.buf);
        }
        r.finish().unwrap();

        let cols = [
            ColumnData::Bool(vec![true, false]),
            ColumnData::Int(vec![1, -2]),
            ColumnData::Long(vec![i64::MIN]),
            ColumnData::Float(vec![f32::INFINITY, -0.0]),
            ColumnData::Double(vec![f64::NAN]),
            ColumnData::Array(vec![vec![Value::Int(9)], vec![]]),
        ];
        let mut w = Writer::new();
        for c in &cols {
            put_column(&mut w, c);
        }
        let mut r = Reader::new(&w.buf);
        for c in &cols {
            let got = get_column(&mut r).unwrap();
            let mut a = Writer::new();
            put_column(&mut a, c);
            let mut b = Writer::new();
            put_column(&mut b, &got);
            assert_eq!(a.buf, b.buf);
        }
        r.finish().unwrap();
    }

    #[test]
    fn type_roundtrip() {
        for t in [
            ValueType::Prim(PrimType::Bool),
            ValueType::Prim(PrimType::Double),
            ValueType::Array(PrimType::Long, 7),
        ] {
            let mut w = Writer::new();
            put_value_type(&mut w, &t);
            let mut r = Reader::new(&w.buf);
            assert_eq!(get_value_type(&mut r).unwrap(), t);
            r.finish().unwrap();
        }
    }

    #[test]
    fn file_container_detects_corruption() {
        let dir = std::env::temp_dir().join(format!("itg-snap-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.snap");
        write_file(&path, b"hello snapshot").unwrap();
        assert_eq!(read_file(&path).unwrap(), b"hello snapshot");

        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(read_file(&path), Err(SnapshotError::Corrupt(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
