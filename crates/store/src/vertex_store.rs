//! The delta-based vertex attribute store (paper §5.5).
//!
//! Vertex attribute values change along two axes: across *supersteps*
//! within one run and across *snapshots* of the dynamic graph. For every
//! superstep `s` the store keeps a chain of after-image *runs*, one per
//! snapshot: run (t, s) holds the values of every vertex `v` with
//! `A_{t,s}(v) ≠ A_{t,s-1}(v)` or `A_{t,s}(v) ≠ A_{t-1,s}(v)`.
//!
//! The OR condition makes a simple invariant hold (and the unit tests pin
//! it): an in-memory array holding `A_{t,s}` becomes `A_{t,s+1}` by
//! overlaying, oldest-first, every run recorded for superstep `s+1` up to
//! snapshot `t`. This is exactly the paper's advance-by-loading-deltas read
//! path, and its repeated cost is what the merge policy (see
//! [`crate::maintenance`]) trades against the write cost of consolidation.

use crate::codec::{CodecResult, Reader, Writer};
use crate::maintenance::{ChainSummary, MaintenancePolicy};
use crate::stats::IoStats;
use itg_gsa::value::{ColumnData, Value, ValueType};
use itg_gsa::{FxHashMap, FxHashSet};

/// One after-image run: columnar values for the changed vertices of one
/// (snapshot, superstep) cell.
#[derive(Debug, Clone)]
pub struct Run {
    pub snapshot: usize,
    pub vids: Vec<u32>,
    pub cols: Vec<ColumnData>,
}

impl Run {
    pub fn len(&self) -> usize {
        self.vids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vids.is_empty()
    }

    /// Serialized size: 4 bytes per vid plus the column payloads.
    pub fn size_bytes(&self) -> u64 {
        let per_row: u64 = 4 + self.cols.iter().map(|c| c.elem_bytes() as u64).sum::<u64>();
        per_row * self.vids.len() as u64
    }
}

/// The per-superstep delta chain: an optional consolidated checkpoint run
/// followed by the unmerged per-snapshot runs.
#[derive(Debug, Default)]
struct Chain {
    checkpoint: Option<Run>,
    runs: Vec<Run>,
}

impl Chain {
    fn summary(&self, snapshot: usize) -> ChainSummary {
        let mut distinct: FxHashSet<u32> = FxHashSet::default();
        if let Some(cp) = &self.checkpoint {
            distinct.extend(cp.vids.iter().copied());
        }
        let mut weighted = 0u64;
        for r in &self.runs {
            distinct.extend(r.vids.iter().copied());
            weighted += (snapshot.saturating_sub(r.snapshot)) as u64 * r.len() as u64;
        }
        ChainSummary {
            snapshot,
            distinct_vertices: distinct.len() as u64,
            weighted_run_reads: weighted,
            run_count: self.runs.len(),
        }
    }
}

/// One pinned NGW window segment: the fully reconstructed columns of
/// superstep `s` with every run of `snapshot < t_bound` already overlaid.
#[derive(Debug)]
struct CacheEntry {
    cols: Vec<ColumnData>,
    /// Runs with `snapshot < t_bound` are already overlaid; a hit refreshes
    /// the entry by overlaying only the `[t_bound, t)` suffix.
    t_bound: usize,
    hits: u64,
    /// Approximate bytes a fresh full reconstruction would read — the
    /// benefit term of the eviction score.
    reload_bytes: u64,
}

/// The NGW segment cache (DESIGN.md §10.2): window images pinned across
/// supersteps and mutation batches, keyed by superstep. Capacity 0 (the
/// default) disables pinning but still counts every cacheable load as a
/// miss so `cache/hit + cache/miss` equals the window-load count at every
/// capacity. Never serialized — a decoded store starts cold.
#[derive(Debug, Default)]
struct NgwCache {
    capacity_bytes: u64,
    entries: FxHashMap<usize, CacheEntry>,
}

/// Base rows for a cacheable window load ([`AttrStore::load_window_before`]).
#[derive(Debug, Clone, Copy)]
pub enum WindowBase<'a> {
    /// Start from the store's baseline columns (a [`AttrStore::materialize_init`]
    /// read, charged as such on a miss).
    Init,
    /// Start from caller-provided rows (accumulator identity columns; no
    /// read charge — the engine synthesizes them).
    Rows(&'a [ColumnData]),
}

/// A group of vertex attribute columns with per-superstep delta chains.
/// The engine instantiates one for non-accumulator attributes (`A_{t,s}`)
/// and one for accumulator attributes (`A^accm_{t,s}`).
#[derive(Debug)]
pub struct AttrStore {
    col_types: Vec<ValueType>,
    n: usize,
    /// Baseline columns: `A_{0,0}` as written by Initialize at snapshot 0.
    init: Vec<ColumnData>,
    chains: Vec<Chain>,
    policy: MaintenancePolicy,
    stats: IoStats,
    merges_performed: u64,
    cache: NgwCache,
}

impl AttrStore {
    pub fn new(
        col_types: Vec<ValueType>,
        n: usize,
        policy: MaintenancePolicy,
        stats: IoStats,
    ) -> AttrStore {
        let init = col_types
            .iter()
            .map(|&t| ColumnData::zeros(t, n))
            .collect();
        AttrStore {
            col_types,
            n,
            init,
            chains: Vec::new(),
            policy,
            stats,
            merges_performed: 0,
            cache: NgwCache::default(),
        }
    }

    /// Set the NGW segment cache capacity in bytes. `0` disables pinning
    /// (and drops any pinned segments); loads through
    /// [`Self::load_window_before`] then always take the miss path.
    pub fn set_cache_capacity(&mut self, bytes: u64) {
        self.cache.capacity_bytes = bytes;
        if bytes == 0 {
            self.cache.entries.clear();
        }
    }

    /// Number of currently pinned window segments (diagnostics/tests).
    pub fn cached_segments(&self) -> usize {
        self.cache.entries.len()
    }

    pub fn num_vertices(&self) -> usize {
        self.n
    }

    pub fn num_cols(&self) -> usize {
        self.col_types.len()
    }

    pub fn col_types(&self) -> &[ValueType] {
        &self.col_types
    }

    pub fn merges_performed(&self) -> u64 {
        self.merges_performed
    }

    /// Grow the vertex space; new vertices take zero values in `init`.
    pub fn grow(&mut self, n: usize) {
        self.grow_with(n, None);
    }

    /// Grow the vertex space, filling new slots with `fill` (one value per
    /// column) instead of zeros — accumulator stores grow with identity
    /// rows, not zero rows.
    pub fn grow_with(&mut self, n: usize, fill: Option<&[Value]>) {
        if n <= self.n {
            return;
        }
        let old_n = self.n;
        let old = std::mem::take(&mut self.init);
        self.init = grown_cols(old, &self.col_types, n, old_n, fill);
        // Pinned window segments are full-width images of their superstep;
        // new vertices have no runs yet, so growing them with the same fill
        // row keeps each cached image equal to a fresh reconstruction.
        for entry in self.cache.entries.values_mut() {
            let cols = std::mem::take(&mut entry.cols);
            entry.cols = grown_cols(cols, &self.col_types, n, old_n, fill);
        }
        self.n = n;
    }

    /// Write the baseline `A_{0,0}` columns (the output of Initialize at
    /// snapshot 0). Accounted as a full sequential write.
    pub fn set_init(&mut self, cols: Vec<ColumnData>) {
        assert_eq!(cols.len(), self.col_types.len());
        let bytes: u64 = cols
            .iter()
            .map(|c| (c.elem_bytes() * c.len()) as u64)
            .sum();
        self.stats.add_disk_write(bytes);
        self.n = cols.first().map_or(self.n, |c| c.len());
        self.init = cols;
        // A wholesale baseline replacement invalidates every pinned image.
        self.cache.entries.clear();
    }

    /// A fresh in-memory working array initialized from the baseline
    /// (read cost: the baseline bytes).
    pub fn materialize_init(&self) -> Vec<ColumnData> {
        let t0 = self.load_timer_start();
        let bytes: u64 = self
            .init
            .iter()
            .map(|c| (c.elem_bytes() * c.len()) as u64)
            .sum();
        self.stats.add_disk_read(bytes);
        let out = self.init.clone();
        self.load_timer_stop(t0);
        out
    }

    /// Record the after-image run for (snapshot `t`, superstep `s`), then
    /// let the maintenance policy decide whether to merge the chain.
    /// `vids`/`rows` list the changed vertices and their new values.
    pub fn record_run(&mut self, t: usize, s: usize, vids: Vec<u32>, cols: Vec<ColumnData>) {
        let _span = self.stats.obs.attr_record.clone();
        let _g = _span.start();
        debug_assert_eq!(cols.len(), self.col_types.len());
        debug_assert!(cols.iter().all(|c| c.len() == vids.len()));
        while self.chains.len() <= s {
            self.chains.push(Chain::default());
        }
        let run = Run {
            snapshot: t,
            vids,
            cols,
        };
        self.stats.add_disk_write(run.size_bytes());
        self.chains[s].runs.push(run);

        let summary = self.chains[s].summary(t);
        if self.policy.should_merge(&summary) {
            self.merge_chain(s);
        }
    }

    /// Consolidate superstep `s`'s chain into a single checkpoint run.
    /// Read cost: the chain; write cost: the consolidated run.
    pub fn merge_chain(&mut self, s: usize) {
        let _span = self.stats.obs.merge.clone();
        let _g = _span.start();
        let Some(chain) = self.chains.get_mut(s) else {
            return;
        };
        if chain.runs.is_empty() {
            return;
        }
        let mut read_bytes = 0u64;
        // Overlay into (vid → row) keeping the latest value per vertex.
        let mut latest: itg_gsa::FxHashMap<u32, Vec<Value>> = itg_gsa::FxHashMap::default();
        let mut order: Vec<u32> = Vec::new();
        let apply = |run: &Run, latest: &mut itg_gsa::FxHashMap<u32, Vec<Value>>,
                         order: &mut Vec<u32>| {
            for (j, &vid) in run.vids.iter().enumerate() {
                let row: Vec<Value> = run.cols.iter().map(|c| c.get(j)).collect();
                if latest.insert(vid, row).is_none() {
                    order.push(vid);
                }
            }
        };
        let max_snapshot = chain.runs.last().map(|r| r.snapshot).unwrap_or(0);
        if let Some(cp) = &chain.checkpoint {
            read_bytes += cp.size_bytes();
            apply(cp, &mut latest, &mut order);
        }
        for run in &chain.runs {
            read_bytes += run.size_bytes();
            apply(run, &mut latest, &mut order);
        }
        order.sort_unstable();
        let mut cols: Vec<ColumnData> = self
            .col_types
            .iter()
            .map(|&t| ColumnData::zeros(t, order.len()))
            .collect();
        for (j, vid) in order.iter().enumerate() {
            for (c, col) in cols.iter_mut().enumerate() {
                col.set(j, &latest[vid][c]);
            }
        }
        let merged = Run {
            snapshot: max_snapshot,
            vids: order,
            cols,
        };
        self.stats.add_disk_read(read_bytes);
        self.stats.add_disk_write(merged.size_bytes());
        chain.checkpoint = Some(merged);
        chain.runs.clear();
        self.merges_performed += 1;
    }

    /// Advance an in-memory array from `A_{·,s-1}` to `A_{·,s}` (or refresh
    /// `A` at superstep `s`) by overlaying superstep `s`'s chain,
    /// oldest-first, onto `array`. Read cost: every run touched.
    pub fn load_superstep(&self, s: usize, array: &mut [ColumnData]) {
        let t0 = self.load_timer_start();
        let Some(chain) = self.chains.get(s) else {
            return;
        };
        let mut read = 0u64;
        let mut overlay = |run: &Run| {
            for (j, &vid) in run.vids.iter().enumerate() {
                for (c, col) in array.iter_mut().enumerate() {
                    col.set(vid as usize, &run.cols[c].get(j));
                }
            }
        };
        if let Some(cp) = &chain.checkpoint {
            read += cp.size_bytes();
            overlay(cp);
        }
        for run in &chain.runs {
            read += run.size_bytes();
            overlay(run);
        }
        self.stats.add_disk_read(read);
        self.load_timer_stop(t0);
    }

    /// Like [`Self::load_superstep`] but only applying runs with
    /// `snapshot < t` — used to reconstruct the *previous* snapshot's view
    /// while the current snapshot's run for the same superstep already
    /// exists (it never does in the engine's execution order, but tests and
    /// external callers can replay histories).
    pub fn load_superstep_before(&self, s: usize, t: usize, array: &mut [ColumnData]) {
        let t0 = self.load_timer_start();
        let read = self.overlay_before(s, 0, t, array);
        self.stats.add_disk_read(read);
        self.load_timer_stop(t0);
    }

    /// Overlay superstep `s`'s chain restricted to `lo <= snapshot < t` onto
    /// `array`, oldest-first; returns the bytes touched without charging
    /// them. `lo = 0` reproduces [`Self::load_superstep_before`] exactly;
    /// a cache hit uses `lo = t_bound` to apply only the delta suffix.
    /// A checkpoint with `snapshot < lo` is safe to *skip* (every value it
    /// carries was already overlaid when the segment was cached) and one
    /// with `lo <= snapshot < t` is safe to *apply* (it carries the latest
    /// value per vertex over the whole merged range, so re-applying the
    /// already-seen prefix is idempotent).
    fn overlay_before(&self, s: usize, lo: usize, t: usize, array: &mut [ColumnData]) -> u64 {
        let Some(chain) = self.chains.get(s) else {
            return 0;
        };
        let mut read = 0u64;
        let mut overlay = |run: &Run| {
            for (j, &vid) in run.vids.iter().enumerate() {
                for (c, col) in array.iter_mut().enumerate() {
                    col.set(vid as usize, &run.cols[c].get(j));
                }
            }
        };
        if let Some(cp) = &chain.checkpoint {
            if lo <= cp.snapshot && cp.snapshot < t {
                read += cp.size_bytes();
                overlay(cp);
            }
        }
        for run in &chain.runs {
            if lo <= run.snapshot && run.snapshot < t {
                read += run.size_bytes();
                overlay(run);
            }
        }
        read
    }

    /// Cacheable window load: reconstruct superstep `s`'s full image bounded
    /// at snapshot `t` (base + every run with `snapshot < t`), pinning the
    /// result across calls.
    ///
    /// A **hit** (a pinned segment for `s` with `t_bound <= t` exists)
    /// overlays only the `[t_bound, t)` delta suffix onto the pinned
    /// columns and charges just those bytes. A **miss** reconstructs from
    /// `base` — charged like [`Self::materialize_init`] +
    /// [`Self::load_superstep_before`] — and admits the image when
    /// capacity allows, then evicts lowest-score entries
    /// (`reload_bytes × (hits + 1) ÷ size`) until within capacity.
    /// Capacity 0 always misses and never admits, so results and the
    /// `cache/hit + cache/miss` sum are identical at every capacity.
    pub fn load_window_before(
        &mut self,
        s: usize,
        t: usize,
        base: WindowBase<'_>,
    ) -> Vec<ColumnData> {
        let hit = self
            .cache
            .entries
            .get(&s)
            .is_some_and(|e| e.t_bound <= t);
        if hit {
            let t0 = self.load_timer_start();
            // Remove/reinsert to sidestep aliasing with the timer helpers.
            let mut entry = self.cache.entries.remove(&s).unwrap();
            let read = self.overlay_before(s, entry.t_bound, t, &mut entry.cols);
            self.stats.add_disk_read(read);
            entry.t_bound = t;
            entry.hits += 1;
            entry.reload_bytes += read;
            let out = entry.cols.clone();
            self.cache.entries.insert(s, entry);
            self.stats.add_cache_hit();
            self.load_timer_stop(t0);
            return out;
        }
        // Miss: drop a stale pin (recorded with a bound beyond `t`; only
        // reachable through external history replay), rebuild from base.
        self.cache.entries.remove(&s);
        self.stats.add_cache_miss();
        let (mut cols, base_read) = match base {
            WindowBase::Init => {
                let c = self.materialize_init();
                let bytes = cols_size_bytes(&c);
                (c, bytes)
            }
            WindowBase::Rows(rows) => (rows.to_vec(), 0),
        };
        let t0 = self.load_timer_start();
        let chain_read = self.overlay_before(s, 0, t, &mut cols);
        self.stats.add_disk_read(chain_read);
        self.load_timer_stop(t0);
        let size = cols_size_bytes(&cols);
        if self.cache.capacity_bytes > 0 && size <= self.cache.capacity_bytes {
            self.cache.entries.insert(
                s,
                CacheEntry {
                    cols: cols.clone(),
                    t_bound: t,
                    hits: 0,
                    reload_bytes: base_read + chain_read,
                },
            );
            self.evict_to_capacity();
        }
        cols
    }

    /// Evict lowest-score entries (`reload_bytes × (hits + 1) ÷ size`) until
    /// the pinned total fits the capacity; ties break toward the smallest
    /// superstep key so eviction order is deterministic.
    fn evict_to_capacity(&mut self) {
        let total =
            |entries: &FxHashMap<usize, CacheEntry>| -> u64 {
                entries.values().map(|e| cols_size_bytes(&e.cols)).sum()
            };
        while total(&self.cache.entries) > self.cache.capacity_bytes {
            let victim = self
                .cache
                .entries
                .iter()
                .map(|(&s, e)| {
                    let size = cols_size_bytes(&e.cols).max(1);
                    let score =
                        e.reload_bytes as f64 * (e.hits + 1) as f64 / size as f64;
                    (s, score)
                })
                .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
                .map(|(s, _)| s);
            let Some(s) = victim else { break };
            self.cache.entries.remove(&s);
            self.stats.add_cache_evict();
        }
    }

    /// When observability is enabled, start the clock for one attribute
    /// load; paired with [`Self::load_timer_stop`], which feeds both the
    /// `store/attr_load` span and the `store/attr_load_ns` latency
    /// histogram from a single clock pair. Disabled recorders never read
    /// the clock.
    #[inline]
    fn load_timer_start(&self) -> Option<std::time::Instant> {
        self.stats
            .obs
            .attr_load
            .is_enabled()
            .then(std::time::Instant::now)
    }

    #[inline]
    fn load_timer_stop(&self, t0: Option<std::time::Instant>) {
        if let Some(t0) = t0 {
            let ns = t0.elapsed().as_nanos() as u64;
            self.stats.obs.attr_load.record(1, ns);
            self.stats.obs.attr_load_ns.observe(ns);
        }
    }

    /// Number of supersteps with recorded chains.
    pub fn superstep_count(&self) -> usize {
        self.chains.len()
    }

    /// Total stored bytes across baseline, checkpoints, and runs.
    pub fn size_bytes(&self) -> u64 {
        let base: u64 = self
            .init
            .iter()
            .map(|c| (c.elem_bytes() * c.len()) as u64)
            .sum();
        let chains: u64 = self
            .chains
            .iter()
            .map(|ch| {
                ch.checkpoint.as_ref().map_or(0, |r| r.size_bytes())
                    + ch.runs.iter().map(|r| r.size_bytes()).sum::<u64>()
            })
            .sum();
        base + chains
    }

    /// Diagnostic: (checkpoint size, run count) of superstep `s`'s chain.
    pub fn chain_shape(&self, s: usize) -> (usize, usize) {
        self.chains.get(s).map_or((0, 0), |c| {
            (
                c.checkpoint.as_ref().map_or(0, |r| r.len()),
                c.runs.len(),
            )
        })
    }

    /// Serialize the full store state — baseline columns, every chain
    /// (checkpoint + unmerged runs), and the merge counter — for snapshot
    /// files. The policy and stats handle are *not* serialized: they are
    /// re-injected by [`Self::decode_from`] so a recovered store reports
    /// into the recovering session's counters.
    pub fn encode_into(&self, w: &mut Writer) {
        w.u64(self.col_types.len() as u64);
        for t in &self.col_types {
            crate::snapshot::put_value_type(w, t);
        }
        w.u64(self.n as u64);
        w.u64(self.merges_performed);
        for col in &self.init {
            crate::snapshot::put_column(w, col);
        }
        w.u64(self.chains.len() as u64);
        for chain in &self.chains {
            w.bool(chain.checkpoint.is_some());
            if let Some(cp) = &chain.checkpoint {
                put_run(w, cp);
            }
            w.u64(chain.runs.len() as u64);
            for run in &chain.runs {
                put_run(w, run);
            }
        }
    }

    /// Inverse of [`Self::encode_into`]. `policy` and `stats` come from the
    /// recovering session, not the snapshot (see `encode_into`).
    pub fn decode_from(
        r: &mut Reader<'_>,
        policy: MaintenancePolicy,
        stats: IoStats,
    ) -> CodecResult<AttrStore> {
        let ncols = r.u64()? as usize;
        let mut col_types = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            col_types.push(crate::snapshot::get_value_type(r)?);
        }
        let n = r.u64()? as usize;
        let merges_performed = r.u64()?;
        let mut init = Vec::with_capacity(ncols);
        for _ in 0..ncols {
            init.push(crate::snapshot::get_column(r)?);
        }
        let nchains = r.u64()? as usize;
        let mut chains = Vec::with_capacity(nchains);
        for _ in 0..nchains {
            let checkpoint = if r.bool()? { Some(get_run(r)?) } else { None };
            let nruns = r.u64()? as usize;
            let mut runs = Vec::with_capacity(nruns);
            for _ in 0..nruns {
                runs.push(get_run(r)?);
            }
            chains.push(Chain { checkpoint, runs });
        }
        Ok(AttrStore {
            col_types,
            n,
            init,
            chains,
            policy,
            stats,
            merges_performed,
            // The cache is never serialized; a decoded store starts cold.
            cache: NgwCache::default(),
        })
    }
}

/// Widen columns to `n` rows, copying the old rows and writing `fill` (one
/// value per column) into the new tail when given; zeros otherwise.
fn grown_cols(
    cols: Vec<ColumnData>,
    col_types: &[ValueType],
    n: usize,
    old_n: usize,
    fill: Option<&[Value]>,
) -> Vec<ColumnData> {
    cols.into_iter()
        .zip(col_types.iter())
        .enumerate()
        .map(|(c, (col, &ty))| {
            let mut bigger = ColumnData::zeros(ty, n);
            for i in 0..col.len() {
                bigger.set(i, &col.get(i));
            }
            if let Some(row) = fill {
                for i in old_n..n {
                    bigger.set(i, &row[c]);
                }
            }
            bigger
        })
        .collect()
}

fn cols_size_bytes(cols: &[ColumnData]) -> u64 {
    cols.iter().map(|c| (c.elem_bytes() * c.len()) as u64).sum()
}

fn put_run(w: &mut Writer, run: &Run) {
    w.u64(run.snapshot as u64);
    w.u64(run.vids.len() as u64);
    for &v in &run.vids {
        w.u32(v);
    }
    w.u64(run.cols.len() as u64);
    for col in &run.cols {
        crate::snapshot::put_column(w, col);
    }
}

fn get_run(r: &mut Reader<'_>) -> CodecResult<Run> {
    let snapshot = r.u64()? as usize;
    let nv = r.u64()? as usize;
    let mut vids = Vec::with_capacity(nv);
    for _ in 0..nv {
        vids.push(r.u32()?);
    }
    let nc = r.u64()? as usize;
    let mut cols = Vec::with_capacity(nc);
    for _ in 0..nc {
        cols.push(crate::snapshot::get_column(r)?);
    }
    Ok(Run {
        snapshot,
        vids,
        cols,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use itg_gsa::value::PrimType;

    fn double_store(n: usize, policy: MaintenancePolicy) -> AttrStore {
        AttrStore::new(
            vec![ValueType::Prim(PrimType::Double)],
            n,
            policy,
            IoStats::new(),
        )
    }

    fn run_cols(vals: &[(u32, f64)]) -> (Vec<u32>, Vec<ColumnData>) {
        let vids: Vec<u32> = vals.iter().map(|&(v, _)| v).collect();
        let col = ColumnData::Double(vals.iter().map(|&(_, x)| x).collect());
        (vids, vec![col])
    }

    /// Simulate two snapshots of a 2-superstep computation and check the
    /// overlay invariant reconstructs each A_{t,s}.
    #[test]
    fn overlay_invariant_reconstructs_views() {
        let mut st = double_store(4, MaintenancePolicy::NoMerge);
        // Snapshot 0: A_{0,1} changes v0, v1; A_{0,2} changes v1.
        let (v, c) = run_cols(&[(0, 1.0), (1, 2.0)]);
        st.record_run(0, 1, v, c);
        let (v, c) = run_cols(&[(1, 3.0)]);
        st.record_run(0, 2, v, c);
        // Snapshot 1: at superstep 1, v1 takes 2.5; at superstep 2, v1
        // returns to the snapshot-0 value 3.0 **but was different at
        // superstep 1**, so the OR condition stores nothing only if equal
        // on both axes — here A_{1,2}(v1)=3.0 equals A_{0,2}(v1) but
        // differs from A_{1,1}(v1)=2.5, so it must be stored.
        let (v, c) = run_cols(&[(1, 2.5)]);
        st.record_run(1, 1, v, c);
        let (v, c) = run_cols(&[(1, 3.0)]);
        st.record_run(1, 2, v, c);

        // Reconstruct A_{1,2}: init → overlay s=1 chain → overlay s=2 chain.
        let mut arr = st.materialize_init();
        st.load_superstep(1, &mut arr);
        assert_eq!(arr[0].get(1), Value::Double(2.5)); // A_{1,1}
        st.load_superstep(2, &mut arr);
        assert_eq!(arr[0].get(1), Value::Double(3.0)); // A_{1,2}
        assert_eq!(arr[0].get(0), Value::Double(1.0)); // unchanged since (0,1)

        // Reconstruct the *previous* snapshot's A_{0,1} via the bounded load.
        let mut prev = st.materialize_init();
        st.load_superstep_before(1, 1, &mut prev);
        assert_eq!(prev[0].get(1), Value::Double(2.0));
    }

    #[test]
    fn merge_consolidates_chain_and_preserves_values() {
        let mut st = double_store(4, MaintenancePolicy::NoMerge);
        for t in 0..5 {
            let (v, c) = run_cols(&[(0, t as f64), (2, 10.0 + t as f64)]);
            st.record_run(t, 1, v, c);
        }
        assert_eq!(st.chain_shape(1), (0, 5));
        let mut before = st.materialize_init();
        st.load_superstep(1, &mut before);

        st.merge_chain(1);
        assert_eq!(st.chain_shape(1), (2, 0));
        let mut after = st.materialize_init();
        st.load_superstep(1, &mut after);
        assert_eq!(before[0].get(0), after[0].get(0));
        assert_eq!(before[0].get(2), after[0].get(2));
        assert_eq!(st.merges_performed(), 1);
    }

    #[test]
    fn cost_based_policy_eventually_merges() {
        let mut st = double_store(64, MaintenancePolicy::CostBased);
        // Same few vertices keep changing: W_merge stays small while
        // R_delta grows quadratically → a merge must trigger.
        for t in 0..20 {
            let (v, c) = run_cols(&[(1, t as f64), (2, t as f64)]);
            st.record_run(t, 1, v, c);
        }
        assert!(st.merges_performed() > 0, "cost-based policy never merged");
        // Values still correct after however many merges.
        let mut arr = st.materialize_init();
        st.load_superstep(1, &mut arr);
        assert_eq!(arr[0].get(1), Value::Double(19.0));
    }

    #[test]
    fn nomerge_read_cost_grows_with_snapshots() {
        let stats = IoStats::new();
        let mut st = AttrStore::new(
            vec![ValueType::Prim(PrimType::Double)],
            8,
            MaintenancePolicy::NoMerge,
            stats.clone(),
        );
        for t in 0..10 {
            let (v, c) = run_cols(&[(0, t as f64)]);
            st.record_run(t, 1, v, c);
        }
        let mut arr = st.materialize_init();
        let a = stats.snapshot();
        st.load_superstep(1, &mut arr);
        let chain10 = stats.snapshot().since(&a).disk_read_bytes;

        // After merging, the same load reads far less.
        st.merge_chain(1);
        let b = stats.snapshot();
        st.load_superstep(1, &mut arr);
        let merged = stats.snapshot().since(&b).disk_read_bytes;
        assert!(merged < chain10, "merged {merged} !< chain {chain10}");
    }

    #[test]
    fn grow_preserves_and_zero_fills() {
        let mut st = double_store(2, MaintenancePolicy::NoMerge);
        st.set_init(vec![ColumnData::Double(vec![5.0, 6.0])]);
        st.grow(4);
        let arr = st.materialize_init();
        assert_eq!(arr[0].get(1), Value::Double(6.0));
        assert_eq!(arr[0].get(3), Value::Double(0.0));
        assert_eq!(st.num_vertices(), 4);
    }

    #[test]
    fn snapshot_roundtrip_is_byte_identical() {
        let mut st = double_store(8, MaintenancePolicy::CostBased);
        st.set_init(vec![ColumnData::Double((0..8).map(|i| i as f64).collect())]);
        for t in 0..6 {
            let (v, c) = run_cols(&[(1, t as f64 + 0.5), (3, -(t as f64))]);
            st.record_run(t, 1, v, c);
        }
        st.merge_chain(1);
        let (v, c) = run_cols(&[(2, f64::NAN)]);
        st.record_run(6, 2, v, c);

        let mut w = Writer::default();
        st.encode_into(&mut w);
        let mut r = Reader::new(&w.buf);
        let st2 =
            AttrStore::decode_from(&mut r, MaintenancePolicy::CostBased, IoStats::new())
                .unwrap();
        r.finish().unwrap();

        // Re-encoding the decoded store reproduces the exact bytes (NaN
        // payloads included — floats travel bitwise).
        let mut w2 = Writer::default();
        st2.encode_into(&mut w2);
        assert_eq!(w.buf, w2.buf);
        assert_eq!(st2.num_vertices(), 8);
        assert_eq!(st2.merges_performed(), st.merges_performed());
        assert_eq!(st2.chain_shape(1), st.chain_shape(1));
    }

    /// Seed a store with a few snapshots of history on supersteps 1 and 2.
    fn history_store(stats: IoStats) -> AttrStore {
        let mut st = AttrStore::new(
            vec![ValueType::Prim(PrimType::Double)],
            6,
            MaintenancePolicy::NoMerge,
            stats,
        );
        for t in 0..4 {
            let (v, c) = run_cols(&[(0, t as f64), (1, 10.0 + t as f64)]);
            st.record_run(t, 1, v, c);
            let (v, c) = run_cols(&[(2, -(t as f64))]);
            st.record_run(t, 2, v, c);
        }
        st
    }

    #[test]
    fn cached_window_load_is_byte_identical_to_fresh() {
        let mut cold = history_store(IoStats::new());
        let mut warm = history_store(IoStats::new());
        warm.set_cache_capacity(u64::MAX);
        for t in [1, 2, 4, 4] {
            for s in [1, 2] {
                let fresh = cold.load_window_before(s, t, WindowBase::Init);
                let cached = warm.load_window_before(s, t, WindowBase::Init);
                assert_eq!(fresh, cached, "s={s} t={t}");
            }
        }
        // The warm store hit after its first load per superstep.
        assert_eq!(warm.cached_segments(), 2);
    }

    #[test]
    fn cached_window_survives_merge_chain() {
        let stats = IoStats::new();
        let mut st = history_store(stats.clone());
        st.set_cache_capacity(u64::MAX);
        let before = st.load_window_before(1, 3, WindowBase::Init);
        // Consolidating the chain must not disturb subsequent hits: the
        // merged checkpoint covers `lo <= snapshot < t` and overlaying it
        // is idempotent over the pinned image.
        st.merge_chain(1);
        let (v, c) = run_cols(&[(0, 99.0)]);
        st.record_run(4, 1, v, c);
        let after_hit = st.load_window_before(1, 5, WindowBase::Init);
        let mut fresh = history_store(IoStats::new());
        fresh.merge_chain(1);
        let (v, c) = run_cols(&[(0, 99.0)]);
        fresh.record_run(4, 1, v, c);
        let after_fresh = fresh.load_window_before(1, 5, WindowBase::Init);
        assert_eq!(after_hit, after_fresh);
        assert_eq!(before[0].get(0), Value::Double(2.0));
        let snap = stats.snapshot();
        assert_eq!((snap.cache_hits, snap.cache_misses), (1, 1));
    }

    #[test]
    fn capacity_zero_counts_misses_and_never_pins() {
        let stats = IoStats::new();
        let mut st = history_store(stats.clone());
        let a = st.load_window_before(1, 4, WindowBase::Init);
        let b = st.load_window_before(1, 4, WindowBase::Init);
        assert_eq!(a, b);
        assert_eq!(st.cached_segments(), 0);
        let snap = stats.snapshot();
        assert_eq!((snap.cache_hits, snap.cache_misses), (0, 2));
    }

    #[test]
    fn hit_charges_only_the_delta_suffix() {
        let stats = IoStats::new();
        let mut st = history_store(stats.clone());
        st.set_cache_capacity(u64::MAX);
        st.load_window_before(1, 2, WindowBase::Init);
        let mid = stats.snapshot();
        st.load_window_before(1, 4, WindowBase::Init);
        let suffix = stats.snapshot().since(&mid).disk_read_bytes;
        // The suffix read covers runs at snapshots 2 and 3 only — strictly
        // less than a full rebuild (baseline + 4 runs).
        let full: u64 = {
            let fresh_stats = IoStats::new();
            let mut fresh = history_store(fresh_stats.clone());
            fresh.load_window_before(1, 4, WindowBase::Init);
            fresh_stats.snapshot().disk_read_bytes
        };
        assert!(suffix < full, "suffix {suffix} !< full rebuild {full}");
    }

    #[test]
    fn eviction_fires_and_counts() {
        let stats = IoStats::new();
        let mut st = history_store(stats.clone());
        // Capacity fits exactly one pinned 6-row double column (48 bytes).
        st.set_cache_capacity(48);
        st.load_window_before(1, 4, WindowBase::Init);
        st.load_window_before(2, 4, WindowBase::Init);
        assert_eq!(st.cached_segments(), 1);
        assert_eq!(stats.snapshot().cache_evictions, 1);
        // Results stay correct regardless of which entry survived.
        let got = st.load_window_before(1, 4, WindowBase::Init);
        assert_eq!(got[0].get(1), Value::Double(13.0));
    }

    #[test]
    fn rows_base_windows_cache_too() {
        let stats = IoStats::new();
        let mut st = history_store(stats.clone());
        st.set_cache_capacity(u64::MAX);
        let identity = vec![ColumnData::Double(vec![7.0; 6])];
        let a = st.load_window_before(2, 4, WindowBase::Rows(&identity));
        let b = st.load_window_before(2, 4, WindowBase::Rows(&identity));
        assert_eq!(a, b);
        assert_eq!(a[0].get(2), Value::Double(-3.0));
        assert_eq!(a[0].get(0), Value::Double(7.0));
        let snap = stats.snapshot();
        assert_eq!((snap.cache_hits, snap.cache_misses), (1, 1));
    }

    #[test]
    fn grow_keeps_cached_windows_consistent() {
        let mut st = history_store(IoStats::new());
        st.set_cache_capacity(u64::MAX);
        st.load_window_before(1, 4, WindowBase::Init);
        st.grow_with(9, Some(&[Value::Double(5.5)]));
        let cached = st.load_window_before(1, 4, WindowBase::Init);
        let mut fresh = history_store(IoStats::new());
        fresh.grow_with(9, Some(&[Value::Double(5.5)]));
        let rebuilt = fresh.load_window_before(1, 4, WindowBase::Init);
        assert_eq!(cached, rebuilt);
        assert_eq!(cached[0].get(8), Value::Double(5.5));
    }

    #[test]
    fn set_init_drops_pins() {
        let mut st = history_store(IoStats::new());
        st.set_cache_capacity(u64::MAX);
        st.load_window_before(1, 4, WindowBase::Init);
        assert_eq!(st.cached_segments(), 1);
        st.set_init(vec![ColumnData::Double(vec![0.0; 6])]);
        assert_eq!(st.cached_segments(), 0);
    }

    #[test]
    fn periodic_policy_merges_on_schedule() {
        let mut st = double_store(8, MaintenancePolicy::Periodic(3));
        for t in 0..7 {
            let (v, c) = run_cols(&[(0, t as f64)]);
            st.record_run(t, 0, v, c);
        }
        // Merges at t=3 and t=6.
        assert_eq!(st.merges_performed(), 2);
    }
}
