//! Little-endian byte codec shared by the durability modules.
//!
//! The WAL ([`crate::wal`]) and snapshot ([`crate::snapshot`]) formats reuse
//! the framing discipline of the engine's transport wire codec: versioned,
//! length-prefixed, tag-dispatched little-endian records with a
//! magic/version header, and *bitwise* float encoding
//! (`to_bits`/`from_bits`) so a value that round-trips is byte-identical —
//! NaNs and signed zeros included. The store cannot depend on the engine
//! crate, so the primitive writer/reader live here; the engine's
//! `wire::{Writer, Reader}` are the same shape by design.
//!
//! The module also provides the CRC-32 (IEEE 802.3, reflected) checksum
//! that guards every WAL record and snapshot file. It is table-driven and
//! hand-rolled: the build is offline and vendors no checksum crate.

/// Decode failures for the durability byte layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the value did.
    Truncated,
    /// A magic number did not match.
    BadMagic(u32),
    /// A format version byte is unsupported.
    BadVersion(u8),
    /// An unknown tag byte for the named kind.
    BadTag { what: &'static str, tag: u8 },
    /// Bytes remained after a complete payload.
    Trailing(usize),
    /// A string field was not valid UTF-8.
    Utf8,
    /// A checksum mismatch: the bytes are corrupt.
    Crc { expected: u32, actual: u32 },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "payload truncated"),
            CodecError::BadMagic(m) => write!(f, "bad magic {m:#x}"),
            CodecError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            CodecError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            CodecError::Trailing(n) => write!(f, "{n} trailing bytes after payload"),
            CodecError::Utf8 => write!(f, "invalid UTF-8 in string"),
            CodecError::Crc { expected, actual } => {
                write!(f, "CRC mismatch: stored {expected:#010x}, computed {actual:#010x}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

pub type CodecResult<T> = Result<T, CodecError>;

// ---------------------------------------------------------------
// CRC-32 (IEEE), reflected, table-driven.
// ---------------------------------------------------------------

/// The reflected IEEE polynomial (the one used by zip/png/ethernet).
const CRC32_POLY: u32 = 0xEDB8_8320;

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { CRC32_POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3) of `bytes`.
///
/// ```
/// // The classic check value for this polynomial.
/// assert_eq!(itg_store::codec::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------
// Primitive writer/reader.
// ---------------------------------------------------------------

/// Append-only little-endian byte writer.
#[derive(Default)]
pub struct Writer {
    pub buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Writer {
        Writer::default()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i8(&mut self, v: i8) {
        self.buf.push(v as u8);
    }

    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Bitwise float encoding: exact round-trip for every bit pattern.
    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Cursor over an encoded payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> CodecResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> CodecResult<bool> {
        Ok(self.u8()? != 0)
    }

    pub fn u16(&mut self) -> CodecResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> CodecResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> CodecResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i8(&mut self) -> CodecResult<i8> {
        Ok(self.u8()? as i8)
    }

    pub fn i32(&mut self) -> CodecResult<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> CodecResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f32(&mut self) -> CodecResult<f32> {
        Ok(f32::from_bits(self.u32()?))
    }

    pub fn f64(&mut self) -> CodecResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn str(&mut self) -> CodecResult<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Utf8)
    }

    /// Borrow the next `n` raw bytes (for bulk payloads like the delta
    /// codec's literal runs).
    pub fn bytes(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        self.take(n)
    }

    /// Assert the payload has been fully consumed.
    pub fn finish(&self) -> CodecResult<()> {
        if self.remaining() != 0 {
            return Err(CodecError::Trailing(self.remaining()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn primitives_roundtrip() {
        let mut w = Writer::new();
        w.u8(0xAB);
        w.bool(true);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.i8(-7);
        w.i32(i32::MIN);
        w.i64(i64::MIN);
        w.f32(f32::NAN);
        w.f64(-0.0);
        w.str("δ-walk");
        let mut r = Reader::new(&w.buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert!(r.bool().unwrap());
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i8().unwrap(), -7);
        assert_eq!(r.i32().unwrap(), i32::MIN);
        assert_eq!(r.i64().unwrap(), i64::MIN);
        assert_eq!(r.f32().unwrap().to_bits(), f32::NAN.to_bits());
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.str().unwrap(), "δ-walk");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error() {
        let mut w = Writer::new();
        w.u64(42);
        let mut r = Reader::new(&w.buf[..7]);
        assert_eq!(r.u64(), Err(CodecError::Truncated));
    }
}
