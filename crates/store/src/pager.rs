//! The page buffer pool.
//!
//! The store keeps graph data in byte-addressed *segments* (the simulated
//! disk). All reads go through a fixed-capacity LRU buffer pool of
//! `page_size`-byte pages; a miss costs `page_size` bytes of disk read, a
//! hit is free. This reproduces the IO behaviour the paper's optimizations
//! target: repeated seeks into the same adjacency region are cheap while
//! resident, and window sizes trade capacity against re-reads.
//!
//! The pool also hosts the lazy-deletion hook (paper §5.5): edge deletions
//! are kept in memory and the corresponding on-disk edges are marked deleted
//! only when their page is loaded, never by in-place disk writes.

use crate::stats::IoStats;
use itg_gsa::FxHashMap;
use parking_lot::Mutex;
use std::collections::VecDeque;

/// Identifies one page: a segment id plus a page index within the segment.
pub type PageId = (u32, u32);

/// Default page size (bytes).
pub const DEFAULT_PAGE_SIZE: u64 = 4096;

#[derive(Debug)]
struct PoolState {
    /// Resident pages → last-use stamp.
    resident: FxHashMap<PageId, u64>,
    /// Recency queue with lazy invalidation: entries whose stamp no longer
    /// matches `resident` are skipped at eviction time.
    queue: VecDeque<(PageId, u64)>,
    stamp: u64,
}

/// A fixed-capacity LRU page cache with shared interior mutability, so one
/// pool can serve every segment of a store partition.
#[derive(Debug)]
pub struct BufferPool {
    capacity_pages: usize,
    page_size: u64,
    state: Mutex<PoolState>,
    stats: IoStats,
}

impl BufferPool {
    pub fn new(capacity_bytes: u64, page_size: u64, stats: IoStats) -> BufferPool {
        assert!(page_size > 0);
        let capacity_pages = (capacity_bytes / page_size).max(1) as usize;
        BufferPool {
            capacity_pages,
            page_size,
            state: Mutex::new(PoolState {
                resident: FxHashMap::default(),
                queue: VecDeque::new(),
                stamp: 0,
            }),
            stats,
        }
    }

    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Touch a single page; returns true on a cache hit.
    pub fn touch(&self, page: PageId) -> bool {
        let mut st = self.state.lock();
        st.stamp += 1;
        let stamp = st.stamp;
        let hit = st.resident.insert(page, stamp).is_some();
        st.queue.push_back((page, stamp));
        if hit {
            self.stats.add_page_hit();
        } else {
            self.stats.add_page_read();
            self.stats.add_disk_read(self.page_size);
            // Evict down to capacity, skipping stale queue entries.
            while st.resident.len() > self.capacity_pages {
                if let Some((p, s)) = st.queue.pop_front() {
                    if st.resident.get(&p) == Some(&s) {
                        st.resident.remove(&p);
                    }
                } else {
                    break;
                }
            }
        }
        // Bound queue growth from repeated hits.
        if st.queue.len() > self.capacity_pages.saturating_mul(8) + 64 {
            let resident = std::mem::take(&mut st.resident);
            let mut fresh: Vec<(PageId, u64)> = resident.iter().map(|(p, s)| (*p, *s)).collect();
            fresh.sort_by_key(|&(_, s)| s);
            st.queue = fresh.iter().copied().collect();
            st.resident = resident;
        }
        hit
    }

    /// Touch every page overlapping the byte range `[start, end)` of
    /// `segment`. Returns the number of misses.
    pub fn touch_range(&self, segment: u32, start: u64, end: u64) -> u32 {
        if end <= start {
            return 0;
        }
        let first = (start / self.page_size) as u32;
        let last = ((end - 1) / self.page_size) as u32;
        let mut misses = 0;
        for p in first..=last {
            if !self.touch((segment, p)) {
                misses += 1;
            }
        }
        misses
    }

    /// Record a sequential write of `bytes` to disk (writes are not cached;
    /// the store's write paths are append-only segment creation).
    pub fn record_write(&self, bytes: u64) {
        self.stats.add_disk_write(bytes);
    }

    /// Drop all resident pages (e.g. between experiment runs).
    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.resident.clear();
        st.queue.clear();
    }

    /// Number of currently resident pages.
    pub fn resident_pages(&self) -> usize {
        self.state.lock().resident.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(cap_pages: u64) -> BufferPool {
        BufferPool::new(cap_pages * 16, 16, IoStats::new())
    }

    #[test]
    fn hits_after_first_touch() {
        let p = pool(4);
        assert!(!p.touch((0, 0)));
        assert!(p.touch((0, 0)));
        let s = p.stats().snapshot();
        assert_eq!(s.page_reads, 1);
        assert_eq!(s.page_hits, 1);
        assert_eq!(s.disk_read_bytes, 16);
    }

    #[test]
    fn lru_evicts_coldest() {
        let p = pool(2);
        p.touch((0, 0));
        p.touch((0, 1));
        p.touch((0, 0)); // refresh 0 — page 1 is now coldest
        p.touch((0, 2)); // evicts page 1
        assert!(p.touch((0, 0)), "page 0 should still be resident");
        assert!(!p.touch((0, 1)), "page 1 should have been evicted");
    }

    #[test]
    fn range_touch_counts_pages() {
        let p = pool(16);
        // Bytes [8, 40) with 16-byte pages → pages 0, 1, 2.
        let misses = p.touch_range(3, 8, 40);
        assert_eq!(misses, 3);
        assert_eq!(p.resident_pages(), 3);
        // Empty range touches nothing.
        assert_eq!(p.touch_range(3, 10, 10), 0);
    }

    #[test]
    fn capacity_bounded_under_scan() {
        let p = pool(8);
        for i in 0..10_000u32 {
            p.touch((1, i));
        }
        assert!(p.resident_pages() <= 8);
        assert_eq!(p.stats().snapshot().page_reads, 10_000);
    }
}
