//! Byte-accurate IO and memory accounting.
//!
//! Every disk read/write in the store and every simulated network transfer
//! in the engine increments these counters. The paper's evaluation reports
//! reductions in disk IO bytes and network transfer sizes (§6.2); these
//! counters regenerate those metrics exactly.
//!
//! When built with an enabled [`itg_obs::Recorder`] (see
//! [`IoStats::with_obs`]), each byte-accounted event additionally feeds a
//! size histogram, and the attribute-store operations record latency spans
//! — the per-distribution view behind the aggregate counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cached observability handles resolved once per `IoStats`; disabled
/// handles (the default) are single-branch no-ops on the hot path.
#[derive(Debug, Default, Clone)]
pub(crate) struct StoreObs {
    pub(crate) disk_read_bytes: itg_obs::HistHandle,
    pub(crate) disk_write_bytes: itg_obs::HistHandle,
    pub(crate) net_bytes: itg_obs::HistHandle,
    /// Aggregate counter mirror of the `net_bytes` histogram, under the
    /// transport layer's `net/` family: `profile.counter_total("net/bytes")`
    /// equals the simulated-network byte counter for sessions whose
    /// exchange runs through `LocalTransport`.
    pub(crate) net_bytes_total: itg_obs::CounterHandle,
    pub(crate) attr_load_ns: itg_obs::HistHandle,
    pub(crate) attr_load: itg_obs::SpanHandle,
    pub(crate) attr_record: itg_obs::SpanHandle,
    pub(crate) merge: itg_obs::SpanHandle,
    /// NGW segment cache events (DESIGN.md §10.2): a `hit` serves a window
    /// load from a pinned segment (plus a delta-suffix overlay), a `miss`
    /// reconstructs it from the full chain, an `evict` drops the
    /// lowest-score entry to make room. `hit + miss` equals the number of
    /// cacheable window loads at every capacity, including 0 (cache off).
    pub(crate) cache_hit: itg_obs::CounterHandle,
    pub(crate) cache_miss: itg_obs::CounterHandle,
    pub(crate) cache_evict: itg_obs::CounterHandle,
}

impl StoreObs {
    fn new(rec: &itg_obs::Recorder) -> StoreObs {
        StoreObs {
            disk_read_bytes: rec.hist("store/disk_read_bytes"),
            disk_write_bytes: rec.hist("store/disk_write_bytes"),
            net_bytes: rec.hist("store/net_bytes"),
            net_bytes_total: rec.counter("net/bytes"),
            attr_load_ns: rec.hist("store/attr_load_ns"),
            attr_load: rec.span("store/attr_load"),
            attr_record: rec.span("store/attr_record"),
            merge: rec.span("store/merge"),
            cache_hit: rec.counter("cache/hit"),
            cache_miss: rec.counter("cache/miss"),
            cache_evict: rec.counter("cache/evict"),
        }
    }
}

/// Shared counters. Cheap to clone (an `Arc` internally).
#[derive(Debug, Default, Clone)]
pub struct IoStats {
    inner: Arc<Counters>,
    pub(crate) obs: StoreObs,
}

#[derive(Debug, Default)]
struct Counters {
    disk_read_bytes: AtomicU64,
    disk_write_bytes: AtomicU64,
    page_reads: AtomicU64,
    page_hits: AtomicU64,
    net_bytes: AtomicU64,
    walks_enumerated: AtomicU64,
    recomputations: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
}

/// A point-in-time snapshot of the counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    pub disk_read_bytes: u64,
    pub disk_write_bytes: u64,
    pub page_reads: u64,
    pub page_hits: u64,
    pub net_bytes: u64,
    pub walks_enumerated: u64,
    pub recomputations: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
}

impl IoSnapshot {
    /// Counter-wise difference `self - earlier` (for per-phase accounting).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            disk_read_bytes: self.disk_read_bytes - earlier.disk_read_bytes,
            disk_write_bytes: self.disk_write_bytes - earlier.disk_write_bytes,
            page_reads: self.page_reads - earlier.page_reads,
            page_hits: self.page_hits - earlier.page_hits,
            net_bytes: self.net_bytes - earlier.net_bytes,
            walks_enumerated: self.walks_enumerated - earlier.walks_enumerated,
            recomputations: self.recomputations - earlier.recomputations,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            cache_evictions: self.cache_evictions - earlier.cache_evictions,
        }
    }

    pub fn total_disk_bytes(&self) -> u64 {
        self.disk_read_bytes + self.disk_write_bytes
    }
}

impl IoStats {
    /// Counters with disabled observability handles (histograms and spans
    /// are no-ops). Use [`IoStats::with_obs`] to attach a recorder.
    pub fn new() -> IoStats {
        IoStats::default()
    }

    /// Counters whose byte-accounted events additionally feed `rec`'s
    /// `store/*` histograms and spans. The handles are resolved here, once;
    /// a disabled `rec` yields the same no-op handles as [`IoStats::new`].
    pub fn with_obs(rec: &itg_obs::Recorder) -> IoStats {
        IoStats {
            inner: Arc::default(),
            obs: StoreObs::new(rec),
        }
    }

    #[inline]
    pub fn add_disk_read(&self, bytes: u64) {
        self.inner.disk_read_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.obs.disk_read_bytes.observe(bytes);
    }

    #[inline]
    pub fn add_disk_write(&self, bytes: u64) {
        self.inner.disk_write_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.obs.disk_write_bytes.observe(bytes);
    }

    #[inline]
    pub fn add_page_read(&self) {
        self.inner.page_reads.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_page_hit(&self) {
        self.inner.page_hits.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_net(&self, bytes: u64) {
        self.inner.net_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.obs.net_bytes.observe(bytes);
        self.obs.net_bytes_total.add(bytes);
    }

    #[inline]
    pub fn add_walks(&self, n: u64) {
        self.inner.walks_enumerated.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_recomputation(&self) {
        self.inner.recomputations.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add_cache_hit(&self) {
        self.inner.cache_hits.fetch_add(1, Ordering::Relaxed);
        self.obs.cache_hit.add(1);
    }

    #[inline]
    pub fn add_cache_miss(&self) {
        self.inner.cache_misses.fetch_add(1, Ordering::Relaxed);
        self.obs.cache_miss.add(1);
    }

    #[inline]
    pub fn add_cache_evict(&self) {
        self.inner.cache_evictions.fetch_add(1, Ordering::Relaxed);
        self.obs.cache_evict.add(1);
    }

    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            disk_read_bytes: self.inner.disk_read_bytes.load(Ordering::Relaxed),
            disk_write_bytes: self.inner.disk_write_bytes.load(Ordering::Relaxed),
            page_reads: self.inner.page_reads.load(Ordering::Relaxed),
            page_hits: self.inner.page_hits.load(Ordering::Relaxed),
            net_bytes: self.inner.net_bytes.load(Ordering::Relaxed),
            walks_enumerated: self.inner.walks_enumerated.load(Ordering::Relaxed),
            recomputations: self.inner.recomputations.load(Ordering::Relaxed),
            cache_hits: self.inner.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.inner.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.inner.cache_evictions.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        self.inner.disk_read_bytes.store(0, Ordering::Relaxed);
        self.inner.disk_write_bytes.store(0, Ordering::Relaxed);
        self.inner.page_reads.store(0, Ordering::Relaxed);
        self.inner.page_hits.store(0, Ordering::Relaxed);
        self.inner.net_bytes.store(0, Ordering::Relaxed);
        self.inner.walks_enumerated.store(0, Ordering::Relaxed);
        self.inner.recomputations.store(0, Ordering::Relaxed);
        self.inner.cache_hits.store(0, Ordering::Relaxed);
        self.inner.cache_misses.store(0, Ordering::Relaxed);
        self.inner.cache_evictions.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_diff() {
        let s = IoStats::new();
        s.add_disk_read(100);
        let a = s.snapshot();
        s.add_disk_read(50);
        s.add_net(7);
        let b = s.snapshot();
        let d = b.since(&a);
        assert_eq!(d.disk_read_bytes, 50);
        assert_eq!(d.net_bytes, 7);
        assert_eq!(b.total_disk_bytes(), 150);
    }

    #[test]
    fn obs_histograms_mirror_byte_counters() {
        let rec = itg_obs::Recorder::enabled();
        let s = IoStats::with_obs(&rec);
        s.add_disk_read(4096);
        s.add_disk_write(128);
        s.add_net(64);
        let p = rec.profile();
        assert_eq!(p.hist("store/disk_read_bytes").unwrap().sum, 4096);
        assert_eq!(p.hist("store/disk_write_bytes").unwrap().sum, 128);
        assert_eq!(p.hist("store/net_bytes").unwrap().sum, 64);
        assert_eq!(p.counter_total("net/bytes"), 64);
        // The aggregate counters are unaffected by observability.
        assert_eq!(s.snapshot().disk_read_bytes, 4096);
    }

    #[test]
    fn cache_counters_feed_obs_family() {
        let rec = itg_obs::Recorder::enabled();
        let s = IoStats::with_obs(&rec);
        s.add_cache_miss();
        s.add_cache_hit();
        s.add_cache_hit();
        s.add_cache_evict();
        let snap = s.snapshot();
        assert_eq!(snap.cache_hits, 2);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.cache_evictions, 1);
        let p = rec.profile();
        assert_eq!(p.counter_total("cache/hit"), 2);
        assert_eq!(p.counter_total("cache/miss"), 1);
        assert_eq!(p.counter_total("cache/evict"), 1);
        s.reset();
        assert_eq!(s.snapshot().cache_hits, 0);
    }

    #[test]
    fn clones_share_counters() {
        let s = IoStats::new();
        let c = s.clone();
        c.add_page_hit();
        assert_eq!(s.snapshot().page_hits, 1);
        s.reset();
        assert_eq!(c.snapshot().page_hits, 0);
    }
}
