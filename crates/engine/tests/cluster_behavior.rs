//! Cluster-simulation behaviour: partial pre-aggregation on the exchange
//! path, network accounting, vertex growth, and composite (Array)
//! attribute support.

use itg_engine::{EngineConfig, GraphInput, SessionBuilder};
use itg_gsa::Value;
use itg_store::{EdgeMutation, MutationBatch};

#[test]
fn preaggregation_bounds_network_volume() {
    // A star: every leaf contributes to the hub each superstep. With
    // partial pre-aggregation, each *machine* sends one folded
    // contribution to the hub's owner per superstep — not one per leaf.
    let leaves = 64u64;
    let hub = 1u64; // owner = 1 % machines
    let edges: Vec<(u64, u64)> = (0..=leaves)
        .filter(|&v| v != hub)
        .map(|v| (v, hub))
        .collect();
    let src = r#"
        Vertex (id, active, out_nbrs, s: Accm<long, SUM>, x: long)
        Initialize (u): { u.active = true; }
        Traverse (u): {
            For v in u.out_nbrs { v.s.Accumulate(1); }
        }
        Update (u): { u.x = u.s; }
    "#;
    let machines = 4;
    let input = GraphInput::directed(edges);
    let mut s = SessionBuilder::from_config(EngineConfig::with_machines(machines)).from_source(src, &input).unwrap();
    let m = s.run_oneshot();
    assert_eq!(s.attr_value(hub, "x").unwrap(), Value::Long(leaves as i64));
    // Upper bound: per superstep, at most (machines − 1) remote folded
    // contributions to the hub plus the remote adjacency seeks. The seeks
    // dominate; the accumulator exchange itself must stay ~O(machines),
    // not O(leaves). Contribution wire size is ~40B.
    let exchanges = (machines as u64 - 1) * 40 * m.supersteps as u64;
    assert!(
        m.io.net_bytes < exchanges + leaves * 16 * m.supersteps as u64,
        "net bytes {} suggest unaggregated sends",
        m.io.net_bytes
    );
}

#[test]
fn remote_seeks_are_charged() {
    // Two machines; all edges owned by machine 0's vertices, traversals
    // started from machine 1's vertex cross over.
    let edges = vec![(1u64, 0u64), (1, 2), (0, 2), (2, 0)];
    let src = r#"
        Vertex (id, active, out_nbrs, s: Accm<long, SUM>)
        Initialize (u): { u.active = true; }
        Traverse (u): {
            For v in u.out_nbrs { For w in v.out_nbrs { w.s.Accumulate(1); } }
        }
        Update (u): { }
    "#;
    let input = GraphInput::directed(edges);
    let mut s = SessionBuilder::from_config(EngineConfig::with_machines(2)).from_source(src, &input).unwrap();
    let m = s.run_oneshot();
    assert!(m.io.net_bytes > 0, "cross-partition traversal must hit the network");
}

#[test]
fn array_attributes_flow_through_the_engine() {
    // Each vertex owns a fixed embedding; neighbors accumulate a scalar
    // projection of it; Update folds it back into a score.
    let src = r#"
        Vertex (id, active, nbrs, emb: Array<long, 3>,
                s: Accm<long, SUM>, score: long)
        Initialize (u): {
            u.active = true;
        }
        Traverse (u): {
            For v in u.nbrs { v.s.Accumulate(u.emb[0] + u.emb[2]); }
        }
        Update (u): { u.score = u.s; }
    "#;
    let input = GraphInput::undirected(vec![(0, 1), (1, 2)]);
    let mut s = SessionBuilder::from_config(EngineConfig::default()).from_source(src, &input).unwrap();
    s.run_oneshot();
    // Embeddings default to zero-filled arrays, so scores are 0 — but the
    // Array read path (AttrElem) ran for every walk.
    assert_eq!(s.attr_value(1, "score").unwrap(), Value::Long(0));
    let emb = s.attr_value(0, "emb").unwrap();
    assert_eq!(
        emb,
        Value::Array(vec![Value::Long(0), Value::Long(0), Value::Long(0)])
    );
}

#[test]
fn vertex_growth_mid_stream() {
    // New vertices appear via mutations; Initialize runs for them and they
    // participate in subsequent supersteps.
    let src = r#"
        Vertex (id, active, nbrs, comp: long, m: Accm<long, MIN>)
        Initialize (u): { u.comp = u.id; u.active = true; }
        Traverse (u): { For v in u.nbrs { v.m.Accumulate(u.comp); } }
        Update (u): { If (u.m < u.comp) { u.comp = u.m; u.active = true; } }
    "#;
    let input = GraphInput::undirected(vec![(0, 1)]);
    let mut s = SessionBuilder::from_config(EngineConfig::with_machines(2)).from_source(src, &input).unwrap();
    s.run_oneshot();
    // Vertex 5 does not exist yet.
    s.apply_mutations(&MutationBatch::new(vec![
        EdgeMutation::insert(1, 5),
        EdgeMutation::insert(5, 3),
    ]));
    s.run_incremental();
    assert_eq!(s.attr_value(5, "comp").unwrap(), Value::Long(0));
    assert_eq!(s.attr_value(3, "comp").unwrap(), Value::Long(0));
}

#[test]
fn edge_compaction_between_snapshots_is_transparent() {
    let input = GraphInput::undirected(vec![(0, 1), (1, 2), (0, 2), (2, 3)]);
    let mut s = SessionBuilder::from_config(EngineConfig::with_machines(2)).from_source(itg_algorithms::programs::TRIANGLE_COUNT, &input)
    .unwrap();
    s.run_oneshot();
    // Several snapshots build up a delta-segment chain.
    for m in [
        EdgeMutation::insert(1, 3),
        EdgeMutation::insert(3, 0),
        EdgeMutation::delete(0, 1),
    ] {
        s.apply_mutations(&MutationBatch::new(vec![m]));
        s.run_incremental();
    }
    let count_before = s.global_value("cnts", None).unwrap();
    let bytes_before = s.graph.edge_store_bytes();

    s.compact_edges();
    assert!(s.graph.edge_store_bytes() <= bytes_before);

    // The session keeps working across post-compaction batches, with
    // identical results.
    s.apply_mutations(&MutationBatch::new(vec![EdgeMutation::insert(0, 1)]));
    s.run_incremental();
    let expected = {
        // (0,1) back in: triangles of the final graph.
        use itg_algorithms::native::{triangle_count, SimpleGraph};
        let g = SimpleGraph::undirected(
            4,
            &[(0, 1), (1, 2), (0, 2), (2, 3), (1, 3), (3, 0)],
        );
        triangle_count(&g)
    };
    assert_eq!(s.global_value("cnts", None).unwrap(), Value::Long(expected));
    let _ = count_before;
}

#[test]
fn unsupported_fragment_is_a_clean_error_at_session_creation() {
    // Deep attribute reads type-check (the language allows them) but sit
    // outside the engine's executable fragment: rejected up front with a
    // diagnosable error rather than a mid-run panic.
    let src = r#"
        Vertex (id, active, nbrs, w: long, s: Accm<long, SUM>)
        Initialize (u): { u.w = u.id; u.active = true; }
        Traverse (u): {
            For v in u.nbrs { For x in v.nbrs { x.s.Accumulate(v.w); } }
        }
        Update (u): { }
    "#;
    let input = GraphInput::undirected(vec![(0, 1), (1, 2)]);
    let err = match SessionBuilder::from_config(EngineConfig::default()).from_source(src, &input) {
        Err(e) => e,
        Ok(_) => panic!("deep-attr program should be rejected"),
    };
    assert!(err.to_string().contains("first vertex"), "{err}");
}

#[test]
fn protocol_misuse_is_a_clean_error() {
    let input = GraphInput::undirected(vec![(0, 1), (1, 2), (0, 2)]);
    let mut s = SessionBuilder::from_config(EngineConfig::default()).from_source(itg_algorithms::programs::TRIANGLE_COUNT, &input)
    .unwrap();
    // Incremental before one-shot.
    assert!(s.try_run_incremental().is_err());
    s.run_oneshot();
    // Incremental without a pending batch.
    assert!(s.try_run_incremental().is_err());
    s.apply_mutations(&MutationBatch::new(vec![EdgeMutation::insert(1, 3)]));
    assert!(s.try_run_incremental().is_ok());
    // And again without a new batch.
    assert!(s.try_run_incremental().is_err());
}

#[test]
fn empty_batch_is_a_noop() {
    let input = GraphInput::undirected(vec![(0, 1), (1, 2), (0, 2)]);
    let mut s = SessionBuilder::from_config(EngineConfig::default()).from_source(itg_algorithms::programs::TRIANGLE_COUNT, &input)
    .unwrap();
    s.run_oneshot();
    s.apply_mutations(&MutationBatch::new(vec![]));
    let inc = s.run_incremental();
    assert_eq!(s.global_value("cnts", None).unwrap(), Value::Long(1));
    assert_eq!(inc.io.walks_enumerated, 0, "no deltas → no Δ-walks");
}

#[test]
fn repeated_batches_between_runs_are_rejected_gracefully() {
    // Two mutation batches before one incremental run: the engine processes
    // against the latest snapshot; the older delta folds into the Old view.
    // (A production system would queue; we document the semantics: each
    // run_incremental consumes exactly the latest batch, so callers must
    // alternate apply/run. This test pins the supported pattern.)
    let input = GraphInput::undirected(vec![(0, 1), (1, 2), (0, 2)]);
    let mut s = SessionBuilder::from_config(EngineConfig::default()).from_source(itg_algorithms::programs::TRIANGLE_COUNT, &input)
    .unwrap();
    s.run_oneshot();
    for (a, b) in [(2u64, 3u64), (3, 0)] {
        s.apply_mutations(&MutationBatch::new(vec![EdgeMutation::insert(a, b)]));
        s.run_incremental();
    }
    assert_eq!(s.global_value("cnts", None).unwrap(), Value::Long(2));
}
