//! Cross-transport equivalence: a session running over
//! `TransportKind::Process` (partition groups in separate OS processes,
//! exchange over pipes) must be indistinguishable from the same session
//! over `TransportKind::Local` — identical attribute columns, global
//! values, superstep counts, work units, recomputed-vertex counts, and
//! `net_bytes` — for one-shot runs and for a random incremental mutation
//! history. The programs use integer arithmetic, so "identical" means
//! bit-for-bit.
//!
//! Also covers the `net/bytes` observability counter (it must equal the
//! `RunMetrics::io::net_bytes` the engine reports) and the
//! `EngineError::BadSuperstep` contract on `global_value`.

use itg_algorithms::programs;
use itg_engine::{EngineConfig, GraphInput, SessionBuilder, TransportKind};
use itg_gsa::{Value, VertexId};
use itg_store::{EdgeMutation, MutationBatch};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random undirected base graph plus mutation batches (same workload
/// protocol shape as the local equivalence suite).
fn random_workload(
    seed: u64,
    n: u64,
    base_edges: usize,
    batches: usize,
    batch_size: usize,
) -> (Vec<(VertexId, VertexId)>, Vec<MutationBatch>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut all: Vec<(VertexId, VertexId)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    while all.len() < base_edges + batches * batch_size {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && seen.insert((a.min(b), a.max(b))) {
            all.push((a.min(b), a.max(b)));
        }
    }
    let base: Vec<_> = all[..base_edges].to_vec();
    let mut pool: Vec<_> = all[base_edges..].to_vec();
    let mut alive = base.clone();
    let mut out = Vec::new();
    for _ in 0..batches {
        let mut muts = Vec::new();
        for _ in 0..batch_size {
            if rng.gen_bool(0.7) || alive.len() < 4 {
                if let Some(e) = pool.pop() {
                    muts.push(EdgeMutation::insert(e.0, e.1));
                    alive.push(e);
                }
            } else {
                let i = rng.gen_range(0..alive.len());
                let e = alive.swap_remove(i);
                muts.push(EdgeMutation::delete(e.0, e.1));
            }
        }
        out.push(MutationBatch::new(muts));
    }
    (base, out)
}

fn attr_names(name: &str) -> Vec<&'static str> {
    match name {
        "pr" => vec!["rank"],
        "wcc" => vec!["comp"],
        "tc" => vec![],
        _ => unreachable!(),
    }
}

fn global_names(name: &str) -> Vec<&'static str> {
    match name {
        "tc" => vec!["cnts"],
        _ => vec![],
    }
}

/// Everything user-visible about one run, captured for comparison.
#[derive(Debug, PartialEq)]
struct RunSnapshot {
    attrs: Vec<(String, Vec<Value>)>,
    globals: Vec<(String, Value)>,
    supersteps: usize,
    work_units: u64,
    recomputed_vertices: u64,
    net_bytes: u64,
    phases: u64,
    chunks: u64,
}

/// Run `name` over `transport`: one-shot on the base graph, then the full
/// mutation history incrementally, snapshotting after every run.
fn transcript(name: &str, transport: TransportKind, machines: usize, seed: u64) -> Vec<RunSnapshot> {
    let (base, batches) = random_workload(seed, 24, 40, 3, 6);
    let src = programs::source(name).unwrap();
    let mut input = if programs::is_undirected(name) {
        GraphInput::undirected(base)
    } else {
        GraphInput::directed(base)
    };
    input.num_vertices = 24;
    let max_ss = if name == "pr" { 10 } else { usize::MAX };

    let mut sess = SessionBuilder::from_config(EngineConfig::default())
        .machines(machines)
        .parallel(false)
        .transport(transport)
        .max_supersteps(max_ss)
        .from_source(&src, &input)
        .expect("session builds");

    let mut out = Vec::new();
    let m = sess.run_oneshot();
    out.push(snapshot(&sess, name, &m));
    for batch in &batches {
        sess.apply_mutations(batch);
        let m = sess.run_incremental();
        out.push(snapshot(&sess, name, &m));
    }
    out
}

fn snapshot(
    sess: &itg_engine::Session,
    name: &str,
    m: &itg_engine::RunMetrics,
) -> RunSnapshot {
    RunSnapshot {
        attrs: attr_names(name)
            .into_iter()
            .map(|a| (a.to_string(), sess.attr_column(a).unwrap()))
            .collect(),
        globals: global_names(name)
            .into_iter()
            .map(|g| (g.to_string(), sess.global_value(g, None).unwrap()))
            .collect(),
        supersteps: m.supersteps,
        work_units: m.work_units,
        recomputed_vertices: m.recomputed_vertices,
        net_bytes: m.io.net_bytes,
        phases: m.parallel.phases,
        chunks: m.parallel.chunks,
    }
}

/// The core property: local and process transcripts are identical.
fn check_transports_agree(name: &str, machines: usize, workers: usize, seed: u64) {
    let local = transcript(name, TransportKind::Local, machines, seed);
    let process = transcript(name, TransportKind::Process { workers }, machines, seed);
    assert_eq!(
        local.len(),
        process.len(),
        "{name}: run count diverged (seed {seed})"
    );
    for (i, (l, p)) in local.iter().zip(&process).enumerate() {
        assert_eq!(
            l, p,
            "{name}: run {i} diverged between local and process transports \
             (machines={machines}, workers={workers}, seed={seed})"
        );
    }
}

// The process-transport tests spawn `itg-partition-worker` children over
// piped stdio; gated to unix per the CI matrix.

#[cfg(unix)]
#[test]
fn pr_process_matches_local() {
    // Two workers, each owning two of the four partition groups.
    check_transports_agree("pr", 4, 2, 5);
}

#[cfg(unix)]
#[test]
fn wcc_process_matches_local() {
    check_transports_agree("wcc", 4, 2, 6);
}

#[cfg(unix)]
#[test]
fn wcc_one_worker_per_machine_matches_local() {
    // workers = 0 resolves to one process per machine.
    check_transports_agree("wcc", 3, 0, 7);
}

#[cfg(unix)]
#[test]
fn tc_globals_match_across_transports() {
    // Triangle count is all-global output: exercises the partial global
    // reduction and the GlobalsFinal broadcast end to end.
    check_transports_agree("tc", 3, 2, 8);
}

#[cfg(unix)]
#[test]
fn single_worker_process_matches_local() {
    // Degenerate fleet: one child owns every machine; the coordinator
    // still runs barriers, frontier votes, and global reduction.
    check_transports_agree("wcc", 2, 1, 9);
}

/// The `net/bytes` observability counter under the local transport equals
/// the `net_bytes` the run metrics report (the pre-transport counter's
/// contract, preserved).
#[test]
fn local_net_bytes_counter_matches_metrics() {
    let (base, batches) = random_workload(13, 24, 40, 2, 6);
    let mut input = GraphInput::undirected(base);
    input.num_vertices = 24;
    let mut sess = SessionBuilder::from_config(EngineConfig::default())
        .machines(3)
        .observer(itg_obs::Recorder::enabled())
        .from_source(&programs::source("wcc").unwrap(), &input)
        .unwrap();

    let m = sess.run_oneshot();
    let prof = m.profile.as_ref().expect("recorder enabled");
    assert!(m.io.net_bytes > 0, "multi-machine WCC must exchange bytes");
    assert_eq!(prof.counter_total("net/bytes"), m.io.net_bytes);

    for batch in &batches {
        sess.apply_mutations(batch);
        let m = sess.run_incremental();
        let prof = m.profile.as_ref().expect("recorder enabled");
        assert_eq!(prof.counter_total("net/bytes"), m.io.net_bytes);
    }
}

/// `global_value` with an out-of-range superstep is an error, not a
/// silent clamp.
#[test]
fn global_value_out_of_range_superstep_is_an_error() {
    use itg_engine::EngineError;
    let input = GraphInput::undirected(vec![(0, 1), (1, 2), (0, 2)]);
    let mut sess = SessionBuilder::from_config(EngineConfig::default())
        .machines(2)
        .from_source(&programs::source("tc").unwrap(), &input)
        .unwrap();
    let m = sess.run_oneshot();

    // In range: the last executed superstep and None (= 0) both resolve.
    assert!(sess.global_value("cnts", None).is_ok());
    assert!(sess.global_value("cnts", Some(m.supersteps - 1)).is_ok());

    // Out of range: a BadSuperstep error carrying both sides.
    match sess.global_value("cnts", Some(m.supersteps)) {
        Err(EngineError::BadSuperstep { requested, executed }) => {
            assert_eq!(requested, m.supersteps);
            assert_eq!(executed, m.supersteps);
        }
        other => panic!("expected BadSuperstep, got {other:?}"),
    }
}
