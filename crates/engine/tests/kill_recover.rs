//! The headline durability test (DESIGN.md §9): a child process applies a
//! random mutation history through a durable session and is killed by WAL
//! fault injection (`ITG_CRASH_AT`, optionally `ITG_CRASH_TORN`) at a
//! chosen LSN; the parent recovers from the WAL directory and asserts the
//! recovered session's *full serialized state* is byte-identical to an
//! uninterrupted oracle session that executed exactly the durable prefix
//! of the command history. The recovered session must then keep working:
//! one more batch + incremental run lands both sessions in the same state
//! again.
//!
//! Log-before-execute makes the durable prefix precise: `ITG_CRASH_AT=L`
//! aborts after record `L` is fsynced but before the command runs, so
//! recovery replays commands `0..=L`. A torn crash (`ITG_CRASH_TORN=1`)
//! half-writes record `L`; recovery truncates it and replays `0..L`.

mod common;

use common::{attr_names, build_workload, mk_config, mk_input, Scenario};
use itg_algorithms::programs;
use itg_engine::{DurabilityKind, Session, SessionBuilder};
use itg_store::MutationBatch;
use std::path::{Path, PathBuf};

/// The fixed scenario both processes derive the identical history from.
fn scenario(algo: &'static str) -> Scenario {
    Scenario {
        algo,
        machines: 2,
        threads: 2,
        seed: 0xD00D_F00D,
        batches: 4,
        batch_size: 8,
        mutation_mode: common::MutationMode::Uniform,
    }
}

/// One logged command of the child's history.
enum Cmd {
    Oneshot,
    Batch(MutationBatch),
    Incremental,
    Compact,
}

/// The command history: one-shot, then (batch, incremental) per batch,
/// with a compaction between the second and third transition. One WAL
/// record per command, LSN = index. The final batch is held back as the
/// post-recovery continuation workload.
fn history(sc: &Scenario) -> (Vec<Cmd>, MutationBatch) {
    let (base, mut batches) = build_workload(sc);
    let _ = base; // the input graph is rebuilt by `child_input`
    let tail = batches.pop().expect("scenario has >= 2 batches");
    let mut cmds = vec![Cmd::Oneshot];
    for (i, b) in batches.into_iter().enumerate() {
        cmds.push(Cmd::Batch(b));
        cmds.push(Cmd::Incremental);
        if i == 1 {
            cmds.push(Cmd::Compact);
        }
    }
    (cmds, tail)
}

fn exec(sess: &mut Session, cmd: &Cmd) {
    match cmd {
        Cmd::Oneshot => {
            sess.run_oneshot();
        }
        Cmd::Batch(b) => sess.apply_mutations(b),
        Cmd::Incremental => {
            sess.run_incremental();
        }
        Cmd::Compact => sess.compact_edges(),
    }
}

fn durable_session(sc: &Scenario, dir: &Path) -> Session {
    let (base, _) = build_workload(sc);
    let src = programs::source(sc.algo).unwrap();
    SessionBuilder::from_config(mk_config(sc.algo, sc.machines, sc.threads))
        .durability(DurabilityKind::Wal {
            dir: dir.to_path_buf(),
        })
        .from_source(&src, &mk_input(sc.algo, &base))
        .unwrap()
}

fn oracle_session(sc: &Scenario) -> Session {
    let (base, _) = build_workload(sc);
    let src = programs::source(sc.algo).unwrap();
    SessionBuilder::from_config(mk_config(sc.algo, sc.machines, sc.threads))
        .from_source(&src, &mk_input(sc.algo, &base))
        .unwrap()
}

/// Child-process entry: run the full history through a durable session.
/// The WAL's fault injection kills the process at `ITG_CRASH_AT`; a
/// mid-history checkpoint exercises snapshot-plus-tail recovery.
#[test]
#[ignore = "child entry for the kill-and-recover tests; spawned with ITG_KR_DIR set"]
fn child_run_history() {
    let Ok(dir) = std::env::var("ITG_KR_DIR") else {
        // Running under a bare `cargo test -- --include-ignored` sweep:
        // nothing to do without the driver's environment.
        return;
    };
    let algo = std::env::var("ITG_KR_ALGO").unwrap();
    let sc = scenario(Box::leak(algo.into_boxed_str()));
    let mut sess = durable_session(&sc, Path::new(&dir));
    let (cmds, _) = history(&sc);
    for (i, cmd) in cmds.iter().enumerate() {
        exec(&mut sess, cmd);
        if i == 4 {
            // Mid-history snapshot: recovery from a crash after this point
            // must start at epoch 1 and replay only the WAL tail.
            sess.checkpoint().unwrap();
        }
    }
}

fn spawn_child(dir: &Path, algo: &str, crash_at: u64, torn: bool) {
    let exe = std::env::current_exe().unwrap();
    let mut cmd = std::process::Command::new(exe);
    cmd.args(["child_run_history", "--exact", "--include-ignored", "--nocapture"])
        .env("ITG_KR_DIR", dir)
        .env("ITG_KR_ALGO", algo)
        .env("ITG_CRASH_AT", crash_at.to_string())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null());
    if torn {
        cmd.env("ITG_CRASH_TORN", "1");
    }
    let status = cmd.status().expect("spawn child");
    assert!(
        !status.success(),
        "child should have died at lsn {crash_at}, but exited cleanly"
    );
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "itg-kill-recover-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The driver: kill the child at `crash_at`, recover, compare against the
/// oracle that executed the durable prefix, then run the continuation
/// workload on both and compare again.
fn kill_and_recover(algo: &'static str, crash_at: u64, torn: bool) {
    let sc = scenario(algo);
    let (cmds, tail) = history(&sc);
    assert!((crash_at as usize) < cmds.len(), "crash point inside history");
    let dir = fresh_dir(&format!("{algo}-{crash_at}-{}", u8::from(torn)));
    spawn_child(&dir, algo, crash_at, torn);

    let recovered = Session::recover(&dir).unwrap();

    // The durable prefix: a clean crash fsyncs record `crash_at` before
    // dying (command replayed on recovery); a torn crash half-writes it
    // (record truncated, command lost).
    let executed = if torn { crash_at } else { crash_at + 1 } as usize;
    let mut oracle = oracle_session(&sc);
    for cmd in &cmds[..executed] {
        exec(&mut oracle, cmd);
    }

    assert_eq!(
        recovered.state_image(),
        oracle.state_image(),
        "{algo}: recovered state not byte-identical after crash at lsn \
         {crash_at} (torn={torn})"
    );
    for attr in attr_names(algo) {
        assert_eq!(
            recovered.attr_column(attr).unwrap(),
            oracle.attr_column(attr).unwrap(),
            "{algo}: attribute `{attr}` diverged"
        );
    }

    // The recovered session keeps working — and stays in lockstep: both
    // sessions finish the interrupted history, then take one more
    // batch + incremental run.
    let mut recovered = recovered;
    for cmd in &cmds[executed..] {
        exec(&mut recovered, cmd);
        exec(&mut oracle, cmd);
    }
    recovered.apply_mutations(&tail);
    recovered.run_incremental();
    oracle.apply_mutations(&tail);
    oracle.run_incremental();
    assert_eq!(
        recovered.state_image(),
        oracle.state_image(),
        "{algo}: post-recovery continuation diverged"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recover_after_crash_before_any_run() {
    // Dies fsyncing the very first record: recovery replays the one-shot
    // from the epoch-0 snapshot.
    kill_and_recover("wcc", 0, false);
}

#[test]
fn recover_after_crash_mid_history() {
    // Dies after the mid-history checkpoint: recovery starts at epoch 1
    // and replays the WAL tail.
    kill_and_recover("wcc", 6, false);
}

#[test]
fn recover_after_crash_at_final_record() {
    let sc = scenario("wcc");
    let (cmds, _) = history(&sc);
    kill_and_recover("wcc", cmds.len() as u64 - 1, false);
}

#[test]
fn recover_after_torn_final_record() {
    // The crash record is half-written: recovery must truncate it and
    // land on the state *before* that command.
    kill_and_recover("wcc", 6, true);
}

#[test]
fn recover_float_algorithm_bitwise() {
    // PageRank: float accumulation order must survive snapshot + replay.
    kill_and_recover("pr", 5, false);
}

#[test]
fn recovered_session_checkpoints_again() {
    let dir = fresh_dir("re-checkpoint");
    spawn_child(&dir, "bfs", 3, false);
    let mut recovered = Session::recover(&dir).unwrap();
    let id = recovered.checkpoint().unwrap();
    assert!(id.0 >= 1, "fresh checkpoint advances the epoch");
    // A second recovery from the new snapshot (empty tail) matches.
    let again = Session::recover(&dir).unwrap();
    assert_eq!(recovered.state_image(), again.state_image());
    let _ = std::fs::remove_dir_all(&dir);
}
