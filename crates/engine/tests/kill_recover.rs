//! The headline durability test (DESIGN.md §9): a child process applies a
//! random mutation history through a durable session and is killed by WAL
//! fault injection (`ITG_CRASH_AT`, optionally `ITG_CRASH_TORN`) at a
//! chosen LSN; the parent recovers from the WAL directory and asserts the
//! recovered session's *full serialized state* is byte-identical to an
//! uninterrupted oracle session that executed exactly the durable prefix
//! of the command history. The recovered session must then keep working:
//! one more batch + incremental run lands both sessions in the same state
//! again.
//!
//! Log-before-execute makes the durable prefix precise: `ITG_CRASH_AT=L`
//! aborts after record `L` is fsynced but before the command runs, so
//! recovery replays commands `0..=L`. A torn crash (`ITG_CRASH_TORN=1`)
//! half-writes record `L`; recovery truncates it and replays `0..L`.

mod common;

use common::{attr_names, build_workload, mk_config, mk_input, Scenario};
use itg_algorithms::programs;
use itg_engine::{DurabilityKind, Session, SessionBuilder};
use itg_store::MutationBatch;
use std::path::{Path, PathBuf};

/// The fixed scenario both processes derive the identical history from.
fn scenario(algo: &'static str) -> Scenario {
    Scenario {
        algo,
        machines: 2,
        threads: 2,
        seed: 0xD00D_F00D,
        batches: 4,
        batch_size: 8,
        mutation_mode: common::MutationMode::Uniform,
    }
}

/// One logged command of the child's history.
enum Cmd {
    Oneshot,
    Batch(MutationBatch),
    Incremental,
    Compact,
}

/// The command history: one-shot, then (batch, incremental) per batch,
/// with a compaction between the second and third transition. One WAL
/// record per command, LSN = index. The final batch is held back as the
/// post-recovery continuation workload.
fn history(sc: &Scenario) -> (Vec<Cmd>, MutationBatch) {
    let (base, mut batches) = build_workload(sc);
    let _ = base; // the input graph is rebuilt by `child_input`
    let tail = batches.pop().expect("scenario has >= 2 batches");
    let mut cmds = vec![Cmd::Oneshot];
    for (i, b) in batches.into_iter().enumerate() {
        cmds.push(Cmd::Batch(b));
        cmds.push(Cmd::Incremental);
        if i == 1 {
            cmds.push(Cmd::Compact);
        }
    }
    (cmds, tail)
}

fn exec(sess: &mut Session, cmd: &Cmd) {
    match cmd {
        Cmd::Oneshot => {
            sess.run_oneshot();
        }
        Cmd::Batch(b) => sess.apply_mutations(b),
        Cmd::Incremental => {
            sess.run_incremental();
        }
        Cmd::Compact => sess.compact_edges(),
    }
}

fn durable_session(sc: &Scenario, dir: &Path) -> Session {
    let (base, _) = build_workload(sc);
    let src = programs::source(sc.algo).unwrap();
    SessionBuilder::from_config(mk_config(sc.algo, sc.machines, sc.threads))
        .durability(DurabilityKind::Wal {
            dir: dir.to_path_buf(),
        })
        .from_source(&src, &mk_input(sc.algo, &base))
        .unwrap()
}

fn oracle_session(sc: &Scenario) -> Session {
    let (base, _) = build_workload(sc);
    let src = programs::source(sc.algo).unwrap();
    SessionBuilder::from_config(mk_config(sc.algo, sc.machines, sc.threads))
        .from_source(&src, &mk_input(sc.algo, &base))
        .unwrap()
}

/// Child-process entry: run the full history through a durable session.
/// The WAL's fault injection kills the process at `ITG_CRASH_AT`; a
/// mid-history checkpoint exercises snapshot-plus-tail recovery.
#[test]
#[ignore = "child entry for the kill-and-recover tests; spawned with ITG_KR_DIR set"]
fn child_run_history() {
    let Ok(dir) = std::env::var("ITG_KR_DIR") else {
        // Running under a bare `cargo test -- --include-ignored` sweep:
        // nothing to do without the driver's environment.
        return;
    };
    let algo = std::env::var("ITG_KR_ALGO").unwrap();
    let sc = scenario(Box::leak(algo.into_boxed_str()));
    let mut sess = durable_session(&sc, Path::new(&dir));
    let (cmds, _) = history(&sc);
    for (i, cmd) in cmds.iter().enumerate() {
        exec(&mut sess, cmd);
        if i == 4 {
            // Mid-history snapshot: recovery from a crash after this point
            // must start at epoch 1 and replay only the WAL tail.
            sess.checkpoint().unwrap();
        }
    }
}

/// Spawn the `child_run_history` entry with arbitrary fault-injection
/// environment and assert it died mid-history.
fn spawn_child_env(dir: &Path, algo: &str, envs: &[(&str, String)]) {
    let exe = std::env::current_exe().unwrap();
    let mut cmd = std::process::Command::new(exe);
    cmd.args(["child_run_history", "--exact", "--include-ignored", "--nocapture"])
        .env("ITG_KR_DIR", dir)
        .env("ITG_KR_ALGO", algo)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let status = cmd.status().expect("spawn child");
    assert!(
        !status.success(),
        "child should have died at the injected fault ({envs:?}), but exited cleanly"
    );
}

fn spawn_child(dir: &Path, algo: &str, crash_at: u64, torn: bool) {
    let mut envs = vec![("ITG_CRASH_AT", crash_at.to_string())];
    if torn {
        envs.push(("ITG_CRASH_TORN", "1".to_string()));
    }
    spawn_child_env(dir, algo, &envs);
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "itg-kill-recover-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Recover from `dir`, compare byte-for-byte against an oracle that
/// executed exactly `executed` commands, then run the rest of the history
/// plus the continuation workload on both in lockstep.
fn verify_recovery(dir: &Path, sc: &Scenario, executed: usize, ctx: &str) {
    let (cmds, tail) = history(sc);
    let recovered = Session::recover(dir).unwrap();

    let mut oracle = oracle_session(sc);
    for cmd in &cmds[..executed] {
        exec(&mut oracle, cmd);
    }

    assert_eq!(
        recovered.state_image(),
        oracle.state_image(),
        "{ctx}: recovered state not byte-identical to the {executed}-command \
         oracle"
    );
    for attr in attr_names(sc.algo) {
        assert_eq!(
            recovered.attr_column(attr).unwrap(),
            oracle.attr_column(attr).unwrap(),
            "{ctx}: attribute `{attr}` diverged"
        );
    }

    // The recovered session keeps working — and stays in lockstep: both
    // sessions finish the interrupted history, then take one more
    // batch + incremental run.
    let mut recovered = recovered;
    for cmd in &cmds[executed..] {
        exec(&mut recovered, cmd);
        exec(&mut oracle, cmd);
    }
    recovered.apply_mutations(&tail);
    recovered.run_incremental();
    oracle.apply_mutations(&tail);
    oracle.run_incremental();
    assert_eq!(
        recovered.state_image(),
        oracle.state_image(),
        "{ctx}: post-recovery continuation diverged"
    );
}

/// The driver: kill the child at `crash_at`, recover, compare against the
/// oracle that executed the durable prefix, then run the continuation
/// workload on both and compare again.
fn kill_and_recover(algo: &'static str, crash_at: u64, torn: bool) {
    let sc = scenario(algo);
    let (cmds, _) = history(&sc);
    assert!((crash_at as usize) < cmds.len(), "crash point inside history");
    let dir = fresh_dir(&format!("{algo}-{crash_at}-{}", u8::from(torn)));
    spawn_child(&dir, algo, crash_at, torn);

    // The durable prefix: a clean crash fsyncs record `crash_at` before
    // dying (command replayed on recovery); a torn crash half-writes it
    // (record truncated, command lost).
    let executed = if torn { crash_at } else { crash_at + 1 } as usize;
    verify_recovery(
        &dir,
        &sc,
        executed,
        &format!("{algo} crash at lsn {crash_at} (torn={torn})"),
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recover_after_crash_before_any_run() {
    // Dies fsyncing the very first record: recovery replays the one-shot
    // from the epoch-0 snapshot.
    kill_and_recover("wcc", 0, false);
}

#[test]
fn recover_after_crash_mid_history() {
    // Dies after the mid-history checkpoint: recovery starts at epoch 1
    // and replays the WAL tail.
    kill_and_recover("wcc", 6, false);
}

#[test]
fn recover_after_crash_at_final_record() {
    let sc = scenario("wcc");
    let (cmds, _) = history(&sc);
    kill_and_recover("wcc", cmds.len() as u64 - 1, false);
}

#[test]
fn recover_after_torn_final_record() {
    // The crash record is half-written: recovery must truncate it and
    // land on the state *before* that command.
    kill_and_recover("wcc", 6, true);
}

#[test]
fn recover_float_algorithm_bitwise() {
    // PageRank: float accumulation order must survive snapshot + replay.
    kill_and_recover("pr", 5, false);
}

#[test]
fn recovered_session_checkpoints_again() {
    let dir = fresh_dir("re-checkpoint");
    spawn_child(&dir, "bfs", 3, false);
    let mut recovered = Session::recover(&dir).unwrap();
    let id = recovered.checkpoint().unwrap();
    assert!(id.0 >= 1, "fresh checkpoint advances the epoch");
    // A second recovery from the new snapshot (empty tail) matches.
    let again = Session::recover(&dir).unwrap();
    assert_eq!(recovered.state_image(), again.state_image());
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------
// PR 8 kill points: mid-group-commit, mid-rotation, mid-snapshot.
// ---------------------------------------------------------------

#[test]
fn recover_after_crash_mid_group_commit_window() {
    // A leader window is open (ITG_GROUP_COMMIT_US) when the crash lands:
    // the ack contract — every acknowledged command durable, nothing
    // acknowledged past the crash LSN — must hold exactly as without the
    // window. (The engine's command loop is single-threaded, so the window
    // exercises the leader-sleep path; the multi-committer partial-ack
    // matrix lives in itg-store's group_commit suite.)
    let sc = scenario("wcc");
    let dir = fresh_dir("mid-window");
    spawn_child_env(
        &dir,
        "wcc",
        &[
            ("ITG_CRASH_AT", "5".to_string()),
            ("ITG_GROUP_COMMIT_US", "300".to_string()),
        ],
    );
    verify_recovery(&dir, &sc, 6, "wcc crash inside a 300µs commit window");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recover_after_crash_mid_rotation() {
    // Tiny segments force rotations mid-history; ITG_CRASH_ROTATION=2 dies
    // between creating the new segment file and fsyncing its directory
    // entry. Which LSN that is depends on record sizes, so the durable
    // prefix is discovered from the directory itself — exactly what real
    // recovery must do.
    let sc = scenario("wcc");
    let dir = fresh_dir("mid-rotation");
    spawn_child_env(
        &dir,
        "wcc",
        &[
            ("ITG_WAL_SEGMENT_BYTES", "96".to_string()),
            ("ITG_CRASH_ROTATION", "2".to_string()),
        ],
    );

    let scan = itg_store::scan_dir(&dir).unwrap();
    assert!(
        scan.segments.len() >= 2,
        "96-byte segments must have rotated before the crash"
    );
    let executed = scan.next_lsn() as usize;
    let (cmds, _) = history(&sc);
    assert!(
        executed > 0 && executed < cmds.len(),
        "rotation crash must land mid-history (durable prefix {executed} \
         of {})",
        cmds.len()
    );
    verify_recovery(
        &dir,
        &sc,
        executed,
        "wcc crash mid-rotation (new segment created, dir entry unsynced)",
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recover_after_crash_mid_delta_snapshot() {
    // The child checkpoints after command 4; epoch 1 is a delta snapshot
    // (epoch 0 is its base). ITG_CRASH_SNAPSHOT=1 dies after the delta
    // file is written but before the manifest commits it: recovery must
    // ignore the orphaned file and replay epoch 0 + the full WAL.
    let sc = scenario("wcc");
    let dir = fresh_dir("mid-delta-snapshot");
    spawn_child_env(&dir, "wcc", &[("ITG_CRASH_SNAPSHOT", "1".to_string())]);

    let manifest = itg_store::Manifest::load(&dir).unwrap();
    assert_eq!(
        manifest.latest().unwrap().epoch,
        0,
        "the interrupted epoch-1 snapshot must not be committed"
    );
    assert!(
        dir.join("snapshot-1.delta.bin").exists(),
        "the orphaned delta file was written before the crash"
    );
    // Commands 0..=4 ran (the checkpoint follows command index 4).
    verify_recovery(&dir, &sc, 5, "wcc crash between delta write and manifest");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recover_after_torn_delta_snapshot() {
    // Same kill point, but the delta file itself is half-written (no
    // rename): recovery sees only a stale `.tmp` next to the manifest.
    let sc = scenario("wcc");
    let dir = fresh_dir("torn-delta-snapshot");
    spawn_child_env(
        &dir,
        "wcc",
        &[
            ("ITG_CRASH_SNAPSHOT", "1".to_string()),
            ("ITG_CRASH_SNAPSHOT_TORN", "true".to_string()),
        ],
    );

    assert_eq!(itg_store::Manifest::load(&dir).unwrap().latest().unwrap().epoch, 0);
    assert!(
        !dir.join("snapshot-1.delta.bin").exists(),
        "a torn snapshot write must never produce the final file"
    );
    verify_recovery(&dir, &sc, 5, "wcc crash mid-delta-snapshot-write");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn delta_chain_recovery_roundtrip() {
    // Uninterrupted delta chain: checkpoint after every incremental run,
    // so epochs 1..=3 are deltas chained back to the epoch-0 full base.
    // Recovery must compose the chain byte-exactly, and each delta must be
    // materially smaller than the full snapshot it stands in for.
    let sc = scenario("wcc");
    let dir = fresh_dir("delta-chain");
    let mut live = durable_session(&sc, &dir);
    let (cmds, _) = history(&sc);
    for cmd in &cmds {
        exec(&mut live, cmd);
        if matches!(cmd, Cmd::Incremental) {
            live.checkpoint().unwrap();
        }
    }
    let live_image = live.state_image();
    drop(live); // release the WAL before a second session opens the dir

    let manifest = itg_store::Manifest::load(&dir).unwrap();
    assert_eq!(manifest.snapshots.len(), 4, "epoch 0 + three checkpoints");
    assert!(matches!(manifest.snapshots[0].kind, itg_store::SnapshotKind::Full));
    // Compose each epoch's full-equivalent payload and compare it to the
    // bytes actually stored. Epoch 1 rewrites most of the state (epoch 0
    // predates the one-shot run, so arrays and history appear wholesale);
    // epochs 2 and 3 are the steady state the delta encoder exists for —
    // one batch + incremental run apart — and must shrink checkpoint
    // bytes by at least 2×.
    let mut payload = itg_store::snapshot::read_file(&dir.join(&manifest.snapshots[0].file))
        .unwrap();
    for entry in &manifest.snapshots[1..] {
        assert!(
            matches!(entry.kind, itg_store::SnapshotKind::Delta { .. }),
            "epoch {} should be a delta",
            entry.epoch
        );
        let doc = itg_store::snapshot::read_file(&dir.join(&entry.file)).unwrap();
        payload = itg_store::delta::apply(&payload, &doc).unwrap();
        let (stored, full_equiv) = (doc.len(), payload.len());
        println!("epoch {}: delta {stored} B vs full {full_equiv} B", entry.epoch);
        if entry.epoch >= 2 {
            assert!(
                stored * 2 < full_equiv,
                "steady-state delta epoch {} ({stored} B) should be well \
                 under a full snapshot ({full_equiv} B)",
                entry.epoch
            );
        }
    }
    assert_eq!(
        manifest.chain_for(3).unwrap().len(),
        4,
        "epoch 3 resolves through 2 and 1 to the full base"
    );

    let recovered = Session::recover(&dir).unwrap();
    assert_eq!(
        recovered.state_image(),
        live_image,
        "chain-composed recovery not byte-identical to the live session"
    );
    // And the full oracle comparison plus continuation workload.
    verify_recovery(&dir, &sc, cmds.len(), "uninterrupted delta chain");
    let _ = std::fs::remove_dir_all(&dir);
}
