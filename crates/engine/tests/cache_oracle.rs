//! Property-based oracle for the NGW segment cache: the cache is a pure
//! read-path optimization, so for a random program, cluster shape, and
//! mutation history, running the same session at capacity 0 (cache off),
//! a deliberately tiny capacity (constant admission pressure and
//! evictions), and unbounded capacity must produce byte-identical state
//! images — and the `cache/hit + cache/miss` counters must account for
//! exactly the cacheable window loads the session performed.

mod common;

use common::{build_workload, mk_config, mk_input, MutationMode, Scenario, ALGOS};
use itg_algorithms::programs;
use itg_engine::SessionBuilder;
use itg_store::IoSnapshot;
use proptest::prelude::*;

/// A capacity that admits roughly one hot segment of the N=32 test
/// stores (a single f64 column is 256 bytes), forcing eviction churn.
const ONE_SEGMENT: u64 = 300;

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        0usize..ALGOS.len(),
        1usize..4,
        0usize..2,
        any::<u64>(),
        1usize..4,
        4usize..12,
        any::<bool>(),
    )
        .prop_map(|(a, machines, t, seed, batches, batch_size, hot)| Scenario {
            algo: ALGOS[a],
            machines,
            threads: [1usize, 2][t],
            seed,
            batches,
            batch_size,
            mutation_mode: if hot {
                MutationMode::HotVertex
            } else {
                MutationMode::Uniform
            },
        })
}

/// Run the scenario's full history at one cache capacity; return the
/// final state image, the summed IO deltas, and the window-load count.
fn run_at_capacity(
    sc: &Scenario,
    base: &[(u64, u64)],
    batches: &[itg_store::MutationBatch],
    capacity: u64,
) -> (Vec<u8>, IoSnapshot, u64) {
    let src = programs::source(sc.algo).unwrap();
    let mut sess = SessionBuilder::from_config(mk_config(sc.algo, sc.machines, sc.threads))
        .cache_bytes(capacity)
        .from_source(&src, &mk_input(sc.algo, base))
        .unwrap();
    let mut io = IoSnapshot::default();
    let add = |m: &itg_engine::RunMetrics, io: &mut IoSnapshot| {
        io.cache_hits += m.io.cache_hits;
        io.cache_misses += m.io.cache_misses;
        io.cache_evictions += m.io.cache_evictions;
    };
    let m = sess.run_oneshot();
    add(&m, &mut io);
    for batch in batches {
        sess.apply_mutations(batch);
        let m = sess.run_incremental();
        add(&m, &mut io);
    }
    (sess.state_image(), io, sess.window_loads())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn cache_capacity_never_changes_results(sc in scenario()) {
        let (base, batches) = build_workload(&sc);

        let (off_image, off_io, off_loads) =
            run_at_capacity(&sc, &base, &batches, 0);
        let (tiny_image, tiny_io, tiny_loads) =
            run_at_capacity(&sc, &base, &batches, ONE_SEGMENT);
        let (full_image, full_io, full_loads) =
            run_at_capacity(&sc, &base, &batches, u64::MAX);

        // The cache is invisible in every byte of session state.
        prop_assert!(
            off_image == tiny_image,
            "one-segment cache changed the state image (scenario {:?})", sc
        );
        prop_assert!(
            off_image == full_image,
            "unbounded cache changed the state image (scenario {:?})", sc
        );

        // Counter accounting: every cacheable window load is exactly one
        // hit or one miss, at every capacity.
        prop_assert_eq!(off_loads, tiny_loads);
        prop_assert_eq!(off_loads, full_loads);
        for (name, io, loads) in [
            ("off", &off_io, off_loads),
            ("tiny", &tiny_io, tiny_loads),
            ("full", &full_io, full_loads),
        ] {
            prop_assert_eq!(
                io.cache_hits + io.cache_misses,
                loads,
                "{}: hit + miss must equal window loads (scenario {:?})",
                name, &sc
            );
        }

        // Capacity 0 is off: everything misses, nothing is evicted.
        prop_assert_eq!(off_io.cache_hits, 0);
        prop_assert_eq!(off_io.cache_evictions, 0);

        // Unbounded capacity never evicts, and with at least two
        // incremental batches the second one re-reads windows the first
        // pinned.
        prop_assert_eq!(full_io.cache_evictions, 0);
        if sc.batches >= 2 {
            prop_assert!(
                full_io.cache_hits > 0,
                "unbounded cache saw no hits over {} batches (scenario {:?})",
                sc.batches, &sc
            );
        }
    }
}
