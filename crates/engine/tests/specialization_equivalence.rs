//! Specialization equivalence: every specialized accumulate lane must be a
//! byte-identical drop-in for the generic `Value` path.
//!
//! For each case — the integer builtins (PR, WCC, BFS) plus custom
//! programs covering the f64 sum/min lanes and the 1-byte boolean OR lane
//! — the suite runs one-shot plus a 3-batch incremental history under
//! every leg of {generic, specialized} × threads {1, 4}, and requires the
//! dynamic state image (partition stores, globals history, superstep
//! counts — everything except the configuration prefix) to be
//! byte-identical across all legs. A unix-gated companion does the same
//! across the process transport.
//!
//! Also the lane guard: the six builtin evaluation programs must never
//! select the Generic lane when specialization is on (CI runs this by
//! name in the `specialization` job).

mod common;

use common::{build_workload, MutationMode, Scenario, N};
use itg_algorithms::programs;
use itg_engine::{EngineConfig, GraphInput, Session, SessionBuilder, TransportKind};
use itg_gsa::Value;
use itg_store::MutationBatch;

/// Each vertex keeps 15% seed mass and absorbs damped neighbor mass —
/// a float PageRank shape exercising the f64 sum lane (including the
/// bitwise `0.0 - v` retraction identity).
const DOUBLE_SUM: &str = r#"
    Vertex (id, active, nbrs, w: double, s: Accm<double, SUM>)
    Initialize (u): {
        u.w = 1.0;
        u.active = true;
    }
    Traverse (u): {
        For v in u.nbrs {
            v.s.Accumulate(u.w * 0.1);
        }
    }
    Update (u): {
        Let val = 0.15 + 0.85 * u.s;
        If (Abs(val - u.w) > 0.0001) {
            u.w = val;
            u.active = true;
        }
    }
"#;

/// Fractional-weight SSSP from vertex 0 — the f64 min lane, whose ties
/// must keep the incumbent bit pattern exactly like `Value::total_cmp`.
const DOUBLE_MIN: &str = r#"
    Vertex (id, active, nbrs, d: double, m: Accm<double, MIN>)
    Initialize (u): {
        If (u.id == 0) {
            u.d = 0.0;
            u.active = true;
        } Else {
            u.d = 1000000.0;
        }
    }
    Traverse (u): {
        For v in u.nbrs {
            v.m.Accumulate(u.d + 1.5);
        }
    }
    Update (u): {
        If (u.m < u.d) {
            u.d = u.m;
            u.active = true;
        }
    }
"#;

/// Reachability from vertex 0 — the boolean OR frontier lane.
const BOOL_OR: &str = r#"
    Vertex (id, active, nbrs, seen: bool, f: Accm<bool, OR>)
    Initialize (u): {
        If (u.id == 0) {
            u.seen = true;
            u.active = true;
        } Else {
            u.seen = false;
        }
    }
    Traverse (u): {
        For v in u.nbrs {
            v.f.Accumulate(u.seen);
        }
    }
    Update (u): {
        If (u.f && !u.seen) {
            u.seen = true;
            u.active = true;
        }
    }
"#;

struct Case {
    name: &'static str,
    src: String,
    undirected: bool,
    attrs: &'static [&'static str],
    max_ss: usize,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "pr",
            src: programs::source("pr").unwrap(),
            undirected: false,
            attrs: &["rank"],
            max_ss: 10,
        },
        Case {
            name: "wcc",
            src: programs::source("wcc").unwrap(),
            undirected: true,
            attrs: &["comp"],
            max_ss: usize::MAX,
        },
        Case {
            name: "bfs",
            src: programs::source("bfs").unwrap(),
            undirected: true,
            attrs: &["dist"],
            max_ss: usize::MAX,
        },
        Case {
            name: "double_sum",
            src: DOUBLE_SUM.to_string(),
            undirected: true,
            attrs: &["w"],
            max_ss: 6,
        },
        Case {
            name: "double_min",
            src: DOUBLE_MIN.to_string(),
            undirected: true,
            attrs: &["d"],
            max_ss: usize::MAX,
        },
        Case {
            name: "bool_or",
            src: BOOL_OR.to_string(),
            undirected: true,
            attrs: &["seen"],
            max_ss: usize::MAX,
        },
    ]
}

fn workload(seed: u64) -> (Vec<(u64, u64)>, Vec<MutationBatch>) {
    build_workload(&Scenario {
        algo: "pr",
        machines: 2,
        threads: 1,
        seed,
        batches: 3,
        batch_size: 8,
        mutation_mode: MutationMode::HotVertex,
    })
}

fn input_for(case: &Case, edges: &[(u64, u64)]) -> GraphInput {
    let mut input = if case.undirected {
        GraphInput::undirected(edges.to_vec())
    } else {
        GraphInput::directed(edges.to_vec())
    };
    input.num_vertices = N;
    input
}

fn session(case: &Case, edges: &[(u64, u64)], threads: usize, specialize: bool) -> Session {
    let mut builder = SessionBuilder::from_config(EngineConfig::default())
        .machines(2)
        .threads(threads)
        .max_supersteps(case.max_ss);
    builder.config_mut().opts.specialize = specialize;
    builder
        .from_source(&case.src, &input_for(case, edges))
        .unwrap_or_else(|e| panic!("{}: {e}", case.name))
}

/// One-shot, then the batches; a dynamic state image after every run.
fn local_transcript(
    case: &Case,
    base: &[(u64, u64)],
    batches: &[MutationBatch],
    threads: usize,
    specialize: bool,
) -> Vec<Vec<u8>> {
    let mut sess = session(case, base, threads, specialize);
    let expect_specialized = specialize;
    assert!(
        sess.vertex_lanes()
            .iter()
            .chain(sess.global_lanes())
            .all(|l| l.is_specialized() == expect_specialized),
        "{}: lane selection must follow OptFlags::specialize",
        case.name
    );
    let mut images = Vec::new();
    sess.run_oneshot();
    images.push(sess.dynamic_state_image());
    for batch in batches {
        sess.apply_mutations(batch);
        sess.run_incremental();
        images.push(sess.dynamic_state_image());
    }
    images
}

/// The tentpole property: generic × specialized × threads {1, 4} all
/// produce byte-identical dynamic state images after every run.
#[test]
fn specialized_lanes_are_byte_identical_to_generic() {
    let (base, batches) = workload(0xC0FFEE);
    for case in cases() {
        let reference = local_transcript(&case, &base, &batches, 1, false);
        for (threads, specialize) in [(1, true), (4, false), (4, true)] {
            let leg = local_transcript(&case, &base, &batches, threads, specialize);
            assert_eq!(reference.len(), leg.len());
            for (i, (r, l)) in reference.iter().zip(&leg).enumerate() {
                assert!(
                    r == l,
                    "{}: state image after run {i} diverged \
                     (threads={threads}, specialize={specialize})",
                    case.name
                );
            }
        }
    }
}

/// A second seed with uniform (non-skewed) mutations, single-machine:
/// exercises the owned-everything layout and a different delta shape.
#[test]
fn specialization_is_exact_on_uniform_single_machine_histories() {
    let (base, batches) = build_workload(&Scenario {
        algo: "pr",
        machines: 1,
        threads: 1,
        seed: 0xBEEF,
        batches: 3,
        batch_size: 6,
        mutation_mode: MutationMode::Uniform,
    });
    for case in cases() {
        let generic = local_transcript(&case, &base, &batches, 1, false);
        let specialized = local_transcript(&case, &base, &batches, 1, true);
        assert_eq!(generic, specialized, "{}: diverged", case.name);
    }
}

/// User-visible output per run under one transport leg.
fn transport_transcript(
    case: &Case,
    base: &[(u64, u64)],
    batches: &[MutationBatch],
    transport: TransportKind,
    specialize: bool,
) -> Vec<Vec<(String, Vec<Value>)>> {
    let mut builder = SessionBuilder::from_config(EngineConfig::default())
        .machines(2)
        .parallel(false)
        .transport(transport)
        .max_supersteps(case.max_ss);
    builder.config_mut().opts.specialize = specialize;
    let mut sess = builder
        .from_source(&case.src, &input_for(case, base))
        .unwrap_or_else(|e| panic!("{}: {e}", case.name));
    let snapshot = |sess: &Session| {
        case.attrs
            .iter()
            .map(|a| (a.to_string(), sess.attr_column(a).unwrap()))
            .collect::<Vec<_>>()
    };
    let mut out = Vec::new();
    sess.run_oneshot();
    out.push(snapshot(&sess));
    for batch in batches {
        sess.apply_mutations(batch);
        sess.run_incremental();
        out.push(snapshot(&sess));
    }
    out
}

/// Lane specialization must be invisible across the process transport too:
/// worker processes receive the `specialize` flag in the bootstrap config
/// and agree bit-for-bit with the local plane either way.
#[cfg(unix)]
#[test]
fn specialization_is_exact_across_the_process_transport() {
    let (base, batches) = workload(0xFEED);
    for case in cases() {
        for specialize in [false, true] {
            let local = transport_transcript(&case, &base, &batches, TransportKind::Local, specialize);
            let process = transport_transcript(
                &case,
                &base,
                &batches,
                TransportKind::Process { workers: 2 },
                specialize,
            );
            assert_eq!(
                local, process,
                "{}: transports diverged (specialize={specialize})",
                case.name
            );
        }
    }
}

/// The lane guard: compiling any of the six builtin evaluation programs
/// must select a specialized lane for every accumulator — vertex and
/// global. A Generic lane here means a hot-path regression.
#[test]
fn builtin_programs_never_select_the_generic_lane() {
    for name in programs::ALL {
        let src = programs::source(name).unwrap();
        let compiled = itg_compiler::compile_source(&src).unwrap();
        let vertex = compiled.vertex_lanes();
        let global = compiled.global_lanes();
        assert!(
            !vertex.is_empty() || !global.is_empty(),
            "{name}: expected at least one accumulator"
        );
        for (i, lane) in vertex.iter().enumerate() {
            assert!(
                lane.is_specialized(),
                "{name}: vertex accumulator {i} fell back to the Generic lane"
            );
        }
        for (i, lane) in global.iter().enumerate() {
            assert!(
                lane.is_specialized(),
                "{name}: global accumulator {i} fell back to the Generic lane"
            );
        }
    }
}
