//! Serial-equivalence harness for intra-partition parallelism: for every
//! evaluation algorithm, running with `threads_per_machine` ∈ {1, 2, 4}
//! must produce byte-identical user-visible state — attribute columns (the
//! per-superstep images the accumulators fold into), global accumulator
//! values, and superstep counts — over both the one-shot run and a
//! multi-batch incremental sequence. `threads_per_machine = 1` executes
//! the same chunked code path inline, so it *is* the serial baseline.
//!
//! A companion determinism regression runs the same parallel workload
//! twice and demands exact equality of the deterministic metrics
//! (`work_units`, `recomputed_vertices`, chunk/phase counts) alongside the
//! outputs.

use itg_algorithms::programs;
use itg_engine::{EngineConfig, GraphInput, RunMetrics, SessionBuilder};
use itg_gsa::{Value, VertexId};
use itg_store::{EdgeMutation, MutationBatch};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const N: u64 = 48;

fn cfg(machines: usize, threads: usize) -> EngineConfig {
    EngineConfig {
        machines,
        parallel: machines > 1,
        ..EngineConfig::default()
    }
    .with_threads(threads)
}

/// Random undirected base graph plus mutation batches (insert/delete mix),
/// as in the equivalence suite but sized so per-partition work lists split
/// into several chunks.
fn random_workload(
    seed: u64,
    base_edges: usize,
    batches: usize,
    batch_size: usize,
) -> (Vec<(VertexId, VertexId)>, Vec<MutationBatch>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut all: Vec<(VertexId, VertexId)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    while all.len() < base_edges + batches * batch_size {
        let a = rng.gen_range(0..N);
        let b = rng.gen_range(0..N);
        if a != b && seen.insert((a.min(b), a.max(b))) {
            all.push((a.min(b), a.max(b)));
        }
    }
    let base: Vec<_> = all[..base_edges].to_vec();
    let mut pool: Vec<_> = all[base_edges..].to_vec();
    let mut alive = base.clone();
    let mut out = Vec::new();
    for _ in 0..batches {
        let mut muts = Vec::new();
        for _ in 0..batch_size {
            if rng.gen_bool(0.7) || alive.len() < 4 {
                if let Some(e) = pool.pop() {
                    muts.push(EdgeMutation::insert(e.0, e.1));
                    alive.push(e);
                }
            } else {
                let i = rng.gen_range(0..alive.len());
                let e = alive.swap_remove(i);
                muts.push(EdgeMutation::delete(e.0, e.1));
            }
        }
        out.push(MutationBatch::new(muts));
    }
    (base, out)
}

/// Everything a run exposes that must be invariant under the thread count.
#[derive(Debug, PartialEq)]
struct Observed {
    columns: Vec<(String, Vec<Value>)>,
    globals: Vec<(String, Value)>,
    supersteps: Vec<usize>,
    work_units: Vec<u64>,
    recomputed: Vec<u64>,
    /// Chunk decomposition counters — these depend only on work-list
    /// sizes, so they too must match across thread counts.
    chunks: Vec<u64>,
    phases: Vec<u64>,
}

fn observe(
    name: &str,
    machines: usize,
    threads: usize,
    base: &[(VertexId, VertexId)],
    batches: &[MutationBatch],
) -> Observed {
    let src = programs::source(name).unwrap();
    let mut input = if programs::is_undirected(name) {
        GraphInput::undirected(base.to_vec())
    } else {
        GraphInput::directed(base.to_vec())
    };
    input.num_vertices = N as usize;
    let mut config = cfg(machines, threads);
    if matches!(name, "pr" | "lp") {
        config.max_supersteps = 10;
    }
    let mut sess = SessionBuilder::from_config(config).from_source(&src, &input).unwrap();
    let mut runs: Vec<RunMetrics> = vec![sess.run_oneshot()];
    for b in batches {
        sess.apply_mutations(b);
        runs.push(sess.run_incremental());
    }
    let columns = attr_names(name)
        .into_iter()
        .map(|a| (a.to_string(), sess.attr_column(a).unwrap()))
        .collect();
    let globals = global_names(name)
        .into_iter()
        .map(|g| (g.to_string(), sess.global_value(g, None).unwrap()))
        .collect();
    Observed {
        columns,
        globals,
        supersteps: sess.superstep_counts().to_vec(),
        work_units: runs.iter().map(|r| r.work_units).collect(),
        recomputed: runs.iter().map(|r| r.recomputed_vertices).collect(),
        chunks: runs.iter().map(|r| r.parallel.chunks).collect(),
        phases: runs.iter().map(|r| r.parallel.phases).collect(),
    }
}

fn attr_names(name: &str) -> Vec<&'static str> {
    match name {
        "pr" => vec!["rank"],
        "lp" => vec!["label"],
        "wcc" => vec!["comp"],
        "bfs" => vec!["dist"],
        "tc" => vec![],
        "lcc" => vec!["lcc"],
        _ => unreachable!(),
    }
}

fn global_names(name: &str) -> Vec<&'static str> {
    match name {
        "tc" => vec!["cnts"],
        _ => vec![],
    }
}

/// Threads ∈ {1, 2, 4} produce identical observations for `name`.
fn check_thread_invariance(name: &str, machines: usize, seed: u64) {
    let (base, batches) = random_workload(seed, 110, 3, 10);
    let serial = observe(name, machines, 1, &base, &batches);
    for threads in [2, 4] {
        let parallel = observe(name, machines, threads, &base, &batches);
        assert_eq!(
            serial, parallel,
            "{name}: threads_per_machine={threads} diverged from serial \
             (machines {machines}, seed {seed})"
        );
    }
}

#[test]
fn pagerank_parallel_equals_serial() {
    check_thread_invariance("pr", 1, 101);
    check_thread_invariance("pr", 3, 102);
}

#[test]
fn sssp_style_bfs_parallel_equals_serial() {
    check_thread_invariance("bfs", 1, 201);
    check_thread_invariance("bfs", 2, 202);
}

#[test]
fn wcc_parallel_equals_serial() {
    check_thread_invariance("wcc", 1, 301);
    check_thread_invariance("wcc", 3, 302);
}

#[test]
fn triangle_count_parallel_equals_serial() {
    check_thread_invariance("tc", 1, 401);
    check_thread_invariance("tc", 2, 402);
}

#[test]
fn lcc_parallel_equals_serial() {
    check_thread_invariance("lcc", 1, 501);
    check_thread_invariance("lcc", 2, 502);
}

#[test]
fn label_prop_parallel_equals_serial() {
    check_thread_invariance("lp", 1, 601);
    check_thread_invariance("lp", 2, 602);
}

/// Optimization flags and intra-partition threading compose: the full
/// ablation grid at 4 threads matches the serial default configuration.
#[test]
fn optimization_flags_compose_with_threading() {
    use itg_engine::OptFlags;
    let (base, batches) = random_workload(707, 90, 2, 8);
    let mut results = Vec::new();
    for (opts, threads) in [
        (OptFlags::default(), 1),
        (OptFlags::default(), 4),
        (OptFlags::none(), 4),
        (
            OptFlags {
                seek_window_share: true,
                ..OptFlags::none()
            },
            4,
        ),
    ] {
        let mut config = cfg(2, threads);
        config.opts = opts;
        let mut input = GraphInput::undirected(base.clone());
        input.num_vertices = N as usize;
        let mut s = SessionBuilder::from_config(config).from_source(programs::TRIANGLE_COUNT, &input).unwrap();
        s.run_oneshot();
        for b in &batches {
            s.apply_mutations(b);
            s.run_incremental();
        }
        results.push(s.global_value("cnts", None).unwrap());
    }
    assert!(
        results.windows(2).all(|w| w[0] == w[1]),
        "flag/thread combinations disagreed: {results:?}"
    );
}

/// The invariance checks are only meaningful if phases actually split into
/// multiple chunks (otherwise "parallel" degenerates to serial trivially).
/// PageRank keeps every vertex active for all 10 supersteps, so on one
/// machine every phase must split the 48-vertex work list.
#[test]
fn workload_exercises_multi_chunk_phases() {
    let (base, batches) = random_workload(909, 110, 2, 10);
    let obs = observe("pr", 1, 4, &base, &batches);
    assert!(
        obs.chunks[0] > obs.phases[0],
        "one-shot phases did not split into chunks: chunks {:?}, phases {:?}",
        obs.chunks,
        obs.phases,
    );
}

/// Determinism regression: the same parallel incremental workload executed
/// twice from the same seed yields exactly the same outputs and the same
/// deterministic metrics.
#[test]
fn parallel_run_is_deterministic_run_to_run() {
    for name in ["wcc", "tc", "bfs"] {
        let (base, batches) = random_workload(808, 110, 3, 10);
        let first = observe(name, 2, 4, &base, &batches);
        let second = observe(name, 2, 4, &base, &batches);
        assert_eq!(first, second, "{name}: repeated parallel run diverged");
    }
}
