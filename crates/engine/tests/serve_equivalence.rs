//! Sharing correctness for the standing-query registry (DESIGN.md §11.3):
//! every registered query's dynamic state must be byte-identical to an
//! isolated session compiled from the same source and fed the same
//! mutation history — whether the query shares a backing session with K−1
//! structural twins, is alpha-renamed relative to its group leader, or
//! registered mid-history. A proptest additionally pins that registration
//! and unregistration order never changes any query's result.

mod common;

use common::{build_workload, mk_config, mk_input, Scenario};
use itg_algorithms::programs;
use itg_engine::registry::{QueryRegistry, ServeLimits};
use itg_engine::{EngineConfig, SessionBuilder};
use itg_store::MutationBatch;
use proptest::prelude::*;

/// An isolated session for `src`, driven through the same history the
/// registry saw from `start` on: one-shot at registration, then one
/// incremental run per committed batch.
fn isolated_image(
    src: &str,
    input: &itg_engine::GraphInput,
    cfg: EngineConfig,
    batches: &[MutationBatch],
) -> Vec<u8> {
    let mut session = SessionBuilder::from_config(cfg)
        .from_source(src, input)
        .expect("program compiles");
    session.run_oneshot();
    for batch in batches {
        session.apply_mutations(batch);
        session.run_incremental();
    }
    session.dynamic_state_image()
}

/// TC with renamed user-declared identifiers — structurally identical to
/// `programs::source("tc")`? No: the builtin TC and this program must be
/// *compiled-plan* equal for sharing, which the registry decides via
/// `program_hash`. The test asserts they land in one group.
const TC_RENAMED: &str = r#"
    Vertex (id, active, nbrs)
    GlobalVariable (triangles: Accm<long, SUM>)
    Initialize (w): { w.active = true; }
    Traverse (w): {
        For x in w.nbrs Where (w < x) {
            For y in x.nbrs Where (x < y) {
                For z in y.nbrs Where (z == w) { triangles.Accumulate(1); }
            }
        }
    }
    Update (w): { }
"#;

/// A program sharing TC's 3-hop walk shape but with a different action
/// (counts each triangle twice): same `walk_shape_hash`, different
/// `program_hash` — overlapping, not identical.
const TC_DOUBLED: &str = r#"
    Vertex (id, active, nbrs)
    GlobalVariable (cnts: Accm<long, SUM>)
    Initialize (u1): { u1.active = true; }
    Traverse (u1): {
        For u2 in u1.nbrs Where (u1 < u2) {
            For u3 in u2.nbrs Where (u2 < u3) {
                For u4 in u3.nbrs Where (u4 == u1) { cnts.Accumulate(2); }
            }
        }
    }
    Update (u1): { }
"#;

#[test]
fn identical_queries_share_and_match_isolated() {
    // K identical TC queries: one share group, K−1 hits per batch, and
    // every member byte-equal to an isolated session.
    const K: usize = 4;
    let sc = Scenario {
        algo: "tc",
        machines: 1,
        threads: 1,
        seed: 11,
        batches: 3,
        batch_size: 30,
        mutation_mode: Default::default(),
    };
    let (base, batches) = build_workload(&sc);
    let input = mk_input("tc", &base);
    let cfg = mk_config("tc", sc.machines, sc.threads);
    let src = programs::source("tc").unwrap();

    let mut reg = QueryRegistry::new(&input, cfg.clone(), ServeLimits::default());
    let ids: Vec<_> = (0..K)
        .map(|i| reg.register(&format!("tc{i}"), &src).unwrap())
        .collect();
    assert_eq!(reg.num_groups(), 1, "identical programs must share");
    for batch in &batches {
        let stats = reg.commit(batch).unwrap();
        assert_eq!(stats.groups_run, 1, "one enumeration per batch");
        assert_eq!(stats.share_hits, K as u64 - 1);
    }
    assert_eq!(reg.share_hits(), (K as u64 - 1) * batches.len() as u64);

    let oracle = isolated_image(&src, &input, cfg, &batches);
    for &id in &ids {
        assert_eq!(
            reg.dynamic_state_image(id).unwrap(),
            oracle,
            "shared member {id} diverged from the isolated session"
        );
    }
}

#[test]
fn mixed_workload_matches_isolated_per_query() {
    // Identical (2× tc), overlapping (TC_DOUBLED: same walk shape,
    // different action), alpha-renamed (TC_RENAMED joins the tc group),
    // and disjoint (wcc, pr) queries over one multi-batch history.
    let sc = Scenario {
        algo: "tc",
        machines: 1,
        threads: 1,
        seed: 22,
        batches: 3,
        batch_size: 25,
        mutation_mode: Default::default(),
    };
    let (base, batches) = build_workload(&sc);
    let input = mk_input("tc", &base);
    // One shared config for every query: cap supersteps so PR terminates.
    let mut cfg = mk_config("tc", 1, 1);
    cfg.max_supersteps = 10;

    let tc = programs::source("tc").unwrap();
    let wcc = programs::source("wcc").unwrap();
    let pr = programs::source("pr").unwrap();
    let sources: Vec<(&str, &str)> = vec![
        ("tc-a", &tc),
        ("tc-b", &tc),
        ("tc-renamed", TC_RENAMED),
        ("tc-doubled", TC_DOUBLED),
        ("wcc", &wcc),
        ("pr", &pr),
    ];

    let mut reg = QueryRegistry::new(&input, cfg.clone(), ServeLimits::default());
    let ids: Vec<_> = sources
        .iter()
        .map(|(name, src)| (reg.register(name, src).unwrap(), *src))
        .collect();
    // tc-a, tc-b, tc-renamed share; tc-doubled, wcc, pr are alone.
    assert_eq!(reg.num_queries(), 6);
    assert_eq!(reg.num_groups(), 4);
    // tc and tc-doubled share a walk shape; wcc and pr bring their own.
    assert!(reg.unique_subplans() >= 3);

    for batch in &batches {
        let stats = reg.commit(batch).unwrap();
        assert_eq!(stats.groups_run, 4);
        assert_eq!(stats.queries_served, 6);
        assert_eq!(stats.share_hits, 2);
    }

    for (id, src) in &ids {
        let oracle = isolated_image(src, &input, cfg.clone(), &batches);
        assert_eq!(
            reg.dynamic_state_image(*id).unwrap(),
            oracle,
            "query {} diverged from its isolated session",
            reg.query_name(*id).unwrap()
        );
    }

    // The alpha-renamed member reads its result through its own names.
    let renamed = ids[2].0;
    let leader = ids[0].0;
    assert_eq!(
        reg.global_value(renamed, "triangles").unwrap(),
        reg.global_value(leader, "cnts").unwrap(),
    );
}

#[test]
fn late_registration_matches_fresh_isolated_session() {
    // A query registered after 2 committed batches must equal an isolated
    // session built from the *current* graph (its snapshot 0) and driven
    // through the remaining batches only.
    let sc = Scenario {
        algo: "wcc",
        machines: 1,
        threads: 1,
        seed: 33,
        batches: 4,
        batch_size: 20,
        mutation_mode: Default::default(),
    };
    let (base, batches) = build_workload(&sc);
    let input = mk_input("wcc", &base);
    let cfg = mk_config("wcc", 1, 1);
    let src = programs::source("wcc").unwrap();

    let mut reg = QueryRegistry::new(&input, cfg.clone(), ServeLimits::default());
    let early = reg.register("early", &src).unwrap();
    reg.commit(&batches[0]).unwrap();
    reg.commit(&batches[1]).unwrap();

    let registration_input = reg.current_input();
    let late = reg.register("late", &src).unwrap();
    // Same program, different epoch: no sharing with `early`.
    assert_eq!(reg.num_groups(), 2);

    reg.commit(&batches[2]).unwrap();
    reg.commit(&batches[3]).unwrap();

    let late_oracle = isolated_image(&src, &registration_input, cfg.clone(), &batches[2..]);
    assert_eq!(reg.dynamic_state_image(late).unwrap(), late_oracle);

    let early_oracle = isolated_image(&src, &input, cfg, &batches);
    assert_eq!(reg.dynamic_state_image(early).unwrap(), early_oracle);

    // Convergent graph function ⇒ early and late agree on the component
    // labels even though their histories (and state images) differ.
    assert_eq!(
        reg.attr_column(early, "comp").unwrap(),
        reg.attr_column(late, "comp").unwrap(),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Registration/unregistration order never changes results: drive two
    /// registries over the same history with the query set registered in
    /// different orders (and an unregister/re-register shuffle between
    /// batches), and compare every surviving query's image.
    #[test]
    fn registration_order_never_changes_results(
        seed in 0u64..500,
        perm_seed in 0u64..1000,
    ) {
        // Fisher–Yates over a splitmix-style stream: a deterministic
        // permutation of the 4 query slots from `perm_seed`.
        let mut order: Vec<usize> = (0..4).collect();
        let mut state = perm_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        for i in (1..4usize).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let j = (state % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let sc = Scenario {
            algo: "tc",
            machines: 1,
            threads: 1,
            seed,
            batches: 2,
            batch_size: 15,
            mutation_mode: Default::default(),
        };
        let (base, batches) = build_workload(&sc);
        let input = mk_input("tc", &base);
        let mut cfg = mk_config("tc", 1, 1);
        cfg.max_supersteps = 10;

        let tc = programs::source("tc").unwrap();
        let wcc = programs::source("wcc").unwrap();
        let sources: [&str; 4] = [&tc, &tc, TC_RENAMED, &wcc];

        // Registry A: natural order. Registry B: permuted order plus an
        // unregister/re-register of query 0 before the first batch.
        let mut a = QueryRegistry::new(&input, cfg.clone(), ServeLimits::default());
        let ids_a: Vec<_> = (0..4)
            .map(|i| a.register(&format!("q{i}"), sources[i]).unwrap())
            .collect();

        let mut b = QueryRegistry::new(&input, cfg, ServeLimits::default());
        let mut ids_b = [None; 4];
        for &i in &order {
            ids_b[i] = Some(b.register(&format!("q{i}"), sources[i]).unwrap());
        }
        b.unregister(ids_b[0].unwrap()).unwrap();
        ids_b[0] = Some(b.register("q0", sources[0]).unwrap());

        for batch in &batches {
            a.commit(batch).unwrap();
            b.commit(batch).unwrap();
        }

        for i in 0..4 {
            prop_assert_eq!(
                a.dynamic_state_image(ids_a[i]).unwrap(),
                b.dynamic_state_image(ids_b[i].unwrap()).unwrap(),
                "query {} depends on registration order", i
            );
        }
    }
}
