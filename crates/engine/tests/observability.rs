//! Integration tests for the observability layer: profile attachment,
//! span-vs-wall coverage, and the Δ-stream cardinality claims of the paper
//! (incremental batches touch far fewer tuples than one-shot reruns).

use itg_engine::{EngineConfig, GraphInput, Session, SessionBuilder};
use itg_graphgen::{generate, RmatConfig};
use itg_store::{EdgeMutation, MutationBatch};

fn pr_session(cfg: EngineConfig) -> (Session, Vec<(u64, u64)>) {
    let edges = generate(&RmatConfig::paper_scale(10, 21));
    let input = GraphInput::directed(edges.clone());
    let mut cfg = cfg;
    cfg.max_supersteps = 5;
    let sess = SessionBuilder::from_config(cfg).from_source(itg_algorithms::programs::PAGERANK, &input).unwrap();
    (sess, edges)
}

#[test]
fn profile_is_none_with_disabled_recorder() {
    let cfg = EngineConfig {
        obs: itg_obs::Recorder::disabled(),
        ..EngineConfig::default()
    };
    let (mut sess, _) = pr_session(cfg);
    let m = sess.run_oneshot();
    assert!(m.profile.is_none());
    assert_eq!(m.parallel.timing.total_worker_ns, 0, "no clock reads when disabled");
}

#[test]
fn profile_attaches_and_covers_the_wall_clock() {
    let cfg = EngineConfig {
        obs: itg_obs::Recorder::enabled(),
        ..EngineConfig::default()
    };
    let (mut sess, _) = pr_session(cfg);
    let m = sess.run_oneshot();
    let p = m.profile.as_ref().expect("enabled recorder attaches a profile");

    // Top-level phase spans are disjoint and wrap the whole loop, so their
    // sum must land within 10% of the measured wall time (the `expt
    // profile` acceptance bound).
    let wall = m.wall.as_nanos() as u64;
    let covered = p.phase_total_ns();
    assert!(covered <= wall, "spans cannot exceed the wall that contains them");
    assert!(
        covered as f64 >= wall as f64 * 0.9,
        "phase spans cover {covered} of {wall} ns (<90%)"
    );

    // The traverse phase ran and carries per-operator leaf spans.
    assert!(p.span_total_ns("run/traverse") > 0);
    assert!(p.counter_total("oneshot/starts") > 0);
    assert!(p.counter_total("oneshot/contribs") > 0);
    assert!(m.parallel.timing.total_worker_ns > 0);
}

#[test]
fn incremental_profiles_are_interval_scoped() {
    let cfg = EngineConfig {
        obs: itg_obs::Recorder::enabled(),
        ..EngineConfig::default()
    };
    let (mut sess, edges) = pr_session(cfg);
    let one = sess.run_oneshot();
    let p_one = one.profile.expect("profile");

    let batch = MutationBatch::new(vec![EdgeMutation::insert(
        edges[0].0,
        (edges.len() % 700) as u64,
    )]);
    sess.apply_mutations(&batch);
    let inc = sess.run_incremental();
    let p_inc = inc.profile.expect("profile");

    // The incremental profile describes only its own run: its one-shot
    // counters are zero even though the shared recorder accumulated them
    // earlier (the `since` diff isolates the interval).
    assert_eq!(p_inc.counter_total("oneshot/starts"), 0);
    assert!(p_inc.counter_total("delta/starts") > 0);
    assert_eq!(p_one.counter_total("delta/starts"), 0);
}

/// The paper's core claim on its flagship workload: an incremental
/// PageRank batch emits far fewer Δ-stream tuples than the one-shot run.
/// Starts are not comparable here (convergence deactivation shrinks the
/// one-shot frontier while a Δ-batch re-seeds every superstep), so the
/// assertion is on emitted contributions — the tuple volume that actually
/// flows through the GSA pipeline.
#[test]
fn delta_stream_counters_shrink_on_incremental_pagerank() {
    let cfg = EngineConfig {
        obs: itg_obs::Recorder::enabled(),
        ..EngineConfig::default()
    };
    let (mut sess, edges) = pr_session(cfg);
    let one = sess.run_oneshot();
    let oneshot_contribs = one.profile.expect("profile").counter_total("oneshot/contribs");
    assert!(oneshot_contribs > 0);

    let batch = MutationBatch::new(vec![EdgeMutation::insert(
        edges[1].0,
        (edges.len() % 701) as u64,
    )]);
    sess.apply_mutations(&batch);
    let inc = sess.run_incremental();
    let delta_contribs = inc.profile.expect("profile").counter_total("delta/contribs");
    assert!(delta_contribs > 0, "the batch must flow tuples through P_ΔQ");
    assert!(
        delta_contribs < oneshot_contribs / 2,
        "incremental PageRank Δ-stream volume ({delta_contribs}) should be \
         far below the one-shot volume ({oneshot_contribs})"
    );
}

/// Same claim with WCC as the cleanest witness — a single inserted edge
/// perturbs one component boundary, so the Δ-walk volume is a sliver of
/// the full label propagation.
#[test]
fn delta_stream_counters_shrink_vs_oneshot() {
    let edges = generate(&RmatConfig::paper_scale(10, 21));
    let input = GraphInput::undirected(edges.clone());
    let cfg = EngineConfig {
        obs: itg_obs::Recorder::enabled(),
        ..EngineConfig::default()
    };
    let mut sess = SessionBuilder::from_config(cfg).from_source(itg_algorithms::programs::WCC, &input).unwrap();
    let one = sess.run_oneshot();
    let p_one = one.profile.expect("profile");
    let oneshot_contribs = p_one.counter_total("oneshot/contribs");
    assert!(oneshot_contribs > 0);

    // A one-edge mutation batch.
    let batch = MutationBatch::new(vec![EdgeMutation::insert(
        edges[1].0,
        (edges.len() % 701) as u64,
    )]);
    sess.apply_mutations(&batch);
    let inc = sess.run_incremental();
    let p_inc = inc.profile.expect("profile");
    let delta_contribs = p_inc.counter_total("delta/contribs");
    assert!(
        p_inc.counter_total("delta/starts") > 0,
        "the batch must trigger Δ-walk enumeration"
    );
    assert!(
        delta_contribs < oneshot_contribs / 2,
        "Δ-stream tuple volume ({delta_contribs}) should be far below the \
         one-shot volume ({oneshot_contribs}) for a one-edge batch"
    );
}
