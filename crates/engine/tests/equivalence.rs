//! End-to-end equivalence: for every evaluation algorithm, the engine's
//! one-shot results must match the independent native reference, and the
//! engine's *incremental* results after a sequence of mutation batches
//! must match a fresh one-shot execution on the mutated graph — bit for
//! bit (the programs use integer arithmetic to make this exact).

use itg_algorithms::native::{self, SimpleGraph};
use itg_algorithms::programs;
use itg_engine::{EngineConfig, GraphInput, SessionBuilder};
use itg_gsa::{Value, VertexId};
use itg_store::{EdgeMutation, MutationBatch};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn longs(vals: Vec<Value>) -> Vec<i64> {
    vals.into_iter().map(|v| v.as_i64().unwrap()).collect()
}

/// The paper's running example G_0 (Figure 6).
fn paper_edges() -> Vec<(VertexId, VertexId)> {
    vec![
        (0, 1),
        (0, 5),
        (1, 5),
        (2, 3),
        (2, 5),
        (3, 4),
        (4, 5),
        (6, 7),
    ]
}

fn cfg(machines: usize) -> EngineConfig {
    EngineConfig {
        machines,
        parallel: false,
        ..EngineConfig::default()
    }
}

#[test]
fn paper_example_tc_one_shot_and_incremental() {
    let input = GraphInput::undirected(paper_edges());
    let mut s = SessionBuilder::from_config(cfg(2)).from_source(programs::TRIANGLE_COUNT, &input).unwrap();
    let one = s.run_oneshot();
    assert_eq!(s.global_value("cnts", None).unwrap(), Value::Long(1));
    assert_eq!(one.supersteps, 1);

    // ΔG_1 = {insert (3,5)} — Figure 10: triangles <2,3,5> and <3,4,5>.
    s.apply_mutations(&MutationBatch::new(vec![EdgeMutation::insert(3, 5)]));
    let inc = s.run_incremental();
    assert_eq!(s.global_value("cnts", None).unwrap(), Value::Long(3));
    assert!(inc.supersteps >= 1);

    // ΔG_2 = {delete (0,5), insert (6, 2)}: drops <0,1,5>.
    s.apply_mutations(&MutationBatch::new(vec![
        EdgeMutation::delete(0, 5),
        EdgeMutation::insert(6, 2),
    ]));
    s.run_incremental();
    assert_eq!(s.global_value("cnts", None).unwrap(), Value::Long(2));
}

#[test]
fn wcc_incremental_merges_components() {
    let input = GraphInput::undirected(paper_edges());
    let mut s = SessionBuilder::from_config(cfg(3)).from_source(programs::WCC, &input).unwrap();
    s.run_oneshot();
    let comp = longs(s.attr_column("comp").unwrap());
    let reference = native::wcc(&SimpleGraph::undirected(8, &paper_edges()));
    assert_eq!(comp, reference);

    // Connect the {6,7} component to the rest.
    s.apply_mutations(&MutationBatch::new(vec![EdgeMutation::insert(5, 6)]));
    s.run_incremental();
    let comp = longs(s.attr_column("comp").unwrap());
    assert!(comp.iter().all(|&c| c == 0), "all merged: {comp:?}");
}

#[test]
fn wcc_incremental_deletion_splits_component() {
    // Chain 0-1-2-3; deleting (1,2) splits into {0,1} and {2,3}. The Min
    // accumulator is a monoid: this exercises the recompute path.
    let input = GraphInput::undirected(vec![(0, 1), (1, 2), (2, 3)]);
    let mut s = SessionBuilder::from_config(cfg(2)).from_source(programs::WCC, &input).unwrap();
    s.run_oneshot();
    assert_eq!(longs(s.attr_column("comp").unwrap()), vec![0, 0, 0, 0]);

    s.apply_mutations(&MutationBatch::new(vec![EdgeMutation::delete(1, 2)]));
    let inc = s.run_incremental();
    let comp = longs(s.attr_column("comp").unwrap());
    assert_eq!(comp, vec![0, 0, 2, 2], "after split: {comp:?}");
    assert!(inc.recomputed_vertices > 0, "deletion must trigger monoid recompute");
}

/// Generate a random undirected base graph and a sequence of mutation
/// batches following the paper's workload protocol shape.
fn random_workload(
    seed: u64,
    n: u64,
    base_edges: usize,
    batches: usize,
    batch_size: usize,
) -> (Vec<(VertexId, VertexId)>, Vec<MutationBatch>) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut all: Vec<(VertexId, VertexId)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    while all.len() < base_edges + batches * batch_size {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && seen.insert((a.min(b), a.max(b))) {
            all.push((a.min(b), a.max(b)));
        }
    }
    let base: Vec<_> = all[..base_edges].to_vec();
    let mut pool: Vec<_> = all[base_edges..].to_vec();
    let mut alive = base.clone();
    let mut out = Vec::new();
    for _ in 0..batches {
        let mut muts = Vec::new();
        for _ in 0..batch_size {
            if rng.gen_bool(0.7) || alive.len() < 4 {
                if let Some(e) = pool.pop() {
                    muts.push(EdgeMutation::insert(e.0, e.1));
                    alive.push(e);
                }
            } else {
                let i = rng.gen_range(0..alive.len());
                let e = alive.swap_remove(i);
                muts.push(EdgeMutation::delete(e.0, e.1));
            }
        }
        out.push(MutationBatch::new(muts));
    }
    (base, out)
}

/// Apply batches to a plain edge set.
fn apply_to_edges(edges: &mut Vec<(VertexId, VertexId)>, batch: &MutationBatch) {
    for m in batch.edges() {
        let key = (m.src.min(m.dst), m.src.max(m.dst));
        if m.is_insert() {
            edges.push(key);
        } else {
            edges.retain(|&e| e != key);
        }
    }
}

/// The core property: incremental results across several batches equal a
/// fresh one-shot on the final graph, for every algorithm.
fn check_algorithm(name: &str, machines: usize, seed: u64) {
    let (base, batches) = random_workload(seed, 24, 40, 3, 6);
    let src = programs::source(name).unwrap();
    let undirected = programs::is_undirected(name);
    let max_ss = if matches!(name, "pr" | "lp") { 10 } else { usize::MAX };

    let mk_input = |edges: &[(VertexId, VertexId)]| {
        let mut input = if undirected {
            GraphInput::undirected(edges.to_vec())
        } else {
            GraphInput::directed(edges.to_vec())
        };
        input.num_vertices = 24;
        input
    };

    let mut config = cfg(machines);
    config.max_supersteps = max_ss;

    // Incremental path.
    let mut sess = SessionBuilder::from_config(config.clone()).from_source(&src, &mk_input(&base)).unwrap();
    sess.run_oneshot();
    let mut edges = base.clone();
    for batch in &batches {
        sess.apply_mutations(batch);
        sess.run_incremental();
        apply_to_edges(&mut edges, batch);
    }

    // Fresh one-shot on the final graph.
    let mut fresh = SessionBuilder::from_config(config).from_source(&src, &mk_input(&edges)).unwrap();
    fresh.run_oneshot();

    // Compare all user-visible state.
    for attr in attr_names(name) {
        let a = sess.attr_column(attr).unwrap();
        let b = fresh.attr_column(attr).unwrap();
        assert_eq!(
            a, b,
            "{name}: attribute `{attr}` diverged after incremental runs (seed {seed})"
        );
    }
    if name == "tc" {
        assert_eq!(
            sess.global_value("cnts", None).unwrap(),
            fresh.global_value("cnts", None).unwrap(),
            "{name}: global count diverged (seed {seed})"
        );
        // And against the native reference.
        let g = SimpleGraph::undirected(24, &edges);
        assert_eq!(
            sess.global_value("cnts", None).unwrap(),
            Value::Long(native::triangle_count(&g))
        );
    }
}

fn attr_names(name: &str) -> Vec<&'static str> {
    match name {
        "pr" => vec!["rank"],
        "lp" => vec!["label"],
        "wcc" => vec!["comp"],
        "bfs" => vec!["dist"],
        "tc" => vec![],
        "lcc" => vec!["lcc"],
        _ => unreachable!(),
    }
}

#[test]
fn pr_incremental_equals_fresh_oneshot() {
    check_algorithm("pr", 1, 11);
    check_algorithm("pr", 3, 12);
}

#[test]
fn lp_incremental_equals_fresh_oneshot() {
    check_algorithm("lp", 1, 21);
    check_algorithm("lp", 2, 22);
}

#[test]
fn wcc_incremental_equals_fresh_oneshot() {
    check_algorithm("wcc", 1, 31);
    check_algorithm("wcc", 3, 32);
}

#[test]
fn bfs_incremental_equals_fresh_oneshot() {
    check_algorithm("bfs", 1, 41);
    check_algorithm("bfs", 2, 42);
}

#[test]
fn tc_incremental_equals_fresh_oneshot() {
    check_algorithm("tc", 1, 51);
    check_algorithm("tc", 3, 52);
}

#[test]
fn lcc_incremental_equals_fresh_oneshot() {
    check_algorithm("lcc", 1, 61);
    check_algorithm("lcc", 2, 62);
}

#[test]
fn oneshot_matches_native_references() {
    let (base, _) = random_workload(99, 24, 50, 0, 0);
    let g = SimpleGraph::undirected(24, &base);
    let mut input = GraphInput::undirected(base.clone());
    input.num_vertices = 24;

    let mut s = SessionBuilder::from_config(cfg(2)).from_source(programs::WCC, &input).unwrap();
    s.run_oneshot();
    assert_eq!(longs(s.attr_column("comp").unwrap()), native::wcc(&g));

    let mut s = SessionBuilder::from_config(cfg(2)).from_source(&programs::bfs(0), &input).unwrap();
    s.run_oneshot();
    assert_eq!(longs(s.attr_column("dist").unwrap()), native::bfs(&g, 0));

    let mut s = SessionBuilder::from_config(cfg(2)).from_source(programs::LCC, &input).unwrap();
    s.run_oneshot();
    assert_eq!(longs(s.attr_column("lcc").unwrap()), native::lcc(&g));

    let mut c = cfg(2);
    c.max_supersteps = 10;
    let mut s = SessionBuilder::from_config(c).from_source(programs::LABEL_PROP, &input).unwrap();
    s.run_oneshot();
    assert_eq!(
        longs(s.attr_column("label").unwrap()),
        native::label_prop(&g, 10)
    );

    // Directed PR against the native reference.
    let dir_edges: Vec<(u64, u64)> = base.iter().flat_map(|&(a, b)| [(a, b), (b, a)]).collect();
    let gd = SimpleGraph::directed(24, &dir_edges);
    let mut input_d = GraphInput::directed(dir_edges);
    input_d.num_vertices = 24;
    let mut c = cfg(2);
    c.max_supersteps = 10;
    let mut s = SessionBuilder::from_config(c).from_source(programs::PAGERANK, &input_d).unwrap();
    s.run_oneshot();
    assert_eq!(
        longs(s.attr_column("rank").unwrap()),
        native::pagerank(&gd, 10)
    );
}

#[test]
fn optimizations_do_not_change_results() {
    use itg_engine::OptFlags;
    let (base, batches) = random_workload(77, 20, 36, 2, 6);
    let mut results = Vec::new();
    for opts in [
        OptFlags::none(),
        OptFlags {
            traversal_reorder: true,
            ..OptFlags::none()
        },
        OptFlags {
            traversal_reorder: true,
            neighbor_prune: true,
            ..OptFlags::none()
        },
        OptFlags::default(),
    ] {
        let mut config = cfg(2);
        config.opts = opts;
        let mut input = GraphInput::undirected(base.clone());
        input.num_vertices = 20;
        let mut s = SessionBuilder::from_config(config).from_source(programs::TRIANGLE_COUNT, &input).unwrap();
        s.run_oneshot();
        for b in &batches {
            s.apply_mutations(b);
            s.run_incremental();
        }
        results.push(s.global_value("cnts", None).unwrap());
    }
    assert!(
        results.windows(2).all(|w| w[0] == w[1]),
        "optimization flags changed results: {results:?}"
    );
}

#[test]
fn parallel_execution_matches_sequential() {
    let (base, batches) = random_workload(88, 30, 60, 2, 8);
    let run = |parallel: bool| {
        let mut config = cfg(4);
        config.parallel = parallel;
        let mut input = GraphInput::undirected(base.clone());
        input.num_vertices = 30;
        let mut s = SessionBuilder::from_config(config).from_source(programs::WCC, &input).unwrap();
        s.run_oneshot();
        for b in &batches {
            s.apply_mutations(b);
            s.run_incremental();
        }
        longs(s.attr_column("comp").unwrap())
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn reach2_oneshot_and_incremental_match_reference() {
    // The seventh program (not in the paper's evaluation set): self-
    // targeted accumulation over a branching 2-hop walk.
    let (base, batches) = random_workload(71, 18, 30, 3, 5);
    let mut input = GraphInput::undirected(base.clone());
    input.num_vertices = 18;
    let mut s = SessionBuilder::from_config(cfg(2)).from_source(programs::REACH2, &input).unwrap();
    s.run_oneshot();
    let g = SimpleGraph::undirected(18, &base);
    assert_eq!(longs(s.attr_column("reach").unwrap()), native::reach2(&g));

    let mut edges = base;
    for b in &batches {
        s.apply_mutations(b);
        s.run_incremental();
        apply_to_edges(&mut edges, b);
    }
    let g = SimpleGraph::undirected(18, &edges);
    assert_eq!(
        longs(s.attr_column("reach").unwrap()),
        native::reach2(&g),
        "incremental reach2 diverged"
    );
}
