//! Property-based oracle for parallel incremental maintenance, in the
//! DBSP spirit: for a random program, cluster shape, thread count, and
//! mutation-batch sequence (insert/delete mixes, including edges deleted
//! and later reinserted), the incrementally-maintained state after all
//! batches must equal a from-scratch one-shot recomputation on the final
//! graph — computed by an independent serial single-machine session.

use itg_algorithms::programs;
use itg_engine::{EngineConfig, GraphInput, Session};
use itg_gsa::VertexId;
use itg_store::{EdgeMutation, MutationBatch};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const N: usize = 32;
const ALGOS: [&str; 6] = ["pr", "lp", "wcc", "bfs", "tc", "lcc"];

#[derive(Debug, Clone)]
struct Scenario {
    algo: &'static str,
    machines: usize,
    threads: usize,
    seed: u64,
    batches: usize,
    batch_size: usize,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        0usize..ALGOS.len(),
        1usize..4,
        0usize..3,
        any::<u64>(),
        1usize..4,
        4usize..12,
    )
        .prop_map(|(a, machines, t, seed, batches, batch_size)| Scenario {
            algo: ALGOS[a],
            machines,
            threads: [1usize, 2, 4][t],
            seed,
            batches,
            batch_size,
        })
}

/// Base graph plus batches. Deleted edges go into a `dead` pool that later
/// batches preferentially reinsert from, so delete-then-reinsert sequences
/// are a routine part of the workload, not a corner case.
fn build_workload(sc: &Scenario) -> (Vec<(VertexId, VertexId)>, Vec<MutationBatch>) {
    let mut rng = SmallRng::seed_from_u64(sc.seed);
    let want = 60 + sc.batches * sc.batch_size;
    let mut universe: Vec<(VertexId, VertexId)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    while universe.len() < want {
        let a = rng.gen_range(0..N as u64);
        let b = rng.gen_range(0..N as u64);
        if a != b && seen.insert((a.min(b), a.max(b))) {
            universe.push((a.min(b), a.max(b)));
        }
    }
    let base: Vec<_> = universe[..60].to_vec();
    let mut fresh: Vec<_> = universe[60..].to_vec();
    let mut alive = base.clone();
    let mut dead: Vec<(VertexId, VertexId)> = Vec::new();
    let mut out = Vec::new();
    for _ in 0..sc.batches {
        let mut muts = Vec::new();
        // Edges deleted within this batch are not eligible for reinsertion
        // until the next batch.
        let mut dead_this_batch: Vec<(VertexId, VertexId)> = Vec::new();
        for _ in 0..sc.batch_size {
            let roll = rng.gen_range(0..10u32);
            if roll < 3 && !dead.is_empty() {
                // Reinsert a previously deleted edge.
                let i = rng.gen_range(0..dead.len());
                let e = dead.swap_remove(i);
                muts.push(EdgeMutation::insert(e.0, e.1));
                alive.push(e);
            } else if roll < 7 && alive.len() >= 4 {
                let i = rng.gen_range(0..alive.len());
                let e = alive.swap_remove(i);
                muts.push(EdgeMutation::delete(e.0, e.1));
                dead_this_batch.push(e);
            } else if let Some(e) = fresh.pop() {
                muts.push(EdgeMutation::insert(e.0, e.1));
                alive.push(e);
            }
        }
        dead.append(&mut dead_this_batch);
        if muts.is_empty() {
            // Unreachable in practice (the fresh pool is sized for every
            // batch), but an empty batch would make the scenario vacuous.
            let e = fresh.pop().expect("fresh pool sized for all batches");
            muts.push(EdgeMutation::insert(e.0, e.1));
            alive.push(e);
        }
        out.push(MutationBatch::new(muts));
    }
    (base, out)
}

fn mk_input(algo: &str, edges: &[(VertexId, VertexId)]) -> GraphInput {
    let mut input = if programs::is_undirected(algo) {
        GraphInput::undirected(edges.to_vec())
    } else {
        GraphInput::directed(edges.to_vec())
    };
    input.num_vertices = N;
    input
}

fn mk_config(algo: &str, machines: usize, threads: usize) -> EngineConfig {
    let mut config = EngineConfig {
        machines,
        parallel: machines > 1,
        ..EngineConfig::default()
    }
    .with_threads(threads);
    if matches!(algo, "pr" | "lp") {
        config.max_supersteps = 10;
    }
    config
}

fn attr_names(algo: &str) -> &'static [&'static str] {
    match algo {
        "pr" => &["rank"],
        "lp" => &["label"],
        "wcc" => &["comp"],
        "bfs" => &["dist"],
        "tc" => &[],
        "lcc" => &["lcc"],
        _ => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn incremental_parallel_equals_fresh_oneshot(sc in scenario()) {
        let (base, batches) = build_workload(&sc);
        let src = programs::source(sc.algo).unwrap();

        // System under test: incremental maintenance, possibly parallel at
        // both levels (machines × threads).
        let mut sess = Session::from_source(
            &src,
            &mk_input(sc.algo, &base),
            mk_config(sc.algo, sc.machines, sc.threads),
        )
        .unwrap();
        sess.run_oneshot();
        let mut edges = base.clone();
        for batch in &batches {
            sess.apply_mutations(batch);
            sess.run_incremental();
            for m in &batch.edges {
                let key = (m.src.min(m.dst), m.src.max(m.dst));
                if m.is_insert() {
                    edges.push(key);
                } else {
                    edges.retain(|&e| e != key);
                }
            }
        }

        // Oracle: from-scratch serial one-shot on the final graph.
        let mut oracle = Session::from_source(
            &src,
            &mk_input(sc.algo, &edges),
            mk_config(sc.algo, 1, 1),
        )
        .unwrap();
        oracle.run_oneshot();

        for attr in attr_names(sc.algo) {
            prop_assert_eq!(
                sess.attr_column(attr).unwrap(),
                oracle.attr_column(attr).unwrap(),
                "{}: attribute `{}` diverged (scenario {:?})",
                sc.algo,
                attr,
                sc
            );
        }
        if sc.algo == "tc" {
            prop_assert_eq!(
                sess.global_value("cnts", None).unwrap(),
                oracle.global_value("cnts", None).unwrap(),
                "tc: global diverged (scenario {:?})",
                sc
            );
        }
    }
}
