//! Property-based oracle for parallel incremental maintenance, in the
//! DBSP spirit: for a random program, cluster shape, thread count, and
//! mutation-batch sequence (insert/delete mixes, including edges deleted
//! and later reinserted), the incrementally-maintained state after all
//! batches must equal a from-scratch one-shot recomputation on the final
//! graph — computed by an independent serial single-machine session.

mod common;

use common::{attr_names, build_workload, mk_config, mk_input, MutationMode, Scenario, ALGOS};
use itg_algorithms::programs;
use itg_engine::SessionBuilder;
use proptest::prelude::*;

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        0usize..ALGOS.len(),
        1usize..4,
        0usize..3,
        any::<u64>(),
        1usize..4,
        4usize..12,
        any::<bool>(),
    )
        .prop_map(|(a, machines, t, seed, batches, batch_size, hot)| Scenario {
            algo: ALGOS[a],
            machines,
            threads: [1usize, 2, 4][t],
            seed,
            batches,
            batch_size,
            mutation_mode: if hot {
                MutationMode::HotVertex
            } else {
                MutationMode::Uniform
            },
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn incremental_parallel_equals_fresh_oneshot(sc in scenario()) {
        let (base, batches) = build_workload(&sc);
        let src = programs::source(sc.algo).unwrap();

        // System under test: incremental maintenance, possibly parallel at
        // both levels (machines × threads).
        let mut sess = SessionBuilder::from_config(mk_config(sc.algo, sc.machines, sc.threads)).from_source(&src, &mk_input(sc.algo, &base))
        .unwrap();
        sess.run_oneshot();
        let mut edges = base.clone();
        for batch in &batches {
            sess.apply_mutations(batch);
            sess.run_incremental();
            for m in batch.edges() {
                let key = (m.src.min(m.dst), m.src.max(m.dst));
                if m.is_insert() {
                    edges.push(key);
                } else {
                    edges.retain(|&e| e != key);
                }
            }
        }

        // Oracle: from-scratch serial one-shot on the final graph.
        let mut oracle = SessionBuilder::from_config(mk_config(sc.algo, 1, 1)).from_source(&src, &mk_input(sc.algo, &edges))
        .unwrap();
        oracle.run_oneshot();

        for attr in attr_names(sc.algo) {
            prop_assert_eq!(
                sess.attr_column(attr).unwrap(),
                oracle.attr_column(attr).unwrap(),
                "{}: attribute `{}` diverged (scenario {:?})",
                sc.algo,
                attr,
                sc
            );
        }
        if sc.algo == "tc" {
            prop_assert_eq!(
                sess.global_value("cnts", None).unwrap(),
                oracle.global_value("cnts", None).unwrap(),
                "tc: global diverged (scenario {:?})",
                sc
            );
        }
    }
}
