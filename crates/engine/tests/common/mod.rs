//! Shared scaffolding for the randomized engine tests: a seeded workload
//! generator producing base graphs plus mutation-batch sequences (with
//! routine delete-then-reinsert traffic), and per-algorithm input/config
//! builders. Used by the parallel incremental oracle
//! (`parallel_oracle.rs`) and the durability kill-and-recover test
//! (`kill_recover.rs`), which must both drive the *same* histories.
#![allow(dead_code)]

use itg_algorithms::programs;
use itg_engine::{EngineConfig, GraphInput};
use itg_gsa::VertexId;
use itg_store::{EdgeMutation, MutationBatch};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

pub const N: usize = 32;
pub const ALGOS: [&str; 6] = ["pr", "lp", "wcc", "bfs", "tc", "lcc"];

/// How mutation endpoints are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MutationMode {
    /// Endpoints uniform over `0..N`.
    #[default]
    Uniform,
    /// Skewed: ~70% of endpoints land on a small hot set
    /// ([`HOT_VERTICES`]), so successive batches keep touching the same
    /// vertices — the delta-chain shape the NGW segment cache exploits
    /// (repeated window reloads of the same hot segments).
    HotVertex,
}

/// The hot set for [`MutationMode::HotVertex`].
pub const HOT_VERTICES: u64 = 4;

#[derive(Debug, Clone)]
pub struct Scenario {
    pub algo: &'static str,
    pub machines: usize,
    pub threads: usize,
    pub seed: u64,
    pub batches: usize,
    pub batch_size: usize,
    pub mutation_mode: MutationMode,
}

/// Base graph plus batches. Deleted edges go into a `dead` pool that later
/// batches preferentially reinsert from, so delete-then-reinsert sequences
/// are a routine part of the workload, not a corner case.
pub fn build_workload(sc: &Scenario) -> (Vec<(VertexId, VertexId)>, Vec<MutationBatch>) {
    let mut rng = SmallRng::seed_from_u64(sc.seed);
    let want = 60 + sc.batches * sc.batch_size;
    let mut universe: Vec<(VertexId, VertexId)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let endpoint = |rng: &mut SmallRng| match sc.mutation_mode {
        MutationMode::Uniform => rng.gen_range(0..N as u64),
        MutationMode::HotVertex => {
            if rng.gen_range(0..10u32) < 7 {
                rng.gen_range(0..HOT_VERTICES)
            } else {
                rng.gen_range(0..N as u64)
            }
        }
    };
    while universe.len() < want {
        let a = endpoint(&mut rng);
        let b = endpoint(&mut rng);
        if a != b && seen.insert((a.min(b), a.max(b))) {
            universe.push((a.min(b), a.max(b)));
        }
    }
    let base: Vec<_> = universe[..60].to_vec();
    let mut fresh: Vec<_> = universe[60..].to_vec();
    let mut alive = base.clone();
    let mut dead: Vec<(VertexId, VertexId)> = Vec::new();
    let mut out = Vec::new();
    for _ in 0..sc.batches {
        let mut muts = Vec::new();
        // Edges deleted within this batch are not eligible for reinsertion
        // until the next batch.
        let mut dead_this_batch: Vec<(VertexId, VertexId)> = Vec::new();
        for _ in 0..sc.batch_size {
            let roll = rng.gen_range(0..10u32);
            if roll < 3 && !dead.is_empty() {
                // Reinsert a previously deleted edge.
                let i = rng.gen_range(0..dead.len());
                let e = dead.swap_remove(i);
                muts.push(EdgeMutation::insert(e.0, e.1));
                alive.push(e);
            } else if roll < 7 && alive.len() >= 4 {
                let i = rng.gen_range(0..alive.len());
                let e = alive.swap_remove(i);
                muts.push(EdgeMutation::delete(e.0, e.1));
                dead_this_batch.push(e);
            } else if let Some(e) = fresh.pop() {
                muts.push(EdgeMutation::insert(e.0, e.1));
                alive.push(e);
            }
        }
        dead.append(&mut dead_this_batch);
        if muts.is_empty() {
            // Unreachable in practice (the fresh pool is sized for every
            // batch), but an empty batch would make the scenario vacuous.
            let e = fresh.pop().expect("fresh pool sized for all batches");
            muts.push(EdgeMutation::insert(e.0, e.1));
            alive.push(e);
        }
        out.push(MutationBatch::new(muts));
    }
    (base, out)
}

pub fn mk_input(algo: &str, edges: &[(VertexId, VertexId)]) -> GraphInput {
    let mut input = if programs::is_undirected(algo) {
        GraphInput::undirected(edges.to_vec())
    } else {
        GraphInput::directed(edges.to_vec())
    };
    input.num_vertices = N;
    input
}

pub fn mk_config(algo: &str, machines: usize, threads: usize) -> EngineConfig {
    let mut config = EngineConfig {
        machines,
        parallel: machines > 1,
        ..EngineConfig::default()
    }
    .with_threads(threads);
    if matches!(algo, "pr" | "lp") {
        config.max_supersteps = 10;
    }
    config
}

pub fn attr_names(algo: &str) -> &'static [&'static str] {
    match algo {
        "pr" => &["rank"],
        "lp" => &["label"],
        "wcc" => &["comp"],
        "bfs" => &["dist"],
        "tc" => &[],
        "lcc" => &["lcc"],
        _ => unreachable!(),
    }
}
