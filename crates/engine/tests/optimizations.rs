//! Behavioural tests for the engine's run-time optimizations: they must
//! not change results (covered in `equivalence.rs`) and they must actually
//! deliver the work/IO reductions the paper attributes to them.

use itg_algorithms::programs;
use itg_engine::{EngineConfig, GraphInput, OptFlags, SessionBuilder};
use itg_graphgen::{canonical_undirected, generate_undirected, RmatConfig};
use itg_store::{EdgeMutation, MutationBatch};

fn rmat(x: u32, seed: u64) -> (usize, Vec<(u64, u64)>) {
    let cfg = RmatConfig::paper_scale(x, seed);
    (
        cfg.num_vertices(),
        canonical_undirected(&generate_undirected(&cfg)),
    )
}

fn tc_incremental_with(opts: OptFlags, pool_bytes: u64) -> itg_engine::RunMetrics {
    let (n, edges) = rmat(11, 9);
    let cut = edges.len() - 30;
    let mut input = GraphInput::undirected(edges[..cut].to_vec());
    input.num_vertices = n;
    let cfg = EngineConfig {
        opts,
        buffer_pool_bytes: pool_bytes,
        ..EngineConfig::default()
    };
    let mut s = SessionBuilder::from_config(cfg).from_source(programs::TRIANGLE_COUNT, &input).unwrap();
    s.run_oneshot();
    s.apply_mutations(&MutationBatch::new(
        edges[cut..]
            .iter()
            .map(|&(a, b)| EdgeMutation::insert(a, b))
            .collect(),
    ));
    s.run_incremental()
}

#[test]
fn pruning_cuts_delta_walk_work() {
    let base = tc_incremental_with(OptFlags::none(), 1 << 20);
    let pruned = tc_incremental_with(
        OptFlags {
            traversal_reorder: true,
            neighbor_prune: true,
            ..OptFlags::none()
        },
        1 << 20,
    );
    assert!(
        (pruned.io.walks_enumerated as f64) < base.io.walks_enumerated as f64 * 0.75,
        "NP should cut walk work by at least 25%: {} !<< {}",
        pruned.io.walks_enumerated,
        base.io.walks_enumerated
    );
}

#[test]
fn seek_window_sharing_cuts_page_reads_under_memory_pressure() {
    // With a tiny buffer pool, processing the four TC sub-queries
    // sequentially re-reads the same pages; interleaving per start vertex
    // (SWS) shares them while hot.
    let small_pool = 64 << 10;
    let without = tc_incremental_with(
        OptFlags {
            traversal_reorder: true,
            neighbor_prune: true,
            seek_window_share: false,
            min_count: true,
            specialize: true,
        },
        small_pool,
    );
    let with = tc_incremental_with(OptFlags::default(), small_pool);
    assert!(
        with.io.page_reads <= without.io.page_reads,
        "SWS should not increase page reads: {} > {}",
        with.io.page_reads,
        without.io.page_reads
    );
}

#[test]
fn cnt_avoids_min_recomputation_under_deletions() {
    // WCC on a clique: deleting one edge leaves plenty of support for the
    // minimum label, so CNT should avoid every recomputation.
    let n = 10u64;
    let edges: Vec<(u64, u64)> = (0..n)
        .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
        .collect();
    let run = |cnt: bool| {
        let input = GraphInput::undirected(edges.clone());
        let cfg = EngineConfig {
            opts: OptFlags {
                min_count: cnt,
                ..OptFlags::default()
            },
            ..EngineConfig::default()
        };
        let mut s = SessionBuilder::from_config(cfg).from_source(programs::WCC, &input).unwrap();
        s.run_oneshot();
        s.apply_mutations(&MutationBatch::new(vec![EdgeMutation::delete(3, 7)]));
        s.run_incremental()
    };
    let with_cnt = run(true);
    let without_cnt = run(false);
    assert_eq!(
        with_cnt.recomputed_vertices, 0,
        "support counting should absorb the deletion"
    );
    assert!(
        without_cnt.recomputed_vertices > 0,
        "without CNT every touched Min must recompute"
    );
}

#[test]
fn incremental_io_scales_with_delta_not_graph() {
    // Fix the batch, grow the graph: incremental walk work should stay
    // roughly flat while one-shot work grows with the graph.
    let mut oneshot_walks = Vec::new();
    let mut inc_walks = Vec::new();
    for x in [10u32, 12] {
        let (n, edges) = rmat(x, 17);
        let cut = edges.len() - 10;
        let mut input = GraphInput::undirected(edges[..cut].to_vec());
        input.num_vertices = n;
        let mut s = SessionBuilder::from_config(EngineConfig::default()).from_source(programs::TRIANGLE_COUNT, &input)
        .unwrap();
        let one = s.run_oneshot();
        s.apply_mutations(&MutationBatch::new(
            edges[cut..]
                .iter()
                .map(|&(a, b)| EdgeMutation::insert(a, b))
                .collect(),
        ));
        let inc = s.run_incremental();
        oneshot_walks.push(one.io.walks_enumerated);
        inc_walks.push(inc.io.walks_enumerated);
    }
    let oneshot_growth = oneshot_walks[1] as f64 / oneshot_walks[0].max(1) as f64;
    let inc_growth = inc_walks[1] as f64 / inc_walks[0].max(1) as f64;
    assert!(
        inc_growth < oneshot_growth,
        "incremental work should grow slower than one-shot: {inc_growth:.1} !< {oneshot_growth:.1}"
    );
}

#[test]
fn maintenance_policy_controls_store_read_growth() {
    use itg_store::MaintenancePolicy;
    // Run many snapshots; the NoMerge store's incremental read bytes grow
    // with the chain while CostBased stays bounded.
    let read_curve = |policy: MaintenancePolicy| -> (u64, u64) {
        let (n, edges) = rmat(10, 23);
        let cut = edges.len() * 9 / 10;
        let mut input = GraphInput::undirected(edges[..cut].to_vec());
        input.num_vertices = n;
        let cfg = EngineConfig {
            maintenance: policy,
            max_supersteps: 10,
            ..EngineConfig::default()
        };
        let mut s = SessionBuilder::from_config(cfg).from_source(programs::LABEL_PROP, &input).unwrap();
        s.run_oneshot();
        let mut pool: Vec<(u64, u64)> = edges[cut..].to_vec();
        let mut first = 0;
        let mut last = 0;
        let rounds = 24;
        for t in 0..rounds {
            // Alternate insert/delete of a single edge to create churn.
            let e = pool[t % pool.len()];
            let m = if t.is_multiple_of(2) {
                EdgeMutation::insert(e.0, e.1)
            } else {
                EdgeMutation::delete(e.0, e.1)
            };
            s.apply_mutations(&MutationBatch::new(vec![m]));
            let io = s.run_incremental().io;
            if t == 0 {
                first = io.disk_read_bytes;
            }
            if t == rounds - 1 {
                last = io.disk_read_bytes;
            }
        }
        let _ = &mut pool;
        (first, last)
    };
    let (nm_first, nm_last) = read_curve(MaintenancePolicy::NoMerge);
    let (cb_first, cb_last) = read_curve(MaintenancePolicy::CostBased);
    let nm_growth = nm_last as f64 / nm_first.max(1) as f64;
    let cb_growth = cb_last as f64 / cb_first.max(1) as f64;
    assert!(
        cb_growth < nm_growth,
        "cost-based merging should bound read growth: {cb_growth:.2} !< {nm_growth:.2}"
    );
}
