//! Property tests for the versioned wire format: every [`Payload`] the
//! transports exchange must round-trip through `encode_payload` /
//! `decode_payload` losslessly, re-encode to byte-identical frames (the
//! canonical-form property the coordinator's zero-copy relay path relies
//! on), and never panic on truncated input. Includes the edge cases the
//! protocol actually produces: empty inboxes (all-empty `Contribs`
//! vectors) and maximum-size frontier votes.

use itg_engine::accum::Contribution;
use itg_engine::wire::{decode_payload, encode_payload};
use itg_engine::Payload;
use itg_gsa::accm::CountedAccm;
use itg_gsa::{Value, VertexId};
use itg_store::{EdgeMutation, MutationBatch};
use proptest::collection::vec;
use proptest::prelude::*;
use proptest::strategy::Strategy;

// The vendored proptest has no `prop_oneof`; variants are selected by an
// index drawn alongside all the ingredients.

fn arb_prim_value() -> impl Strategy<Value = Value> {
    (0usize..5, any::<u64>(), any::<f64>()).prop_map(|(k, bits, f)| match k {
        0 => Value::Bool(bits & 1 == 1),
        1 => Value::Int(bits as i32),
        2 => Value::Long(bits as i64),
        // `any::<f64>()` draws from [0, 1): always finite, so `Value`'s
        // IEEE equality is reflexive for the equality half of the
        // property. The NaN unit test below covers byte-stability.
        3 => Value::Float(f as f32),
        _ => Value::Double(f),
    })
}

fn arb_value() -> impl Strategy<Value = Value> {
    (0usize..5, arb_prim_value(), vec(arb_prim_value(), 0..4)).prop_map(|(k, prim, arr)| {
        if k == 0 {
            Value::Array(arr)
        } else {
            prim
        }
    })
}

fn arb_contribution() -> impl Strategy<Value = Contribution> {
    (
        arb_value(),
        any::<i64>(),
        (any::<bool>(), arb_value(), any::<u64>()),
        vec(arb_value(), 0..3),
    )
        .prop_map(|(folded, count, (has_monoid, mv, mc), retractions)| Contribution {
            folded,
            count,
            monoid: has_monoid.then_some(CountedAccm { value: mv, count: mc }),
            retractions,
        })
}

fn arb_vertex_contribs() -> impl Strategy<Value = Vec<Vec<(VertexId, Contribution)>>> {
    vec(vec((any::<VertexId>(), arb_contribution()), 0..4), 0..3)
}

fn arb_sets() -> impl Strategy<Value = Vec<Vec<VertexId>>> {
    vec(vec(any::<VertexId>(), 0..5), 0..3)
}

fn arb_mutation() -> impl Strategy<Value = EdgeMutation> {
    (any::<VertexId>(), any::<VertexId>(), any::<bool>()).prop_map(|(src, dst, ins)| {
        if ins {
            EdgeMutation::insert(src, dst)
        } else {
            EdgeMutation::delete(src, dst)
        }
    })
}

fn arb_payload() -> impl Strategy<Value = Payload> {
    (
        0usize..16,
        (any::<u32>(), any::<u64>(), any::<u64>(), any::<bool>()),
        (
            arb_vertex_contribs(),
            vec(arb_contribution(), 0..3),
            vec(arb_value(), 0..3),
        ),
        (arb_sets(), vec(arb_mutation(), 0..6)),
    )
        .prop_map(
            |(k, (from, seq, active, flag), (vertex, globals, values), (sets, muts))| match k {
                0 => Payload::RunOneshot,
                1 => Payload::RunIncremental,
                2 => Payload::Compact,
                3 => Payload::Shutdown,
                4 => Payload::Hello { rank: from },
                5 => Payload::Contribs { from, vertex },
                6 => Payload::GlobalsPartial { from, globals },
                7 => Payload::Frontier {
                    from,
                    superstep: seq,
                    active,
                },
                8 => Payload::FrontierTotal {
                    superstep: seq,
                    active,
                },
                9 => Payload::RecomputeSets { from, sets },
                10 => Payload::RecomputeUnion { sets },
                11 => Payload::GlobalsDecision { recompute: flag },
                12 => Payload::GlobalsFinal {
                    values,
                    changed: flag,
                },
                13 => Payload::Mutations(MutationBatch::new(muts)),
                14 => Payload::BarrierAck { from, seq },
                _ => Payload::Barrier { seq },
            },
        )
}

proptest! {
    /// Lossless round-trip plus canonical re-encoding for every payload.
    #[test]
    fn payload_roundtrips_and_reencodes_identically(p in arb_payload()) {
        let bytes = encode_payload(&p);
        let back = decode_payload(&bytes).expect("generated payloads decode");
        prop_assert_eq!(&back, &p);
        prop_assert_eq!(encode_payload(&back), bytes);
    }

    /// Truncating an encoded payload never panics the decoder.
    #[test]
    fn truncated_payloads_never_panic(p in arb_payload(), cut in 0usize..64) {
        let bytes = encode_payload(&p);
        let cut = cut.min(bytes.len());
        let _ = decode_payload(&bytes[..cut]);
    }

    /// Frontier votes cover the full `u64` range (the "max-size frontier"
    /// case: a vote of `u64::MAX` active vertices must survive the wire).
    #[test]
    fn frontier_votes_roundtrip_across_the_range(
        from in any::<u32>(),
        pick in 0usize..3,
        raw in any::<u64>(),
    ) {
        let active = match pick {
            0 => 0,
            1 => u64::MAX,
            _ => raw,
        };
        let p = Payload::Frontier { from, superstep: raw, active };
        prop_assert_eq!(decode_payload(&encode_payload(&p)).unwrap(), p);
        let t = Payload::FrontierTotal { superstep: u64::MAX, active };
        prop_assert_eq!(decode_payload(&encode_payload(&t)).unwrap(), t);
    }
}

/// An exchange with nothing to say — the empty inbox every converged
/// superstep produces — still crosses the wire as a well-formed frame.
#[test]
fn empty_inbox_contribs_roundtrip() {
    for vertex in [Vec::new(), vec![Vec::new(), Vec::new()]] {
        let p = Payload::Contribs { from: 3, vertex };
        let bytes = encode_payload(&p);
        assert_eq!(decode_payload(&bytes).unwrap(), p);
        assert_eq!(encode_payload(&decode_payload(&bytes).unwrap()), bytes);
    }
    let p = Payload::GlobalsPartial {
        from: 0,
        globals: Vec::new(),
    };
    assert_eq!(decode_payload(&encode_payload(&p)).unwrap(), p);
}

/// NaN payloads are not equal to themselves, but their encoding is still
/// byte-stable through a decode/re-encode cycle.
#[test]
fn nan_values_are_byte_stable() {
    let p = Payload::GlobalsFinal {
        values: vec![Value::Double(f64::NAN), Value::Float(f32::NAN)],
        changed: true,
    };
    let bytes = encode_payload(&p);
    let back = decode_payload(&bytes).unwrap();
    assert_eq!(encode_payload(&back), bytes);
}
