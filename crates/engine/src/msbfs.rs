//! Backward Multi-Source BFS for neighbor pruning (paper §5.3).
//!
//! For a Δ-walk sub-query whose delta sits at hop `j`, the walk must pass
//! through a delta edge at that hop. Starting from the delta edges' source
//! endpoints (`X^0`, candidates for the delta hop's source position), we
//! traverse *backward* along the reversed hops of the path to the walk's
//! start position: `X^{i+1}` is the set of vertices with an edge into
//! `X^i` along the corresponding hop. `X^m` is then `V_Δ`, the only
//! starting vertices that can produce Δ-walks, and the intermediate sets
//! restrict every on-path hop during forward enumeration — traversal
//! reordering and neighbor pruning fall out of the same levels.

use crate::graph::ClusterGraph;
use itg_compiler::WalkQuery;
use itg_gsa::expr::EdgeDir;
use itg_gsa::{FxHashSet, VertexId};
use itg_store::View;

/// Reverse of a hop direction for backward traversal.
pub fn reverse_dir(dir: EdgeDir) -> EdgeDir {
    match dir {
        EdgeDir::Out => EdgeDir::In,
        EdgeDir::In => EdgeDir::Out,
        EdgeDir::Both => EdgeDir::Both,
    }
}

/// Per-depth visited sets of the backward MS-BFS.
///
/// `levels[0]` = the seed set (candidates for the path's deepest
/// position); `levels[i]` = candidates `i` steps back; `levels[m]` = `V_Δ`.
#[derive(Debug, Default)]
pub struct PruningLevels {
    pub levels: Vec<FxHashSet<VertexId>>,
}

impl PruningLevels {
    /// Candidate start vertices (`V_Δ`).
    pub fn start_candidates(&self) -> &FxHashSet<VertexId> {
        self.levels.last().expect("at least the seed level exists")
    }

    /// The allowed set for the path hop at `path_index` (0-based from the
    /// start): the vertices the hop's *target* may take.
    pub fn allowed_for_path_hop(&self, path_index: usize) -> &FxHashSet<VertexId> {
        // Path hop i targets the position whose backward level is
        // m − 1 − i.
        &self.levels[self.levels.len() - 2 - path_index]
    }
}

/// Run the backward MS-BFS for a sub-query: `seeds` are the delta edges'
/// source endpoints, `path` the hop indexes from the start position to the
/// delta hop's source (forward order). Traversal reads the `New` view
/// (hops before the delta are bound primed) and is charged to each
/// frontier vertex's owner (the distributed MS-BFS runs where the data
/// lives).
pub fn backward_msbfs(
    graph: &ClusterGraph,
    query: &WalkQuery,
    path: &[usize],
    seeds: FxHashSet<VertexId>,
) -> PruningLevels {
    let mut levels = Vec::with_capacity(path.len() + 1);
    levels.push(seeds);
    // Walk the path in reverse: the last path hop reaches the seed level.
    for &hop_idx in path.iter().rev() {
        let dir = reverse_dir(query.hops[hop_idx].dir);
        let frontier = levels.last().unwrap();
        let mut next = FxHashSet::default();
        for &v in frontier {
            let owner = graph.owner(v);
            graph.for_each_neighbor(owner, v, dir, View::New, |u| {
                next.insert(u);
            });
        }
        levels.push(next);
    }
    PruningLevels { levels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphInput;
    use itg_compiler::HopSpec;

    fn chain_query(k: usize) -> WalkQuery {
        WalkQuery {
            op_id: 0,
            start_filter: None,
            hops: (0..k)
                .map(|i| HopSpec {
                    source: i,
                    dir: EdgeDir::Both,
                    constraint: None,
                })
                .collect(),
            actions: vec![],
            closes_to: None,
        }
    }

    #[test]
    fn two_level_backward_bfs() {
        // Path graph 0-1-2-3-4; delta conceptually at hop 2 (source is
        // position 2), path = hops [0, 1].
        let g = ClusterGraph::load(
            &GraphInput::undirected(vec![(0, 1), (1, 2), (2, 3), (3, 4)]),
            2,
            1 << 20,
            4096,
        );
        let q = chain_query(3);
        let mut seeds = FxHashSet::default();
        seeds.insert(3u64);
        let levels = backward_msbfs(&g, &q, &[0, 1], seeds);
        assert_eq!(levels.levels.len(), 3);
        // One step back from 3: {2, 4}; two steps: {1, 3}.
        let mut l1: Vec<u64> = levels.levels[1].iter().copied().collect();
        l1.sort_unstable();
        assert_eq!(l1, vec![2, 4]);
        let mut l2: Vec<u64> = levels.start_candidates().iter().copied().collect();
        l2.sort_unstable();
        assert_eq!(l2, vec![1, 3]);
        // Forward restriction mapping: path hop 0 targets level 1
        // (positions one step from the start).
        let a0: Vec<u64> = {
            let mut v: Vec<u64> = levels.allowed_for_path_hop(0).iter().copied().collect();
            v.sort_unstable();
            v
        };
        assert_eq!(a0, vec![2, 4]);
        let a1: Vec<u64> = {
            let mut v: Vec<u64> = levels.allowed_for_path_hop(1).iter().copied().collect();
            v.sort_unstable();
            v
        };
        assert_eq!(a1, vec![3]);
    }

    #[test]
    fn empty_path_keeps_seeds_as_candidates() {
        let g = ClusterGraph::load(
            &GraphInput::undirected(vec![(0, 1)]),
            1,
            1 << 20,
            4096,
        );
        let q = chain_query(1);
        let mut seeds = FxHashSet::default();
        seeds.insert(0u64);
        let levels = backward_msbfs(&g, &q, &[], seeds);
        assert_eq!(levels.levels.len(), 1);
        assert!(levels.start_candidates().contains(&0));
    }

    #[test]
    fn reverse_dirs() {
        assert_eq!(reverse_dir(EdgeDir::Out), EdgeDir::In);
        assert_eq!(reverse_dir(EdgeDir::In), EdgeDir::Out);
        assert_eq!(reverse_dir(EdgeDir::Both), EdgeDir::Both);
    }
}
