//! # itg-engine — the iTurboGraph runtime engine (paper §5)
//!
//! Executes compiled `L_NGA` programs over the dynamic graph store under
//! the BSP model: one-shot plans by windowed walk enumeration, incremental
//! plans by Δ-walk enumeration with traversal reordering, MS-BFS neighbor
//! pruning, seek/window sharing, and group/monoid-aware incremental
//! Accumulate. The cluster is simulated: vertices are hash-partitioned
//! across worker "machines", cross-partition adjacency reads and
//! pre-aggregated accumulator exchanges are charged as network bytes, and
//! all store reads flow through per-machine buffer pools.

//! ## Distribution
//!
//! Superstep message exchange is abstracted behind the
//! [`transport::Transport`] trait. The default [`transport::TransportKind::Local`]
//! plane keeps every partition in-process;
//! [`transport::TransportKind::Process`] runs partition groups in separate
//! `itg-partition-worker` OS processes, exchanging the versioned
//! [`wire::Payload`] binary format over pipes with a coordinator handling
//! barriers, global reduction, and convergence voting (DESIGN.md
//! §Distribution).

//! ## Standing queries
//!
//! [`registry::QueryRegistry`] is the multi-tenant layer over [`Session`]:
//! queries register against a live graph, every committed mutation batch
//! drives all registered Δ-plans, and structurally identical queries
//! (equal [`itg_compiler::program_hash`]) share one backing session so
//! their Δ-walks are enumerated once per batch (DESIGN.md §11). The
//! `itg serve` CLI and `expt serve` workload are built on it.

pub mod accum;
pub mod builder;
pub mod config;
mod coordinator;
pub mod durability;
pub mod graph;
pub mod metrics;
pub mod msbfs;
pub mod registry;
pub mod session;
pub mod transport;
pub mod vexec;
pub mod walker;
pub mod wire;
pub mod worker;

pub use builder::SessionBuilder;
pub use config::{EngineConfig, OptFlags};
pub use durability::{DurabilityKind, SnapshotId};
pub use graph::{ClusterGraph, GraphInput};
pub use metrics::{ParallelMetrics, RunKind, RunMetrics};
pub use registry::{CommitStats, QueryId, QueryRegistry, RegistryError, ServeLimits};
pub use session::{EngineError, Session};
pub use transport::{Transport, TransportError, TransportKind};
pub use wire::Payload;
