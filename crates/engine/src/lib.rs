//! # itg-engine — the iTurboGraph runtime engine (paper §5)
//!
//! Executes compiled `L_NGA` programs over the dynamic graph store under
//! the BSP model: one-shot plans by windowed walk enumeration, incremental
//! plans by Δ-walk enumeration with traversal reordering, MS-BFS neighbor
//! pruning, seek/window sharing, and group/monoid-aware incremental
//! Accumulate. The cluster is simulated: vertices are hash-partitioned
//! across worker "machines", cross-partition adjacency reads and
//! pre-aggregated accumulator exchanges are charged as network bytes, and
//! all store reads flow through per-machine buffer pools.

pub mod accum;
pub mod config;
pub mod graph;
pub mod metrics;
pub mod msbfs;
pub mod session;
pub mod vexec;
pub mod walker;

pub use config::{EngineConfig, OptFlags};
pub use graph::{ClusterGraph, GraphInput};
pub use metrics::{ParallelMetrics, RunKind, RunMetrics};
pub use session::{EngineError, Session};
