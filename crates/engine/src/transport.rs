//! The transport abstraction behind superstep message exchange.
//!
//! The BSP drivers ([`crate::Session::run_oneshot`],
//! [`crate::Session::try_run_incremental`]) never move bytes themselves:
//! every cross-partition payload goes through the [`Transport`] trait —
//! `send`, `drain_inbox`, `barrier`. Two implementations exist:
//!
//! * [`LocalTransport`] — the in-memory loopback used when every partition
//!   lives in this process (the pre-distribution behaviour, bit-identical
//!   results and unchanged `net_bytes` accounting).
//! * [`ProcessTransport`] + [`PipeLink`] — the coordinator and worker ends
//!   of a star topology over OS pipes: each partition group runs in its own
//!   `itg-partition-worker` process, the coordinator relays worker↔worker
//!   frames and owns superstep barriers, global-accumulator reduction, and
//!   convergence voting (see DESIGN.md §"Distribution").
//!
//! Addresses are machine indexes `0..machines`; [`COORD`] addresses the
//! coordinator endpoint (global partials, frontier votes, run results).

use crate::wire::{
    decode_payload, read_frame, write_frame, write_frame_bytes, Payload, WireError, DST_COORD,
    DST_CTRL,
};
use std::collections::VecDeque;
use std::io::Write;
use std::ops::Range;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;

/// The `dst` value addressing the coordinator instead of a machine.
pub const COORD: usize = DST_COORD as usize;

/// Which transport a [`crate::Session`] exchanges messages over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// All partitions in this process; exchange is an in-memory loopback.
    #[default]
    Local,
    /// Partition groups in separate OS processes. `workers = 0` means one
    /// process per machine; otherwise machines are split into `workers`
    /// contiguous groups.
    Process { workers: usize },
}

/// Transport-layer failures (IO, worker lifecycle, protocol violations).
/// Byte-level decode failures are wrapped [`WireError`]s.
#[derive(Debug)]
pub enum TransportError {
    Io(std::io::Error),
    Wire(WireError),
    /// A worker process closed its pipe before the protocol finished.
    WorkerExited { rank: usize },
    /// The `itg-partition-worker` binary could not be located (see
    /// [`find_worker_binary`]).
    WorkerBinaryNotFound,
    /// Spawning a worker process failed.
    Spawn(std::io::Error),
    /// A payload arrived that the protocol state machine cannot accept.
    Protocol(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport IO error: {e}"),
            TransportError::Wire(e) => write!(f, "transport decode error: {e}"),
            TransportError::WorkerExited { rank } => {
                write!(f, "partition worker {rank} exited unexpectedly")
            }
            TransportError::WorkerBinaryNotFound => write!(
                f,
                "itg-partition-worker binary not found (set ITG_WORKER_BIN or \
                 build the workspace binaries)"
            ),
            TransportError::Spawn(e) => write!(f, "failed to spawn partition worker: {e}"),
            TransportError::Protocol(msg) => write!(f, "transport protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> TransportError {
        TransportError::Io(e)
    }
}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> TransportError {
        TransportError::Wire(e)
    }
}

/// Superstep message exchange. One exchange round is: every participant
/// `send`s its outgoing payloads, enters `barrier(seq)` (sequence numbers
/// increase monotonically and are agreed by construction — both sides run
/// the same driver), and then `drain_inbox`es the payloads addressed to the
/// machines it owns.
///
/// `drain_inbox` returns `(dst_machine, payload)` pairs in arrival order;
/// for [`LocalTransport`] that is exactly send order, which the engine
/// relies on to replay the pre-distribution merge sequence bit-for-bit.
pub trait Transport: Send + Sync {
    fn send(&mut self, dst: usize, payload: Payload) -> Result<(), TransportError>;
    fn drain_inbox(&mut self) -> Vec<(usize, Payload)>;
    fn barrier(&mut self, seq: u64) -> Result<(), TransportError>;
}

// ---------------------------------------------------------------
// LocalTransport.
// ---------------------------------------------------------------

/// In-memory loopback: every `send` lands directly in the local inbox, the
/// barrier is a no-op (all partitions advance in lockstep inside one
/// driver loop). This is the pre-distribution exchange path, now behind
/// the trait; it doubles as the test double the cross-transport
/// equivalence suite compares [`ProcessTransport`] against.
pub struct LocalTransport {
    inbox: Vec<(usize, Payload)>,
    msgs: itg_obs::CounterHandle,
}

impl LocalTransport {
    pub fn new(rec: &itg_obs::Recorder) -> LocalTransport {
        LocalTransport {
            inbox: Vec::new(),
            msgs: rec.counter("net/messages"),
        }
    }
}

impl Transport for LocalTransport {
    fn send(&mut self, dst: usize, payload: Payload) -> Result<(), TransportError> {
        self.msgs.add(1);
        self.inbox.push((dst, payload));
        Ok(())
    }

    fn drain_inbox(&mut self) -> Vec<(usize, Payload)> {
        std::mem::take(&mut self.inbox)
    }

    fn barrier(&mut self, _seq: u64) -> Result<(), TransportError> {
        Ok(())
    }
}

// ---------------------------------------------------------------
// Machine-range partitioning.
// ---------------------------------------------------------------

/// The contiguous machine range driven by worker `rank` when `machines`
/// machines are split across `workers` processes: `⌈machines/workers⌉` per
/// worker, the last worker possibly short.
pub fn partition_range(machines: usize, workers: usize, rank: usize) -> Range<usize> {
    let per = machines.div_ceil(workers);
    (rank * per).min(machines)..((rank + 1) * per).min(machines)
}

/// How many worker processes `TransportKind::Process { workers }` resolves
/// to for a given machine count (`workers = 0` → one per machine; always
/// clamped to `machines`).
pub fn resolve_workers(machines: usize, workers: usize) -> usize {
    if workers == 0 {
        machines
    } else {
        workers.min(machines).max(1)
    }
}

/// Locate the `itg-partition-worker` binary: the `ITG_WORKER_BIN`
/// environment variable wins; otherwise search the directory containing
/// the current executable and its parent (covers both `target/<profile>/`
/// binaries and `target/<profile>/deps/` test executables).
pub fn find_worker_binary() -> Option<PathBuf> {
    if let Ok(path) = std::env::var("ITG_WORKER_BIN") {
        if !path.is_empty() {
            return Some(PathBuf::from(path));
        }
    }
    let name = format!("itg-partition-worker{}", std::env::consts::EXE_SUFFIX);
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?;
    for d in [Some(dir), dir.parent()] {
        let candidate = d?.join(&name);
        if candidate.is_file() {
            return Some(candidate);
        }
    }
    None
}

// ---------------------------------------------------------------
// PipeLink: the worker end.
// ---------------------------------------------------------------

/// A worker process's link to the coordinator over its own stdin/stdout.
///
/// Frames addressed to machines this worker owns short-circuit into the
/// local inbox without touching the pipe (they would only be relayed
/// straight back); everything else is written out for the coordinator to
/// relay. `barrier` writes a [`Payload::BarrierAck`] and then blocks
/// reading stdin until the matching [`Payload::Barrier`] release arrives —
/// data frames relayed in the meantime are filed into the inbox, control
/// payloads into a queue served by [`PipeLink::recv_ctrl`].
pub struct PipeLink {
    rank: u32,
    owned: Range<usize>,
    inbox: Vec<(usize, Payload)>,
    ctrl: VecDeque<Payload>,
    msgs: itg_obs::CounterHandle,
    barrier_wait: itg_obs::SpanHandle,
}

impl PipeLink {
    pub fn new(rank: u32, owned: Range<usize>, rec: &itg_obs::Recorder) -> PipeLink {
        PipeLink {
            rank,
            owned,
            inbox: Vec::new(),
            ctrl: VecDeque::new(),
            msgs: rec.counter("net/messages"),
            barrier_wait: rec.span("net/barrier_wait"),
        }
    }

    pub fn rank(&self) -> u32 {
        self.rank
    }

    pub fn owned(&self) -> Range<usize> {
        self.owned.clone()
    }

    fn write(&mut self, dst: u16, payload: &Payload) -> Result<(), TransportError> {
        let stdout = std::io::stdout();
        write_frame(&mut stdout.lock(), dst, payload)?;
        Ok(())
    }

    /// Read one frame from the coordinator; machine-addressed frames are
    /// filed into the inbox, control frames are returned.
    fn pump_ctrl(&mut self) -> Result<Payload, TransportError> {
        loop {
            let stdin = std::io::stdin();
            let frame = read_frame(&mut stdin.lock())?;
            let Some((dst, body)) = frame else {
                return Err(TransportError::Protocol(
                    "coordinator closed the pipe mid-protocol".into(),
                ));
            };
            if dst == DST_CTRL {
                return Ok(decode_payload(&body)?);
            }
            let dst = dst as usize;
            if self.owned.contains(&dst) {
                self.inbox.push((dst, decode_payload(&body)?));
            } else {
                return Err(TransportError::Protocol(format!(
                    "frame for machine {dst} delivered to worker {} owning {:?}",
                    self.rank, self.owned
                )));
            }
        }
    }

    /// The next control payload from the coordinator (a queued one if the
    /// barrier loop already read past it).
    pub fn recv_ctrl(&mut self) -> Result<Payload, TransportError> {
        if let Some(p) = self.ctrl.pop_front() {
            return Ok(p);
        }
        self.pump_ctrl()
    }
}

impl Transport for PipeLink {
    fn send(&mut self, dst: usize, payload: Payload) -> Result<(), TransportError> {
        self.msgs.add(1);
        if dst == COORD {
            self.write(DST_COORD, &payload)
        } else if self.owned.contains(&dst) {
            self.inbox.push((dst, payload));
            Ok(())
        } else {
            self.write(dst as u16, &payload)
        }
    }

    fn drain_inbox(&mut self) -> Vec<(usize, Payload)> {
        std::mem::take(&mut self.inbox)
    }

    fn barrier(&mut self, seq: u64) -> Result<(), TransportError> {
        self.write(DST_COORD, &Payload::BarrierAck { from: self.rank, seq })?;
        let timing = self.barrier_wait.is_enabled();
        let start = timing.then(std::time::Instant::now);
        loop {
            match self.pump_ctrl()? {
                Payload::Barrier { seq: s } if s == seq => {
                    if let Some(start) = start {
                        self.barrier_wait.record(1, start.elapsed().as_nanos() as u64);
                    }
                    return Ok(());
                }
                Payload::Barrier { seq: s } => {
                    return Err(TransportError::Protocol(format!(
                        "barrier release {s} while waiting for {seq}"
                    )));
                }
                other => self.ctrl.push_back(other),
            }
        }
    }
}

// ---------------------------------------------------------------
// ProcessTransport: the coordinator end.
// ---------------------------------------------------------------

/// Sentinel a reader thread emits when its worker's stdout reaches EOF.
const RANK_EOF: u16 = DST_CTRL;

/// The coordinator's hub of worker processes.
///
/// One `itg-partition-worker` child per rank, each with a piped
/// stdin/stdout (stderr inherited). A reader thread per child feeds every
/// incoming frame — still encoded — into one mpsc channel; the coordinator
/// relays machine-addressed frames to the owning worker's stdin without
/// re-encoding and decodes coordinator-addressed frames into a queue
/// served by [`ProcessTransport::recv_coord`].
pub struct ProcessTransport {
    children: Vec<Child>,
    stdins: Vec<std::io::BufWriter<ChildStdin>>,
    // Mutex-wrapped solely for `Sync` (the session is shared across scoped
    // threads during partition phases); the coordinator is the only reader.
    rx: std::sync::Mutex<mpsc::Receiver<(usize, u16, Vec<u8>)>>,
    readers: Vec<std::thread::JoinHandle<()>>,
    coord: VecDeque<(usize, Payload)>,
    machines: usize,
    workers: usize,
    msgs: itg_obs::CounterHandle,
    barrier_wait: itg_obs::SpanHandle,
}

impl ProcessTransport {
    /// Spawn `workers` worker processes for a `machines`-machine cluster.
    /// The caller bootstraps them afterwards (program source, graph image,
    /// config) via [`ProcessTransport::send_ctrl`].
    pub fn spawn(
        machines: usize,
        workers: usize,
        rec: &itg_obs::Recorder,
    ) -> Result<ProcessTransport, TransportError> {
        let workers = resolve_workers(machines, workers);
        let bin = find_worker_binary().ok_or(TransportError::WorkerBinaryNotFound)?;
        let (tx, rx) = mpsc::channel();
        let mut children = Vec::with_capacity(workers);
        let mut stdins = Vec::with_capacity(workers);
        let mut readers = Vec::with_capacity(workers);
        for rank in 0..workers {
            let mut child = Command::new(&bin)
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .stderr(Stdio::inherit())
                .spawn()
                .map_err(TransportError::Spawn)?;
            let stdin = child.stdin.take().expect("piped stdin");
            let mut stdout = child.stdout.take().expect("piped stdout");
            let tx = tx.clone();
            readers.push(std::thread::spawn(move || {
                loop {
                    match read_frame(&mut stdout) {
                        Ok(Some((dst, body))) => {
                            if tx.send((rank, dst, body)).is_err() {
                                return;
                            }
                        }
                        // EOF (clean or not): emit the sentinel so a
                        // coordinator blocked on this worker fails fast
                        // instead of hanging.
                        Ok(None) | Err(_) => {
                            let _ = tx.send((rank, RANK_EOF, Vec::new()));
                            return;
                        }
                    }
                }
            }));
            stdins.push(std::io::BufWriter::new(stdin));
            children.push(child);
        }
        Ok(ProcessTransport {
            children,
            stdins,
            rx: std::sync::Mutex::new(rx),
            readers,
            coord: VecDeque::new(),
            machines,
            workers,
            msgs: rec.counter("net/messages"),
            barrier_wait: rec.span("net/barrier_wait"),
        })
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    pub fn rank_of(&self, machine: usize) -> usize {
        let per = self.machines.div_ceil(self.workers);
        machine / per
    }

    /// The machine range worker `rank` drives.
    pub fn owned_range(&self, rank: usize) -> Range<usize> {
        partition_range(self.machines, self.workers, rank)
    }

    /// Send a control payload to one worker.
    pub fn send_ctrl(&mut self, rank: usize, payload: &Payload) -> Result<(), TransportError> {
        self.msgs.add(1);
        write_frame(&mut self.stdins[rank], DST_CTRL, payload)?;
        Ok(())
    }

    /// Send a control payload to every worker.
    pub fn broadcast(&mut self, payload: &Payload) -> Result<(), TransportError> {
        for rank in 0..self.workers {
            self.send_ctrl(rank, payload)?;
        }
        Ok(())
    }

    /// Blocking receive of the next coordinator-addressed payload, relaying
    /// any machine-addressed frames encountered along the way.
    pub fn recv_coord(&mut self) -> Result<(usize, Payload), TransportError> {
        if let Some(item) = self.coord.pop_front() {
            return Ok(item);
        }
        loop {
            let (rank, dst, body) = self
                .rx
                .lock()
                .expect("reader channel lock")
                .recv()
                .map_err(|_| TransportError::Protocol("all reader threads exited".into()))?;
            if dst == RANK_EOF {
                return Err(TransportError::WorkerExited { rank });
            }
            if dst == DST_COORD {
                return Ok((rank, decode_payload(&body)?));
            }
            let machine = dst as usize;
            if machine >= self.machines {
                return Err(TransportError::Protocol(format!(
                    "frame from worker {rank} addressed to unknown machine {machine}"
                )));
            }
            let owner = self.rank_of(machine);
            write_frame_bytes(&mut self.stdins[owner], dst, &body)?;
        }
    }

    /// Pop `n` queued/incoming coordinator payloads (arrival order).
    pub fn recv_coord_n(&mut self, n: usize) -> Result<Vec<(usize, Payload)>, TransportError> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.recv_coord()?);
        }
        Ok(out)
    }

    /// One barrier round: collect every worker's [`Payload::BarrierAck`]
    /// for `seq` — relaying data frames and queueing other
    /// coordinator-addressed payloads (global partials) as they arrive —
    /// then broadcast the [`Payload::Barrier`] release. Per-worker pipe
    /// FIFO guarantees all of a worker's data frames for the round precede
    /// its ack, so once the release is sent, delivery is complete.
    pub fn barrier_round(&mut self, seq: u64) -> Result<(), TransportError> {
        let timing = self.barrier_wait.is_enabled();
        let start = timing.then(std::time::Instant::now);
        let mut acked = vec![false; self.workers];
        let mut pending = self.workers;
        // Drain already-queued payloads first in case an ack was read
        // during an earlier round. Non-ack payloads (global partials) are
        // deferred to a side queue — NOT back onto `self.coord`, which
        // `recv_coord` pops from and would hand the same payload straight
        // back — and merged once every ack is in.
        let mut stash = VecDeque::new();
        std::mem::swap(&mut stash, &mut self.coord);
        let mut deferred: VecDeque<(usize, Payload)> = VecDeque::new();
        let mut next = move |this: &mut Self| -> Result<(usize, Payload), TransportError> {
            if let Some(item) = stash.pop_front() {
                Ok(item)
            } else {
                this.recv_coord()
            }
        };
        while pending > 0 {
            let (rank, payload) = next(self)?;
            match payload {
                Payload::BarrierAck { from, seq: s } if s == seq => {
                    let from = from as usize;
                    if from >= self.workers || acked[from] {
                        return Err(TransportError::Protocol(format!(
                            "duplicate or out-of-range barrier ack from rank {from}"
                        )));
                    }
                    acked[from] = true;
                    pending -= 1;
                }
                Payload::BarrierAck { from, seq: s } => {
                    return Err(TransportError::Protocol(format!(
                        "barrier ack for {s} from rank {from} while collecting {seq}"
                    )));
                }
                other => deferred.push_back((rank, other)),
            }
        }
        // `recv_coord` never pushes onto `self.coord`, so it is still empty
        // here; the deferred payloads keep their arrival order.
        debug_assert!(self.coord.is_empty());
        self.coord = deferred;
        self.broadcast(&Payload::Barrier { seq })?;
        if let Some(start) = start {
            self.barrier_wait.record(1, start.elapsed().as_nanos() as u64);
        }
        Ok(())
    }
}

impl Transport for ProcessTransport {
    fn send(&mut self, dst: usize, payload: Payload) -> Result<(), TransportError> {
        if dst == COORD {
            return Err(TransportError::Protocol(
                "coordinator cannot send to itself".into(),
            ));
        }
        self.msgs.add(1);
        let rank = self.rank_of(dst);
        write_frame(&mut self.stdins[rank], dst as u16, &payload)?;
        Ok(())
    }

    fn drain_inbox(&mut self) -> Vec<(usize, Payload)> {
        // The coordinator owns no machines; nothing is ever addressed to it
        // through the machine plane.
        Vec::new()
    }

    fn barrier(&mut self, seq: u64) -> Result<(), TransportError> {
        self.barrier_round(seq)
    }
}

impl Drop for ProcessTransport {
    fn drop(&mut self) {
        for rank in 0..self.workers {
            let _ = write_frame(&mut self.stdins[rank], DST_CTRL, &Payload::Shutdown);
            let _ = self.stdins[rank].flush();
        }
        // Closing stdin unblocks any worker still reading.
        self.stdins.clear();
        for child in &mut self.children {
            let _ = child.wait();
        }
        for reader in self.readers.drain(..) {
            let _ = reader.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_transport_preserves_send_order() {
        let rec = itg_obs::Recorder::enabled();
        let mut t = LocalTransport::new(&rec);
        t.send(1, Payload::RunOneshot).unwrap();
        t.send(0, Payload::Compact).unwrap();
        t.barrier(1).unwrap();
        let drained = t.drain_inbox();
        assert_eq!(
            drained,
            vec![(1, Payload::RunOneshot), (0, Payload::Compact)]
        );
        assert!(t.drain_inbox().is_empty());
        assert_eq!(rec.profile().counter_total("net/messages"), 2);
    }

    #[test]
    fn partition_ranges_cover_machines_exactly() {
        for machines in 1..12 {
            for workers in 1..=machines {
                let mut covered = Vec::new();
                for rank in 0..workers {
                    covered.extend(partition_range(machines, workers, rank));
                }
                assert_eq!(covered, (0..machines).collect::<Vec<_>>());
            }
        }
        assert_eq!(partition_range(5, 2, 0), 0..3);
        assert_eq!(partition_range(5, 2, 1), 3..5);
    }

    #[test]
    fn worker_resolution_clamps() {
        assert_eq!(resolve_workers(4, 0), 4);
        assert_eq!(resolve_workers(4, 2), 2);
        assert_eq!(resolve_workers(4, 9), 4);
        assert_eq!(resolve_workers(1, 0), 1);
    }
}
