//! Per-run metrics: wall time plus the byte-accurate counters the paper's
//! evaluation reports (disk IO, network transfer, walks enumerated,
//! recomputations).

use itg_store::IoSnapshot;
use std::time::Duration;

/// Which kind of run produced the metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunKind {
    OneShot,
    Incremental,
}

/// Intra-partition parallel execution counters, aggregated over every
/// enumeration phase (one per machine per superstep) of a run.
///
/// The chunk decomposition — and therefore `phases` and `chunks` — depends
/// only on the work-list sizes, so these two are identical for any
/// `threads_per_machine` and belong in determinism assertions. The
/// per-worker extrema describe how the *scheduler* happened to distribute
/// chunks: with one thread the lone worker takes everything
/// (`max == min == phase total`); with more threads they expose the
/// imbalance between the busiest and idlest worker, and they legitimately
/// vary with the thread count (though not run-to-run for `threads == 1`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParallelMetrics {
    /// Enumeration phases executed (machine × superstep, plus recompute
    /// passes).
    pub phases: u64,
    /// Work-list chunks executed across all phases.
    pub chunks: u64,
    /// Sum over phases of the busiest worker's item count.
    pub max_worker_units: u64,
    /// Sum over phases of the idlest worker's item count.
    pub min_worker_units: u64,
}

impl ParallelMetrics {
    /// Fold one phase's per-worker item counts in.
    pub fn record_phase(&mut self, chunks: u64, per_worker_units: &[u64]) {
        self.phases += 1;
        self.chunks += chunks;
        self.max_worker_units += per_worker_units.iter().copied().max().unwrap_or(0);
        self.min_worker_units += per_worker_units.iter().copied().min().unwrap_or(0);
    }

    /// Busiest-minus-idlest worker load, summed over phases — the
    /// imbalance proxy (0 when every phase ran on one worker).
    pub fn imbalance(&self) -> u64 {
        self.max_worker_units - self.min_worker_units
    }
}

/// Metrics for one analytics run (one-shot or one incremental batch).
#[derive(Debug, Clone)]
pub struct RunMetrics {
    pub kind: RunKind,
    pub wall: Duration,
    pub supersteps: usize,
    /// Aggregated IO across all simulated machines.
    pub io: IoSnapshot,
    /// Sum over supersteps of active-vertex counts (one-shot) or delta-walk
    /// start counts (incremental) — a work proxy.
    pub work_units: u64,
    /// Vertices whose accumulators required monoid recomputation.
    pub recomputed_vertices: u64,
    /// Intra-partition parallel execution counters.
    pub parallel: ParallelMetrics,
}

impl RunMetrics {
    pub fn new(kind: RunKind) -> RunMetrics {
        RunMetrics {
            kind,
            wall: Duration::ZERO,
            supersteps: 0,
            io: IoSnapshot::default(),
            work_units: 0,
            recomputed_vertices: 0,
            parallel: ParallelMetrics::default(),
        }
    }

    /// Seconds, for report tables.
    pub fn secs(&self) -> f64 {
        self.wall.as_secs_f64()
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:?}: {:.3}s, {} supersteps, {} walks, disk r/w {}/{} B, net {} B, recomputed {}, \
             {} chunks over {} phases (imbalance {})",
            self.kind,
            self.secs(),
            self.supersteps,
            self.io.walks_enumerated,
            self.io.disk_read_bytes,
            self.io.disk_write_bytes,
            self.io.net_bytes,
            self.recomputed_vertices,
            self.parallel.chunks,
            self.parallel.phases,
            self.parallel.imbalance(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_renders() {
        let m = RunMetrics::new(RunKind::OneShot);
        let s = m.summary();
        assert!(s.contains("OneShot"));
        assert!(s.contains("supersteps"));
        assert!(s.contains("phases"));
    }

    #[test]
    fn parallel_metrics_fold_extrema_per_phase() {
        let mut p = ParallelMetrics::default();
        p.record_phase(3, &[10, 4]);
        p.record_phase(2, &[5]);
        assert_eq!(p.phases, 2);
        assert_eq!(p.chunks, 5);
        assert_eq!(p.max_worker_units, 15);
        assert_eq!(p.min_worker_units, 9);
        assert_eq!(p.imbalance(), 6);
    }
}
