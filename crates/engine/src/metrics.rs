//! Per-run metrics: wall time plus the byte-accurate counters the paper's
//! evaluation reports (disk IO, network transfer, walks enumerated,
//! recomputations).

use itg_store::IoSnapshot;
use std::time::Duration;

/// Which kind of run produced the metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunKind {
    OneShot,
    Incremental,
}

/// Intra-partition parallel execution counters, aggregated over every
/// enumeration phase (one per machine per superstep) of a run.
///
/// The chunk decomposition — and therefore `phases` and `chunks` — depends
/// only on the work-list sizes, so these two are identical for any
/// `threads_per_machine` and belong in determinism assertions. The
/// per-worker extrema describe how the *scheduler* happened to distribute
/// chunks: with one thread the lone worker takes everything
/// (`max == min == phase total`); with more threads they expose the
/// imbalance between the busiest and idlest worker, and they legitimately
/// vary with the thread count (though not run-to-run for `threads == 1`).
///
/// Equality deliberately ignores [`ParallelMetrics::timing`]: wall-clock
/// timings are non-deterministic by nature and must not participate in the
/// engine's determinism assertions (the `parallel_equivalence` test
/// compares these metrics across thread counts).
#[derive(Debug, Clone, Default)]
pub struct ParallelMetrics {
    /// Enumeration phases executed (machine × superstep, plus recompute
    /// passes).
    pub phases: u64,
    /// Work-list chunks executed across all phases.
    pub chunks: u64,
    /// Sum over phases of the busiest worker's item count.
    pub max_worker_units: u64,
    /// Sum over phases of the idlest worker's item count.
    pub min_worker_units: u64,
    /// Per-worker wall-clock aggregates; populated only when the session's
    /// observability recorder is enabled (all zero otherwise), and excluded
    /// from `PartialEq`.
    pub timing: PhaseTimings,
}

/// Per-worker wall-clock aggregates of the intra-partition enumeration
/// phases — the timing companion to the deterministic item counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Sum over phases of the busiest worker's nanoseconds.
    pub max_worker_ns: u64,
    /// Sum over phases of the idlest worker's nanoseconds.
    pub min_worker_ns: u64,
    /// Total worker nanoseconds across all phases and workers.
    pub total_worker_ns: u64,
}

impl PartialEq for ParallelMetrics {
    fn eq(&self, other: &ParallelMetrics) -> bool {
        // `timing` intentionally omitted — see the type-level docs.
        self.phases == other.phases
            && self.chunks == other.chunks
            && self.max_worker_units == other.max_worker_units
            && self.min_worker_units == other.min_worker_units
    }
}

impl Eq for ParallelMetrics {}

impl ParallelMetrics {
    /// Fold one phase's per-worker item counts (and, when timed,
    /// per-worker nanoseconds — pass `&[]` when timing is disabled) in.
    pub fn record_phase(&mut self, chunks: u64, per_worker_units: &[u64], per_worker_ns: &[u64]) {
        self.phases += 1;
        self.chunks += chunks;
        self.max_worker_units += per_worker_units.iter().copied().max().unwrap_or(0);
        self.min_worker_units += per_worker_units.iter().copied().min().unwrap_or(0);
        self.timing.max_worker_ns += per_worker_ns.iter().copied().max().unwrap_or(0);
        self.timing.min_worker_ns += per_worker_ns.iter().copied().min().unwrap_or(0);
        self.timing.total_worker_ns += per_worker_ns.iter().sum::<u64>();
    }

    /// Busiest-minus-idlest worker load, summed over phases — the
    /// imbalance proxy (0 when every phase ran on one worker).
    pub fn imbalance(&self) -> u64 {
        self.max_worker_units - self.min_worker_units
    }
}

/// Metrics for one analytics run (one-shot or one incremental batch).
///
/// When the session's observability recorder is enabled (`ITG_PROFILE=1`
/// or an explicit `EngineConfig::obs`), [`RunMetrics::profile`] carries the
/// hierarchical span/counter/histogram profile of exactly this run:
///
/// ```
/// use itg_engine::{EngineConfig, GraphInput, SessionBuilder};
///
/// let mut cfg = EngineConfig::default();
/// cfg.obs = itg_obs::Recorder::enabled();
/// let g = GraphInput::undirected(vec![(0, 1), (1, 2)]);
/// let src = "
///     Vertex (id, active, nbrs, c: Accm<long, SUM>)
///     Initialize (u): { u.active = true; }
///     Traverse (u): { For v in u.nbrs { v.c.Accumulate(1); } }
///     Update (u): { }
/// ";
/// let mut sess = SessionBuilder::from_config(cfg).from_source(src, &g).unwrap();
/// let m = sess.run_oneshot();
/// let profile = m.profile.expect("recorder enabled");
/// assert!(profile.span_total_ns("run/traverse") > 0);
/// ```
#[derive(Debug, Clone)]
pub struct RunMetrics {
    pub kind: RunKind,
    pub wall: Duration,
    pub supersteps: usize,
    /// Aggregated IO across all simulated machines.
    pub io: IoSnapshot,
    /// Sum over supersteps of active-vertex counts (one-shot) or delta-walk
    /// start counts (incremental) — a work proxy.
    pub work_units: u64,
    /// Vertices whose accumulators required monoid recomputation.
    pub recomputed_vertices: u64,
    /// Intra-partition parallel execution counters.
    pub parallel: ParallelMetrics,
    /// Interval profile of this run (spans, Δ-stream counters, IO
    /// histograms); `None` when the session's recorder is disabled.
    pub profile: Option<itg_obs::Profile>,
}

impl RunMetrics {
    pub fn new(kind: RunKind) -> RunMetrics {
        RunMetrics {
            kind,
            wall: Duration::ZERO,
            supersteps: 0,
            io: IoSnapshot::default(),
            work_units: 0,
            recomputed_vertices: 0,
            parallel: ParallelMetrics::default(),
            profile: None,
        }
    }

    /// Seconds, for report tables.
    pub fn secs(&self) -> f64 {
        self.wall.as_secs_f64()
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:?}: {:.3}s, {} supersteps, {} walks, disk r/w {}/{} B, net {} B, recomputed {}, \
             {} chunks over {} phases (imbalance {})",
            self.kind,
            self.secs(),
            self.supersteps,
            self.io.walks_enumerated,
            self.io.disk_read_bytes,
            self.io.disk_write_bytes,
            self.io.net_bytes,
            self.recomputed_vertices,
            self.parallel.chunks,
            self.parallel.phases,
            self.parallel.imbalance(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_renders() {
        let m = RunMetrics::new(RunKind::OneShot);
        let s = m.summary();
        assert!(s.contains("OneShot"));
        assert!(s.contains("supersteps"));
        assert!(s.contains("phases"));
    }

    #[test]
    fn parallel_metrics_fold_extrema_per_phase() {
        let mut p = ParallelMetrics::default();
        p.record_phase(3, &[10, 4], &[]);
        p.record_phase(2, &[5], &[]);
        assert_eq!(p.phases, 2);
        assert_eq!(p.chunks, 5);
        assert_eq!(p.max_worker_units, 15);
        assert_eq!(p.min_worker_units, 9);
        assert_eq!(p.imbalance(), 6);
    }

    #[test]
    fn equality_ignores_wall_clock_timing() {
        let mut a = ParallelMetrics::default();
        let mut b = ParallelMetrics::default();
        a.record_phase(1, &[7], &[1_000]);
        b.record_phase(1, &[7], &[9_999]);
        assert_eq!(a, b, "timing must not break determinism comparisons");
        assert_ne!(a.timing, b.timing);
        b.record_phase(1, &[7], &[]);
        assert_ne!(a, b);
    }
}
