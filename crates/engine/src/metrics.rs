//! Per-run metrics: wall time plus the byte-accurate counters the paper's
//! evaluation reports (disk IO, network transfer, walks enumerated,
//! recomputations).

use itg_store::IoSnapshot;
use std::time::Duration;

/// Which kind of run produced the metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunKind {
    OneShot,
    Incremental,
}

/// Metrics for one analytics run (one-shot or one incremental batch).
#[derive(Debug, Clone)]
pub struct RunMetrics {
    pub kind: RunKind,
    pub wall: Duration,
    pub supersteps: usize,
    /// Aggregated IO across all simulated machines.
    pub io: IoSnapshot,
    /// Sum over supersteps of active-vertex counts (one-shot) or delta-walk
    /// start counts (incremental) — a work proxy.
    pub work_units: u64,
    /// Vertices whose accumulators required monoid recomputation.
    pub recomputed_vertices: u64,
}

impl RunMetrics {
    pub fn new(kind: RunKind) -> RunMetrics {
        RunMetrics {
            kind,
            wall: Duration::ZERO,
            supersteps: 0,
            io: IoSnapshot::default(),
            work_units: 0,
            recomputed_vertices: 0,
        }
    }

    /// Seconds, for report tables.
    pub fn secs(&self) -> f64 {
        self.wall.as_secs_f64()
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:?}: {:.3}s, {} supersteps, {} walks, disk r/w {}/{} B, net {} B, recomputed {}",
            self.kind,
            self.secs(),
            self.supersteps,
            self.io.walks_enumerated,
            self.io.disk_read_bytes,
            self.io.disk_write_bytes,
            self.io.net_bytes,
            self.recomputed_vertices,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_renders() {
        let m = RunMetrics::new(RunKind::OneShot);
        let s = m.summary();
        assert!(s.contains("OneShot"));
        assert!(s.contains("supersteps"));
    }
}
