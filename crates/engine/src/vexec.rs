//! Execution of per-vertex statement programs (Initialize and Update).
//!
//! Expressions read the vertex's non-accumulator attributes, its
//! accumulator values (addressed past the non-accm columns, see
//! `CompiledProgram::accm_attr_base`), degrees, globals, and `V`.
//! Assignments are read-your-writes within one invocation: later
//! statements observe earlier assignments, exactly like the imperative
//! semantics of the source program.

use crate::accum::AccmLayout;
use crate::graph::ClusterGraph;
use itg_compiler::{VStmt, VertexProgram};
use itg_gsa::expr::{eval, EdgeDir, EvalContext};
use itg_gsa::value::{ColumnData, Value};
use itg_gsa::VertexId;
use itg_store::View;
use std::cell::RefCell;

/// The evaluation context for one vertex-program invocation.
pub struct VertexCtx<'a> {
    pub v: VertexId,
    pub local: usize,
    /// Non-accumulator attribute columns (`A_{t,s}` image).
    pub attrs: &'a [ColumnData],
    /// Accumulator state columns, if accumulators are readable (Update).
    pub accm: Option<(&'a AccmLayout, &'a [ColumnData])>,
    pub globals: &'a [Value],
    pub graph: &'a ClusterGraph,
    /// Staged assignments (read-your-writes).
    overrides: RefCell<Vec<Option<Value>>>,
}

impl<'a> VertexCtx<'a> {
    pub fn new(
        v: VertexId,
        local: usize,
        attrs: &'a [ColumnData],
        accm: Option<(&'a AccmLayout, &'a [ColumnData])>,
        globals: &'a [Value],
        graph: &'a ClusterGraph,
    ) -> VertexCtx<'a> {
        VertexCtx {
            v,
            local,
            attrs,
            accm,
            globals,
            graph,
            overrides: RefCell::new(vec![None; attrs.len()]),
        }
    }

    /// The staged writes: `(attr index, value)` pairs in attr order.
    pub fn into_writes(self) -> Vec<(usize, Value)> {
        self.overrides
            .into_inner()
            .into_iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|v| (i, v)))
            .collect()
    }
}

impl EvalContext for VertexCtx<'_> {
    fn walk_vertex(&self, pos: usize) -> VertexId {
        debug_assert_eq!(pos, 0);
        self.v
    }

    fn vertex_attr(&self, pos: usize, attr: usize) -> Value {
        debug_assert_eq!(pos, 0);
        if attr < self.attrs.len() {
            if let Some(v) = &self.overrides.borrow()[attr] {
                return v.clone();
            }
            return self.attrs[attr].get(self.local);
        }
        let (layout, cols) = self
            .accm
            .expect("accumulator read outside Update context");
        let i = attr - self.attrs.len();
        cols[layout.value_col(i)].get(self.local)
    }

    fn global(&self, idx: usize) -> Value {
        self.globals[idx].clone()
    }

    fn num_vertices(&self) -> u64 {
        self.graph.num_vertices() as u64
    }

    fn vertex_degree(&self, pos: usize, dir: EdgeDir) -> i64 {
        debug_assert_eq!(pos, 0);
        self.graph.degree(self.v, dir, View::New) as i64
    }
}

/// Run a vertex program; staged attribute writes stay in `ctx`, global
/// accumulations are reported through `on_global(global_idx, value)`.
/// Generic over the callback so per-lane global accumulation inlines
/// rather than dispatching through a `dyn FnMut` per statement.
pub fn execute<F: FnMut(usize, &Value)>(
    program: &VertexProgram,
    ctx: &VertexCtx<'_>,
    on_global: &mut F,
) {
    execute_stmts(&program.stmts, ctx, on_global);
}

fn execute_stmts<F: FnMut(usize, &Value)>(
    stmts: &[VStmt],
    ctx: &VertexCtx<'_>,
    on_global: &mut F,
) {
    for s in stmts {
        match s {
            VStmt::Assign { attr, value } => {
                let v = eval(value, ctx).unwrap_or_else(|e| {
                    panic!("evaluation error in vertex program at v{}: {e}", ctx.v)
                });
                ctx.overrides.borrow_mut()[*attr] = Some(v);
            }
            VStmt::AccumGlobal { global, value, .. } => {
                let v = eval(value, ctx).unwrap_or_else(|e| {
                    panic!("evaluation error in vertex program at v{}: {e}", ctx.v)
                });
                on_global(*global, &v);
            }
            VStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = eval(cond, ctx)
                    .unwrap_or_else(|e| {
                        panic!("evaluation error in vertex program at v{}: {e}", ctx.v)
                    })
                    .as_bool()
                    .unwrap_or(false);
                if c {
                    execute_stmts(then_body, ctx, on_global);
                } else {
                    execute_stmts(else_body, ctx, on_global);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphInput;
    use itg_gsa::expr::{BinOp, Expr};
    use itg_gsa::value::PrimType;

    fn tiny_graph() -> ClusterGraph {
        ClusterGraph::load(&GraphInput::undirected(vec![(0, 1)]), 1, 1 << 16, 4096)
    }

    #[test]
    fn read_your_writes() {
        let g = tiny_graph();
        // attrs: [active: bool, x: double]
        let attrs = vec![
            ColumnData::Bool(vec![false, false]),
            ColumnData::Double(vec![1.0, 2.0]),
        ];
        // u.x = u.x + 1; if (u.x > 1.5) { u.active = true; }
        let prog = VertexProgram {
            stmts: vec![
                VStmt::Assign {
                    attr: 1,
                    value: Expr::bin(
                        BinOp::Add,
                        Expr::Attr { pos: 0, attr: 1 },
                        Expr::lit_double(1.0),
                    ),
                },
                VStmt::If {
                    cond: Expr::bin(
                        BinOp::Gt,
                        Expr::Attr { pos: 0, attr: 1 },
                        Expr::lit_double(1.5),
                    ),
                    then_body: vec![VStmt::Assign {
                        attr: 0,
                        value: Expr::lit_bool(true),
                    }],
                    else_body: vec![],
                },
            ],
        };
        let ctx = VertexCtx::new(0, 0, &attrs, None, &[], &g);
        execute(&prog, &ctx, &mut |_, _| {});
        let writes = ctx.into_writes();
        // The If saw the *assigned* x (2.0 > 1.5), so active was set.
        assert_eq!(
            writes,
            vec![(0, Value::Bool(true)), (1, Value::Double(2.0))]
        );
    }

    #[test]
    fn global_accumulation_reported() {
        let g = tiny_graph();
        let attrs = vec![ColumnData::Bool(vec![true])];
        let prog = VertexProgram {
            stmts: vec![VStmt::AccumGlobal {
                global: 0,
                op: itg_gsa::AccmOp::Sum,
                prim: PrimType::Long,
                value: Expr::lit_long(5),
            }],
        };
        let ctx = VertexCtx::new(0, 0, &attrs, None, &[], &g);
        let mut got = Vec::new();
        execute(&prog, &ctx, &mut |g, v| got.push((g, v.clone())));
        assert_eq!(got, vec![(0, Value::Long(5))]);
    }

    #[test]
    fn degree_and_num_vertices_available() {
        let g = tiny_graph();
        let attrs = vec![ColumnData::Long(vec![0, 0])];
        // u.x = u.degree + V
        let prog = VertexProgram {
            stmts: vec![VStmt::Assign {
                attr: 0,
                value: Expr::bin(
                    BinOp::Add,
                    Expr::Degree {
                        pos: 0,
                        dir: EdgeDir::Both,
                    },
                    Expr::NumVertices,
                ),
            }],
        };
        let ctx = VertexCtx::new(1, 1, &attrs, None, &[], &g);
        execute(&prog, &ctx, &mut |_, _| {});
        assert_eq!(ctx.into_writes(), vec![(0, Value::Long(3))]);
    }
}
