//! The coordinator side of the process transport: spawns and bootstraps
//! the `itg-partition-worker` fleet, then drives runs purely through the
//! control protocol — barrier release, global reduction, recompute-set
//! union, and convergence voting. The coordinator executes no supersteps
//! itself; its partition state is populated from the workers' end-of-run
//! [`Payload::AttrImage`] frames so the read API ([`Session::attr_value`],
//! [`Session::global_value`], …) behaves identically to the local plane.

use crate::accum::Contribution;
use crate::config::EngineConfig;
use crate::graph::GraphInput;
use crate::metrics::{RunKind, RunMetrics};
use crate::session::{EngineError, Plane, Session};
use crate::transport::{ProcessTransport, TransportError};
use crate::wire::{Payload, RunDoneStats, WireConfig};
use itg_compiler::CompiledProgram;
use itg_gsa::value::Value;
use itg_gsa::VertexId;
use itg_store::IoSnapshot;
use std::time::Instant;

/// Everything the workers report at the end of one run, folded into the
/// coordinator's session state and [`RunMetrics`].
struct RunResults {
    stats: Vec<RunDoneStats>,
}

impl Session {
    /// Spawn the worker fleet, ship each rank its bootstrap frame (program
    /// source, graph image, config), and await the `Hello` round.
    pub(crate) fn build_coordinator(
        program: CompiledProgram,
        input: &GraphInput,
        cfg: EngineConfig,
        workers: usize,
    ) -> Result<Session, EngineError> {
        if program.source.is_empty() {
            return Err(EngineError::Unsupported(
                "process transport requires a program compiled from source \
                 (Session::from_source or compile_source), so workers can \
                 recompile it deterministically"
                    .into(),
            ));
        }
        let mut t = ProcessTransport::spawn(cfg.machines, workers, &cfg.obs)?;
        let wire_cfg = WireConfig {
            machines: cfg.machines as u64,
            window_capacity: cfg.window_capacity as u64,
            buffer_pool_bytes: cfg.buffer_pool_bytes,
            page_size: cfg.page_size,
            max_supersteps: cfg.max_supersteps as u64,
            maintenance: cfg.maintenance,
            opts: [
                cfg.opts.traversal_reorder,
                cfg.opts.neighbor_prune,
                cfg.opts.seek_window_share,
                cfg.opts.min_count,
                cfg.opts.specialize,
            ],
            parallel: cfg.parallel,
            threads_per_machine: cfg.threads_per_machine as u64,
            cache_bytes: cfg.cache_bytes,
        };
        let workers = t.workers();
        for rank in 0..workers {
            t.send_ctrl(
                rank,
                &Payload::Bootstrap {
                    rank: rank as u32,
                    workers: workers as u32,
                    source: program.source.clone(),
                    num_vertices: input.num_vertices as u64,
                    undirected: input.undirected,
                    edges: input.edges.clone(),
                    cfg: wire_cfg.clone(),
                },
            )?;
        }
        let mut hellos = vec![false; workers];
        for _ in 0..workers {
            match t.recv_coord()? {
                (_, Payload::Hello { rank }) => {
                    let rank = rank as usize;
                    if rank >= workers || hellos[rank] {
                        return Err(protocol(format!("duplicate hello from rank {rank}")));
                    }
                    hellos[rank] = true;
                }
                (rank, other) => {
                    return Err(protocol(format!(
                        "expected Hello from rank {rank}, got {}",
                        other.kind()
                    )));
                }
            }
        }
        Session::assemble(program, input, cfg, Plane::Coordinator(t), 0..0)
    }

    /// Drive a distributed one-shot run. The worker-side mirror of this
    /// protocol is `Session::run_oneshot` under [`Plane::Worker`].
    pub(crate) fn coordinate_oneshot(&mut self) -> Result<RunMetrics, EngineError> {
        let t0 = Instant::now();
        let prof0 = self.obs.enabled.then(|| self.cfg.obs.profile());
        let mut metrics = RunMetrics::new(RunKind::OneShot);
        self.coord().broadcast(&Payload::RunOneshot)?;

        let mut snapshot_globals: Vec<Vec<Value>> = Vec::new();
        let mut s = 0usize;
        loop {
            // Convergence vote: every worker reports its frontier before
            // deciding whether to run superstep s.
            let total = self.frontier_round(s)?;
            if total == 0 || s >= self.cfg.max_supersteps {
                break;
            }
            // The superstep's exchange barrier; by release time every
            // worker's global partials are queued here.
            self.barrier_seq += 1;
            let seq = self.barrier_seq;
            self.coord().barrier_round(seq)?;
            let gc = self.reduce_partials()?;
            let values = self.finalize_globals(&gc);
            self.coord().broadcast(&Payload::GlobalsFinal {
                values: values.clone(),
                changed: false,
            })?;
            snapshot_globals.push(values);
            s += 1;
        }

        let results = self.collect_run_results(s)?;
        self.fold_run_results(&results, &mut metrics);
        self.globals_history.push(snapshot_globals);
        self.superstep_counts.push(s);
        self.ran_oneshot = true;
        metrics.supersteps = s;
        metrics.wall = t0.elapsed();
        metrics.profile = prof0.map(|p0| self.cfg.obs.profile().since(&p0));
        Ok(metrics)
    }

    /// Drive a distributed incremental run (the fallibility checks ran in
    /// `try_run_incremental` before dispatching here). The worker-side
    /// mirror is `Session::try_run_incremental` under [`Plane::Worker`].
    pub(crate) fn coordinate_incremental(&mut self) -> Result<RunMetrics, EngineError> {
        let t0 = Instant::now();
        let prof0 = self.obs.enabled.then(|| self.cfg.obs.profile());
        let mut metrics = RunMetrics::new(RunKind::Incremental);
        let t = self.snapshot();
        let prev_k = self.superstep_counts[t - 1];
        self.coord().broadcast(&Payload::RunIncremental)?;

        let mut snapshot_globals: Vec<Vec<Value>> = Vec::new();
        let mut s = 0usize;
        loop {
            // ΔTraverse exchange barrier.
            self.barrier_seq += 1;
            let seq = self.barrier_seq;
            self.coord().barrier_round(seq)?;
            let gc = self.reduce_partials()?;

            // Recompute-set union round.
            let union = self.union_recompute_sets()?;
            let n_recompute: usize = union.iter().map(|u| u.len()).sum();
            self.coord().broadcast(&Payload::RecomputeUnion { sets: union })?;
            if n_recompute > 0 {
                // The recompute pass runs its own exchange; its global
                // partials are a side effect workers discard too.
                self.barrier_seq += 1;
                let seq = self.barrier_seq;
                self.coord().barrier_round(seq)?;
                let _ = self.reduce_partials()?;
            }

            // Globals: group deltas fold onto the previous snapshot's
            // value; monoid/retraction damage forces a recompute round.
            let prev_globals: Vec<Value> = self
                .globals_history
                .get(t - 1)
                .and_then(|gh| gh.get(s))
                .cloned()
                .unwrap_or_else(|| self.identity_globals());
            let mut globals_s = prev_globals.clone();
            let mut needs_global_recompute = false;
            for (g, c) in gc.iter().enumerate() {
                let info = &self.global_infos()[g];
                if info.op.is_group() && c.retractions.is_empty() {
                    globals_s[g] = info.op.combine(&globals_s[g], &c.folded, info.prim);
                } else if c.count != 0 || !c.retractions.is_empty() || c.monoid.is_some() {
                    needs_global_recompute = true;
                }
            }
            self.coord().broadcast(&Payload::GlobalsDecision {
                recompute: needs_global_recompute,
            })?;
            if needs_global_recompute {
                self.barrier_seq += 1;
                let seq = self.barrier_seq;
                self.coord().barrier_round(seq)?;
                let fresh = self.reduce_partials()?;
                globals_s = self.finalize_globals(&fresh);
            }
            let changed = globals_s != prev_globals;
            self.coord().broadcast(&Payload::GlobalsFinal {
                values: globals_s.clone(),
                changed,
            })?;
            snapshot_globals.push(globals_s);
            s += 1;

            let total = self.frontier_round(s)?;
            if (s >= prev_k && total == 0) || s >= self.cfg.max_supersteps {
                break;
            }
        }

        let results = self.collect_run_results(s)?;
        self.fold_run_results(&results, &mut metrics);
        self.globals_history.push(snapshot_globals);
        self.superstep_counts.push(s);
        metrics.supersteps = s;
        metrics.wall = t0.elapsed();
        metrics.profile = prof0.map(|p0| self.cfg.obs.profile().since(&p0));
        Ok(metrics)
    }

    /// Collect every worker's [`Payload::Frontier`] for `superstep`,
    /// broadcast the reduced total, and return it.
    fn frontier_round(&mut self, superstep: usize) -> Result<usize, EngineError> {
        let workers = self.coord().workers();
        let mut total = 0u64;
        for _ in 0..workers {
            match self.coord().recv_coord()? {
                (_, Payload::Frontier { superstep: fs, active, .. }) => {
                    if fs != superstep as u64 {
                        return Err(protocol(format!(
                            "frontier for superstep {fs} while coordinating {superstep}"
                        )));
                    }
                    total += active;
                }
                (rank, other) => {
                    return Err(protocol(format!(
                        "expected Frontier from rank {rank}, got {}",
                        other.kind()
                    )));
                }
            }
        }
        self.coord().broadcast(&Payload::FrontierTotal {
            superstep: superstep as u64,
            active: total,
        })?;
        Ok(total as usize)
    }

    /// Pop the `machines` queued [`Payload::GlobalsPartial`] frames of the
    /// barrier round that just released and reduce them in machine order —
    /// the exact float-fold sequence the local plane executes.
    fn reduce_partials(&mut self) -> Result<Vec<Contribution>, EngineError> {
        let m = self.cfg.machines;
        let mut partials: Vec<(u32, Vec<Contribution>)> = Vec::with_capacity(m);
        for _ in 0..m {
            match self.coord().recv_coord()? {
                (_, Payload::GlobalsPartial { from, globals }) => partials.push((from, globals)),
                (rank, other) => {
                    return Err(protocol(format!(
                        "expected GlobalsPartial from rank {rank}, got {}",
                        other.kind()
                    )));
                }
            }
        }
        partials.sort_by_key(|&(from, _)| from);
        let mut out: Vec<Contribution> = self
            .global_infos()
            .iter()
            .map(|g| Contribution::identity(g.op, g.prim))
            .collect();
        for (_, gs) in partials {
            if gs.len() != out.len() {
                return Err(protocol("global partial arity mismatch".into()));
            }
            for (g, c) in gs.into_iter().enumerate() {
                let info = &self.global_infos()[g];
                out[g].merge(&c, info.op, info.prim);
            }
        }
        Ok(out)
    }

    /// Fold reduced global contributions into final per-global values.
    fn finalize_globals(&self, gc: &[Contribution]) -> Vec<Value> {
        let mut out = self.identity_globals();
        for (g, c) in gc.iter().enumerate() {
            let info = &self.global_infos()[g];
            out[g] = info.op.combine(&out[g], &c.folded, info.prim);
            if let Some(m) = &c.monoid {
                out[g] = info.op.combine(&out[g], &m.value, info.prim);
            }
        }
        out
    }

    /// Collect every worker's [`Payload::RecomputeSets`] and union them
    /// rank-ordered into sorted, deduplicated per-accumulator lists (the
    /// canonical wire form broadcast back as [`Payload::RecomputeUnion`]).
    fn union_recompute_sets(&mut self) -> Result<Vec<Vec<VertexId>>, EngineError> {
        let workers = self.coord().workers();
        let n_accms = self.layout.num_accms();
        let mut union: Vec<Vec<VertexId>> = vec![Vec::new(); n_accms];
        for _ in 0..workers {
            match self.coord().recv_coord()? {
                (_, Payload::RecomputeSets { sets, .. }) => {
                    if sets.len() != n_accms {
                        return Err(protocol("recompute set arity mismatch".into()));
                    }
                    for (a, set) in sets.into_iter().enumerate() {
                        union[a].extend(set);
                    }
                }
                (rank, other) => {
                    return Err(protocol(format!(
                        "expected RecomputeSets from rank {rank}, got {}",
                        other.kind()
                    )));
                }
            }
        }
        for set in &mut union {
            set.sort_unstable();
            set.dedup();
        }
        Ok(union)
    }

    /// Collect the end-of-run report: one [`Payload::RunDone`] per worker
    /// and one [`Payload::AttrImage`] per machine, in any interleaving.
    /// Attribute images land in the coordinator's partition state so the
    /// read API serves final values.
    fn collect_run_results(&mut self, supersteps: usize) -> Result<RunResults, EngineError> {
        let workers = self.coord().workers();
        let m = self.cfg.machines;
        let mut stats: Vec<Option<RunDoneStats>> = vec![None; workers];
        let mut images = 0usize;
        let mut seen_image = vec![false; m];
        while stats.iter().any(|s| s.is_none()) || images < m {
            match self.coord().recv_coord()? {
                (rank, Payload::RunDone { stats: st, .. }) => {
                    if st.supersteps != supersteps as u64 {
                        return Err(protocol(format!(
                            "rank {rank} ran {} supersteps, coordinator counted {supersteps}",
                            st.supersteps
                        )));
                    }
                    if stats[rank].replace(st).is_some() {
                        return Err(protocol(format!("duplicate RunDone from rank {rank}")));
                    }
                }
                (_, Payload::AttrImage { machine, cols }) => {
                    let machine = machine as usize;
                    if machine >= m || seen_image[machine] {
                        return Err(protocol(format!(
                            "duplicate or out-of-range attribute image for machine {machine}"
                        )));
                    }
                    seen_image[machine] = true;
                    images += 1;
                    self.parts[machine].cur_attrs = cols;
                }
                (rank, other) => {
                    return Err(protocol(format!(
                        "expected RunDone/AttrImage from rank {rank}, got {}",
                        other.kind()
                    )));
                }
            }
        }
        Ok(RunResults {
            stats: stats.into_iter().map(|s| s.expect("all collected")).collect(),
        })
    }

    /// Fold the workers' scalar results into the coordinator's metrics:
    /// additive counters sum (each enumeration phase ran on exactly one
    /// worker); the recompute count is the cluster-wide union every worker
    /// already agrees on, so rank 0's value is taken, not summed.
    fn fold_run_results(&self, results: &RunResults, metrics: &mut RunMetrics) {
        let mut io = IoSnapshot::default();
        for st in &results.stats {
            io.disk_read_bytes += st.io.disk_read_bytes;
            io.disk_write_bytes += st.io.disk_write_bytes;
            io.page_reads += st.io.page_reads;
            io.page_hits += st.io.page_hits;
            io.net_bytes += st.io.net_bytes;
            io.walks_enumerated += st.io.walks_enumerated;
            io.recomputations += st.io.recomputations;
            metrics.work_units += st.work_units;
            metrics.parallel.phases += st.phases;
            metrics.parallel.chunks += st.chunks;
            metrics.parallel.max_worker_units += st.max_worker_units;
            metrics.parallel.min_worker_units += st.min_worker_units;
        }
        metrics.recomputed_vertices = results.stats.first().map(|st| st.recomputed).unwrap_or(0);
        metrics.io = io;
    }
}

fn protocol(msg: String) -> EngineError {
    EngineError::Transport(TransportError::Protocol(msg))
}
