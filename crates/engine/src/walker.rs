//! The walk enumerator: the executable composition of Window-Seek and
//! Window-Join over the dynamic graph store.
//!
//! One enumerator run performs a DFS from a single start vertex through a
//! walk query's hops, drawing each hop's edges from the stream version its
//! binding dictates (Old / New view, or the latest delta), applying hop
//! constraints, honoring the neighbor-pruning allowed sets, and firing the
//! query's actions for every complete walk with the walk's multiplicity
//! (the product of its tuples' multiplicities, §5.3).
//!
//! The multi-way-intersection optimization (`closes_to`): when the final
//! hop pins the closing vertex to an earlier walk position, the enumerator
//! tests edge membership instead of scanning the final adjacency list.

use crate::graph::ClusterGraph;
use itg_compiler::WalkQuery;
use itg_gsa::expr::{eval, EdgeDir, EvalContext, Expr};
use itg_gsa::value::{ColumnData, Value};
use itg_gsa::{FxHashSet, VertexId};
use itg_store::View;

/// Sink fired once per (action, complete walk):
/// `(action_idx, walk, multiplicity, ctx)`.
///
/// The enumerator is generic over the sink so the per-accumulator
/// specialized accumulate lanes (DESIGN.md §10.1) inline into the DFS
/// instead of dispatching through a `dyn FnMut` at every complete walk.
pub trait WalkSink: FnMut(usize, &[VertexId], i64, &WalkCtx<'_>) {}
impl<F: FnMut(usize, &[VertexId], i64, &WalkCtx<'_>)> WalkSink for F {}

/// How one hop's edge stream is bound (Rule ⑦).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopBinding {
    /// The previous snapshot's edges (`es`).
    View(View),
    /// The latest delta stream (`Δes`, edges carry ±1).
    Delta,
}

/// Resolved span timers for the phases of walk enumeration, keyed by the
/// plan operator executing them: Window-Seek (adjacency streaming through
/// the buffer pool), Window-Join (constraint checks / membership probes
/// extending partial walks), and action firing on complete walks.
///
/// Handles resolved from a disabled recorder are free; enabled handles add
/// two relaxed atomic adds per recorded interval, with the clock read
/// amortized per seek batch / join batch rather than per edge.
#[derive(Clone, Debug, Default)]
pub struct WalkSpans {
    pub seek: itg_obs::SpanHandle,
    pub join: itg_obs::SpanHandle,
    pub action: itg_obs::SpanHandle,
}

impl WalkSpans {
    /// Resolve the three phase spans for plan operator `op`.
    pub fn resolve(rec: &itg_obs::Recorder, op: itg_obs::OpId) -> WalkSpans {
        WalkSpans {
            seek: rec.span_op("run/traverse/seek", op),
            join: rec.span_op("run/traverse/join", op),
            action: rec.span_op("run/traverse/action", op),
        }
    }

    #[inline]
    fn enabled(&self) -> bool {
        self.seek.is_enabled()
    }
}

/// Evaluation context over a (partial) walk. Vertex attributes are
/// readable at position 0 only — the compiler enforces this for
/// incremental plans and the six evaluation algorithms satisfy it
/// throughout; deeper reads panic with a clear message.
pub struct WalkCtx<'a> {
    pub walk: &'a [VertexId],
    /// Position-0 attribute columns (old or new image per the sub-query).
    pub attrs: &'a [ColumnData],
    /// Position 0's local index within its partition.
    pub local: usize,
    /// View degrees are served from for position 0.
    pub deg_view: View,
    pub graph: &'a ClusterGraph,
}

impl EvalContext for WalkCtx<'_> {
    fn walk_vertex(&self, pos: usize) -> VertexId {
        self.walk[pos]
    }

    fn vertex_attr(&self, pos: usize, attr: usize) -> Value {
        assert_eq!(
            pos, 0,
            "attribute reads are only supported at the walk's start vertex"
        );
        self.attrs[attr].get(self.local)
    }

    fn global(&self, _idx: usize) -> Value {
        panic!("global variables are not readable during Traverse")
    }

    fn num_vertices(&self) -> u64 {
        self.graph.num_vertices() as u64
    }

    fn vertex_degree(&self, pos: usize, dir: EdgeDir) -> i64 {
        let view = if pos == 0 { self.deg_view } else { View::New };
        self.graph.degree(self.walk[pos], dir, view) as i64
    }
}

/// Reusable per-thread enumeration buffers: the walk stack plus one
/// destination list per hop depth. Pulled out of the DFS so enumerating
/// from a start vertex costs zero allocations once the thread's pool is
/// warm — the per-start `Vec` churn otherwise dominates short Δ-walks.
#[derive(Default)]
struct WalkScratch {
    walk: Vec<VertexId>,
    levels: Vec<Vec<(VertexId, i64)>>,
}

thread_local! {
    static SCRATCH: std::cell::Cell<WalkScratch> = std::cell::Cell::new(WalkScratch::default());
}

/// One enumeration task: a start vertex with its image context.
pub struct Walker<'a> {
    pub graph: &'a ClusterGraph,
    pub worker: usize,
    pub query: &'a WalkQuery,
    /// Per-hop stream bindings (length = hops).
    pub bindings: &'a [HopBinding],
    /// Per-hop allowed sets from neighbor pruning (`None` = unrestricted).
    pub allowed: &'a [Option<&'a FxHashSet<VertexId>>],
    /// Position-0 attribute image and its partition-local index.
    pub attrs: &'a [ColumnData],
    pub local: usize,
    pub deg_view: View,
    /// Whether to use the membership-check closing optimization.
    pub use_intersection: bool,
    /// Span timers for the seek/join/action phases, keyed by the plan
    /// operator driving this enumeration; `None` (and handles from a
    /// disabled recorder) cost one branch per batch.
    pub obs: Option<&'a WalkSpans>,
}

impl Walker<'_> {
    /// Enumerate all walks from `start` (multiplicity `start_mult`),
    /// calling `sink(action_idx, walk, mult, ctx)` once per action per
    /// complete walk.
    pub fn enumerate<F: WalkSink>(&self, start: VertexId, start_mult: i64, sink: &mut F) {
        debug_assert_eq!(self.bindings.len(), self.query.hops.len());
        // Taking (rather than borrowing) the thread's scratch keeps a
        // re-entrant enumeration safe: an inner call just starts cold.
        let mut scratch = SCRATCH.with(|c| c.take());
        let hops = self.query.hops.len();
        if scratch.levels.len() < hops {
            scratch.levels.resize_with(hops, Vec::new);
        }
        scratch.walk.clear();
        scratch.walk.push(start);
        {
            let WalkScratch { walk, levels } = &mut scratch;
            self.recurse(walk, start_mult, 0, levels, sink);
        }
        SCRATCH.with(|c| c.set(scratch));
    }

    fn ctx<'w>(&self, walk: &'w [VertexId]) -> WalkCtx<'w>
    where
        Self: 'w,
    {
        WalkCtx {
            walk,
            attrs: self.attrs,
            local: self.local,
            deg_view: self.deg_view,
            graph: self.graph,
        }
    }

    fn check(&self, constraint: &Option<Expr>, walk: &[VertexId]) -> bool {
        match constraint {
            None => true,
            Some(c) => {
                let ctx = self.ctx(walk);
                eval(c, &ctx)
                    .map(|v| v.as_bool().unwrap_or(false))
                    .unwrap_or(false)
            }
        }
    }

    fn recurse<F: WalkSink>(
        &self,
        walk: &mut Vec<VertexId>,
        mult: i64,
        hop: usize,
        levels: &mut [Vec<(VertexId, i64)>],
        sink: &mut F,
    ) {
        let hops = &self.query.hops;
        if hop == hops.len() {
            let _action_guard = self.obs.map(|o| o.action.start());
            let ctx = self.ctx(walk);
            for (ai, action) in self.query.actions.iter().enumerate() {
                let fire = match &action.cond {
                    None => true,
                    Some(c) => eval(c, &ctx)
                        .map(|v| v.as_bool().unwrap_or(false))
                        .unwrap_or(false),
                };
                if fire {
                    sink(ai, walk, mult, &ctx);
                }
            }
            return;
        }
        let spec = &hops[hop];
        let src = walk[spec.source];
        let is_last = hop + 1 == hops.len();

        // Multi-way intersection: close the walk by membership test — a
        // W-Join probe without any seek.
        if is_last && self.use_intersection {
            if let Some(close_pos) = self.query.closes_to {
                let candidate = walk[close_pos];
                walk.push(candidate);
                let join_guard = self.obs.map(|o| o.join.start());
                let em = if self.check(&spec.constraint, walk) {
                    // One membership probe of work.
                    self.graph.partitions[self.worker].stats.add_walks(1);
                    match self.bindings[hop] {
                        HopBinding::View(view) => {
                            self.graph
                                .edge_mult(self.worker, src, candidate, spec.dir, view)
                        }
                        HopBinding::Delta => {
                            self.graph
                                .delta_edge_mult(self.worker, src, candidate, spec.dir)
                        }
                    }
                } else {
                    0
                };
                drop(join_guard);
                if em != 0 {
                    self.recurse(walk, mult * em, hop + 1, levels, sink);
                }
                walk.pop();
                return;
            }
        }

        let (dsts, rest) = levels.split_first_mut().expect("scratch sized to hop count");
        dsts.clear();
        let allowed = self.allowed.get(hop).copied().flatten();
        let seek_guard = self.obs.map(|o| o.seek.start());
        match self.bindings[hop] {
            HopBinding::View(view) => {
                // W-Seek through the buffer pool; the window capacity is
                // enforced by the caller's start-vertex chunking, and each
                // adjacency list is streamed without materialization.
                self.graph
                    .for_each_neighbor(self.worker, src, spec.dir, view, |d| {
                        if allowed.is_none_or(|a| a.contains(&d)) {
                            dsts.push((d, 1));
                        }
                    });
            }
            HopBinding::Delta => {
                self.graph
                    .for_each_delta_neighbor(self.worker, src, spec.dir, |d, m| {
                        if allowed.is_none_or(|a| a.contains(&d)) {
                            dsts.push((d, m));
                        }
                    });
            }
        }
        drop(seek_guard);
        self.extend_all(walk, mult, hop, dsts, rest, sink);
    }

    fn extend_all<F: WalkSink>(
        &self,
        walk: &mut Vec<VertexId>,
        mult: i64,
        hop: usize,
        dsts: &[(VertexId, i64)],
        levels: &mut [Vec<(VertexId, i64)>],
        sink: &mut F,
    ) {
        let constraint = &self.query.hops[hop].constraint;
        // Work accounting: every attempted extension is one enumeration
        // step (this is what the Δ-walk optimizations reduce — completed
        // walks are invariant by correctness).
        self.graph.partitions[self.worker]
            .stats
            .add_walks(dsts.len() as u64);
        // W-Join: time the constraint checks alone, aggregated per batch so
        // the recursion below is not double-counted into this span.
        let timed = self.obs.filter(|o| o.enabled());
        let mut join_ns = 0u64;
        for &(d, em) in dsts {
            walk.push(d);
            let t0 = timed.map(|_| std::time::Instant::now());
            let ok = self.check(constraint, walk);
            if let Some(t0) = t0 {
                join_ns += t0.elapsed().as_nanos() as u64;
            }
            if ok {
                self.recurse(walk, mult * em, hop + 1, levels, sink);
            }
            walk.pop();
        }
        if let Some(o) = timed {
            if !dsts.is_empty() {
                o.join.record(dsts.len() as u64, join_ns);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphInput;
    use itg_compiler::{ActionTarget, HopSpec, WalkAction};
    use itg_gsa::expr::BinOp;
    use itg_gsa::value::PrimType;
    use itg_gsa::AccmOp;
    use itg_store::{EdgeMutation, MutationBatch};

    /// The paper's G_0 (Figure 6): one triangle <0,1,5>.
    fn paper_graph(machines: usize) -> ClusterGraph {
        ClusterGraph::load(
            &GraphInput::undirected(vec![
                (0, 1),
                (0, 5),
                (1, 5),
                (2, 3),
                (2, 5),
                (3, 4),
                (4, 5),
                (6, 7),
            ]),
            machines,
            1 << 20,
            4096,
        )
    }

    fn tc_query() -> WalkQuery {
        let lt = |a, b| Expr::bin(BinOp::Lt, Expr::WalkVertex(a), Expr::WalkVertex(b));
        WalkQuery {
            op_id: 0,
            start_filter: None,
            hops: vec![
                HopSpec {
                    source: 0,
                    dir: EdgeDir::Both,
                    constraint: Some(lt(0, 1)),
                },
                HopSpec {
                    source: 1,
                    dir: EdgeDir::Both,
                    constraint: Some(lt(1, 2)),
                },
                HopSpec {
                    source: 2,
                    dir: EdgeDir::Both,
                    constraint: Some(Expr::bin(
                        BinOp::Eq,
                        Expr::WalkVertex(3),
                        Expr::WalkVertex(0),
                    )),
                },
            ],
            actions: vec![WalkAction {
                depth: 3,
                cond: None,
                target: ActionTarget::Global(0),
                op: AccmOp::Sum,
                prim: PrimType::Long,
                value: Expr::lit_long(1),
            }],
            closes_to: Some(0),
        }
    }

    fn run_tc(g: &ClusterGraph, bindings: &[HopBinding], use_intersection: bool) -> i64 {
        let q = tc_query();
        let empty_attrs: Vec<ColumnData> = Vec::new();
        let mut total = 0i64;
        for start in 0..g.num_vertices() as u64 {
            let w = Walker {
                graph: g,
                worker: g.owner(start),
                query: &q,
                bindings,
                allowed: &[None, None, None],
                attrs: &empty_attrs,
                local: g.local_index(start),
                deg_view: View::New,
                use_intersection,
                obs: None,
            };
            w.enumerate(start, 1, &mut |_ai, _walk, mult, _ctx| {
                total += mult;
            });
        }
        total
    }

    #[test]
    fn one_shot_triangles_with_and_without_intersection() {
        let g = paper_graph(3);
        let bindings = [HopBinding::View(View::New); 3];
        assert_eq!(run_tc(&g, &bindings, false), 1);
        assert_eq!(run_tc(&g, &bindings, true), 1);
    }

    #[test]
    fn delta_walks_find_new_triangles_with_signs() {
        let mut g = paper_graph(2);
        // ΔG_1: insert (3,5) — the paper's Figure 10: two new triangles
        // <2,3,5> (wait: 2-3, 3-5, 2-5 — yes) and <3,4,5>.
        g.apply_batch(&MutationBatch::new(vec![EdgeMutation::insert(3, 5)]));
        // Sub-query with delta at hop 0: ω(Δes, es, es) — old views after.
        let d1 = [
            HopBinding::Delta,
            HopBinding::View(View::Old),
            HopBinding::View(View::Old),
        ];
        let d2 = [
            HopBinding::View(View::New),
            HopBinding::Delta,
            HopBinding::View(View::Old),
        ];
        let d3 = [
            HopBinding::View(View::New),
            HopBinding::View(View::New),
            HopBinding::Delta,
        ];
        let total: i64 = run_tc(&g, &d1, true) + run_tc(&g, &d2, true) + run_tc(&g, &d3, true);
        assert_eq!(total, 2, "two new triangles");
        // And the full re-count agrees: 1 + 2 = 3.
        let all_new = [HopBinding::View(View::New); 3];
        assert_eq!(run_tc(&g, &all_new, true), 3);
    }

    #[test]
    fn deletion_produces_negative_delta_walks() {
        let mut g = paper_graph(2);
        g.apply_batch(&MutationBatch::new(vec![EdgeMutation::delete(0, 5)]));
        let d1 = [
            HopBinding::Delta,
            HopBinding::View(View::Old),
            HopBinding::View(View::Old),
        ];
        let d2 = [
            HopBinding::View(View::New),
            HopBinding::Delta,
            HopBinding::View(View::Old),
        ];
        let d3 = [
            HopBinding::View(View::New),
            HopBinding::View(View::New),
            HopBinding::Delta,
        ];
        let total: i64 = run_tc(&g, &d1, false) + run_tc(&g, &d2, false) + run_tc(&g, &d3, false);
        assert_eq!(total, -1, "the triangle <0,1,5> is retracted");
        let all_new = [HopBinding::View(View::New); 3];
        assert_eq!(run_tc(&g, &all_new, false), 0);
    }

    #[test]
    fn allowed_sets_prune_enumeration() {
        let g = paper_graph(1);
        let q = tc_query();
        let empty_attrs: Vec<ColumnData> = Vec::new();
        // Restrict hop 0 to {1}: only walks through vertex 1 at position 1.
        let mut only1 = FxHashSet::default();
        only1.insert(1u64);
        let allowed = [Some(&only1), None, None];
        let mut walks = 0;
        for start in 0..8u64 {
            let w = Walker {
                graph: &g,
                worker: 0,
                query: &q,
                bindings: &[HopBinding::View(View::New); 3],
                allowed: &allowed,
                attrs: &empty_attrs,
                local: g.local_index(start),
                deg_view: View::New,
                use_intersection: true,
                obs: None,
            };
            w.enumerate(start, 1, &mut |_, walk, _, _| {
                assert_eq!(walk[1], 1);
                walks += 1;
            });
        }
        assert_eq!(walks, 1);
    }

    #[test]
    fn walk_counter_increments() {
        let g = paper_graph(1);
        let before = g.partitions[0].stats.snapshot().walks_enumerated;
        run_tc(&g, &[HopBinding::View(View::New); 3], true);
        let after = g.partitions[0].stats.snapshot().walks_enumerated;
        assert!(after > before);
    }
}
