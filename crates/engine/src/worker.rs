//! The partition-worker process entry point (`itg-partition-worker`).
//!
//! A worker is an ordinary [`Session`] whose plane is a
//! [`PipeLink`] to the coordinator: it
//! bootstraps from the first stdin frame (program source, graph image,
//! config), rebuilds the identical session state every peer has, and then
//! executes the same BSP drivers as the local plane — restricted to its
//! owned machine range, with exchange, convergence votes, and global
//! reduction flowing over the pipe.

use crate::config::EngineConfig;
use crate::graph::GraphInput;
use crate::metrics::RunMetrics;
use crate::session::{Plane, Session};
use crate::transport::{partition_range, PipeLink, Transport, TransportError, COORD};
use crate::wire::{read_frame, Payload, RunDoneStats, DST_CTRL};

/// Run the worker protocol to completion: bootstrap, then serve run
/// commands until `Shutdown` (or clean EOF, which the coordinator's drop
/// path produces when it exits without one).
pub fn worker_main() -> Result<(), TransportError> {
    // The bootstrap frame is read before the link exists — the link's
    // per-call stdin locking makes this safe.
    let first = {
        let stdin = std::io::stdin();
        read_frame(&mut stdin.lock())?
    };
    let Some((dst, body)) = first else {
        return Err(TransportError::Protocol(
            "coordinator closed the pipe before bootstrap".into(),
        ));
    };
    if dst != DST_CTRL {
        return Err(TransportError::Protocol(format!(
            "bootstrap frame addressed to {dst}, expected the control channel"
        )));
    }
    let Payload::Bootstrap {
        rank,
        workers,
        source,
        num_vertices,
        undirected,
        edges,
        cfg: wire_cfg,
    } = crate::wire::decode_payload(&body)?
    else {
        return Err(TransportError::Protocol(
            "first control payload was not Bootstrap".into(),
        ));
    };

    let input = GraphInput {
        num_vertices: num_vertices as usize,
        edges,
        undirected,
    };
    let mut cfg = EngineConfig {
        machines: wire_cfg.machines as usize,
        window_capacity: wire_cfg.window_capacity as usize,
        buffer_pool_bytes: wire_cfg.buffer_pool_bytes,
        page_size: wire_cfg.page_size,
        max_supersteps: wire_cfg.max_supersteps as usize,
        maintenance: wire_cfg.maintenance,
        ..EngineConfig::default()
    };
    cfg.opts.traversal_reorder = wire_cfg.opts[0];
    cfg.opts.neighbor_prune = wire_cfg.opts[1];
    cfg.opts.seek_window_share = wire_cfg.opts[2];
    cfg.opts.min_count = wire_cfg.opts[3];
    cfg.opts.specialize = wire_cfg.opts[4];
    cfg.parallel = wire_cfg.parallel;
    cfg.threads_per_machine = wire_cfg.threads_per_machine as usize;
    cfg.cache_bytes = wire_cfg.cache_bytes;

    let program = itg_compiler::compile_source(&source)
        .map_err(|e| TransportError::Protocol(format!("bootstrap program rejected: {e}")))?;
    let owned = partition_range(cfg.machines, workers as usize, rank as usize);
    let link = PipeLink::new(rank, owned.clone(), &cfg.obs);
    let mut sess = Session::assemble(program, &input, cfg, Plane::Worker(link), owned)
        .map_err(|e| TransportError::Protocol(format!("bootstrap session rejected: {e}")))?;
    sess.worker_link().send(COORD, Payload::Hello { rank })?;

    loop {
        match sess.worker_link().recv_ctrl() {
            Ok(Payload::RunOneshot) => {
                let metrics = sess.run_oneshot();
                report_run(&mut sess, rank, &metrics)?;
            }
            Ok(Payload::RunIncremental) => {
                let metrics = sess
                    .try_run_incremental()
                    .expect("coordinator pre-validated the incremental run");
                report_run(&mut sess, rank, &metrics)?;
            }
            Ok(Payload::Mutations(batch)) => sess.apply_mutations(&batch),
            Ok(Payload::Compact) => sess.compact_edges(),
            Ok(Payload::Shutdown) => return Ok(()),
            Ok(other) => {
                return Err(TransportError::Protocol(format!(
                    "unexpected command payload: {}",
                    other.kind()
                )));
            }
            // A closed pipe without Shutdown: the coordinator is gone;
            // exit quietly rather than crash-looping on EOF.
            Err(TransportError::Protocol(msg)) if msg.contains("closed the pipe") => {
                return Ok(());
            }
            Err(e) => return Err(e),
        }
    }
}

/// Ship the end-of-run report: one attribute image per owned machine plus
/// this worker's scalar results.
fn report_run(sess: &mut Session, rank: u32, metrics: &RunMetrics) -> Result<(), TransportError> {
    for w in sess.owned.clone() {
        let cols = sess.parts[w].cur_attrs.clone();
        sess.worker_link().send(
            COORD,
            Payload::AttrImage {
                machine: w as u32,
                cols,
            },
        )?;
    }
    let stats = RunDoneStats {
        supersteps: metrics.supersteps as u64,
        work_units: metrics.work_units,
        recomputed: metrics.recomputed_vertices,
        phases: metrics.parallel.phases,
        chunks: metrics.parallel.chunks,
        max_worker_units: metrics.parallel.max_worker_units,
        min_worker_units: metrics.parallel.min_worker_units,
        io: metrics.io,
    };
    sess.worker_link()
        .send(COORD, Payload::RunDone { from: rank, stats })
}
