//! `itg-partition-worker`: one process of a `TransportKind::Process`
//! partition fleet. Spawned by the coordinator with a piped stdin/stdout;
//! never run by hand. All protocol logic lives in `itg_engine::worker`.

use std::process::ExitCode;

fn main() -> ExitCode {
    match itg_engine::worker::worker_main() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("itg-partition-worker: {e}");
            ExitCode::FAILURE
        }
    }
}
