//! The multi-tenant standing-query runtime (DESIGN.md §11).
//!
//! A [`QueryRegistry`] turns the single-query [`Session`]
//! into a server-side registry: queries are registered against a live
//! graph, every committed [`MutationBatch`] drives all registered Δ-plans,
//! and structurally identical queries are backed by **one shared session**
//! so their Δ-walks are enumerated once per batch and fanned out.
//!
//! Sharing is keyed on [`itg_compiler::program_hash`] — a name-insensitive
//! structural hash of the compiled plan — plus the registration epoch (the
//! number of batches committed so far): two queries share a backing
//! session iff they are execution-equivalent *and* started observing the
//! graph at the same point in the mutation history. Compilation and
//! session execution are fully deterministic, so the shared session's
//! dynamic state is byte-identical to what each member's isolated session
//! would compute (`crates/engine/tests/serve_equivalence.rs` pins this).
//!
//! Admission control is a [`ServeLimits`]: registrations beyond
//! `max_queries` and batches larger than `max_batch_edges` are rejected
//! up front; `batch_budget_ms` is advisory (a deadline-miss is counted,
//! never acted on, because time-based eviction would make results depend
//! on wall clock).

use crate::config::EngineConfig;
use crate::graph::GraphInput;
use crate::session::{EngineError, Session};
use itg_compiler::{compile_source, program_hash, walk_shape_hash, CompiledProgram};
use itg_gsa::{Value, VertexId};
use itg_store::MutationBatch;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Admission-control limits for a registry (all enforced at the registry
/// boundary, never inside a running superstep).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeLimits {
    /// Maximum concurrently registered queries; further registrations are
    /// rejected with [`RegistryError::AtCapacity`].
    pub max_queries: usize,
    /// Maximum mutations per committed batch; larger batches are rejected
    /// with [`RegistryError::BatchTooLarge`] before any state changes.
    pub max_batch_edges: usize,
    /// Advisory per-batch wall-clock budget in milliseconds. A commit
    /// that exceeds it still completes (aborting mid-batch would leave
    /// queries at different epochs) but bumps the `serve/deadline_miss`
    /// counter and flags the [`CommitStats`].
    pub batch_budget_ms: Option<u64>,
}

impl Default for ServeLimits {
    fn default() -> ServeLimits {
        ServeLimits {
            max_queries: 1024,
            max_batch_edges: 1 << 20,
            batch_budget_ms: None,
        }
    }
}

impl ServeLimits {
    /// Limits seeded from the process environment (`ITG_MAX_QUERIES`,
    /// `ITG_MAX_BATCH_EDGES`, `ITG_BATCH_BUDGET_MS`), with the same
    /// precedence story as [`EngineConfig::from_env`]: an explicit field
    /// write after this constructor overrides the environment, which
    /// overrides the default.
    pub fn from_env() -> ServeLimits {
        ServeLimits::from_env_lookup(|k| std::env::var(k).ok())
    }

    /// [`ServeLimits::from_env`] with an injectable lookup (deterministic
    /// under concurrent test execution).
    pub fn from_env_lookup(get: impl Fn(&str) -> Option<String>) -> ServeLimits {
        let mut limits = ServeLimits::default();
        let parse = |v: Option<String>| v.and_then(|s| s.trim().parse::<u64>().ok());
        if let Some(n) = parse(get("ITG_MAX_QUERIES")).filter(|&n| n >= 1) {
            limits.max_queries = n as usize;
        }
        if let Some(n) = parse(get("ITG_MAX_BATCH_EDGES")).filter(|&n| n >= 1) {
            limits.max_batch_edges = n as usize;
        }
        if let Some(ms) = parse(get("ITG_BATCH_BUDGET_MS")) {
            limits.batch_budget_ms = Some(ms);
        }
        limits
    }
}

/// Handle for one registered query. Ids are never reused within a
/// registry's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(u64);

impl fmt::Display for QueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Registry-boundary errors.
#[derive(Debug)]
pub enum RegistryError {
    /// `max_queries` registered queries already present.
    AtCapacity { max: usize },
    /// The batch exceeds `max_batch_edges`.
    BatchTooLarge { len: usize, max: usize },
    /// The program failed to compile, or the engine rejected the session.
    Engine(EngineError),
    /// No registered query with this id.
    UnknownQuery(QueryId),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::AtCapacity { max } => {
                write!(f, "registry at capacity ({max} queries)")
            }
            RegistryError::BatchTooLarge { len, max } => {
                write!(f, "batch of {len} mutations exceeds the {max} limit")
            }
            RegistryError::Engine(e) => write!(f, "{e}"),
            RegistryError::UnknownQuery(id) => write!(f, "unknown query {id}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<EngineError> for RegistryError {
    fn from(e: EngineError) -> RegistryError {
        RegistryError::Engine(e)
    }
}

/// What one [`QueryRegistry::commit`] did.
#[derive(Debug, Clone)]
pub struct CommitStats {
    /// Batch sequence number (1-based; equals the epoch after the commit).
    pub epoch: u64,
    /// Share groups whose Δ-plan ran (= number of plan executions).
    pub groups_run: usize,
    /// Registered queries served by those runs.
    pub queries_served: usize,
    /// Fan-out beyond the first member per group: `queries_served −
    /// groups_run`. This is what the `share/hit` counter accumulates.
    pub share_hits: u64,
    /// Wall-clock of the whole commit, milliseconds.
    pub elapsed_ms: u64,
    /// Whether `batch_budget_ms` was exceeded (advisory; see
    /// [`ServeLimits::batch_budget_ms`]).
    pub over_budget: bool,
}

/// One shared backing session and the queries subscribed to it.
struct ShareGroup {
    /// Structural program hash all members share.
    hash: u64,
    /// Batches committed before this group's session was built. Members
    /// registered at different epochs have observed different mutation
    /// histories and must not share state.
    epoch: u64,
    session: Session,
    members: Vec<QueryId>,
}

struct Member {
    /// Index into `groups`; stable because groups are only pushed, and a
    /// drained group keeps its slot as a tombstone.
    group: usize,
    /// The member's own compiled program, kept for name resolution: the
    /// shared session addresses state by index, but this member may use
    /// different declared names than the group leader.
    program: CompiledProgram,
    name: String,
}

/// The multi-tenant standing-query registry. See the module docs for the
/// sharing model and DESIGN.md §11 for the worked example.
pub struct QueryRegistry {
    cfg: EngineConfig,
    limits: ServeLimits,
    undirected: bool,
    /// Current edge multiset (canonical orientation when undirected),
    /// maintained from consolidated committed batches so late
    /// registrations can rebuild the current graph deterministically.
    edges: BTreeMap<(VertexId, VertexId), u64>,
    num_vertices: usize,
    groups: Vec<ShareGroup>,
    members: BTreeMap<QueryId, Member>,
    next_id: u64,
    /// Batches committed so far.
    epoch: u64,
    /// Distinct walk-shape hashes ever registered (monotonic, matching
    /// the `share/unique_subplans` counter).
    walk_shapes: BTreeSet<u64>,
    share_hits_total: u64,
    obs: RegistryObs,
}

/// Counter handles for the `serve/*` and `share/*` families (no-ops when
/// the recorder is disabled; see DESIGN.md §11.5 for the glossary).
struct RegistryObs {
    register: itg_obs::CounterHandle,
    unregister: itg_obs::CounterHandle,
    commit: itg_obs::CounterHandle,
    reject: itg_obs::CounterHandle,
    deadline_miss: itg_obs::CounterHandle,
    share_hit: itg_obs::CounterHandle,
    unique_subplans: itg_obs::CounterHandle,
}

impl RegistryObs {
    fn new(rec: &itg_obs::Recorder) -> RegistryObs {
        RegistryObs {
            register: rec.counter("serve/register"),
            unregister: rec.counter("serve/unregister"),
            commit: rec.counter("serve/commit"),
            reject: rec.counter("serve/reject"),
            deadline_miss: rec.counter("serve/deadline_miss"),
            share_hit: rec.counter("share/hit"),
            unique_subplans: rec.counter("share/unique_subplans"),
        }
    }
}

impl QueryRegistry {
    /// A registry over an initial graph. `cfg` is the template every
    /// backing session is built from (machines, superstep cap, observer —
    /// identical for all queries so shared execution is well-defined);
    /// `input.undirected` decides how mutations are mirrored, exactly as
    /// it would for an isolated session.
    pub fn new(input: &GraphInput, cfg: EngineConfig, limits: ServeLimits) -> QueryRegistry {
        let mut edges = BTreeMap::new();
        for &(s, d) in &input.edges {
            let key = canonical(s, d, input.undirected);
            *edges.entry(key).or_insert(0) += 1;
        }
        let obs = RegistryObs::new(&cfg.obs);
        QueryRegistry {
            undirected: input.undirected,
            edges,
            num_vertices: input.num_vertices,
            groups: Vec::new(),
            members: BTreeMap::new(),
            next_id: 0,
            epoch: 0,
            walk_shapes: BTreeSet::new(),
            share_hits_total: 0,
            limits,
            obs,
            cfg,
        }
    }

    /// The current graph as a deterministic [`GraphInput`]: the edge
    /// multiset after every committed batch, in canonical sorted order.
    /// A fresh session built from this input is the isolated-semantics
    /// baseline for a query registered *now* — late registrations observe
    /// the current graph as their snapshot 0, exactly as an isolated
    /// session constructed at this moment would.
    pub fn current_input(&self) -> GraphInput {
        let mut list = Vec::new();
        for (&(s, d), &mult) in &self.edges {
            for _ in 0..mult {
                list.push((s, d));
            }
        }
        let mut input = if self.undirected {
            GraphInput::undirected(list)
        } else {
            GraphInput::directed(list)
        };
        input.num_vertices = input.num_vertices.max(self.num_vertices);
        input
    }

    /// Register a standing query from `L_NGA` source. Compiles, hashes,
    /// and either joins an existing share group (same structural hash,
    /// same epoch) or builds a new backing session over the current graph
    /// and runs its one-shot plan. Results are queryable immediately.
    pub fn register(&mut self, name: &str, src: &str) -> Result<QueryId, RegistryError> {
        if self.members.len() >= self.limits.max_queries {
            self.obs.reject.add(1);
            return Err(RegistryError::AtCapacity {
                max: self.limits.max_queries,
            });
        }
        let program = compile_source(src).map_err(EngineError::Compile)?;
        let hash = program_hash(&program);
        for q in &program.traverse.queries {
            if self.walk_shapes.insert(walk_shape_hash(q)) {
                self.obs.unique_subplans.add(1);
            }
        }
        let group = match self
            .groups
            .iter()
            .position(|g| !g.members.is_empty() && g.hash == hash && g.epoch == self.epoch)
        {
            Some(i) => i,
            None => {
                let input = self.current_input();
                let mut session = crate::builder::SessionBuilder::from_config(self.cfg.clone())
                    .from_source(src, &input)?;
                session.run_oneshot();
                self.groups.push(ShareGroup {
                    hash,
                    epoch: self.epoch,
                    session,
                    members: Vec::new(),
                });
                self.groups.len() - 1
            }
        };
        let id = QueryId(self.next_id);
        self.next_id += 1;
        self.groups[group].members.push(id);
        self.members.insert(
            id,
            Member {
                group,
                program,
                name: name.to_string(),
            },
        );
        self.obs.register.add(1);
        Ok(id)
    }

    /// Unregister a query. When the last member of a share group leaves,
    /// the backing session is dropped (the slot stays as a tombstone so
    /// other members' group indexes remain valid).
    pub fn unregister(&mut self, id: QueryId) -> Result<(), RegistryError> {
        let member = self
            .members
            .remove(&id)
            .ok_or(RegistryError::UnknownQuery(id))?;
        let group = &mut self.groups[member.group];
        group.members.retain(|&m| m != id);
        self.obs.unregister.add(1);
        Ok(())
    }

    /// Commit a mutation batch: apply it to the current edge multiset and
    /// drive every live share group's Δ-plan once, serving all members.
    /// Rejected batches (over `max_batch_edges`) change nothing.
    pub fn commit(&mut self, batch: &MutationBatch) -> Result<CommitStats, RegistryError> {
        if batch.len() > self.limits.max_batch_edges {
            self.obs.reject.add(1);
            return Err(RegistryError::BatchTooLarge {
                len: batch.len(),
                max: self.limits.max_batch_edges,
            });
        }
        let start = std::time::Instant::now();
        // Maintain the registry's edge multiset from the consolidated
        // batch — the same net ±1 view the store applies — so
        // `current_input` tracks what the backing sessions' graphs became.
        for m in batch.consolidated().edges() {
            let key = canonical(m.src, m.dst, self.undirected);
            self.num_vertices = self
                .num_vertices
                .max(m.src as usize + 1)
                .max(m.dst as usize + 1);
            if m.is_insert() {
                *self.edges.entry(key).or_insert(0) += 1;
            } else if let Some(mult) = self.edges.get_mut(&key) {
                *mult -= 1;
                if *mult == 0 {
                    self.edges.remove(&key);
                }
            }
        }
        self.epoch += 1;
        let mut groups_run = 0;
        let mut queries_served = 0;
        let mut share_hits = 0u64;
        for group in &mut self.groups {
            if group.members.is_empty() {
                continue;
            }
            group.session.apply_mutations(batch);
            group.session.try_run_incremental()?;
            groups_run += 1;
            queries_served += group.members.len();
            share_hits += group.members.len() as u64 - 1;
        }
        self.share_hits_total += share_hits;
        self.obs.share_hit.add(share_hits);
        self.obs.commit.add(1);
        let elapsed_ms = start.elapsed().as_millis() as u64;
        let over_budget = self
            .limits
            .batch_budget_ms
            .is_some_and(|budget| elapsed_ms > budget);
        if over_budget {
            self.obs.deadline_miss.add(1);
        }
        Ok(CommitStats {
            epoch: self.epoch,
            groups_run,
            queries_served,
            share_hits,
            elapsed_ms,
            over_budget,
        })
    }

    fn member(&self, id: QueryId) -> Result<&Member, RegistryError> {
        self.members.get(&id).ok_or(RegistryError::UnknownQuery(id))
    }

    fn group_session(&self, id: QueryId) -> Result<&Session, RegistryError> {
        Ok(&self.groups[self.member(id)?.group].session)
    }

    /// A query's global accumulator value by *its own* declared name (the
    /// shared session may have been built from a member with different
    /// names; indexes are what's shared).
    pub fn global_value(&self, id: QueryId, name: &str) -> Result<Value, RegistryError> {
        let member = self.member(id)?;
        let idx = member
            .program
            .symbols
            .global_index(name)
            .ok_or_else(|| RegistryError::Engine(EngineError::UnknownAttr(name.to_string())))?;
        let session = &self.groups[member.group].session;
        let leader_name = &session.program.symbols.globals[idx].name;
        Ok(session.global_value(leader_name, None)?)
    }

    /// A query's vertex attribute value by its own declared name.
    pub fn attr_value(&self, id: QueryId, v: VertexId, name: &str) -> Result<Value, RegistryError> {
        let member = self.member(id)?;
        let idx = member
            .program
            .symbols
            .attr_index(name)
            .ok_or_else(|| RegistryError::Engine(EngineError::UnknownAttr(name.to_string())))?;
        let session = &self.groups[member.group].session;
        let leader_name = &session.program.symbols.attrs[idx].name;
        Ok(session.attr_value(v, leader_name)?)
    }

    /// A query's full attribute column by its own declared name.
    pub fn attr_column(&self, id: QueryId, name: &str) -> Result<Vec<Value>, RegistryError> {
        let member = self.member(id)?;
        let idx = member
            .program
            .symbols
            .attr_index(name)
            .ok_or_else(|| RegistryError::Engine(EngineError::UnknownAttr(name.to_string())))?;
        let session = &self.groups[member.group].session;
        let leader_name = &session.program.symbols.attrs[idx].name;
        Ok(session.attr_column(leader_name)?)
    }

    /// The query's dynamic state image — partition stores, global
    /// history, superstep counts — the byte-equality surface the sharing
    /// correctness tests compare against isolated sessions. Name-free, so
    /// alpha-renamed members of one group report identical images.
    pub fn dynamic_state_image(&self, id: QueryId) -> Result<Vec<u8>, RegistryError> {
        Ok(self.group_session(id)?.dynamic_state_image())
    }

    /// The member's registered display name.
    pub fn query_name(&self, id: QueryId) -> Result<&str, RegistryError> {
        Ok(&self.member(id)?.name)
    }

    /// The member's own compiled program (for symbol inspection).
    pub fn query_program(&self, id: QueryId) -> Result<&CompiledProgram, RegistryError> {
        Ok(&self.member(id)?.program)
    }

    /// Registered query ids, ascending.
    pub fn query_ids(&self) -> Vec<QueryId> {
        self.members.keys().copied().collect()
    }

    /// Currently registered query count.
    pub fn num_queries(&self) -> usize {
        self.members.len()
    }

    /// Live share groups (distinct backing sessions).
    pub fn num_groups(&self) -> usize {
        self.groups.iter().filter(|g| !g.members.is_empty()).count()
    }

    /// Distinct walk-shape hashes ever registered (the
    /// `share/unique_subplans` counter's value).
    pub fn unique_subplans(&self) -> usize {
        self.walk_shapes.len()
    }

    /// Total `share/hit` fan-outs across all commits.
    pub fn share_hits(&self) -> u64 {
        self.share_hits_total
    }

    /// Batches committed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The admission limits in force.
    pub fn limits(&self) -> &ServeLimits {
        &self.limits
    }
}

/// Canonical key for the edge multiset: undirected graphs store each edge
/// once in (min, max) orientation — the loader mirrors — so an insert and
/// a delete of the same edge cancel regardless of the orientation they
/// arrived in.
fn canonical(s: VertexId, d: VertexId, undirected: bool) -> (VertexId, VertexId) {
    if undirected && d < s {
        (d, s)
    } else {
        (s, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itg_store::EdgeMutation;

    const DEG: &str = "Vertex (id, active, nbrs, deg: Accm<long, SUM>)
         Initialize (u): { u.active = true; }
         Traverse (u): { For v in u.nbrs { v.deg.Accumulate(1); } }
         Update (u): { }";

    fn reg() -> QueryRegistry {
        let input = GraphInput::undirected(vec![(0, 1), (1, 2), (0, 2), (2, 3)]);
        QueryRegistry::new(&input, EngineConfig::default(), ServeLimits::default())
    }

    #[test]
    fn identical_queries_share_one_group() {
        let mut r = reg();
        let a = r.register("a", DEG).unwrap();
        let b = r.register("b", DEG).unwrap();
        assert_eq!(r.num_queries(), 2);
        assert_eq!(r.num_groups(), 1);
        let s = r
            .commit(&MutationBatch::new(vec![EdgeMutation::insert(1, 3)]))
            .unwrap();
        assert_eq!(s.groups_run, 1);
        assert_eq!(s.queries_served, 2);
        assert_eq!(s.share_hits, 1);
        assert_eq!(
            r.global_value(a, "deg").ok(),
            r.global_value(b, "deg").ok()
        );
        assert_eq!(
            r.dynamic_state_image(a).unwrap(),
            r.dynamic_state_image(b).unwrap()
        );
    }

    #[test]
    fn capacity_and_batch_limits_reject() {
        let input = GraphInput::undirected(vec![(0, 1), (1, 2)]);
        let limits = ServeLimits {
            max_queries: 1,
            max_batch_edges: 2,
            batch_budget_ms: None,
        };
        let mut r = QueryRegistry::new(&input, EngineConfig::default(), limits);
        r.register("a", DEG).unwrap();
        assert!(matches!(
            r.register("b", DEG),
            Err(RegistryError::AtCapacity { max: 1 })
        ));
        let big = MutationBatch::new(vec![
            EdgeMutation::insert(0, 2),
            EdgeMutation::insert(0, 3),
            EdgeMutation::insert(0, 4),
        ]);
        assert!(matches!(
            r.commit(&big),
            Err(RegistryError::BatchTooLarge { len: 3, max: 2 })
        ));
        // The rejected batch changed nothing.
        assert_eq!(r.epoch(), 0);
        assert_eq!(r.current_input().edges.len(), 2);
    }

    #[test]
    fn rejected_batch_leaves_edge_multiset_and_results_untouched() {
        // A ServeLimits rejection must be a true no-op: the edge multiset,
        // the backing sessions, and every later commit behave exactly as
        // if the oversized batch had never been offered.
        let input = GraphInput::undirected(vec![(0, 1), (1, 2)]);
        let limits = ServeLimits {
            max_queries: 8,
            max_batch_edges: 2,
            batch_budget_ms: None,
        };
        let mut r = QueryRegistry::new(&input, EngineConfig::default(), limits.clone());
        let q = r.register("a", DEG).unwrap();
        r.commit(&MutationBatch::new(vec![EdgeMutation::insert(2, 3)]))
            .unwrap();
        let edges_before = r.current_input().edges.clone();
        let image_before = r.dynamic_state_image(q).unwrap();

        let big = MutationBatch::new(vec![
            EdgeMutation::insert(5, 6),
            EdgeMutation::delete(0, 1),
            EdgeMutation::insert(6, 7),
        ]);
        assert!(matches!(
            r.commit(&big),
            Err(RegistryError::BatchTooLarge { len: 3, max: 2 })
        ));
        assert_eq!(
            r.current_input().edges,
            edges_before,
            "rejected batch must not touch the edge multiset"
        );
        assert_eq!(r.dynamic_state_image(q).unwrap(), image_before);

        // Lockstep with a registry that never saw the rejection: the next
        // in-limit commit lands on identical state.
        let mut fresh = QueryRegistry::new(&input, EngineConfig::default(), limits);
        let fq = fresh.register("a", DEG).unwrap();
        fresh
            .commit(&MutationBatch::new(vec![EdgeMutation::insert(2, 3)]))
            .unwrap();
        let small = MutationBatch::new(vec![EdgeMutation::insert(3, 4)]);
        r.commit(&small).unwrap();
        fresh.commit(&small).unwrap();
        assert_eq!(r.epoch(), fresh.epoch());
        assert_eq!(
            r.dynamic_state_image(q).unwrap(),
            fresh.dynamic_state_image(fq).unwrap(),
            "post-rejection commit diverged from the rejection-free history"
        );
    }

    #[test]
    fn unregister_drops_group_when_empty() {
        let mut r = reg();
        let a = r.register("a", DEG).unwrap();
        let b = r.register("b", DEG).unwrap();
        r.unregister(a).unwrap();
        assert_eq!(r.num_groups(), 1);
        r.unregister(b).unwrap();
        assert_eq!(r.num_groups(), 0);
        assert!(matches!(
            r.global_value(a, "deg"),
            Err(RegistryError::UnknownQuery(_))
        ));
    }

    #[test]
    fn late_registration_observes_current_graph() {
        let mut r = reg();
        r.commit(&MutationBatch::new(vec![EdgeMutation::insert(3, 4)]))
            .unwrap();
        let q = r.register("late", DEG).unwrap();
        // `deg` is a vertex accumulator, not a global.
        assert!(r.global_value(q, "deg").is_err());
        let col = r.attr_column(q, "active").unwrap();
        assert_eq!(col.len(), 5);
    }

    #[test]
    fn env_limits_parse() {
        let l = ServeLimits::from_env_lookup(|k| match k {
            "ITG_MAX_QUERIES" => Some(" 8 ".into()),
            "ITG_MAX_BATCH_EDGES" => Some("100".into()),
            "ITG_BATCH_BUDGET_MS" => Some("250".into()),
            _ => None,
        });
        assert_eq!(l.max_queries, 8);
        assert_eq!(l.max_batch_edges, 100);
        assert_eq!(l.batch_budget_ms, Some(250));
        let junk = ServeLimits::from_env_lookup(|k| {
            (k == "ITG_MAX_QUERIES").then(|| "none".into())
        });
        assert_eq!(junk.max_queries, ServeLimits::default().max_queries);
    }
}
