//! [`SessionBuilder`]: the one construction path for analytics sessions.
//!
//! Replaces the positional-argument constructors
//! (`Session::new(program, input, cfg)` with a hand-assembled
//! [`EngineConfig`], `ClusterGraph::load(input, machines, pool, page)`)
//! with named, chainable knobs. The builder starts from
//! [`EngineConfig::from_env`], so the precedence story is uniform:
//! a builder call beats the environment, which beats the default.
//!
//! ```
//! use itg_engine::{GraphInput, SessionBuilder};
//!
//! let g = GraphInput::undirected(vec![(0, 1), (1, 2), (0, 2)]);
//! let mut session = SessionBuilder::new()
//!     .machines(2)
//!     .threads(1)
//!     .from_source(
//!         "Vertex (id, active, nbrs, c: Accm<long, SUM>)
//!          Initialize (u): { u.active = true; }
//!          Traverse (u): { For v in u.nbrs { v.c.Accumulate(1); } }
//!          Update (u): { }",
//!         &g,
//!     )
//!     .unwrap();
//! let m = session.run_oneshot();
//! assert_eq!(m.supersteps, 1);
//! ```

use crate::config::{EngineConfig, OptFlags};
use crate::durability::DurabilityKind;
use crate::graph::GraphInput;
use crate::session::{EngineError, Session};
use crate::transport::TransportKind;
use itg_compiler::CompiledProgram;
use itg_store::MaintenancePolicy;

/// Chainable session construction; see the module docs for the full
/// precedence story. Terminal methods: [`SessionBuilder::from_source`]
/// (compiles `L_NGA` text — required for the process transport, which
/// ships source to workers) and [`SessionBuilder::build`] (takes an
/// already-compiled program).
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    cfg: EngineConfig,
}

impl Default for SessionBuilder {
    fn default() -> SessionBuilder {
        SessionBuilder::new()
    }
}

impl SessionBuilder {
    /// A builder seeded from [`EngineConfig::from_env`].
    pub fn new() -> SessionBuilder {
        SessionBuilder {
            cfg: EngineConfig::from_env(),
        }
    }

    /// A builder over an explicit base configuration (bypasses the
    /// environment entirely).
    pub fn from_config(cfg: EngineConfig) -> SessionBuilder {
        SessionBuilder { cfg }
    }

    /// Number of simulated machines (partitions). More than one machine
    /// also enables parallel partition phases, matching
    /// [`EngineConfig::with_machines`]; override with
    /// [`SessionBuilder::parallel`] afterwards if needed.
    pub fn machines(mut self, n: usize) -> SessionBuilder {
        self.cfg.machines = n.max(1);
        self.cfg.parallel = n > 1;
        self
    }

    /// Intra-partition worker threads per machine (results are
    /// byte-identical for every value; see [`EngineConfig::threads_per_machine`]).
    pub fn threads(mut self, n: usize) -> SessionBuilder {
        self.cfg.threads_per_machine = n.max(1);
        self
    }

    /// The superstep exchange plane ([`TransportKind::Local`] or
    /// [`TransportKind::Process`]).
    pub fn transport(mut self, t: TransportKind) -> SessionBuilder {
        self.cfg.transport = t;
        self
    }

    /// Observability recorder for the session, its stores, and walkers.
    pub fn observer(mut self, rec: itg_obs::Recorder) -> SessionBuilder {
        self.cfg.obs = rec;
        self
    }

    /// Durability: [`DurabilityKind::Wal`] logs every state-changing
    /// command to a write-ahead log in the given directory before
    /// executing it, and [`crate::Session::checkpoint`] /
    /// [`crate::Session::recover`] provide snapshot recovery (DESIGN.md
    /// §9). Overrides the `ITG_WAL_DIR` environment knob; requires
    /// [`TransportKind::Local`] and a source-built session
    /// ([`SessionBuilder::from_source`]).
    pub fn durability(mut self, kind: DurabilityKind) -> SessionBuilder {
        self.cfg.durability = kind;
        self
    }

    /// Run partition phases on worker threads (one per owned machine).
    pub fn parallel(mut self, on: bool) -> SessionBuilder {
        self.cfg.parallel = on;
        self
    }

    /// Superstep cap (`usize::MAX` = run to convergence).
    pub fn max_supersteps(mut self, n: usize) -> SessionBuilder {
        self.cfg.max_supersteps = n;
        self
    }

    /// The Δ-walk optimization switches (§6.4.2 ablation axes).
    pub fn opts(mut self, opts: OptFlags) -> SessionBuilder {
        self.cfg.opts = opts;
        self
    }

    /// Vertex-store delta maintenance policy.
    pub fn maintenance(mut self, policy: MaintenancePolicy) -> SessionBuilder {
        self.cfg.maintenance = policy;
        self
    }

    /// NGW segment cache capacity in bytes per attribute store (0 = off;
    /// DESIGN.md §10.2). Overrides the `ITG_CACHE_BYTES` environment knob.
    pub fn cache_bytes(mut self, bytes: u64) -> SessionBuilder {
        self.cfg.cache_bytes = bytes;
        self
    }

    /// Escape hatch: the full configuration, for knobs without a dedicated
    /// builder method (window capacity, buffer pool, page size).
    pub fn config_mut(&mut self) -> &mut EngineConfig {
        &mut self.cfg
    }

    /// The configuration the terminal methods will build with.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Compile `L_NGA` source and build the session. This is the terminal
    /// to use with [`TransportKind::Process`] — workers rebuild the
    /// program from the shipped source.
    pub fn from_source(self, src: &str, input: &GraphInput) -> Result<Session, EngineError> {
        Session::from_source(src, input, self.cfg)
    }

    /// Build the session from an already-compiled program.
    pub fn build(
        self,
        program: CompiledProgram,
        input: &GraphInput,
    ) -> Result<Session, EngineError> {
        Session::new(program, input, self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_knobs_land_in_the_config() {
        let b = SessionBuilder::from_config(EngineConfig::default())
            .machines(4)
            .threads(2)
            .transport(TransportKind::Process { workers: 2 })
            .max_supersteps(7)
            .opts(OptFlags::none());
        let cfg = b.config();
        assert_eq!(cfg.machines, 4);
        assert!(cfg.parallel, "multi-machine implies parallel phases");
        assert_eq!(cfg.threads_per_machine, 2);
        assert_eq!(cfg.transport, TransportKind::Process { workers: 2 });
        assert_eq!(cfg.max_supersteps, 7);
        assert!(!cfg.opts.min_count);
    }

    #[test]
    fn machines_clamp_and_parallel_override() {
        let b = SessionBuilder::from_config(EngineConfig::default())
            .machines(0)
            .parallel(true);
        assert_eq!(b.config().machines, 1);
        assert!(b.config().parallel);
    }

    #[test]
    fn builder_builds_a_running_session() {
        let g = GraphInput::undirected(vec![(0, 1), (1, 2)]);
        let mut sess = SessionBuilder::from_config(EngineConfig::default())
            .machines(2)
            .from_source(
                "Vertex (id, active, nbrs, deg: Accm<long, SUM>)
                 Initialize (u): { u.active = true; }
                 Traverse (u): { For v in u.nbrs { v.deg.Accumulate(1); } }
                 Update (u): { }",
                &g,
            )
            .expect("compiles");
        let m = sess.run_oneshot();
        assert_eq!(m.supersteps, 1);
    }
}
