//! Accumulator state and incremental Accumulate (paper §5.4).
//!
//! Per-vertex accumulator state is stored columnarly: for each accumulator,
//! its value, its *contribution count* (net number of walks that targeted
//! the vertex — a vertex is "touched", and Update runs for it, when any
//! count is positive), and — for Min/Max — the support count of the current
//! extremum (the CNT optimization).
//!
//! Contributions emitted by walk enumeration are pre-aggregated per target
//! before any exchange: Abelian-group values fold through the operation
//! (retractions through the inverse); monoid insertions fold through a
//! [`CountedAccm`]; retractions that cannot be folded (monoid deletes, or a
//! `Prod` retraction of zero) are carried raw and resolved against the
//! stored state — possibly demanding recomputation.

use itg_compiler::AccmLane;
use itg_gsa::accm::{AccmOp, CountedAccm, RetractOutcome};
use itg_gsa::value::{ColumnData, PrimType, Value, ValueType};
use itg_gsa::{FxHashMap, VertexId};
use itg_lnga::AccmInfo;
use std::cmp::Ordering;

/// Column layout of the accumulator state: `[values..][counts..][supports..]`
/// where supports exist only for Min/Max accumulators.
#[derive(Debug, Clone)]
pub struct AccmLayout {
    pub accms: Vec<AccmInfo>,
    /// Support-column index per accumulator (Min/Max only).
    support_col: Vec<Option<usize>>,
    pub num_cols: usize,
}

impl AccmLayout {
    pub fn new(accms: &[AccmInfo]) -> AccmLayout {
        let n = accms.len();
        let mut support_col = Vec::with_capacity(n);
        let mut next = 2 * n;
        for a in accms {
            // Every monoid-combined accumulator (Min/Max and the boolean
            // Or/And frontiers) carries a support count for the CNT
            // optimization; group ops (Sum/Prod) retract by inverse.
            if a.op.is_group() {
                support_col.push(None);
            } else {
                support_col.push(Some(next));
                next += 1;
            }
        }
        AccmLayout {
            accms: accms.to_vec(),
            support_col,
            num_cols: next,
        }
    }

    pub fn num_accms(&self) -> usize {
        self.accms.len()
    }

    pub fn value_col(&self, i: usize) -> usize {
        i
    }

    pub fn count_col(&self, i: usize) -> usize {
        self.accms.len() + i
    }

    pub fn support_col(&self, i: usize) -> Option<usize> {
        self.support_col[i]
    }

    /// Column types for the backing [`itg_store::AttrStore`].
    pub fn column_types(&self) -> Vec<ValueType> {
        let mut cols: Vec<ValueType> = self
            .accms
            .iter()
            .map(|a| ValueType::Prim(a.prim))
            .collect();
        cols.extend(std::iter::repeat_n(
            ValueType::Prim(PrimType::Long),
            self.accms.len(),
        ));
        for a in &self.accms {
            if !a.op.is_group() {
                cols.push(ValueType::Prim(PrimType::Long));
            }
        }
        cols
    }

    /// Fresh identity-state columns for `n` vertices.
    pub fn identity_columns(&self, n: usize) -> Vec<ColumnData> {
        let mut cols: Vec<ColumnData> = Vec::with_capacity(self.num_cols);
        for a in &self.accms {
            let mut c = ColumnData::zeros(ValueType::Prim(a.prim), n);
            let ident = a.op.identity(a.prim);
            for i in 0..n {
                c.set(i, &ident);
            }
            cols.push(c);
        }
        for _ in 0..self.accms.len() {
            cols.push(ColumnData::zeros(ValueType::Prim(PrimType::Long), n));
        }
        for a in &self.accms {
            if !a.op.is_group() {
                cols.push(ColumnData::zeros(ValueType::Prim(PrimType::Long), n));
            }
        }
        cols
    }

    /// Read a vertex's full state row.
    pub fn row(&self, cols: &[ColumnData], local: usize) -> Vec<Value> {
        (0..self.num_cols).map(|c| cols[c].get(local)).collect()
    }

    /// Is the vertex touched (any positive contribution count)?
    pub fn touched(&self, cols: &[ColumnData], local: usize) -> bool {
        (0..self.num_accms())
            .any(|i| cols[self.count_col(i)].get(local).as_i64().unwrap_or(0) > 0)
    }
}

/// A pre-aggregated set of contributions to one target.
#[derive(Debug, Clone, PartialEq)]
pub struct Contribution {
    /// Group-foldable part (starts at the identity).
    pub folded: Value,
    /// Net contribution count.
    pub count: i64,
    /// Monoid insert part (Min/Max).
    pub monoid: Option<CountedAccm>,
    /// Retractions that could not be folded.
    pub retractions: Vec<Value>,
}

impl Contribution {
    pub fn identity(op: AccmOp, prim: PrimType) -> Contribution {
        Contribution {
            folded: op.identity(prim),
            count: 0,
            monoid: None,
            retractions: Vec::new(),
        }
    }

    /// Fold one walk's contribution (`mult` = ±1 … ±k).
    pub fn add(&mut self, op: AccmOp, prim: PrimType, value: &Value, mult: i64) {
        let times = mult.unsigned_abs();
        self.count += mult;
        for _ in 0..times {
            if mult > 0 {
                if op.is_group() {
                    self.folded = op.combine(&self.folded, value, prim);
                } else {
                    self.monoid
                        .get_or_insert_with(|| CountedAccm::identity(op, prim))
                        .insert(op, prim, value);
                }
            } else if op.is_group() {
                if let Some(inv) = op.inverse(value, prim) {
                    self.folded = op.combine(&self.folded, &inv, prim);
                } else {
                    self.retractions.push(value.clone());
                }
            } else {
                self.retractions.push(value.clone());
            }
        }
    }

    /// Merge another pre-aggregated contribution (exchange path).
    pub fn merge(&mut self, other: &Contribution, op: AccmOp, prim: PrimType) {
        self.count += other.count;
        self.folded = op.combine(&self.folded, &other.folded, prim);
        if let Some(m) = &other.monoid {
            self.monoid
                .get_or_insert_with(|| CountedAccm::identity(op, prim))
                .merge(m, op, prim);
        }
        self.retractions.extend(other.retractions.iter().cloned());
    }

    /// Approximate serialized size in bytes, for network accounting.
    pub fn wire_bytes(&self) -> u64 {
        24 + self.retractions.len() as u64 * 8 + if self.monoid.is_some() { 16 } else { 0 }
    }
}

// ---------------------------------------------------------------------
// Specialized accumulate lanes (DESIGN.md §10).
//
// Each cell is the unboxed image of a `Contribution` for one concrete
// `(op, prim)` pair: the same fold/inverse/compare operations the generic
// `Value` path performs, in the same order, on machine primitives. The
// conversion back to `Contribution` happens once per target at the
// exchange boundary, never per tuple, and is *bit-exact* — the
// equivalence suite asserts byte-identical state images.
// ---------------------------------------------------------------------

/// `Accm<long, SUM>` cell. Wrapping addition is modular, so folding
/// `v · mult` in one step is exactly the generic |mult|-iteration fold.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SumI64Cell {
    folded: i64,
    count: i64,
}

impl SumI64Cell {
    #[inline]
    fn add(&mut self, v: i64, mult: i64) {
        self.count += mult;
        self.folded = self.folded.wrapping_add(v.wrapping_mul(mult));
    }

    #[inline]
    fn merge(&mut self, o: &SumI64Cell) {
        self.count += o.count;
        self.folded = self.folded.wrapping_add(o.folded);
    }

    fn into_contrib(self) -> Contribution {
        Contribution {
            folded: Value::Long(self.folded),
            count: self.count,
            monoid: None,
            retractions: Vec::new(),
        }
    }
}

/// `Accm<double, SUM>` cell. IEEE addition is not associative, so
/// contributions replay one at a time in enumeration order exactly as the
/// generic fold does, and a retraction adds the literal `0.0 - v` the
/// generic inverse produces (`-v` would flip the sign of zero — a bitwise
/// difference the oracles would catch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SumF64Cell {
    folded: f64,
    count: i64,
}

impl Default for SumF64Cell {
    fn default() -> SumF64Cell {
        SumF64Cell { folded: 0.0, count: 0 }
    }
}

impl SumF64Cell {
    #[inline]
    fn add(&mut self, v: f64, mult: i64) {
        self.count += mult;
        let step = if mult > 0 { v } else { 0.0 - v };
        for _ in 0..mult.unsigned_abs() {
            self.folded += step;
        }
    }

    #[inline]
    fn merge(&mut self, o: &SumF64Cell) {
        self.count += o.count;
        self.folded += o.folded;
    }

    fn into_contrib(self) -> Contribution {
        Contribution {
            folded: Value::Double(self.folded),
            count: self.count,
            monoid: None,
            retractions: Vec::new(),
        }
    }
}

/// Monoid cell (Min/Max and the boolean Or/And existence lanes): the
/// extremum with its support count ([`CountedAccm`] unboxed) plus
/// retractions carried raw for apply-time resolution. The per-lane
/// comparator `cmp(a, b)` returns `Less` when `a` is the strictly better
/// extremum and `Equal` exactly when the two are bit-identical, which
/// makes every [`CountedAccm`] insert/merge case a single three-way match.
#[derive(Debug, Clone, PartialEq)]
pub struct MonoidCell<T> {
    count: i64,
    monoid: Option<(T, u64)>,
    retractions: Vec<T>,
}

impl<T: Copy> Default for MonoidCell<T> {
    fn default() -> MonoidCell<T> {
        MonoidCell {
            count: 0,
            monoid: None,
            retractions: Vec::new(),
        }
    }
}

impl<T: Copy> MonoidCell<T> {
    #[inline]
    fn add(&mut self, v: T, mult: i64, cmp: impl Fn(&T, &T) -> Ordering) {
        self.count += mult;
        if mult > 0 {
            for _ in 0..mult {
                match &mut self.monoid {
                    None => self.monoid = Some((v, 1)),
                    Some((cur, n)) => match cmp(&v, cur) {
                        Ordering::Less => {
                            *cur = v;
                            *n = 1;
                        }
                        Ordering::Equal => *n += 1,
                        Ordering::Greater => {}
                    },
                }
            }
        } else {
            for _ in 0..mult.unsigned_abs() {
                self.retractions.push(v);
            }
        }
    }

    #[inline]
    fn merge(&mut self, o: &MonoidCell<T>, cmp: impl Fn(&T, &T) -> Ordering) {
        self.count += o.count;
        if let Some((ov, on)) = &o.monoid {
            match &mut self.monoid {
                None => self.monoid = Some((*ov, *on)),
                Some((sv, sn)) => match cmp(ov, sv) {
                    Ordering::Less => {
                        *sv = *ov;
                        *sn = *on;
                    }
                    Ordering::Equal => *sn += *on,
                    Ordering::Greater => {}
                },
            }
        }
        self.retractions.extend_from_slice(&o.retractions);
    }

    fn into_contrib(self, info: &AccmInfo, to: impl Fn(T) -> Value) -> Contribution {
        Contribution {
            folded: info.op.identity(info.prim),
            count: self.count,
            monoid: self.monoid.map(|(v, n)| CountedAccm {
                value: to(v),
                count: n,
            }),
            retractions: self.retractions.into_iter().map(to).collect(),
        }
    }
}

// Per-lane comparators: `Less` ⇔ first argument strictly better. Min is the
// natural order; Max reverses it; Or/And are Max/Min over `false < true`.
// For doubles, `total_cmp` returns `Equal` exactly on identical bits — the
// same tie rule `CountedAccm` gets from the bitwise `Value` equality.
#[inline]
fn cmp_min_i64(a: &i64, b: &i64) -> Ordering {
    a.cmp(b)
}
#[inline]
fn cmp_max_i64(a: &i64, b: &i64) -> Ordering {
    b.cmp(a)
}
#[inline]
fn cmp_min_f64(a: &f64, b: &f64) -> Ordering {
    a.total_cmp(b)
}
#[inline]
fn cmp_max_f64(a: &f64, b: &f64) -> Ordering {
    b.total_cmp(a)
}
#[inline]
fn cmp_or(a: &bool, b: &bool) -> Ordering {
    b.cmp(a)
}
#[inline]
fn cmp_and(a: &bool, b: &bool) -> Ordering {
    a.cmp(b)
}

#[inline]
fn v_i64(v: &Value) -> i64 {
    v.as_i64().unwrap_or(0)
}
#[inline]
fn v_f64(v: &Value) -> f64 {
    v.as_f64().unwrap_or(0.0)
}

/// One vertex accumulator's contribution map, monomorphized per lane. The
/// map's key-insertion sequence is identical across lanes (the value type
/// does not influence hash-table layout), so draining through
/// [`LaneMap::into_each`] yields targets in the same order the generic
/// path would — the exchange wire format is unchanged byte for byte.
#[derive(Debug)]
pub enum LaneMap {
    Generic(FxHashMap<VertexId, Contribution>),
    SumI64(FxHashMap<VertexId, SumI64Cell>),
    SumF64(FxHashMap<VertexId, SumF64Cell>),
    MinI64(FxHashMap<VertexId, MonoidCell<i64>>),
    MaxI64(FxHashMap<VertexId, MonoidCell<i64>>),
    MinF64(FxHashMap<VertexId, MonoidCell<f64>>),
    MaxF64(FxHashMap<VertexId, MonoidCell<f64>>),
    OrBool(FxHashMap<VertexId, MonoidCell<bool>>),
    AndBool(FxHashMap<VertexId, MonoidCell<bool>>),
}

impl LaneMap {
    pub fn new(lane: AccmLane) -> LaneMap {
        match lane {
            AccmLane::Generic => LaneMap::Generic(FxHashMap::default()),
            AccmLane::SumI64 => LaneMap::SumI64(FxHashMap::default()),
            AccmLane::SumF64 => LaneMap::SumF64(FxHashMap::default()),
            AccmLane::MinI64 => LaneMap::MinI64(FxHashMap::default()),
            AccmLane::MaxI64 => LaneMap::MaxI64(FxHashMap::default()),
            AccmLane::MinF64 => LaneMap::MinF64(FxHashMap::default()),
            AccmLane::MaxF64 => LaneMap::MaxF64(FxHashMap::default()),
            AccmLane::OrBool => LaneMap::OrBool(FxHashMap::default()),
            AccmLane::AndBool => LaneMap::AndBool(FxHashMap::default()),
        }
    }

    pub fn lane(&self) -> AccmLane {
        match self {
            LaneMap::Generic(_) => AccmLane::Generic,
            LaneMap::SumI64(_) => AccmLane::SumI64,
            LaneMap::SumF64(_) => AccmLane::SumF64,
            LaneMap::MinI64(_) => AccmLane::MinI64,
            LaneMap::MaxI64(_) => AccmLane::MaxI64,
            LaneMap::MinF64(_) => AccmLane::MinF64,
            LaneMap::MaxF64(_) => AccmLane::MaxF64,
            LaneMap::OrBool(_) => AccmLane::OrBool,
            LaneMap::AndBool(_) => AccmLane::AndBool,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            LaneMap::Generic(m) => m.len(),
            LaneMap::SumI64(m) => m.len(),
            LaneMap::SumF64(m) => m.len(),
            LaneMap::MinI64(m) => m.len(),
            LaneMap::MaxI64(m) => m.len(),
            LaneMap::MinF64(m) => m.len(),
            LaneMap::MaxF64(m) => m.len(),
            LaneMap::OrBool(m) => m.len(),
            LaneMap::AndBool(m) => m.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    pub fn add(&mut self, info: &AccmInfo, target: VertexId, value: &Value, mult: i64) {
        match self {
            LaneMap::Generic(m) => m
                .entry(target)
                .or_insert_with(|| Contribution::identity(info.op, info.prim))
                .add(info.op, info.prim, value, mult),
            LaneMap::SumI64(m) => m.entry(target).or_default().add(v_i64(value), mult),
            LaneMap::SumF64(m) => m.entry(target).or_default().add(v_f64(value), mult),
            LaneMap::MinI64(m) => m
                .entry(target)
                .or_default()
                .add(v_i64(value), mult, cmp_min_i64),
            LaneMap::MaxI64(m) => m
                .entry(target)
                .or_default()
                .add(v_i64(value), mult, cmp_max_i64),
            LaneMap::MinF64(m) => m
                .entry(target)
                .or_default()
                .add(v_f64(value), mult, cmp_min_f64),
            LaneMap::MaxF64(m) => m
                .entry(target)
                .or_default()
                .add(v_f64(value), mult, cmp_max_f64),
            LaneMap::OrBool(m) => m.entry(target).or_default().add(
                value.as_bool().unwrap_or(false),
                mult,
                cmp_or,
            ),
            LaneMap::AndBool(m) => m.entry(target).or_default().add(
                value.as_bool().unwrap_or(true),
                mult,
                cmp_and,
            ),
        }
    }

    /// The dual emit of the value-change-aware Δvs path — retract `old`,
    /// insert `new` — fused into a single map lookup. The cell receives
    /// exactly the two `add`s the generic path would issue, in the same
    /// order, so the resulting bytes (and the key-insertion order the
    /// exchange drains in) are unchanged.
    #[inline]
    pub fn add_pair(
        &mut self,
        info: &AccmInfo,
        target: VertexId,
        old: &Value,
        new: &Value,
        mult: i64,
    ) {
        match self {
            LaneMap::Generic(m) => {
                let c = m
                    .entry(target)
                    .or_insert_with(|| Contribution::identity(info.op, info.prim));
                c.add(info.op, info.prim, old, -mult);
                c.add(info.op, info.prim, new, mult);
            }
            LaneMap::SumI64(m) => {
                let c = m.entry(target).or_default();
                c.add(v_i64(old), -mult);
                c.add(v_i64(new), mult);
            }
            LaneMap::SumF64(m) => {
                let c = m.entry(target).or_default();
                c.add(v_f64(old), -mult);
                c.add(v_f64(new), mult);
            }
            LaneMap::MinI64(m) => {
                let c = m.entry(target).or_default();
                c.add(v_i64(old), -mult, cmp_min_i64);
                c.add(v_i64(new), mult, cmp_min_i64);
            }
            LaneMap::MaxI64(m) => {
                let c = m.entry(target).or_default();
                c.add(v_i64(old), -mult, cmp_max_i64);
                c.add(v_i64(new), mult, cmp_max_i64);
            }
            LaneMap::MinF64(m) => {
                let c = m.entry(target).or_default();
                c.add(v_f64(old), -mult, cmp_min_f64);
                c.add(v_f64(new), mult, cmp_min_f64);
            }
            LaneMap::MaxF64(m) => {
                let c = m.entry(target).or_default();
                c.add(v_f64(old), -mult, cmp_max_f64);
                c.add(v_f64(new), mult, cmp_max_f64);
            }
            LaneMap::OrBool(m) => {
                let c = m.entry(target).or_default();
                c.add(old.as_bool().unwrap_or(false), -mult, cmp_or);
                c.add(new.as_bool().unwrap_or(false), mult, cmp_or);
            }
            LaneMap::AndBool(m) => {
                let c = m.entry(target).or_default();
                c.add(old.as_bool().unwrap_or(true), -mult, cmp_and);
                c.add(new.as_bool().unwrap_or(true), mult, cmp_and);
            }
        }
    }

    pub fn merge(&mut self, other: LaneMap, info: &AccmInfo) {
        match (self, other) {
            (LaneMap::Generic(a), LaneMap::Generic(b)) => {
                for (v, c) in b {
                    a.entry(v)
                        .or_insert_with(|| Contribution::identity(info.op, info.prim))
                        .merge(&c, info.op, info.prim);
                }
            }
            (LaneMap::SumI64(a), LaneMap::SumI64(b)) => {
                for (v, c) in b {
                    a.entry(v).or_default().merge(&c);
                }
            }
            (LaneMap::SumF64(a), LaneMap::SumF64(b)) => {
                for (v, c) in b {
                    a.entry(v).or_default().merge(&c);
                }
            }
            (LaneMap::MinI64(a), LaneMap::MinI64(b)) => {
                for (v, c) in b {
                    a.entry(v).or_default().merge(&c, cmp_min_i64);
                }
            }
            (LaneMap::MaxI64(a), LaneMap::MaxI64(b)) => {
                for (v, c) in b {
                    a.entry(v).or_default().merge(&c, cmp_max_i64);
                }
            }
            (LaneMap::MinF64(a), LaneMap::MinF64(b)) => {
                for (v, c) in b {
                    a.entry(v).or_default().merge(&c, cmp_min_f64);
                }
            }
            (LaneMap::MaxF64(a), LaneMap::MaxF64(b)) => {
                for (v, c) in b {
                    a.entry(v).or_default().merge(&c, cmp_max_f64);
                }
            }
            (LaneMap::OrBool(a), LaneMap::OrBool(b)) => {
                for (v, c) in b {
                    a.entry(v).or_default().merge(&c, cmp_or);
                }
            }
            (LaneMap::AndBool(a), LaneMap::AndBool(b)) => {
                for (v, c) in b {
                    a.entry(v).or_default().merge(&c, cmp_and);
                }
            }
            _ => unreachable!("chunk buffers of one session share lane selection"),
        }
    }

    /// Drain the map in its iteration order, converting each cell to the
    /// generic [`Contribution`] the exchange wire carries.
    pub fn into_each(self, info: &AccmInfo, mut f: impl FnMut(VertexId, Contribution)) {
        match self {
            LaneMap::Generic(m) => {
                for (v, c) in m {
                    f(v, c);
                }
            }
            LaneMap::SumI64(m) => {
                for (v, c) in m {
                    f(v, c.into_contrib());
                }
            }
            LaneMap::SumF64(m) => {
                for (v, c) in m {
                    f(v, c.into_contrib());
                }
            }
            LaneMap::MinI64(m) | LaneMap::MaxI64(m) => {
                for (v, c) in m {
                    f(v, c.into_contrib(info, Value::Long));
                }
            }
            LaneMap::MinF64(m) | LaneMap::MaxF64(m) => {
                for (v, c) in m {
                    f(v, c.into_contrib(info, Value::Double));
                }
            }
            LaneMap::OrBool(m) | LaneMap::AndBool(m) => {
                for (v, c) in m {
                    f(v, c.into_contrib(info, Value::Bool));
                }
            }
        }
    }
}

/// One global accumulator's contribution slot, monomorphized per lane.
#[derive(Debug)]
pub enum LaneSlot {
    Generic(Contribution),
    SumI64(SumI64Cell),
    SumF64(SumF64Cell),
    MinI64(MonoidCell<i64>),
    MaxI64(MonoidCell<i64>),
    MinF64(MonoidCell<f64>),
    MaxF64(MonoidCell<f64>),
    OrBool(MonoidCell<bool>),
    AndBool(MonoidCell<bool>),
}

impl LaneSlot {
    pub fn new(lane: AccmLane, info: &AccmInfo) -> LaneSlot {
        match lane {
            AccmLane::Generic => LaneSlot::Generic(Contribution::identity(info.op, info.prim)),
            AccmLane::SumI64 => LaneSlot::SumI64(SumI64Cell::default()),
            AccmLane::SumF64 => LaneSlot::SumF64(SumF64Cell::default()),
            AccmLane::MinI64 => LaneSlot::MinI64(MonoidCell::default()),
            AccmLane::MaxI64 => LaneSlot::MaxI64(MonoidCell::default()),
            AccmLane::MinF64 => LaneSlot::MinF64(MonoidCell::default()),
            AccmLane::MaxF64 => LaneSlot::MaxF64(MonoidCell::default()),
            AccmLane::OrBool => LaneSlot::OrBool(MonoidCell::default()),
            AccmLane::AndBool => LaneSlot::AndBool(MonoidCell::default()),
        }
    }

    #[inline]
    pub fn add(&mut self, info: &AccmInfo, value: &Value, mult: i64) {
        match self {
            LaneSlot::Generic(c) => c.add(info.op, info.prim, value, mult),
            LaneSlot::SumI64(c) => c.add(v_i64(value), mult),
            LaneSlot::SumF64(c) => c.add(v_f64(value), mult),
            LaneSlot::MinI64(c) => c.add(v_i64(value), mult, cmp_min_i64),
            LaneSlot::MaxI64(c) => c.add(v_i64(value), mult, cmp_max_i64),
            LaneSlot::MinF64(c) => c.add(v_f64(value), mult, cmp_min_f64),
            LaneSlot::MaxF64(c) => c.add(v_f64(value), mult, cmp_max_f64),
            LaneSlot::OrBool(c) => c.add(value.as_bool().unwrap_or(false), mult, cmp_or),
            LaneSlot::AndBool(c) => c.add(value.as_bool().unwrap_or(true), mult, cmp_and),
        }
    }

    pub fn merge(&mut self, other: LaneSlot, info: &AccmInfo) {
        match (self, other) {
            (LaneSlot::Generic(a), LaneSlot::Generic(b)) => a.merge(&b, info.op, info.prim),
            (LaneSlot::SumI64(a), LaneSlot::SumI64(b)) => a.merge(&b),
            (LaneSlot::SumF64(a), LaneSlot::SumF64(b)) => a.merge(&b),
            (LaneSlot::MinI64(a), LaneSlot::MinI64(b)) => a.merge(&b, cmp_min_i64),
            (LaneSlot::MaxI64(a), LaneSlot::MaxI64(b)) => a.merge(&b, cmp_max_i64),
            (LaneSlot::MinF64(a), LaneSlot::MinF64(b)) => a.merge(&b, cmp_min_f64),
            (LaneSlot::MaxF64(a), LaneSlot::MaxF64(b)) => a.merge(&b, cmp_max_f64),
            (LaneSlot::OrBool(a), LaneSlot::OrBool(b)) => a.merge(&b, cmp_or),
            (LaneSlot::AndBool(a), LaneSlot::AndBool(b)) => a.merge(&b, cmp_and),
            _ => unreachable!("chunk buffers of one session share lane selection"),
        }
    }

    /// Convert to the generic [`Contribution`] the globals wire carries.
    pub fn into_contrib(self, info: &AccmInfo) -> Contribution {
        match self {
            LaneSlot::Generic(c) => c,
            LaneSlot::SumI64(c) => c.into_contrib(),
            LaneSlot::SumF64(c) => c.into_contrib(),
            LaneSlot::MinI64(c) | LaneSlot::MaxI64(c) => c.into_contrib(info, Value::Long),
            LaneSlot::MinF64(c) | LaneSlot::MaxF64(c) => c.into_contrib(info, Value::Double),
            LaneSlot::OrBool(c) | LaneSlot::AndBool(c) => c.into_contrib(info, Value::Bool),
        }
    }
}

/// Per-worker contribution buffers: one lane map per vertex accumulator
/// plus one lane slot per global accumulator.
#[derive(Debug)]
pub struct AccBuffer {
    pub vertex: Vec<LaneMap>,
    pub globals: Vec<LaneSlot>,
}

impl AccBuffer {
    /// An all-generic buffer (the unspecialized PR 5 path; also what
    /// `OptFlags::specialize = false` selects for every accumulator).
    pub fn new(accms: &[AccmInfo], globals: &[AccmInfo]) -> AccBuffer {
        AccBuffer {
            vertex: accms.iter().map(|_| LaneMap::new(AccmLane::Generic)).collect(),
            globals: globals
                .iter()
                .map(|g| LaneSlot::new(AccmLane::Generic, g))
                .collect(),
        }
    }

    /// A buffer with per-accumulator lanes as selected at plan-compile time
    /// ([`itg_compiler::CompiledProgram::vertex_lanes`]).
    pub fn with_lanes(
        globals: &[AccmInfo],
        vertex_lanes: &[AccmLane],
        global_lanes: &[AccmLane],
    ) -> AccBuffer {
        AccBuffer {
            vertex: vertex_lanes.iter().map(|&l| LaneMap::new(l)).collect(),
            globals: globals
                .iter()
                .zip(global_lanes)
                .map(|(g, &l)| LaneSlot::new(l, g))
                .collect(),
        }
    }

    #[inline]
    pub fn add_vertex(
        &mut self,
        accm_idx: usize,
        info: &AccmInfo,
        target: VertexId,
        value: &Value,
        mult: i64,
    ) {
        self.vertex[accm_idx].add(info, target, value, mult);
    }

    /// Retract `old` and insert `new` into one vertex target with a single
    /// map lookup (see [`LaneMap::add_pair`]).
    #[inline]
    pub fn add_vertex_pair(
        &mut self,
        accm_idx: usize,
        info: &AccmInfo,
        target: VertexId,
        old: &Value,
        new: &Value,
        mult: i64,
    ) {
        self.vertex[accm_idx].add_pair(info, target, old, new, mult);
    }

    #[inline]
    pub fn add_global(&mut self, idx: usize, info: &AccmInfo, value: &Value, mult: i64) {
        self.globals[idx].add(info, value, mult);
    }

    /// Merge another buffer into this one (the intra-partition parallel
    /// path). Per key, `other` carries one pre-aggregated cell whose
    /// internal fold/retraction order is the enumeration order of the
    /// chunk that produced it; merging chunk buffers in chunk order
    /// therefore concatenates per-key contribution sequences exactly as a
    /// serial enumeration over the same item list would, so the merged
    /// buffer is a pure function of the chunk decomposition — independent
    /// of how many threads executed the chunks.
    pub fn merge(&mut self, other: AccBuffer, accms: &[AccmInfo], globals: &[AccmInfo]) {
        for ((mine, theirs), info) in self.vertex.iter_mut().zip(other.vertex).zip(accms) {
            mine.merge(theirs, info);
        }
        for ((mine, theirs), info) in self.globals.iter_mut().zip(other.globals).zip(globals) {
            mine.merge(theirs, info);
        }
    }
}

/// Result of applying one contribution set to a vertex's stored state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyOutcome {
    Unchanged,
    Changed,
    /// Monoid (or non-invertible group) retraction hit the stored extremum:
    /// the accumulator must be recomputed from its inputs.
    NeedsRecompute,
}

/// Apply a contribution to the state columns at `local` for accumulator
/// `i`. `use_cnt` is the CNT optimization flag: when false, *any*
/// unfoldable retraction forces recomputation.
pub fn apply_contribution(
    layout: &AccmLayout,
    cols: &mut [ColumnData],
    local: usize,
    i: usize,
    c: &Contribution,
    use_cnt: bool,
) -> ApplyOutcome {
    let info = &layout.accms[i];
    let (op, prim) = (info.op, info.prim);
    let vcol = layout.value_col(i);
    let ccol = layout.count_col(i);

    let before_value = cols[vcol].get(local);
    let before_count = cols[ccol].get(local).as_i64().unwrap_or(0);

    let new_count = before_count + c.count;
    cols[ccol].set(local, &Value::Long(new_count));

    let mut needs_recompute = false;
    if op.is_group() {
        let mut v = op.combine(&before_value, &c.folded, prim);
        if !c.retractions.is_empty() {
            needs_recompute = true;
        }
        if new_count == 0 && !needs_recompute {
            // All contributions cancelled: restore the exact identity (the
            // floating-point fold may leave −0.0 or tiny residue).
            v = op.identity(prim);
        }
        cols[vcol].set(local, &v);
    } else {
        // Monoid: fold inserts through the counted state, then retract.
        let scol = layout.support_col(i).expect("monoid has support column");
        let mut state = CountedAccm {
            value: before_value.clone(),
            count: cols[scol].get(local).as_i64().unwrap_or(0) as u64,
        };
        if let Some(m) = &c.monoid {
            state.merge(m, op, prim);
        }
        for r in &c.retractions {
            if !use_cnt {
                needs_recompute = true;
                break;
            }
            match state.retract(r) {
                RetractOutcome::NeedsRecompute => {
                    needs_recompute = true;
                    break;
                }
                RetractOutcome::Unaffected | RetractOutcome::SupportDecremented => {}
            }
        }
        if !needs_recompute {
            cols[vcol].set(local, &state.value);
            cols[scol].set(local, &Value::Long(state.count as i64));
        }
        if new_count == 0 && !needs_recompute {
            cols[vcol].set(local, &op.identity(prim));
            cols[scol].set(local, &Value::Long(0));
        }
    }

    if needs_recompute {
        ApplyOutcome::NeedsRecompute
    } else if cols[vcol].get(local) != before_value || new_count != before_count {
        ApplyOutcome::Changed
    } else {
        ApplyOutcome::Unchanged
    }
}

/// Reset accumulator `i`'s state at `local` to identity/untouched (the
/// starting point of a recomputation).
pub fn reset_state(layout: &AccmLayout, cols: &mut [ColumnData], local: usize, i: usize) {
    let info = &layout.accms[i];
    cols[layout.value_col(i)].set(local, &info.op.identity(info.prim));
    cols[layout.count_col(i)].set(local, &Value::Long(0));
    if let Some(s) = layout.support_col(i) {
        cols[s].set(local, &Value::Long(0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_layout() -> AccmLayout {
        AccmLayout::new(&[AccmInfo {
            name: "sum".into(),
            prim: PrimType::Double,
            op: AccmOp::Sum,
        }])
    }

    fn min_layout() -> AccmLayout {
        AccmLayout::new(&[AccmInfo {
            name: "m".into(),
            prim: PrimType::Long,
            op: AccmOp::Min,
        }])
    }

    #[test]
    fn layout_columns() {
        let l = min_layout();
        assert_eq!(l.num_cols, 3); // value, count, support
        assert_eq!(l.value_col(0), 0);
        assert_eq!(l.count_col(0), 1);
        assert_eq!(l.support_col(0), Some(2));
        let s = sum_layout();
        assert_eq!(s.num_cols, 2);
        assert_eq!(s.support_col(0), None);
    }

    #[test]
    fn group_fold_and_apply() {
        let l = sum_layout();
        let mut cols = l.identity_columns(4);
        let info = &l.accms[0].clone();
        let mut c = Contribution::identity(AccmOp::Sum, PrimType::Double);
        c.add(info.op, info.prim, &Value::Double(2.0), 1);
        c.add(info.op, info.prim, &Value::Double(3.0), 1);
        c.add(info.op, info.prim, &Value::Double(2.0), -1);
        let out = apply_contribution(&l, &mut cols, 1, 0, &c, true);
        assert_eq!(out, ApplyOutcome::Changed);
        assert_eq!(cols[0].get(1), Value::Double(3.0));
        assert_eq!(cols[1].get(1), Value::Long(1));
        assert!(l.touched(&cols, 1));
        assert!(!l.touched(&cols, 0));
    }

    #[test]
    fn group_full_cancellation_restores_identity() {
        let l = sum_layout();
        let mut cols = l.identity_columns(1);
        let info = l.accms[0].clone();
        let mut c = Contribution::identity(info.op, info.prim);
        c.add(info.op, info.prim, &Value::Double(0.1), 1);
        apply_contribution(&l, &mut cols, 0, 0, &c, true);
        let mut d = Contribution::identity(info.op, info.prim);
        d.add(info.op, info.prim, &Value::Double(0.1), -1);
        apply_contribution(&l, &mut cols, 0, 0, &d, true);
        assert_eq!(cols[0].get(0), Value::Double(0.0));
        assert!(!l.touched(&cols, 0));
    }

    #[test]
    fn monoid_cnt_avoids_recompute() {
        let l = min_layout();
        let mut cols = l.identity_columns(1);
        let info = l.accms[0].clone();
        // Insert {1, 2, 5, 1}.
        let mut c = Contribution::identity(info.op, info.prim);
        for v in [1i64, 2, 5, 1] {
            c.add(info.op, info.prim, &Value::Long(v), 1);
        }
        assert_eq!(apply_contribution(&l, &mut cols, 0, 0, &c, true), ApplyOutcome::Changed);
        assert_eq!(cols[0].get(0), Value::Long(1));
        assert_eq!(cols[2].get(0), Value::Long(2));

        // Retract a 5 and one 1: still fine under CNT.
        let mut d = Contribution::identity(info.op, info.prim);
        d.add(info.op, info.prim, &Value::Long(5), -1);
        d.add(info.op, info.prim, &Value::Long(1), -1);
        assert_eq!(apply_contribution(&l, &mut cols, 0, 0, &d, true), ApplyOutcome::Changed);
        assert_eq!(cols[0].get(0), Value::Long(1));
        assert_eq!(cols[2].get(0), Value::Long(1));

        // Retract the last 1: recompute required.
        let mut e = Contribution::identity(info.op, info.prim);
        e.add(info.op, info.prim, &Value::Long(1), -1);
        assert_eq!(
            apply_contribution(&l, &mut cols, 0, 0, &e, true),
            ApplyOutcome::NeedsRecompute
        );
    }

    #[test]
    fn monoid_without_cnt_always_recomputes_on_retraction() {
        let l = min_layout();
        let mut cols = l.identity_columns(1);
        let info = l.accms[0].clone();
        let mut c = Contribution::identity(info.op, info.prim);
        c.add(info.op, info.prim, &Value::Long(1), 1);
        c.add(info.op, info.prim, &Value::Long(9), 1);
        apply_contribution(&l, &mut cols, 0, 0, &c, false);
        let mut d = Contribution::identity(info.op, info.prim);
        d.add(info.op, info.prim, &Value::Long(9), -1); // harmless value
        assert_eq!(
            apply_contribution(&l, &mut cols, 0, 0, &d, false),
            ApplyOutcome::NeedsRecompute
        );
    }

    #[test]
    fn contribution_merge_is_preaggregation() {
        let info = AccmInfo {
            name: "m".into(),
            prim: PrimType::Long,
            op: AccmOp::Min,
        };
        let mut a = Contribution::identity(info.op, info.prim);
        a.add(info.op, info.prim, &Value::Long(3), 1);
        let mut b = Contribution::identity(info.op, info.prim);
        b.add(info.op, info.prim, &Value::Long(3), 1);
        b.add(info.op, info.prim, &Value::Long(7), 1);
        a.merge(&b, info.op, info.prim);
        assert_eq!(a.count, 3);
        let m = a.monoid.unwrap();
        assert_eq!(m.value, Value::Long(3));
        assert_eq!(m.count, 2);
    }

    #[test]
    fn buffer_merge_matches_serial_accumulation() {
        let accms = vec![
            AccmInfo {
                name: "s".into(),
                prim: PrimType::Long,
                op: AccmOp::Sum,
            },
            AccmInfo {
                name: "m".into(),
                prim: PrimType::Long,
                op: AccmOp::Min,
            },
        ];
        let globals = vec![AccmInfo {
            name: "g".into(),
            prim: PrimType::Long,
            op: AccmOp::Sum,
        }];
        // Contributions for vertices 1, 2 split across two chunk buffers,
        // including a monoid retraction carried raw.
        let contribs: &[(usize, VertexId, i64, i64)] = &[
            (0, 1, 7, 1),
            (1, 1, 4, 1),
            (0, 2, 3, 1),
            (1, 1, 9, -1),
            (0, 1, 2, 1),
            (1, 2, 5, 1),
        ];
        let apply = |buf: &mut AccBuffer, slice: &[(usize, VertexId, i64, i64)]| {
            for &(a, v, val, mult) in slice {
                buf.add_vertex(a, &accms[a], v, &Value::Long(val), mult);
                buf.add_global(0, &globals[0], &Value::Long(val), mult);
            }
        };
        let mut serial = AccBuffer::new(&accms, &globals);
        apply(&mut serial, contribs);
        let mut chunk0 = AccBuffer::new(&accms, &globals);
        apply(&mut chunk0, &contribs[..3]);
        let mut chunk1 = AccBuffer::new(&accms, &globals);
        apply(&mut chunk1, &contribs[3..]);
        chunk0.merge(chunk1, &accms, &globals);

        let (s_vertex, s_globals) = drain(serial, &accms, &globals);
        let (p_vertex, p_globals) = drain(chunk0, &accms, &globals);
        for a in 0..accms.len() {
            let mut s = s_vertex[a].clone();
            let mut p = p_vertex[a].clone();
            s.sort_by_key(|(v, _)| *v);
            p.sort_by_key(|(v, _)| *v);
            assert_eq!(s, p);
        }
        assert_eq!(s_globals[0].folded, p_globals[0].folded);
        assert_eq!(s_globals[0].count, p_globals[0].count);
    }

    /// Drain a buffer into sortable `(target, Contribution)` lists plus the
    /// converted global contributions.
    fn drain(
        buf: AccBuffer,
        accms: &[AccmInfo],
        globals: &[AccmInfo],
    ) -> (Vec<Vec<(VertexId, Contribution)>>, Vec<Contribution>) {
        let AccBuffer { vertex, globals: g } = buf;
        let vertex = vertex
            .into_iter()
            .zip(accms)
            .map(|(m, info)| {
                let mut out = Vec::new();
                m.into_each(info, |v, c| out.push((v, c)));
                out
            })
            .collect();
        let g = g
            .into_iter()
            .zip(globals)
            .map(|(s, info)| s.into_contrib(info))
            .collect();
        (vertex, g)
    }

    /// Every specialized lane must convert back to the exact
    /// `Contribution` the generic path would have produced — same folds,
    /// same monoid state, same retraction order, bit for bit.
    #[test]
    fn specialized_lanes_are_bit_exact_images_of_generic() {
        use itg_compiler::AccmLane;

        let cases: Vec<(AccmOp, PrimType, Vec<Value>)> = vec![
            (
                AccmOp::Sum,
                PrimType::Long,
                vec![Value::Long(7), Value::Long(-3), Value::Long(i64::MAX)],
            ),
            (
                AccmOp::Sum,
                PrimType::Double,
                vec![Value::Double(0.1), Value::Double(1e300), Value::Double(-0.0)],
            ),
            (
                AccmOp::Min,
                PrimType::Long,
                vec![Value::Long(5), Value::Long(2), Value::Long(2)],
            ),
            (
                AccmOp::Max,
                PrimType::Long,
                vec![Value::Long(5), Value::Long(9), Value::Long(9)],
            ),
            (
                AccmOp::Min,
                PrimType::Double,
                vec![Value::Double(-0.0), Value::Double(0.0), Value::Double(f64::NAN)],
            ),
            (
                AccmOp::Max,
                PrimType::Double,
                vec![Value::Double(1.5), Value::Double(f64::NAN), Value::Double(1.5)],
            ),
            (
                AccmOp::Or,
                PrimType::Bool,
                vec![Value::Bool(false), Value::Bool(true), Value::Bool(false)],
            ),
            (
                AccmOp::And,
                PrimType::Bool,
                vec![Value::Bool(true), Value::Bool(false), Value::Bool(true)],
            ),
        ];
        for (op, prim, values) in cases {
            let info = AccmInfo {
                name: "x".into(),
                prim,
                op,
            };
            let lane = AccmLane::select(op, prim);
            assert!(lane.is_specialized(), "{op:?}/{prim:?} should specialize");
            let accms = vec![info.clone()];
            let globals = vec![info.clone()];
            let lanes = vec![lane];
            let mut gen_buf = AccBuffer::new(&accms, &globals);
            let mut spec = AccBuffer::with_lanes(&globals, &lanes, &lanes);
            // A mix of inserts, multi-multiplicity, and retractions.
            let mults = [1i64, 2, -1, 1, -2, 3];
            for (i, m) in mults.iter().enumerate() {
                let v = &values[i % values.len()];
                gen_buf.add_vertex(0, &info, 4, v, *m);
                gen_buf.add_global(0, &info, v, *m);
                spec.add_vertex(0, &info, 4, v, *m);
                spec.add_global(0, &info, v, *m);
            }
            let (gv, gg) = drain(gen_buf, &accms, &globals);
            let (sv, sg) = drain(spec, &accms, &globals);
            assert_eq!(gv, sv, "{op:?}/{prim:?} vertex lane diverged");
            assert_eq!(gg, sg, "{op:?}/{prim:?} global lane diverged");
        }
    }

    #[test]
    fn reset_state_clears_everything() {
        let l = min_layout();
        let mut cols = l.identity_columns(1);
        let info = l.accms[0].clone();
        let mut c = Contribution::identity(info.op, info.prim);
        c.add(info.op, info.prim, &Value::Long(4), 1);
        apply_contribution(&l, &mut cols, 0, 0, &c, true);
        reset_state(&l, &mut cols, 0, 0);
        assert_eq!(cols[0].get(0), Value::Long(i64::MAX));
        assert!(!l.touched(&cols, 0));
    }
}
