//! Accumulator state and incremental Accumulate (paper §5.4).
//!
//! Per-vertex accumulator state is stored columnarly: for each accumulator,
//! its value, its *contribution count* (net number of walks that targeted
//! the vertex — a vertex is "touched", and Update runs for it, when any
//! count is positive), and — for Min/Max — the support count of the current
//! extremum (the CNT optimization).
//!
//! Contributions emitted by walk enumeration are pre-aggregated per target
//! before any exchange: Abelian-group values fold through the operation
//! (retractions through the inverse); monoid insertions fold through a
//! [`CountedAccm`]; retractions that cannot be folded (monoid deletes, or a
//! `Prod` retraction of zero) are carried raw and resolved against the
//! stored state — possibly demanding recomputation.

use itg_gsa::accm::{AccmOp, CountedAccm, RetractOutcome};
use itg_gsa::value::{ColumnData, PrimType, Value, ValueType};
use itg_gsa::{FxHashMap, VertexId};
use itg_lnga::AccmInfo;

/// Column layout of the accumulator state: `[values..][counts..][supports..]`
/// where supports exist only for Min/Max accumulators.
#[derive(Debug, Clone)]
pub struct AccmLayout {
    pub accms: Vec<AccmInfo>,
    /// Support-column index per accumulator (Min/Max only).
    support_col: Vec<Option<usize>>,
    pub num_cols: usize,
}

impl AccmLayout {
    pub fn new(accms: &[AccmInfo]) -> AccmLayout {
        let n = accms.len();
        let mut support_col = Vec::with_capacity(n);
        let mut next = 2 * n;
        for a in accms {
            if matches!(a.op, AccmOp::Min | AccmOp::Max) {
                support_col.push(Some(next));
                next += 1;
            } else {
                support_col.push(None);
            }
        }
        AccmLayout {
            accms: accms.to_vec(),
            support_col,
            num_cols: next,
        }
    }

    pub fn num_accms(&self) -> usize {
        self.accms.len()
    }

    pub fn value_col(&self, i: usize) -> usize {
        i
    }

    pub fn count_col(&self, i: usize) -> usize {
        self.accms.len() + i
    }

    pub fn support_col(&self, i: usize) -> Option<usize> {
        self.support_col[i]
    }

    /// Column types for the backing [`itg_store::AttrStore`].
    pub fn column_types(&self) -> Vec<ValueType> {
        let mut cols: Vec<ValueType> = self
            .accms
            .iter()
            .map(|a| ValueType::Prim(a.prim))
            .collect();
        cols.extend(std::iter::repeat_n(
            ValueType::Prim(PrimType::Long),
            self.accms.len(),
        ));
        for a in &self.accms {
            if matches!(a.op, AccmOp::Min | AccmOp::Max) {
                cols.push(ValueType::Prim(PrimType::Long));
            }
        }
        cols
    }

    /// Fresh identity-state columns for `n` vertices.
    pub fn identity_columns(&self, n: usize) -> Vec<ColumnData> {
        let mut cols: Vec<ColumnData> = Vec::with_capacity(self.num_cols);
        for a in &self.accms {
            let mut c = ColumnData::zeros(ValueType::Prim(a.prim), n);
            let ident = a.op.identity(a.prim);
            for i in 0..n {
                c.set(i, &ident);
            }
            cols.push(c);
        }
        for _ in 0..self.accms.len() {
            cols.push(ColumnData::zeros(ValueType::Prim(PrimType::Long), n));
        }
        for a in &self.accms {
            if matches!(a.op, AccmOp::Min | AccmOp::Max) {
                cols.push(ColumnData::zeros(ValueType::Prim(PrimType::Long), n));
            }
        }
        cols
    }

    /// Read a vertex's full state row.
    pub fn row(&self, cols: &[ColumnData], local: usize) -> Vec<Value> {
        (0..self.num_cols).map(|c| cols[c].get(local)).collect()
    }

    /// Is the vertex touched (any positive contribution count)?
    pub fn touched(&self, cols: &[ColumnData], local: usize) -> bool {
        (0..self.num_accms())
            .any(|i| cols[self.count_col(i)].get(local).as_i64().unwrap_or(0) > 0)
    }
}

/// A pre-aggregated set of contributions to one target.
#[derive(Debug, Clone, PartialEq)]
pub struct Contribution {
    /// Group-foldable part (starts at the identity).
    pub folded: Value,
    /// Net contribution count.
    pub count: i64,
    /// Monoid insert part (Min/Max).
    pub monoid: Option<CountedAccm>,
    /// Retractions that could not be folded.
    pub retractions: Vec<Value>,
}

impl Contribution {
    pub fn identity(op: AccmOp, prim: PrimType) -> Contribution {
        Contribution {
            folded: op.identity(prim),
            count: 0,
            monoid: None,
            retractions: Vec::new(),
        }
    }

    /// Fold one walk's contribution (`mult` = ±1 … ±k).
    pub fn add(&mut self, op: AccmOp, prim: PrimType, value: &Value, mult: i64) {
        let times = mult.unsigned_abs();
        self.count += mult;
        for _ in 0..times {
            if mult > 0 {
                if op.is_group() {
                    self.folded = op.combine(&self.folded, value, prim);
                } else {
                    self.monoid
                        .get_or_insert_with(|| CountedAccm::identity(op, prim))
                        .insert(op, prim, value);
                }
            } else if op.is_group() {
                if let Some(inv) = op.inverse(value, prim) {
                    self.folded = op.combine(&self.folded, &inv, prim);
                } else {
                    self.retractions.push(value.clone());
                }
            } else {
                self.retractions.push(value.clone());
            }
        }
    }

    /// Merge another pre-aggregated contribution (exchange path).
    pub fn merge(&mut self, other: &Contribution, op: AccmOp, prim: PrimType) {
        self.count += other.count;
        self.folded = op.combine(&self.folded, &other.folded, prim);
        if let Some(m) = &other.monoid {
            self.monoid
                .get_or_insert_with(|| CountedAccm::identity(op, prim))
                .merge(m, op, prim);
        }
        self.retractions.extend(other.retractions.iter().cloned());
    }

    /// Approximate serialized size in bytes, for network accounting.
    pub fn wire_bytes(&self) -> u64 {
        24 + self.retractions.len() as u64 * 8 + if self.monoid.is_some() { 16 } else { 0 }
    }
}

/// Per-worker contribution buffers: one map per vertex accumulator plus one
/// slot per global accumulator.
#[derive(Debug)]
pub struct AccBuffer {
    pub vertex: Vec<FxHashMap<VertexId, Contribution>>,
    pub globals: Vec<Contribution>,
}

impl AccBuffer {
    pub fn new(accms: &[AccmInfo], globals: &[AccmInfo]) -> AccBuffer {
        AccBuffer {
            vertex: accms.iter().map(|_| FxHashMap::default()).collect(),
            globals: globals
                .iter()
                .map(|g| Contribution::identity(g.op, g.prim))
                .collect(),
        }
    }

    pub fn add_vertex(
        &mut self,
        accm_idx: usize,
        info: &AccmInfo,
        target: VertexId,
        value: &Value,
        mult: i64,
    ) {
        self.vertex[accm_idx]
            .entry(target)
            .or_insert_with(|| Contribution::identity(info.op, info.prim))
            .add(info.op, info.prim, value, mult);
    }

    pub fn add_global(&mut self, idx: usize, info: &AccmInfo, value: &Value, mult: i64) {
        self.globals[idx].add(info.op, info.prim, value, mult);
    }

    /// Merge another buffer into this one (the intra-partition parallel
    /// path). Per key, `other` carries one pre-aggregated [`Contribution`]
    /// whose internal fold/retraction order is the enumeration order of the
    /// chunk that produced it; merging chunk buffers in chunk order
    /// therefore concatenates per-key contribution sequences exactly as a
    /// serial enumeration over the same item list would, so the merged
    /// buffer is a pure function of the chunk decomposition — independent
    /// of how many threads executed the chunks.
    pub fn merge(&mut self, other: AccBuffer, accms: &[AccmInfo], globals: &[AccmInfo]) {
        for (a, map) in other.vertex.into_iter().enumerate() {
            let info = &accms[a];
            for (v, c) in map {
                self.vertex[a]
                    .entry(v)
                    .or_insert_with(|| Contribution::identity(info.op, info.prim))
                    .merge(&c, info.op, info.prim);
            }
        }
        for (g, c) in other.globals.into_iter().enumerate() {
            let info = &globals[g];
            self.globals[g].merge(&c, info.op, info.prim);
        }
    }
}

/// Result of applying one contribution set to a vertex's stored state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyOutcome {
    Unchanged,
    Changed,
    /// Monoid (or non-invertible group) retraction hit the stored extremum:
    /// the accumulator must be recomputed from its inputs.
    NeedsRecompute,
}

/// Apply a contribution to the state columns at `local` for accumulator
/// `i`. `use_cnt` is the CNT optimization flag: when false, *any*
/// unfoldable retraction forces recomputation.
pub fn apply_contribution(
    layout: &AccmLayout,
    cols: &mut [ColumnData],
    local: usize,
    i: usize,
    c: &Contribution,
    use_cnt: bool,
) -> ApplyOutcome {
    let info = &layout.accms[i];
    let (op, prim) = (info.op, info.prim);
    let vcol = layout.value_col(i);
    let ccol = layout.count_col(i);

    let before_value = cols[vcol].get(local);
    let before_count = cols[ccol].get(local).as_i64().unwrap_or(0);

    let new_count = before_count + c.count;
    cols[ccol].set(local, &Value::Long(new_count));

    let mut needs_recompute = false;
    if op.is_group() {
        let mut v = op.combine(&before_value, &c.folded, prim);
        if !c.retractions.is_empty() {
            needs_recompute = true;
        }
        if new_count == 0 && !needs_recompute {
            // All contributions cancelled: restore the exact identity (the
            // floating-point fold may leave −0.0 or tiny residue).
            v = op.identity(prim);
        }
        cols[vcol].set(local, &v);
    } else {
        // Monoid: fold inserts through the counted state, then retract.
        let scol = layout.support_col(i).expect("monoid has support column");
        let mut state = CountedAccm {
            value: before_value.clone(),
            count: cols[scol].get(local).as_i64().unwrap_or(0) as u64,
        };
        if let Some(m) = &c.monoid {
            state.merge(m, op, prim);
        }
        for r in &c.retractions {
            if !use_cnt {
                needs_recompute = true;
                break;
            }
            match state.retract(r) {
                RetractOutcome::NeedsRecompute => {
                    needs_recompute = true;
                    break;
                }
                RetractOutcome::Unaffected | RetractOutcome::SupportDecremented => {}
            }
        }
        if !needs_recompute {
            cols[vcol].set(local, &state.value);
            cols[scol].set(local, &Value::Long(state.count as i64));
        }
        if new_count == 0 && !needs_recompute {
            cols[vcol].set(local, &op.identity(prim));
            cols[scol].set(local, &Value::Long(0));
        }
    }

    if needs_recompute {
        ApplyOutcome::NeedsRecompute
    } else if cols[vcol].get(local) != before_value || new_count != before_count {
        ApplyOutcome::Changed
    } else {
        ApplyOutcome::Unchanged
    }
}

/// Reset accumulator `i`'s state at `local` to identity/untouched (the
/// starting point of a recomputation).
pub fn reset_state(layout: &AccmLayout, cols: &mut [ColumnData], local: usize, i: usize) {
    let info = &layout.accms[i];
    cols[layout.value_col(i)].set(local, &info.op.identity(info.prim));
    cols[layout.count_col(i)].set(local, &Value::Long(0));
    if let Some(s) = layout.support_col(i) {
        cols[s].set(local, &Value::Long(0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_layout() -> AccmLayout {
        AccmLayout::new(&[AccmInfo {
            name: "sum".into(),
            prim: PrimType::Double,
            op: AccmOp::Sum,
        }])
    }

    fn min_layout() -> AccmLayout {
        AccmLayout::new(&[AccmInfo {
            name: "m".into(),
            prim: PrimType::Long,
            op: AccmOp::Min,
        }])
    }

    #[test]
    fn layout_columns() {
        let l = min_layout();
        assert_eq!(l.num_cols, 3); // value, count, support
        assert_eq!(l.value_col(0), 0);
        assert_eq!(l.count_col(0), 1);
        assert_eq!(l.support_col(0), Some(2));
        let s = sum_layout();
        assert_eq!(s.num_cols, 2);
        assert_eq!(s.support_col(0), None);
    }

    #[test]
    fn group_fold_and_apply() {
        let l = sum_layout();
        let mut cols = l.identity_columns(4);
        let info = &l.accms[0].clone();
        let mut c = Contribution::identity(AccmOp::Sum, PrimType::Double);
        c.add(info.op, info.prim, &Value::Double(2.0), 1);
        c.add(info.op, info.prim, &Value::Double(3.0), 1);
        c.add(info.op, info.prim, &Value::Double(2.0), -1);
        let out = apply_contribution(&l, &mut cols, 1, 0, &c, true);
        assert_eq!(out, ApplyOutcome::Changed);
        assert_eq!(cols[0].get(1), Value::Double(3.0));
        assert_eq!(cols[1].get(1), Value::Long(1));
        assert!(l.touched(&cols, 1));
        assert!(!l.touched(&cols, 0));
    }

    #[test]
    fn group_full_cancellation_restores_identity() {
        let l = sum_layout();
        let mut cols = l.identity_columns(1);
        let info = l.accms[0].clone();
        let mut c = Contribution::identity(info.op, info.prim);
        c.add(info.op, info.prim, &Value::Double(0.1), 1);
        apply_contribution(&l, &mut cols, 0, 0, &c, true);
        let mut d = Contribution::identity(info.op, info.prim);
        d.add(info.op, info.prim, &Value::Double(0.1), -1);
        apply_contribution(&l, &mut cols, 0, 0, &d, true);
        assert_eq!(cols[0].get(0), Value::Double(0.0));
        assert!(!l.touched(&cols, 0));
    }

    #[test]
    fn monoid_cnt_avoids_recompute() {
        let l = min_layout();
        let mut cols = l.identity_columns(1);
        let info = l.accms[0].clone();
        // Insert {1, 2, 5, 1}.
        let mut c = Contribution::identity(info.op, info.prim);
        for v in [1i64, 2, 5, 1] {
            c.add(info.op, info.prim, &Value::Long(v), 1);
        }
        assert_eq!(apply_contribution(&l, &mut cols, 0, 0, &c, true), ApplyOutcome::Changed);
        assert_eq!(cols[0].get(0), Value::Long(1));
        assert_eq!(cols[2].get(0), Value::Long(2));

        // Retract a 5 and one 1: still fine under CNT.
        let mut d = Contribution::identity(info.op, info.prim);
        d.add(info.op, info.prim, &Value::Long(5), -1);
        d.add(info.op, info.prim, &Value::Long(1), -1);
        assert_eq!(apply_contribution(&l, &mut cols, 0, 0, &d, true), ApplyOutcome::Changed);
        assert_eq!(cols[0].get(0), Value::Long(1));
        assert_eq!(cols[2].get(0), Value::Long(1));

        // Retract the last 1: recompute required.
        let mut e = Contribution::identity(info.op, info.prim);
        e.add(info.op, info.prim, &Value::Long(1), -1);
        assert_eq!(
            apply_contribution(&l, &mut cols, 0, 0, &e, true),
            ApplyOutcome::NeedsRecompute
        );
    }

    #[test]
    fn monoid_without_cnt_always_recomputes_on_retraction() {
        let l = min_layout();
        let mut cols = l.identity_columns(1);
        let info = l.accms[0].clone();
        let mut c = Contribution::identity(info.op, info.prim);
        c.add(info.op, info.prim, &Value::Long(1), 1);
        c.add(info.op, info.prim, &Value::Long(9), 1);
        apply_contribution(&l, &mut cols, 0, 0, &c, false);
        let mut d = Contribution::identity(info.op, info.prim);
        d.add(info.op, info.prim, &Value::Long(9), -1); // harmless value
        assert_eq!(
            apply_contribution(&l, &mut cols, 0, 0, &d, false),
            ApplyOutcome::NeedsRecompute
        );
    }

    #[test]
    fn contribution_merge_is_preaggregation() {
        let info = AccmInfo {
            name: "m".into(),
            prim: PrimType::Long,
            op: AccmOp::Min,
        };
        let mut a = Contribution::identity(info.op, info.prim);
        a.add(info.op, info.prim, &Value::Long(3), 1);
        let mut b = Contribution::identity(info.op, info.prim);
        b.add(info.op, info.prim, &Value::Long(3), 1);
        b.add(info.op, info.prim, &Value::Long(7), 1);
        a.merge(&b, info.op, info.prim);
        assert_eq!(a.count, 3);
        let m = a.monoid.unwrap();
        assert_eq!(m.value, Value::Long(3));
        assert_eq!(m.count, 2);
    }

    #[test]
    fn buffer_merge_matches_serial_accumulation() {
        let accms = vec![
            AccmInfo {
                name: "s".into(),
                prim: PrimType::Long,
                op: AccmOp::Sum,
            },
            AccmInfo {
                name: "m".into(),
                prim: PrimType::Long,
                op: AccmOp::Min,
            },
        ];
        let globals = vec![AccmInfo {
            name: "g".into(),
            prim: PrimType::Long,
            op: AccmOp::Sum,
        }];
        // Contributions for vertices 1, 2 split across two chunk buffers,
        // including a monoid retraction carried raw.
        let contribs: &[(usize, VertexId, i64, i64)] = &[
            (0, 1, 7, 1),
            (1, 1, 4, 1),
            (0, 2, 3, 1),
            (1, 1, 9, -1),
            (0, 1, 2, 1),
            (1, 2, 5, 1),
        ];
        let apply = |buf: &mut AccBuffer, slice: &[(usize, VertexId, i64, i64)]| {
            for &(a, v, val, mult) in slice {
                buf.add_vertex(a, &accms[a], v, &Value::Long(val), mult);
                buf.add_global(0, &globals[0], &Value::Long(val), mult);
            }
        };
        let mut serial = AccBuffer::new(&accms, &globals);
        apply(&mut serial, contribs);
        let mut chunk0 = AccBuffer::new(&accms, &globals);
        apply(&mut chunk0, &contribs[..3]);
        let mut chunk1 = AccBuffer::new(&accms, &globals);
        apply(&mut chunk1, &contribs[3..]);
        chunk0.merge(chunk1, &accms, &globals);

        for a in 0..accms.len() {
            let mut s: Vec<_> = serial.vertex[a].iter().collect();
            let mut p: Vec<_> = chunk0.vertex[a].iter().collect();
            s.sort_by_key(|(v, _)| **v);
            p.sort_by_key(|(v, _)| **v);
            assert_eq!(s.len(), p.len());
            for ((sv, sc), (pv, pc)) in s.iter().zip(&p) {
                assert_eq!(sv, pv);
                assert_eq!(sc.folded, pc.folded);
                assert_eq!(sc.count, pc.count);
                assert_eq!(sc.retractions, pc.retractions);
                assert_eq!(
                    sc.monoid.as_ref().map(|m| (m.value.clone(), m.count)),
                    pc.monoid.as_ref().map(|m| (m.value.clone(), m.count))
                );
            }
        }
        assert_eq!(serial.globals[0].folded, chunk0.globals[0].folded);
        assert_eq!(serial.globals[0].count, chunk0.globals[0].count);
    }

    #[test]
    fn reset_state_clears_everything() {
        let l = min_layout();
        let mut cols = l.identity_columns(1);
        let info = l.accms[0].clone();
        let mut c = Contribution::identity(info.op, info.prim);
        c.add(info.op, info.prim, &Value::Long(4), 1);
        apply_contribution(&l, &mut cols, 0, 0, &c, true);
        reset_state(&l, &mut cols, 0, 0);
        assert_eq!(cols[0].get(0), Value::Long(i64::MAX));
        assert!(!l.touched(&cols, 0));
    }
}
