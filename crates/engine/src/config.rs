//! Engine configuration: simulated cluster size, window/buffer budgets, and
//! the optimization flags evaluated in the paper's ablation (§6.4.2).
//!
//! Environment knobs are consolidated in [`EngineConfig::from_env`]; an
//! explicit builder/setter call always wins over the environment, which in
//! turn wins over the built-in default.

use crate::durability::DurabilityKind;
use crate::transport::TransportKind;
use itg_store::MaintenancePolicy;

/// The run-time optimization switches (Figure 16's ablation axes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptFlags {
    /// TR — traversal reordering: start Δ-walk enumeration at the delta
    /// stream's endpoints instead of re-executing the full prefix.
    pub traversal_reorder: bool,
    /// NP — neighbor pruning: restrict Δ-walk enumeration to the per-depth
    /// vertex sets found by backward MS-BFS.
    pub neighbor_prune: bool,
    /// SWS — seek/window sharing: batch-process the Rule ⑦ sub-queries per
    /// start vertex so their window seeks share IO.
    pub seek_window_share: bool,
    /// CNT — Min/Max with support counting: avoid monoid recomputation when
    /// the retracted value was not the sole extremum.
    pub min_count: bool,
    /// SPEC — specialized accumulate lanes: monomorphize the Δ-walk
    /// accumulate path per accumulator `(op, prim)` pair (DESIGN.md §10),
    /// selected at plan-compile time. Off forces the generic `Value`
    /// dispatch path for every accumulator; results are byte-identical
    /// either way (the `specialization_equivalence` suite pins this).
    pub specialize: bool,
}

impl Default for OptFlags {
    fn default() -> OptFlags {
        OptFlags {
            traversal_reorder: true,
            neighbor_prune: true,
            seek_window_share: true,
            min_count: true,
            specialize: true,
        }
    }
}

impl OptFlags {
    /// The BASE configuration of §6.4.2: everything off.
    pub fn none() -> OptFlags {
        OptFlags {
            traversal_reorder: false,
            neighbor_prune: false,
            seek_window_share: false,
            min_count: false,
            specialize: false,
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of simulated machines (partitions / worker threads).
    pub machines: usize,
    /// Vertices per graph-window chunk during walk enumeration.
    pub window_capacity: usize,
    /// Buffer pool capacity per machine, bytes.
    pub buffer_pool_bytes: u64,
    /// Page size, bytes.
    pub page_size: u64,
    /// Superstep cap (e.g. 10 for the paper's Group 1 runs); `usize::MAX`
    /// means run to convergence.
    pub max_supersteps: usize,
    /// Vertex-store delta maintenance policy (Figure 17).
    pub maintenance: MaintenancePolicy,
    /// NGW segment cache capacity in bytes (DESIGN.md §10.2): window
    /// segments reconstructed by the incremental read path are pinned
    /// across supersteps and mutation batches, refreshed by overlaying only
    /// the delta runs recorded since they were cached, and evicted by
    /// cost-based score (`reload_bytes × (hits + 1) ÷ size`). `0` (the
    /// default) disables caching — every window load re-reads its chain, so
    /// maintenance-policy IO curves stay comparable to earlier PRs. Results
    /// are byte-identical at every capacity (the `cache_oracle` suite pins
    /// this). Environment knob: `ITG_CACHE_BYTES`.
    pub cache_bytes: u64,
    pub opts: OptFlags,
    /// Run partition phases on worker threads (one per machine). With
    /// `false` the phases run sequentially — deterministic and easier to
    /// debug; metrics are identical either way.
    pub parallel: bool,
    /// Intra-partition worker threads per machine for walk enumeration
    /// (one-shot Traverse and Rule ⑦ ΔTraverse). Start-vertex lists are
    /// split into chunks whose boundaries depend only on the list length,
    /// and chunk buffers are merged in chunk order, so every value of this
    /// knob produces byte-identical results — including `1`, which runs
    /// the same chunked path inline.
    pub threads_per_machine: usize,
    /// The superstep message-exchange plane. [`TransportKind::Local`] (the
    /// default) keeps every partition in this process;
    /// [`TransportKind::Process`] runs partition groups in separate
    /// `itg-partition-worker` OS processes coordinated over pipes.
    pub transport: TransportKind,
    /// Durability: [`DurabilityKind::None`] (default) or
    /// [`DurabilityKind::Wal`], which logs every state-changing command to
    /// a segmented write-ahead log before executing it and checkpoints
    /// snapshots for [`crate::Session::recover`] (DESIGN.md §9). Only
    /// supported with [`TransportKind::Local`].
    pub durability: DurabilityKind,
    /// Whether [`crate::Session::checkpoint`] writes *incremental* (delta)
    /// snapshots — an rsync-style byte diff against the previous snapshot
    /// — instead of a full state image every time (DESIGN.md §9). On (the
    /// default), checkpoint bytes scale with change volume; epoch 0 and
    /// every [`MAX_DELTA_CHAIN`](crate::durability) -th snapshot are still
    /// full so recovery composes a bounded chain. Off forces every
    /// snapshot full. Recovery is byte-identical either way. Environment
    /// knob: `ITG_SNAPSHOT_DELTA`.
    pub snapshot_delta: bool,
    /// Observability recorder threaded through the session, its stores,
    /// and its walkers. Defaults to a clone of [`itg_obs::global`] — a
    /// no-op unless the `ITG_PROFILE` environment variable enables it (or
    /// `itg_obs::init_global` ran first). Override with
    /// [`itg_obs::Recorder::enabled`] to profile one session in isolation:
    ///
    /// ```
    /// let mut cfg = itg_engine::EngineConfig::default();
    /// cfg.obs = itg_obs::Recorder::enabled();
    /// assert!(cfg.obs.is_enabled());
    /// ```
    pub obs: itg_obs::Recorder,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            machines: 1,
            window_capacity: 1024,
            buffer_pool_bytes: 64 << 20,
            page_size: 4096,
            max_supersteps: usize::MAX,
            maintenance: MaintenancePolicy::CostBased,
            cache_bytes: 0,
            opts: OptFlags::default(),
            parallel: false,
            threads_per_machine: default_threads_per_machine(),
            transport: TransportKind::Local,
            durability: DurabilityKind::None,
            snapshot_delta: true,
            obs: itg_obs::global().clone(),
        }
    }
}

/// Default intra-partition thread count: the `ITG_THREADS_PER_MACHINE`
/// environment variable when set (CI runs the whole test suite at 4 this
/// way), otherwise 1.
fn default_threads_per_machine() -> usize {
    parse_threads(std::env::var("ITG_THREADS_PER_MACHINE").ok().as_deref()).unwrap_or(1)
}

fn parse_threads(var: Option<&str>) -> Option<usize> {
    var.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

impl EngineConfig {
    pub fn with_machines(machines: usize) -> EngineConfig {
        EngineConfig {
            machines,
            parallel: machines > 1,
            ..EngineConfig::default()
        }
    }

    /// Builder-style override of [`EngineConfig::threads_per_machine`].
    pub fn with_threads(mut self, threads: usize) -> EngineConfig {
        self.threads_per_machine = threads.max(1);
        self
    }

    /// A configuration seeded from the process environment — the one place
    /// every `ITG_*` engine knob is interpreted:
    ///
    /// | variable                   | effect                                 |
    /// |----------------------------|----------------------------------------|
    /// | `ITG_THREADS_PER_MACHINE`  | `threads_per_machine` (integer ≥ 1)    |
    /// | `ITG_PROFILE`              | any non-empty value enables `obs`      |
    /// | `ITG_WAL_DIR`              | `durability = Wal { dir }`             |
    /// | `ITG_CACHE_BYTES`          | `cache_bytes` (integer; NGW cache)     |
    /// | `ITG_SNAPSHOT_DELTA`       | `snapshot_delta` (`1`/`true`/`0`/`false`) |
    ///
    /// Precedence: an explicit setter/builder call after this constructor
    /// overrides the environment, which overrides the built-in default.
    pub fn from_env() -> EngineConfig {
        EngineConfig::from_env_lookup(|k| std::env::var(k).ok())
    }

    /// [`EngineConfig::from_env`] with an injectable variable lookup —
    /// deterministic under concurrent test execution (no process-global
    /// environment mutation needed to test precedence).
    pub fn from_env_lookup(get: impl Fn(&str) -> Option<String>) -> EngineConfig {
        let mut cfg = EngineConfig::default();
        if let Some(n) = parse_threads(get("ITG_THREADS_PER_MACHINE").as_deref()) {
            cfg.threads_per_machine = n;
        }
        if get("ITG_PROFILE").is_some_and(|v| !v.trim().is_empty()) {
            cfg.obs = itg_obs::Recorder::enabled();
        }
        if let Some(dir) = get("ITG_WAL_DIR").filter(|v| !v.trim().is_empty()) {
            cfg.durability = DurabilityKind::Wal {
                dir: std::path::PathBuf::from(dir.trim()),
            };
        }
        if let Some(bytes) = get("ITG_CACHE_BYTES")
            .and_then(|s| s.trim().parse::<u64>().ok())
        {
            cfg.cache_bytes = bytes;
        }
        if let Some(v) = get("ITG_SNAPSHOT_DELTA") {
            match v.trim().to_ascii_lowercase().as_str() {
                "1" | "true" => cfg.snapshot_delta = true,
                "0" | "false" => cfg.snapshot_delta = false,
                _ => {} // tuning knob: garbage falls back to the default
            }
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_all_optimizations() {
        let c = EngineConfig::default();
        assert!(c.opts.traversal_reorder && c.opts.neighbor_prune);
        assert!(c.opts.seek_window_share && c.opts.min_count);
        assert!(c.opts.specialize);
        assert_eq!(c.machines, 1);
        // The NGW cache defaults off so maintenance-policy IO curves stay
        // comparable across PRs.
        assert_eq!(c.cache_bytes, 0);
    }

    #[test]
    fn with_threads_clamps_to_one() {
        assert_eq!(EngineConfig::default().with_threads(0).threads_per_machine, 1);
        assert_eq!(EngineConfig::default().with_threads(4).threads_per_machine, 4);
    }

    #[test]
    fn from_env_precedence_is_builder_over_env_over_default() {
        // Default when the environment is silent.
        let base = EngineConfig::from_env_lookup(|_| None);
        assert_eq!(base.threads_per_machine, 1);
        assert!(!base.obs.is_enabled());
        assert_eq!(base.transport, TransportKind::Local);

        // Environment overrides the default …
        let env = EngineConfig::from_env_lookup(|k| match k {
            "ITG_THREADS_PER_MACHINE" => Some(" 3 ".into()),
            "ITG_PROFILE" => Some("1".into()),
            _ => None,
        });
        assert_eq!(env.threads_per_machine, 3);
        assert!(env.obs.is_enabled());

        // … and an explicit builder call overrides the environment.
        let built = EngineConfig::from_env_lookup(|k| {
            (k == "ITG_THREADS_PER_MACHINE").then(|| "3".into())
        })
        .with_threads(7);
        assert_eq!(built.threads_per_machine, 7);

        // Garbage values fall back to the default, not a panic.
        let junk = EngineConfig::from_env_lookup(|k| match k {
            "ITG_THREADS_PER_MACHINE" => Some("zero".into()),
            "ITG_PROFILE" => Some("  ".into()),
            _ => None,
        });
        assert_eq!(junk.threads_per_machine, 1);
        assert!(!junk.obs.is_enabled());
    }

    #[test]
    fn wal_dir_env_enables_durability() {
        let base = EngineConfig::from_env_lookup(|_| None);
        assert_eq!(base.durability, DurabilityKind::None);

        let env = EngineConfig::from_env_lookup(|k| {
            (k == "ITG_WAL_DIR").then(|| " /tmp/itg-wal ".into())
        });
        assert_eq!(
            env.durability,
            DurabilityKind::Wal {
                dir: "/tmp/itg-wal".into()
            }
        );

        // Blank values stay disabled.
        let blank =
            EngineConfig::from_env_lookup(|k| (k == "ITG_WAL_DIR").then(|| "  ".into()));
        assert_eq!(blank.durability, DurabilityKind::None);
    }

    #[test]
    fn base_flags_disable_all() {
        let f = OptFlags::none();
        assert!(!f.traversal_reorder && !f.neighbor_prune);
        assert!(!f.seek_window_share && !f.min_count);
        assert!(!f.specialize);
    }

    #[test]
    fn snapshot_delta_env_parses_like_other_booleans() {
        assert!(EngineConfig::from_env_lookup(|_| None).snapshot_delta);
        for (val, want) in [("1", true), ("true", true), (" TRUE ", true), ("0", false), ("false", false)] {
            let c = EngineConfig::from_env_lookup(|k| {
                (k == "ITG_SNAPSHOT_DELTA").then(|| val.into())
            });
            assert_eq!(c.snapshot_delta, want, "ITG_SNAPSHOT_DELTA={val}");
        }
        // Garbage falls back to the default (on), matching the other
        // tuning knobs.
        let junk = EngineConfig::from_env_lookup(|k| {
            (k == "ITG_SNAPSHOT_DELTA").then(|| "maybe".into())
        });
        assert!(junk.snapshot_delta);
    }

    #[test]
    fn cache_bytes_env_parses() {
        let env = EngineConfig::from_env_lookup(|k| {
            (k == "ITG_CACHE_BYTES").then(|| " 1048576 ".into())
        });
        assert_eq!(env.cache_bytes, 1 << 20);
        let junk =
            EngineConfig::from_env_lookup(|k| (k == "ITG_CACHE_BYTES").then(|| "lots".into()));
        assert_eq!(junk.cache_bytes, 0);
    }
}
