//! Durability: segmented write-ahead logging, incremental snapshots, and
//! recovery (DESIGN.md §9).
//!
//! A durable session logs every state-changing command — the one-shot run,
//! each mutation batch, each incremental run, each compaction — to a
//! [`Wal`] *before* executing it. Because the engine's execution is
//! deterministic given the stores and the command sequence (for every
//! thread count — see [`crate::EngineConfig::threads_per_machine`]),
//! recovery is: materialize the latest snapshot named by `manifest.json`
//! (composing its delta chain over the nearest full snapshot), then
//! re-execute the WAL tail from the manifest's `wal_start`. The recovered
//! session's attribute values, global history, and store epochs are
//! byte-identical to the pre-crash state — a torn final WAL record (the
//! process died mid-append) is truncated, everything else replays.
//!
//! Snapshots serialize the *full* session state: the compiled program's
//! source text, the deterministic configuration subset, every partition's
//! edge-store segment chains (structure preserved exactly — flattening
//! would change neighbor scan order and hence float accumulation order),
//! both attribute stores with their delta chains, the working arrays, the
//! global accumulator history, and the per-snapshot superstep counts.
//! With [`crate::EngineConfig::snapshot_delta`] on (the default), a
//! checkpoint *stores* that image as an [`itg_store::delta`] document
//! against the previous snapshot — epoch 0 and every
//! [`MAX_DELTA_CHAIN`]-th epoch stay full so recovery composes a bounded
//! chain. After the manifest (the commit point) lands, WAL segments fully
//! covered by the new snapshot are garbage-collected.
//!
//! Environment: `ITG_WAL_DIR=<dir>` enables durability from the
//! environment (a [`crate::SessionBuilder::durability`] call wins);
//! `ITG_WAL_SEGMENT_BYTES` / `ITG_GROUP_COMMIT_US` / `ITG_SNAPSHOT_DELTA`
//! tune it. Fault injection for the kill-and-recover suite:
//! `ITG_CRASH_AT=<lsn>` / `ITG_CRASH_TORN` / `ITG_CRASH_ROTATION=<n>`
//! (see `itg_store::wal`) plus `ITG_CRASH_SNAPSHOT=<epoch>` (abort after
//! the snapshot file is written but before the manifest commits it) and
//! `ITG_CRASH_SNAPSHOT_TORN` (with `ITG_CRASH_SNAPSHOT=<epoch>`: move the
//! crash to mid-snapshot-write, leaving a torn `.tmp` the next checkpoint
//! ignores).

use crate::accum::AccmLayout;
use crate::config::EngineConfig;
use crate::graph::ClusterGraph;
use crate::session::{EngineError, PartitionState, Plane, Session, SessionObs};
use crate::transport::{LocalTransport, TransportKind};
use itg_gsa::value::ColumnData;
use itg_gsa::FxHashSet;
use itg_store::codec::{CodecError, CodecResult, Reader, Writer};
use itg_store::snapshot::{get_column, get_value, put_column, put_value};
use itg_store::wal::{crash_env_bool, crash_env_u64, Wal, WalEntry, WalScan, WalStats};
use itg_store::{AttrStore, Manifest, MaintenancePolicy, SnapshotEntry, SnapshotKind};
use std::path::{Path, PathBuf};

/// Snapshot-payload format version (inside the checksummed
/// [`itg_store::snapshot`] container, which carries its own magic).
/// Unchanged by delta snapshots: a delta file stores an
/// [`itg_store::delta`] document *inside* the same container, and
/// composing the chain yields a version-2 payload byte-identical to a
/// full snapshot's.
const SESSION_SNAPSHOT_VERSION: u8 = 2;

/// Upper bound on a delta-snapshot chain: once this many snapshots link
/// back to the nearest full one, the next checkpoint writes a full image
/// again. Bounds both recovery composition work and the number of old
/// snapshot files a live one can depend on.
pub const MAX_DELTA_CHAIN: usize = 8;

/// Whether and where a session persists its command history.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum DurabilityKind {
    /// No durability: state lives and dies with the process (the default,
    /// and the PR 3 baseline the `wal_overhead` benchmark pins).
    #[default]
    None,
    /// Write-ahead logging into `dir` (`wal-<start_lsn>.log` segments,
    /// `manifest.json`, and `snapshot-<epoch>.bin` /
    /// `snapshot-<epoch>.delta.bin` files), with an epoch-0 full snapshot
    /// written at session creation so recovery always has a base.
    Wal { dir: PathBuf },
}

/// The identifier [`Session::checkpoint`] returns: the snapshot's epoch in
/// `manifest.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SnapshotId(pub u64);

/// The open WAL plus the durability instruments, attached to a session.
pub(crate) struct DurableLog {
    dir: PathBuf,
    wal: Wal,
    /// Set during recovery replay: re-executed commands must not re-append.
    pub(crate) replaying: bool,
    append_ns: itg_obs::HistHandle,
    fsyncs: itg_obs::CounterHandle,
    rotations: itg_obs::CounterHandle,
    group_size: itg_obs::HistHandle,
    delta_bytes: itg_obs::CounterHandle,
    replayed: itg_obs::CounterHandle,
    /// The WAL stats already mirrored into the obs counters; each
    /// [`DurableLog::sync_obs`] adds only the diff since this.
    stats_seen: WalStats,
    /// The previous snapshot's epoch and *payload* (the state image it
    /// materializes to) — the base the next delta snapshot diffs against.
    /// `None` until the first checkpoint, forcing it full.
    last_snapshot: Option<(u64, Vec<u8>)>,
    enabled: bool,
}

impl std::fmt::Debug for DurableLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableLog")
            .field("dir", &self.dir)
            .field("next_lsn", &self.wal.next_lsn())
            .field("replaying", &self.replaying)
            .finish()
    }
}

impl DurableLog {
    pub(crate) fn open(
        dir: &Path,
        rec: &itg_obs::Recorder,
    ) -> Result<(DurableLog, WalScan), EngineError> {
        let (wal, scan) = Wal::open(dir).map_err(durability_err)?;
        Ok((
            DurableLog {
                dir: dir.to_path_buf(),
                wal,
                replaying: false,
                append_ns: rec.hist("wal/append_ns"),
                fsyncs: rec.counter("wal/fsync"),
                rotations: rec.counter("wal/rotation"),
                group_size: rec.hist("wal/group_size"),
                delta_bytes: rec.counter("snapshot/delta_bytes"),
                replayed: rec.counter("recovery/replayed_records"),
                stats_seen: WalStats::default(),
                last_snapshot: None,
                enabled: rec.is_enabled(),
            },
            scan,
        ))
    }

    /// Log one command before execution. A no-op during recovery replay
    /// (the record is already in the log).
    fn append(&mut self, entry: &WalEntry) -> Result<(), EngineError> {
        if self.replaying {
            return Ok(());
        }
        let t0 = self.enabled.then(std::time::Instant::now);
        self.wal.append(entry).map_err(durability_err)?;
        self.sync_obs();
        if let Some(t0) = t0 {
            self.append_ns.observe(t0.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    /// Mirror the WAL's cumulative stats into the obs counters. Under
    /// group commit an append may ride a flush another committer led, so
    /// the counters track the appender's *stats diff*, not one fsync per
    /// append.
    fn sync_obs(&mut self) {
        let now = self.wal.stats();
        self.fsyncs.add(now.fsyncs - self.stats_seen.fsyncs);
        self.rotations.add(now.rotations - self.stats_seen.rotations);
        self.stats_seen = now;
        for g in self.wal.drain_group_sizes() {
            self.group_size.observe(g);
        }
    }
}

fn durability_err(e: impl std::fmt::Display) -> EngineError {
    EngineError::Durability(e.to_string())
}

/// The WAL segment set as it will stand after `gc_below(keep_from)`:
/// leading segments are dropped while their successor's start LSN is
/// already covered (mirrors [`Wal::gc_below`]'s loop).
fn surviving_segments(wal: &Wal, keep_from: u64) -> Vec<String> {
    let mut names = wal.segment_files();
    let starts: Vec<u64> = names
        .iter()
        .map(|n| {
            n.strip_prefix("wal-")
                .and_then(|s| s.strip_suffix(".log"))
                .and_then(|s| s.parse().ok())
                .unwrap_or(0)
        })
        .collect();
    let mut drop = 0;
    while drop + 1 < names.len() && starts[drop + 1] <= keep_from {
        drop += 1;
    }
    names.drain(..drop);
    names
}

impl Session {
    /// Open the configured durability plane. Called once from
    /// [`Session::new`] for [`TransportKind::Local`] sessions; writes the
    /// epoch-0 snapshot so recovery always has a base to replay onto.
    pub(crate) fn attach_durability(&mut self) -> Result<(), EngineError> {
        let DurabilityKind::Wal { dir } = self.cfg.durability.clone() else {
            return Ok(());
        };
        if self.program.source.is_empty() {
            return Err(EngineError::Unsupported(
                "durable sessions need the program's source text for \
                 snapshots; build with `from_source` (or `compile_source`), \
                 not a program compiled without source"
                    .into(),
            ));
        }
        let manifest = Manifest::load(&dir).map_err(durability_err)?;
        if manifest.latest().is_some() {
            return Err(EngineError::Durability(format!(
                "{} already contains a manifest; recover the existing \
                 history with Session::recover instead of creating a new \
                 session over it",
                dir.display()
            )));
        }
        let (log, scan) = DurableLog::open(&dir, &self.cfg.obs)?;
        if !scan.records.is_empty() {
            return Err(EngineError::Durability(format!(
                "{} has WAL records but no manifest; refusing to overwrite \
                 an unrecoverable history",
                dir.display()
            )));
        }
        self.durable = Some(log);
        self.checkpoint()?;
        Ok(())
    }

    /// Log one command ahead of executing it; panics on a WAL IO failure
    /// (continuing would silently drop durability, and the infallible run
    /// APIs have no error channel).
    pub(crate) fn log_command(&mut self, entry: &WalEntry) {
        if let Some(d) = &mut self.durable {
            d.append(entry).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    /// Write a snapshot (full, or an [`itg_store::delta`] document against
    /// the previous one when [`crate::EngineConfig::snapshot_delta`] is on
    /// and the chain is still shorter than [`MAX_DELTA_CHAIN`]), register
    /// it in `manifest.json`, garbage-collect WAL segments the new
    /// snapshot fully covers, and return its epoch. Subsequent recovery
    /// replays only WAL records appended after this point. Errors on a
    /// session without [`DurabilityKind::Wal`].
    pub fn checkpoint(&mut self) -> Result<SnapshotId, EngineError> {
        if self.durable.is_none() {
            return Err(EngineError::Unsupported(
                "checkpoint on a session without durability (enable with \
                 SessionBuilder::durability or ITG_WAL_DIR)"
                    .into(),
            ));
        };
        // Serialize first: `encode_state` borrows the whole session.
        let mut w = Writer::new();
        self.encode_state(&mut w);
        let payload = w.buf;
        let snapshot_delta = self.cfg.snapshot_delta;

        let d = self.durable.as_mut().expect("checked above");
        let dir = d.dir.clone();
        let wal_start = d.wal.next_lsn();
        let mut manifest = Manifest::load(&dir).map_err(durability_err)?;
        let epoch = manifest.next_epoch();

        // Delta only when a base exists AND its chain is still short
        // enough that this snapshot keeps chain length ≤ MAX_DELTA_CHAIN.
        let base = d.last_snapshot.as_ref().filter(|(base_epoch, _)| {
            snapshot_delta
                && manifest
                    .chain_for(*base_epoch)
                    .is_ok_and(|chain| chain.len() < MAX_DELTA_CHAIN)
        });
        let (file, kind, bytes) = match base {
            Some((base_epoch, base_payload)) => {
                let doc = itg_store::delta::encode(base_payload, &payload);
                d.delta_bytes.add(doc.len() as u64);
                (
                    format!("snapshot-{epoch}.delta.bin"),
                    SnapshotKind::Delta {
                        base_epoch: *base_epoch,
                    },
                    doc,
                )
            }
            None => (format!("snapshot-{epoch}.bin"), SnapshotKind::Full, payload.clone()),
        };

        // Fault injection: ITG_CRASH_SNAPSHOT=<epoch> targets this
        // checkpoint; ITG_CRASH_SNAPSHOT_TORN moves the crash to
        // mid-snapshot-write (like ITG_CRASH_TORN does for ITG_CRASH_AT).
        let crash_here = crash_env_u64("ITG_CRASH_SNAPSHOT") == Some(epoch);
        if crash_here && crash_env_bool("ITG_CRASH_SNAPSHOT_TORN") {
            // Die mid-snapshot-write: half the container lands in the
            // `.tmp` file and no rename happens. The file is garbage the
            // next writer overwrites; the manifest never references it.
            let torn = dir.join(&file).with_extension("tmp");
            let mut half = itg_store::snapshot::SNAPSHOT_MAGIC.to_le_bytes().to_vec();
            half.extend_from_slice(&bytes[..bytes.len() / 2]);
            let _ = std::fs::write(&torn, &half);
            std::process::abort();
        }
        itg_store::snapshot::write_file(&dir.join(&file), &bytes).map_err(durability_err)?;
        if crash_here {
            // Die between the snapshot file write and the manifest store:
            // the file exists but is unreferenced, so recovery uses the
            // previous snapshot + a longer WAL suffix.
            std::process::abort();
        }
        // Register only after the snapshot file is durably in place: the
        // manifest store below is the commit point — a crash between the
        // two leaves an unreferenced file, never a manifest pointing at
        // garbage.
        manifest.snapshots.push(SnapshotEntry {
            epoch,
            file,
            wal_start,
            kind,
        });
        // Record the segments that will remain after the GC below. If we
        // crash before the GC runs, the directory (which is authoritative)
        // simply still holds the extra segments; the list is inventory,
        // not the source of truth.
        manifest.wal_segments = surviving_segments(&d.wal, wal_start);
        manifest.store(&dir).map_err(durability_err)?;
        // Only now — with the covering snapshot durably committed — is it
        // safe to unlink the WAL segments it supersedes.
        d.wal.gc_below(wal_start).map_err(durability_err)?;
        d.last_snapshot = Some((epoch, payload));
        Ok(SnapshotId(epoch))
    }

    /// Rebuild a session from a durability directory: materialize the
    /// latest snapshot named by `manifest.json` (a full image, or a delta
    /// chain composed link by link over the nearest full snapshot — each
    /// link CRC-pinned to its exact base), then re-execute the WAL tail
    /// (records with `lsn >= wal_start`). A torn final record is
    /// truncated; any other WAL damage is an error. The recovered session
    /// logs into the same directory and observes through
    /// [`itg_obs::global`].
    pub fn recover(dir: impl AsRef<Path>) -> Result<Session, EngineError> {
        let dir = dir.as_ref();
        let manifest = Manifest::load(dir).map_err(durability_err)?;
        let Some(latest) = manifest.latest() else {
            return Err(EngineError::Durability(format!(
                "{} has no manifest (or an empty one); nothing to recover",
                dir.display()
            )));
        };
        let chain = manifest.chain_for(latest.epoch).map_err(durability_err)?;
        let mut payload: Vec<u8> = Vec::new();
        for entry in &chain {
            let bytes = itg_store::snapshot::read_file(&dir.join(&entry.file))
                .map_err(durability_err)?;
            payload = match entry.kind {
                SnapshotKind::Full => bytes,
                SnapshotKind::Delta { .. } => itg_store::delta::apply(&payload, &bytes)
                    .map_err(|e| {
                        EngineError::Durability(format!(
                            "delta snapshot {} does not compose: {e}",
                            entry.file
                        ))
                    })?,
            };
        }
        let mut r = Reader::new(&payload);
        let mut sess = Session::decode_state(&mut r, dir).map_err(|e| {
            EngineError::Durability(format!(
                "snapshot {} undecodable: {e}",
                latest.file
            ))
        })?;
        r.finish().map_err(|e| {
            EngineError::Durability(format!("snapshot {} trailing bytes: {e}", latest.file))
        })?;

        let wal_start = latest.wal_start;
        let latest_epoch = latest.epoch;
        let (mut log, scan) = DurableLog::open(dir, &sess.cfg.obs)?;
        log.replaying = true;
        // The materialized image is the base the next delta snapshot
        // diffs against (deltas are snapshot-to-snapshot, never against
        // post-replay state).
        log.last_snapshot = Some((latest_epoch, payload.clone()));
        let replayed = log.replayed.clone();
        sess.durable = Some(log);
        for rec in &scan.records {
            if rec.lsn < wal_start {
                continue;
            }
            match &rec.entry {
                WalEntry::OneshotRun => {
                    sess.run_oneshot();
                }
                WalEntry::Batch(batch) => sess.apply_mutations(batch),
                WalEntry::IncrementalRun => {
                    sess.run_incremental();
                }
                WalEntry::Compact => sess.compact_edges(),
            }
            replayed.add(1);
        }
        if let Some(d) = &mut sess.durable {
            d.replaying = false;
        }
        Ok(sess)
    }

    /// The session's full serialized state — the exact bytes a
    /// [`Session::checkpoint`] snapshot would carry. Works on any local
    /// session, durable or not; the kill-and-recover test uses it to
    /// assert a recovered session is *byte*-identical to an uninterrupted
    /// one, and it is a useful state-divergence diagnostic generally.
    pub fn state_image(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode_state(&mut w);
        w.buf
    }

    /// The *dynamic* state only — partition stores and working arrays,
    /// global history, superstep counts — with the configuration subset
    /// left out. Two sessions configured differently (thread count,
    /// transport, `opts.specialize`, `cache_bytes`) but fed the same
    /// commands must produce identical dynamic images; the equivalence
    /// suites compare this across configurations where [`state_image`]
    /// would trivially differ on the config prefix.
    ///
    /// [`state_image`]: Session::state_image
    pub fn dynamic_state_image(&self) -> Vec<u8> {
        let mut w = Writer::new();
        for part in &self.parts {
            w.u64(part.n_local as u64);
            part.attr_store.encode_into(&mut w);
            part.accm_store.encode_into(&mut w);
            put_columns(&mut w, &part.cur_attrs);
            put_columns(&mut w, &part.prev_attrs);
            put_columns(&mut w, &part.cur_accm);
            put_columns(&mut w, &part.prev_accm);
        }
        w.u64(self.globals_history.len() as u64);
        for snap in &self.globals_history {
            w.u64(snap.len() as u64);
            for step in snap {
                w.u64(step.len() as u64);
                for v in step {
                    put_value(&mut w, v);
                }
            }
        }
        w.u64(self.superstep_counts.len() as u64);
        for &s in &self.superstep_counts {
            w.u64(s as u64);
        }
        w.bool(self.ran_oneshot);
        w.buf
    }

    // ---------------------------------------------------------------
    // Full-state codec.
    // ---------------------------------------------------------------

    fn encode_state(&self, w: &mut Writer) {
        w.u8(SESSION_SNAPSHOT_VERSION);
        w.str(&self.program.source);
        // The deterministic configuration subset: everything replay
        // depends on. Transport is Local by construction, observability
        // and durability are re-attached at recover time.
        let c = &self.cfg;
        w.u64(c.machines as u64);
        w.u64(c.window_capacity as u64);
        w.u64(c.buffer_pool_bytes);
        w.u64(c.page_size);
        w.u64(c.max_supersteps as u64);
        match c.maintenance {
            MaintenancePolicy::NoMerge => w.u8(0),
            MaintenancePolicy::Periodic(p) => {
                w.u8(1);
                w.u64(p as u64);
            }
            MaintenancePolicy::CostBased => w.u8(2),
        }
        w.bool(c.opts.traversal_reorder);
        w.bool(c.opts.neighbor_prune);
        w.bool(c.opts.seek_window_share);
        w.bool(c.opts.min_count);
        w.bool(c.opts.specialize);
        // `cache_bytes` and `snapshot_delta` are deliberately NOT
        // serialized: the NGW cache and the snapshot storage form are both
        // semantically transparent (byte-identical state either way), so a
        // recovered session takes the recovering process's configuration.
        w.bool(c.parallel);
        w.u64(c.threads_per_machine as u64);

        self.graph.encode_into(w);
        for part in &self.parts {
            w.u64(part.n_local as u64);
            part.attr_store.encode_into(w);
            part.accm_store.encode_into(w);
            put_columns(w, &part.cur_attrs);
            put_columns(w, &part.prev_attrs);
            put_columns(w, &part.cur_accm);
            put_columns(w, &part.prev_accm);
        }
        w.u64(self.globals_history.len() as u64);
        for snap in &self.globals_history {
            w.u64(snap.len() as u64);
            for step in snap {
                w.u64(step.len() as u64);
                for v in step {
                    put_value(w, v);
                }
            }
        }
        w.u64(self.superstep_counts.len() as u64);
        for &s in &self.superstep_counts {
            w.u64(s as u64);
        }
        w.bool(self.ran_oneshot);
    }

    fn decode_state(r: &mut Reader<'_>, dir: &Path) -> CodecResult<Session> {
        let ver = r.u8()?;
        if ver != SESSION_SNAPSHOT_VERSION {
            return Err(CodecError::BadVersion(ver));
        }
        let source = r.str()?.to_string();
        // Field order mirrors `encode_state` exactly; reads are sequential,
        // so decode into locals before assembling the config.
        let machines = r.u64()? as usize;
        let window_capacity = r.u64()? as usize;
        let buffer_pool_bytes = r.u64()?;
        let page_size = r.u64()?;
        let max_supersteps = r.u64()? as usize;
        let maintenance = match r.u8()? {
            0 => MaintenancePolicy::NoMerge,
            1 => MaintenancePolicy::Periodic(r.u64()? as usize),
            2 => MaintenancePolicy::CostBased,
            tag => return Err(CodecError::BadTag { what: "maintenance policy", tag }),
        };
        let mut opts = crate::config::OptFlags::none();
        opts.traversal_reorder = r.bool()?;
        opts.neighbor_prune = r.bool()?;
        opts.seek_window_share = r.bool()?;
        opts.min_count = r.bool()?;
        opts.specialize = r.bool()?;
        let parallel = r.bool()?;
        let threads_per_machine = r.u64()? as usize;
        let cfg = EngineConfig {
            machines,
            window_capacity,
            buffer_pool_bytes,
            page_size,
            max_supersteps,
            maintenance,
            cache_bytes: 0,
            opts,
            parallel,
            threads_per_machine,
            transport: TransportKind::Local,
            durability: DurabilityKind::Wal {
                dir: dir.to_path_buf(),
            },
            // Like `cache_bytes`, `snapshot_delta` is not serialized: it
            // changes only how checkpoints are *stored*, never the state
            // they materialize to, so the recovering process's own
            // environment decides it.
            snapshot_delta: EngineConfig::from_env().snapshot_delta,
            obs: itg_obs::global().clone(),
        };

        let program = itg_compiler::compile_source(&source)
            .map_err(|_| CodecError::Truncated)?;
        let graph = ClusterGraph::decode_from(
            r,
            cfg.buffer_pool_bytes,
            cfg.page_size,
            &cfg.obs,
        )?;
        let mut parts = Vec::with_capacity(cfg.machines);
        for w in 0..cfg.machines {
            let stats = graph.partitions[w].stats.clone();
            let n_local = r.u64()? as usize;
            let attr_store = AttrStore::decode_from(r, cfg.maintenance, stats.clone())?;
            let accm_store = AttrStore::decode_from(r, cfg.maintenance, stats)?;
            parts.push(PartitionState {
                worker: w,
                n_local,
                attr_store,
                accm_store,
                cur_attrs: get_columns(r)?,
                prev_attrs: get_columns(r)?,
                cur_accm: get_columns(r)?,
                prev_accm: get_columns(r)?,
                changed: FxHashSet::default(),
                degree_changed: FxHashSet::default(),
            });
        }
        let mut globals_history = Vec::new();
        for _ in 0..r.u64()? {
            let mut snap = Vec::new();
            for _ in 0..r.u64()? {
                let mut step = Vec::new();
                for _ in 0..r.u64()? {
                    step.push(get_value(r)?);
                }
                snap.push(step);
            }
            globals_history.push(snap);
        }
        let mut superstep_counts = Vec::new();
        for _ in 0..r.u64()? {
            superstep_counts.push(r.u64()? as usize);
        }
        let ran_oneshot = r.bool()?;

        let obs = SessionObs::new(&cfg.obs, &program);
        let layout = AccmLayout::new(&program.symbols.accms);
        let (vertex_lanes, global_lanes) = if cfg.opts.specialize {
            (program.vertex_lanes(), program.global_lanes())
        } else {
            (
                vec![itg_compiler::AccmLane::Generic; program.symbols.accms.len()],
                vec![itg_compiler::AccmLane::Generic; program.symbols.globals.len()],
            )
        };
        let owned = 0..cfg.machines;
        let mut sess = Session {
            cfg: cfg.clone(),
            program,
            graph,
            layout,
            vertex_lanes,
            global_lanes,
            window_loads: 0,
            parts,
            globals_history,
            superstep_counts,
            ran_oneshot,
            obs,
            plane: Plane::Local(Box::new(LocalTransport::new(&cfg.obs))),
            owned,
            barrier_seq: 0,
            durable: None,
        };
        // `degree_changed` is derivable: it mirrors the latest batch's
        // delta stream exactly as `apply_mutations` builds it (and is only
        // ever read when a fresh batch is pending). `changed` starts empty —
        // every incremental run clears it before use.
        sess.graph
            .for_each_delta_edge(itg_gsa::expr::EdgeDir::Out, |s, d, _| {
                sess.parts[sess.graph.owner(s)].degree_changed.insert(s);
                sess.parts[sess.graph.owner(d)].degree_changed.insert(d);
            });
        Ok(sess)
    }
}

fn put_columns(w: &mut Writer, cols: &[ColumnData]) {
    w.u64(cols.len() as u64);
    for c in cols {
        put_column(w, c);
    }
}

fn get_columns(r: &mut Reader<'_>) -> CodecResult<Vec<ColumnData>> {
    let n = r.u64()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_column(r)?);
    }
    Ok(out)
}
