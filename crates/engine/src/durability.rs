//! Durability: write-ahead logging and snapshot recovery (DESIGN.md §9).
//!
//! A durable session logs every state-changing command — the one-shot run,
//! each mutation batch, each incremental run, each compaction — to a
//! [`Wal`] *before* executing it. Because the engine's execution is
//! deterministic given the stores and the command sequence (for every
//! thread count — see [`crate::EngineConfig::threads_per_machine`]),
//! recovery is: load the latest snapshot named by `manifest.json`, then
//! re-execute the WAL tail from the manifest's `wal_start`. The recovered
//! session's attribute values, global history, and store epochs are
//! byte-identical to the pre-crash state — a torn final WAL record (the
//! process died mid-append) is truncated, everything else replays.
//!
//! Snapshots serialize the *full* session state: the compiled program's
//! source text, the deterministic configuration subset, every partition's
//! edge-store segment chains (structure preserved exactly — flattening
//! would change neighbor scan order and hence float accumulation order),
//! both attribute stores with their delta chains, the working arrays, the
//! global accumulator history, and the per-snapshot superstep counts.
//!
//! Environment: `ITG_WAL_DIR=<dir>` enables durability from the
//! environment (a [`crate::SessionBuilder::durability`] call wins);
//! `ITG_CRASH_AT=<lsn>` / `ITG_CRASH_TORN=1` are the fault-injection
//! knobs of the kill-and-recover test (see `itg_store::wal`).

use crate::accum::AccmLayout;
use crate::config::EngineConfig;
use crate::graph::ClusterGraph;
use crate::session::{EngineError, PartitionState, Plane, Session, SessionObs};
use crate::transport::{LocalTransport, TransportKind};
use itg_gsa::value::ColumnData;
use itg_gsa::FxHashSet;
use itg_store::codec::{CodecError, CodecResult, Reader, Writer};
use itg_store::snapshot::{get_column, get_value, put_column, put_value};
use itg_store::wal::{Wal, WalEntry, WalScan};
use itg_store::{AttrStore, Manifest, MaintenancePolicy, SnapshotEntry};
use std::path::{Path, PathBuf};

/// Snapshot-payload format version (inside the checksummed
/// [`itg_store::snapshot`] container, which carries its own magic).
const SESSION_SNAPSHOT_VERSION: u8 = 2;

/// Whether and where a session persists its command history.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum DurabilityKind {
    /// No durability: state lives and dies with the process (the default,
    /// and the PR 3 baseline the `wal_overhead` benchmark pins).
    #[default]
    None,
    /// Write-ahead logging into `dir` (`wal.log`, `manifest.json`, and
    /// `snapshot-<epoch>.bin` files), with an epoch-0 snapshot written at
    /// session creation so recovery always has a base.
    Wal { dir: PathBuf },
}

/// The identifier [`Session::checkpoint`] returns: the snapshot's epoch in
/// `manifest.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SnapshotId(pub u64);

/// The open WAL plus the durability instruments, attached to a session.
pub(crate) struct DurableLog {
    dir: PathBuf,
    wal: Wal,
    /// Set during recovery replay: re-executed commands must not re-append.
    pub(crate) replaying: bool,
    append_ns: itg_obs::HistHandle,
    fsyncs: itg_obs::CounterHandle,
    replayed: itg_obs::CounterHandle,
    enabled: bool,
}

impl std::fmt::Debug for DurableLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableLog")
            .field("dir", &self.dir)
            .field("next_lsn", &self.wal.next_lsn())
            .field("replaying", &self.replaying)
            .finish()
    }
}

impl DurableLog {
    pub(crate) fn open(
        dir: &Path,
        rec: &itg_obs::Recorder,
    ) -> Result<(DurableLog, WalScan), EngineError> {
        let (wal, scan) = Wal::open(dir).map_err(durability_err)?;
        Ok((
            DurableLog {
                dir: dir.to_path_buf(),
                wal,
                replaying: false,
                append_ns: rec.hist("wal/append_ns"),
                fsyncs: rec.counter("wal/fsync"),
                replayed: rec.counter("recovery/replayed_records"),
                enabled: rec.is_enabled(),
            },
            scan,
        ))
    }

    /// Log one command before execution. A no-op during recovery replay
    /// (the record is already in the log).
    fn append(&mut self, entry: &WalEntry) -> Result<(), EngineError> {
        if self.replaying {
            return Ok(());
        }
        let t0 = self.enabled.then(std::time::Instant::now);
        self.wal.append(entry).map_err(durability_err)?;
        self.fsyncs.add(1);
        if let Some(t0) = t0 {
            self.append_ns.observe(t0.elapsed().as_nanos() as u64);
        }
        Ok(())
    }
}

fn durability_err(e: impl std::fmt::Display) -> EngineError {
    EngineError::Durability(e.to_string())
}

impl Session {
    /// Open the configured durability plane. Called once from
    /// [`Session::new`] for [`TransportKind::Local`] sessions; writes the
    /// epoch-0 snapshot so recovery always has a base to replay onto.
    pub(crate) fn attach_durability(&mut self) -> Result<(), EngineError> {
        let DurabilityKind::Wal { dir } = self.cfg.durability.clone() else {
            return Ok(());
        };
        if self.program.source.is_empty() {
            return Err(EngineError::Unsupported(
                "durable sessions need the program's source text for \
                 snapshots; build with `from_source` (or `compile_source`), \
                 not a program compiled without source"
                    .into(),
            ));
        }
        let manifest = Manifest::load(&dir).map_err(durability_err)?;
        if manifest.latest().is_some() {
            return Err(EngineError::Durability(format!(
                "{} already contains a manifest; recover the existing \
                 history with Session::recover instead of creating a new \
                 session over it",
                dir.display()
            )));
        }
        let (log, scan) = DurableLog::open(&dir, &self.cfg.obs)?;
        if !scan.records.is_empty() {
            return Err(EngineError::Durability(format!(
                "{} has WAL records but no manifest; refusing to overwrite \
                 an unrecoverable history",
                dir.display()
            )));
        }
        self.durable = Some(log);
        self.checkpoint()?;
        Ok(())
    }

    /// Log one command ahead of executing it; panics on a WAL IO failure
    /// (continuing would silently drop durability, and the infallible run
    /// APIs have no error channel).
    pub(crate) fn log_command(&mut self, entry: &WalEntry) {
        if let Some(d) = &mut self.durable {
            d.append(entry).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    /// Write a full-state snapshot, register it in `manifest.json`, and
    /// return its epoch. Subsequent recovery replays only WAL records
    /// appended after this point. Errors on a session without
    /// [`DurabilityKind::Wal`].
    pub fn checkpoint(&mut self) -> Result<SnapshotId, EngineError> {
        let Some(d) = &self.durable else {
            return Err(EngineError::Unsupported(
                "checkpoint on a session without durability (enable with \
                 SessionBuilder::durability or ITG_WAL_DIR)"
                    .into(),
            ));
        };
        let dir = d.dir.clone();
        let wal_start = d.wal.next_lsn();
        let mut manifest = Manifest::load(&dir).map_err(durability_err)?;
        let epoch = manifest.next_epoch();
        let file = format!("snapshot-{epoch}.bin");

        let mut w = Writer::new();
        self.encode_state(&mut w);
        itg_store::snapshot::write_file(&dir.join(&file), &w.buf)
            .map_err(durability_err)?;
        // Register only after the snapshot file is durably in place: a
        // crash between the two leaves an unreferenced file, never a
        // manifest pointing at garbage.
        manifest.snapshots.push(SnapshotEntry {
            epoch,
            file,
            wal_start,
        });
        manifest.store(&dir).map_err(durability_err)?;
        Ok(SnapshotId(epoch))
    }

    /// Rebuild a session from a durability directory: load the latest
    /// snapshot named by `manifest.json`, then re-execute the WAL tail
    /// (records with `lsn >= wal_start`). A torn final record is truncated;
    /// any other WAL damage is an error. The recovered session logs into
    /// the same directory and observes through [`itg_obs::global`].
    pub fn recover(dir: impl AsRef<Path>) -> Result<Session, EngineError> {
        let dir = dir.as_ref();
        let manifest = Manifest::load(dir).map_err(durability_err)?;
        let Some(latest) = manifest.latest() else {
            return Err(EngineError::Durability(format!(
                "{} has no manifest (or an empty one); nothing to recover",
                dir.display()
            )));
        };
        let payload = itg_store::snapshot::read_file(&dir.join(&latest.file))
            .map_err(durability_err)?;
        let mut r = Reader::new(&payload);
        let mut sess = Session::decode_state(&mut r, dir).map_err(|e| {
            EngineError::Durability(format!(
                "snapshot {} undecodable: {e}",
                latest.file
            ))
        })?;
        r.finish().map_err(|e| {
            EngineError::Durability(format!("snapshot {} trailing bytes: {e}", latest.file))
        })?;

        let wal_start = latest.wal_start;
        let (mut log, scan) = DurableLog::open(dir, &sess.cfg.obs)?;
        log.replaying = true;
        let replayed = log.replayed.clone();
        sess.durable = Some(log);
        for rec in &scan.records {
            if rec.lsn < wal_start {
                continue;
            }
            match &rec.entry {
                WalEntry::OneshotRun => {
                    sess.run_oneshot();
                }
                WalEntry::Batch(batch) => sess.apply_mutations(batch),
                WalEntry::IncrementalRun => {
                    sess.run_incremental();
                }
                WalEntry::Compact => sess.compact_edges(),
            }
            replayed.add(1);
        }
        if let Some(d) = &mut sess.durable {
            d.replaying = false;
        }
        Ok(sess)
    }

    /// The session's full serialized state — the exact bytes a
    /// [`Session::checkpoint`] snapshot would carry. Works on any local
    /// session, durable or not; the kill-and-recover test uses it to
    /// assert a recovered session is *byte*-identical to an uninterrupted
    /// one, and it is a useful state-divergence diagnostic generally.
    pub fn state_image(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode_state(&mut w);
        w.buf
    }

    /// The *dynamic* state only — partition stores and working arrays,
    /// global history, superstep counts — with the configuration subset
    /// left out. Two sessions configured differently (thread count,
    /// transport, `opts.specialize`, `cache_bytes`) but fed the same
    /// commands must produce identical dynamic images; the equivalence
    /// suites compare this across configurations where [`state_image`]
    /// would trivially differ on the config prefix.
    ///
    /// [`state_image`]: Session::state_image
    pub fn dynamic_state_image(&self) -> Vec<u8> {
        let mut w = Writer::new();
        for part in &self.parts {
            w.u64(part.n_local as u64);
            part.attr_store.encode_into(&mut w);
            part.accm_store.encode_into(&mut w);
            put_columns(&mut w, &part.cur_attrs);
            put_columns(&mut w, &part.prev_attrs);
            put_columns(&mut w, &part.cur_accm);
            put_columns(&mut w, &part.prev_accm);
        }
        w.u64(self.globals_history.len() as u64);
        for snap in &self.globals_history {
            w.u64(snap.len() as u64);
            for step in snap {
                w.u64(step.len() as u64);
                for v in step {
                    put_value(&mut w, v);
                }
            }
        }
        w.u64(self.superstep_counts.len() as u64);
        for &s in &self.superstep_counts {
            w.u64(s as u64);
        }
        w.bool(self.ran_oneshot);
        w.buf
    }

    // ---------------------------------------------------------------
    // Full-state codec.
    // ---------------------------------------------------------------

    fn encode_state(&self, w: &mut Writer) {
        w.u8(SESSION_SNAPSHOT_VERSION);
        w.str(&self.program.source);
        // The deterministic configuration subset: everything replay
        // depends on. Transport is Local by construction, observability
        // and durability are re-attached at recover time.
        let c = &self.cfg;
        w.u64(c.machines as u64);
        w.u64(c.window_capacity as u64);
        w.u64(c.buffer_pool_bytes);
        w.u64(c.page_size);
        w.u64(c.max_supersteps as u64);
        match c.maintenance {
            MaintenancePolicy::NoMerge => w.u8(0),
            MaintenancePolicy::Periodic(p) => {
                w.u8(1);
                w.u64(p as u64);
            }
            MaintenancePolicy::CostBased => w.u8(2),
        }
        w.bool(c.opts.traversal_reorder);
        w.bool(c.opts.neighbor_prune);
        w.bool(c.opts.seek_window_share);
        w.bool(c.opts.min_count);
        w.bool(c.opts.specialize);
        // `cache_bytes` is deliberately NOT serialized: the NGW cache is
        // semantically transparent (byte-identical results at every
        // capacity), so a recovered session simply replays cache-cold
        // under the recovering process's configuration.
        w.bool(c.parallel);
        w.u64(c.threads_per_machine as u64);

        self.graph.encode_into(w);
        for part in &self.parts {
            w.u64(part.n_local as u64);
            part.attr_store.encode_into(w);
            part.accm_store.encode_into(w);
            put_columns(w, &part.cur_attrs);
            put_columns(w, &part.prev_attrs);
            put_columns(w, &part.cur_accm);
            put_columns(w, &part.prev_accm);
        }
        w.u64(self.globals_history.len() as u64);
        for snap in &self.globals_history {
            w.u64(snap.len() as u64);
            for step in snap {
                w.u64(step.len() as u64);
                for v in step {
                    put_value(w, v);
                }
            }
        }
        w.u64(self.superstep_counts.len() as u64);
        for &s in &self.superstep_counts {
            w.u64(s as u64);
        }
        w.bool(self.ran_oneshot);
    }

    fn decode_state(r: &mut Reader<'_>, dir: &Path) -> CodecResult<Session> {
        let ver = r.u8()?;
        if ver != SESSION_SNAPSHOT_VERSION {
            return Err(CodecError::BadVersion(ver));
        }
        let source = r.str()?.to_string();
        // Field order mirrors `encode_state` exactly; reads are sequential,
        // so decode into locals before assembling the config.
        let machines = r.u64()? as usize;
        let window_capacity = r.u64()? as usize;
        let buffer_pool_bytes = r.u64()?;
        let page_size = r.u64()?;
        let max_supersteps = r.u64()? as usize;
        let maintenance = match r.u8()? {
            0 => MaintenancePolicy::NoMerge,
            1 => MaintenancePolicy::Periodic(r.u64()? as usize),
            2 => MaintenancePolicy::CostBased,
            tag => return Err(CodecError::BadTag { what: "maintenance policy", tag }),
        };
        let mut opts = crate::config::OptFlags::none();
        opts.traversal_reorder = r.bool()?;
        opts.neighbor_prune = r.bool()?;
        opts.seek_window_share = r.bool()?;
        opts.min_count = r.bool()?;
        opts.specialize = r.bool()?;
        let parallel = r.bool()?;
        let threads_per_machine = r.u64()? as usize;
        let cfg = EngineConfig {
            machines,
            window_capacity,
            buffer_pool_bytes,
            page_size,
            max_supersteps,
            maintenance,
            cache_bytes: 0,
            opts,
            parallel,
            threads_per_machine,
            transport: TransportKind::Local,
            durability: DurabilityKind::Wal {
                dir: dir.to_path_buf(),
            },
            obs: itg_obs::global().clone(),
        };

        let program = itg_compiler::compile_source(&source)
            .map_err(|_| CodecError::Truncated)?;
        let graph = ClusterGraph::decode_from(
            r,
            cfg.buffer_pool_bytes,
            cfg.page_size,
            &cfg.obs,
        )?;
        let mut parts = Vec::with_capacity(cfg.machines);
        for w in 0..cfg.machines {
            let stats = graph.partitions[w].stats.clone();
            let n_local = r.u64()? as usize;
            let attr_store = AttrStore::decode_from(r, cfg.maintenance, stats.clone())?;
            let accm_store = AttrStore::decode_from(r, cfg.maintenance, stats)?;
            parts.push(PartitionState {
                worker: w,
                n_local,
                attr_store,
                accm_store,
                cur_attrs: get_columns(r)?,
                prev_attrs: get_columns(r)?,
                cur_accm: get_columns(r)?,
                prev_accm: get_columns(r)?,
                changed: FxHashSet::default(),
                degree_changed: FxHashSet::default(),
            });
        }
        let mut globals_history = Vec::new();
        for _ in 0..r.u64()? {
            let mut snap = Vec::new();
            for _ in 0..r.u64()? {
                let mut step = Vec::new();
                for _ in 0..r.u64()? {
                    step.push(get_value(r)?);
                }
                snap.push(step);
            }
            globals_history.push(snap);
        }
        let mut superstep_counts = Vec::new();
        for _ in 0..r.u64()? {
            superstep_counts.push(r.u64()? as usize);
        }
        let ran_oneshot = r.bool()?;

        let obs = SessionObs::new(&cfg.obs, &program);
        let layout = AccmLayout::new(&program.symbols.accms);
        let (vertex_lanes, global_lanes) = if cfg.opts.specialize {
            (program.vertex_lanes(), program.global_lanes())
        } else {
            (
                vec![itg_compiler::AccmLane::Generic; program.symbols.accms.len()],
                vec![itg_compiler::AccmLane::Generic; program.symbols.globals.len()],
            )
        };
        let owned = 0..cfg.machines;
        let mut sess = Session {
            cfg: cfg.clone(),
            program,
            graph,
            layout,
            vertex_lanes,
            global_lanes,
            window_loads: 0,
            parts,
            globals_history,
            superstep_counts,
            ran_oneshot,
            obs,
            plane: Plane::Local(Box::new(LocalTransport::new(&cfg.obs))),
            owned,
            barrier_seq: 0,
            durable: None,
        };
        // `degree_changed` is derivable: it mirrors the latest batch's
        // delta stream exactly as `apply_mutations` builds it (and is only
        // ever read when a fresh batch is pending). `changed` starts empty —
        // every incremental run clears it before use.
        sess.graph
            .for_each_delta_edge(itg_gsa::expr::EdgeDir::Out, |s, d, _| {
                sess.parts[sess.graph.owner(s)].degree_changed.insert(s);
                sess.parts[sess.graph.owner(d)].degree_changed.insert(d);
            });
        Ok(sess)
    }
}

fn put_columns(w: &mut Writer, cols: &[ColumnData]) {
    w.u64(cols.len() as u64);
    for c in cols {
        put_column(w, c);
    }
}

fn get_columns(r: &mut Reader<'_>) -> CodecResult<Vec<ColumnData>> {
    let n = r.u64()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_column(r)?);
    }
    Ok(out)
}
