//! The execution session: the public API tying together the compiled
//! program, the partitioned graph, and the BSP superstep driver for both
//! one-shot (`P_Q`) and incremental (`P_ΔQ`) plans (paper §5.2).

use crate::accum::{apply_contribution, reset_state, AccBuffer, AccmLayout, ApplyOutcome, Contribution};
use crate::config::EngineConfig;
use crate::durability::{DurabilityKind, DurableLog};
use crate::graph::{ClusterGraph, GraphInput};
use crate::metrics::{ParallelMetrics, RunKind, RunMetrics};
use crate::msbfs::{backward_msbfs, PruningLevels};
use crate::transport::{
    LocalTransport, PipeLink, ProcessTransport, Transport, TransportError, TransportKind, COORD,
};
use crate::vexec::{execute, VertexCtx};
use crate::wire::Payload;
use crate::walker::{HopBinding, WalkSpans, Walker};
use itg_compiler::{AccmLane, ActionTarget, CompiledProgram, DeltaSubQuery, WalkQuery};
use itg_gsa::expr::eval;
use itg_gsa::value::{ColumnData, Value};
use itg_gsa::{FxHashMap, FxHashSet, VertexId};
use itg_lnga::AccmInfo;
use itg_store::wal::WalEntry;
use itg_store::{AttrStore, IoSnapshot, MutationBatch, View, WindowBase};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Per-destination-machine, per-accumulator merged contributions after a
/// superstep exchange: `inbox[dst][accm][vertex]`.
type ExchangeInbox = Vec<Vec<FxHashMap<VertexId, Contribution>>>;

/// One undelivered vertex frame awaiting the deterministic sender-order
/// merge: `(dst machine, sender machine, per-accumulator contributions)`.
type ContribFrame = (usize, u32, Vec<Vec<(VertexId, Contribution)>>);

/// Statistics of one intra-partition enumeration phase (one
/// [`Session::parallel_enumerate`] call): how many chunks the work list
/// split into and how many items each worker thread ended up executing.
struct PhaseStats {
    chunks: u64,
    per_worker_units: Vec<u64>,
    /// Per-worker wall nanoseconds; all zero when the session's recorder
    /// is disabled (the clock is never read).
    per_worker_ns: Vec<u64>,
}

/// Cached per-operator instruments for one walk query or Rule ⑦ delta
/// sub-query: the seek/join/action spans plus the tuple-cardinality
/// counters joined to the plan by its stable `op_id`.
struct QueryObs {
    spans: WalkSpans,
    starts: itg_obs::CounterHandle,
    contribs: itg_obs::CounterHandle,
}

/// Every instrument the session records into, resolved once at
/// [`Session::new`] so the hot paths never touch the recorder's interning
/// locks. With a disabled recorder each handle is a single-branch no-op
/// and `enabled` gates the few explicit clock reads.
pub(crate) struct SessionObs {
    pub(crate) enabled: bool,
    setup: itg_obs::SpanHandle,
    pruning: itg_obs::SpanHandle,
    schedule: itg_obs::SpanHandle,
    traverse: itg_obs::SpanHandle,
    exchange: itg_obs::SpanHandle,
    accumulate: itg_obs::SpanHandle,
    recompute: itg_obs::SpanHandle,
    globals: itg_obs::SpanHandle,
    update: itg_obs::SpanHandle,
    store_advance: itg_obs::SpanHandle,
    recompute_triggers: itg_obs::CounterHandle,
    /// Per one-shot walk query, index-aligned with `traverse.queries`.
    oneshot: Vec<QueryObs>,
    /// Per delta sub-query, index-aligned with `delta_traverse`.
    delta: Vec<QueryObs>,
}

impl SessionObs {
    pub(crate) fn new(rec: &itg_obs::Recorder, program: &CompiledProgram) -> SessionObs {
        SessionObs {
            enabled: rec.is_enabled(),
            setup: rec.span("run/setup"),
            pruning: rec.span("run/pruning"),
            schedule: rec.span("run/schedule"),
            traverse: rec.span("run/traverse"),
            exchange: rec.span("run/exchange"),
            accumulate: rec.span("run/accumulate"),
            recompute: rec.span("run/recompute"),
            globals: rec.span("run/globals"),
            update: rec.span("run/update"),
            store_advance: rec.span("run/store_advance"),
            recompute_triggers: rec.counter("delta/recompute_triggers"),
            oneshot: program
                .traverse
                .queries
                .iter()
                .map(|q| QueryObs {
                    spans: WalkSpans::resolve(rec, q.op_id),
                    starts: rec.counter_op("oneshot/starts", q.op_id),
                    contribs: rec.counter_op("oneshot/contribs", q.op_id),
                })
                .collect(),
            delta: program
                .delta_traverse
                .iter()
                .map(|sq| QueryObs {
                    spans: WalkSpans::resolve(rec, sq.op_id),
                    starts: rec.counter_op("delta/starts", sq.op_id),
                    contribs: rec.counter_op("delta/contribs", sq.op_id),
                })
                .collect(),
        }
    }
}

/// Per-machine state: the vertex store pair and the working arrays of the
/// current run.
pub struct PartitionState {
    pub worker: usize,
    pub n_local: usize,
    pub attr_store: AttrStore,
    pub accm_store: AttrStore,
    pub cur_attrs: Vec<ColumnData>,
    pub prev_attrs: Vec<ColumnData>,
    pub cur_accm: Vec<ColumnData>,
    pub prev_accm: Vec<ColumnData>,
    /// Local vertices whose attribute image changed vs the previous
    /// snapshot at the current superstep (ΔA_{t,s}), as global ids.
    pub changed: FxHashSet<VertexId>,
    /// Local vertices whose degree changed in the latest batch.
    pub degree_changed: FxHashSet<VertexId>,
}

/// Errors surfaced by the session API.
#[derive(Debug)]
pub enum EngineError {
    Compile(itg_lnga::LngaError),
    Unsupported(String),
    UnknownAttr(String),
    /// A superstep index past the executed range of the last run.
    BadSuperstep { requested: usize, executed: usize },
    /// A distribution-layer failure (worker spawn, pipe IO, protocol).
    Transport(TransportError),
    /// A durability-layer failure (WAL IO, snapshot or manifest
    /// corruption, an unrecoverable directory).
    Durability(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Compile(e) => write!(f, "{e}"),
            EngineError::Unsupported(m) => write!(f, "unsupported program: {m}"),
            EngineError::UnknownAttr(n) => write!(f, "unknown attribute `{n}`"),
            EngineError::BadSuperstep { requested, executed } => write!(
                f,
                "superstep {requested} out of range: the last run executed \
                 {executed} superstep(s)"
            ),
            EngineError::Transport(e) => write!(f, "{e}"),
            EngineError::Durability(m) => write!(f, "durability: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<itg_lnga::LngaError> for EngineError {
    fn from(e: itg_lnga::LngaError) -> EngineError {
        EngineError::Compile(e)
    }
}

impl From<TransportError> for EngineError {
    fn from(e: TransportError) -> EngineError {
        EngineError::Transport(e)
    }
}

/// Which role this session plays in the distribution topology, and the
/// transport behind its exchange.
pub(crate) enum Plane {
    /// Every partition in this process; exchange over an in-memory
    /// loopback ([`LocalTransport`] unless a test injects another).
    Local(Box<dyn Transport>),
    /// A partition worker process driving `Session::owned` over a pipe to
    /// the coordinator.
    Worker(PipeLink),
    /// The coordinator of a [`ProcessTransport`] fleet; drives no
    /// partitions itself (see `coordinator.rs`).
    Coordinator(ProcessTransport),
}

/// An analytics session over a dynamic graph.
pub struct Session {
    pub cfg: EngineConfig,
    pub program: CompiledProgram,
    pub graph: ClusterGraph,
    pub(crate) layout: AccmLayout,
    /// Accumulate lane per vertex/global accumulator, selected at
    /// plan-compile time ([`CompiledProgram::vertex_lanes`]); all
    /// [`AccmLane::Generic`] when `cfg.opts.specialize` is off.
    pub(crate) vertex_lanes: Vec<AccmLane>,
    pub(crate) global_lanes: Vec<AccmLane>,
    /// Cacheable window loads executed so far; `cache/hit + cache/miss`
    /// equals this at every cache capacity (the `cache_oracle` invariant).
    pub(crate) window_loads: u64,
    pub(crate) parts: Vec<PartitionState>,
    /// Global accumulator values: `[snapshot][superstep][global]`.
    pub(crate) globals_history: Vec<Vec<Vec<Value>>>,
    /// Supersteps executed per snapshot.
    pub(crate) superstep_counts: Vec<usize>,
    pub(crate) ran_oneshot: bool,
    pub(crate) obs: SessionObs,
    /// The exchange endpoint and this session's role in the topology.
    pub(crate) plane: Plane,
    /// The machine range this session drives (all machines for
    /// [`Plane::Local`], a contiguous group for [`Plane::Worker`], empty
    /// for [`Plane::Coordinator`]).
    pub(crate) owned: std::ops::Range<usize>,
    /// Monotonic barrier sequence; coordinator and workers increment it at
    /// the same protocol points, so it doubles as a lockstep check.
    pub(crate) barrier_seq: u64,
    /// The open WAL when [`crate::DurabilityKind::Wal`] is configured;
    /// every state-changing command is appended here before executing
    /// (see `durability.rs`).
    pub(crate) durable: Option<DurableLog>,
}

impl Session {
    /// Create a session from `L_NGA` source text and an input graph.
    /// Internal — the public construction path is
    /// [`crate::SessionBuilder::from_source`], which names each knob and
    /// folds in the environment defaults.
    pub(crate) fn from_source(
        src: &str,
        input: &GraphInput,
        cfg: EngineConfig,
    ) -> Result<Session, EngineError> {
        let program = itg_compiler::compile_source(src)?;
        Session::new(program, input, cfg)
    }

    /// Create a session from a compiled program. The configured
    /// [`TransportKind`] decides the topology: `Local` keeps every
    /// partition in this process; `Process` spawns partition worker
    /// processes and turns this session into their coordinator.
    /// Internal — the public construction path is
    /// [`crate::SessionBuilder::build`].
    pub(crate) fn new(
        program: CompiledProgram,
        input: &GraphInput,
        cfg: EngineConfig,
    ) -> Result<Session, EngineError> {
        match cfg.transport {
            TransportKind::Local => {
                let plane = Plane::Local(Box::new(LocalTransport::new(&cfg.obs)));
                let owned = 0..cfg.machines;
                let mut sess = Session::assemble(program, input, cfg, plane, owned)?;
                sess.attach_durability()?;
                Ok(sess)
            }
            TransportKind::Process { workers } => {
                if !matches!(cfg.durability, DurabilityKind::None) {
                    return Err(EngineError::Unsupported(
                        "durability requires TransportKind::Local; the \
                         process transport replicates state across worker \
                         processes that a single WAL cannot cover"
                            .into(),
                    ));
                }
                Session::build_coordinator(program, input, cfg, workers)
            }
        }
    }

    /// Build the session state shared by every role: validate the program,
    /// load the (full, replicated) graph, and size the per-machine stores.
    pub(crate) fn assemble(
        program: CompiledProgram,
        input: &GraphInput,
        cfg: EngineConfig,
        plane: Plane,
        owned: std::ops::Range<usize>,
    ) -> Result<Session, EngineError> {
        if program.symbols.uses_in_direction && input.undirected {
            return Err(EngineError::Unsupported(
                "in_nbrs/in_degree on an undirected graph (use nbrs/degree)".into(),
            ));
        }
        if !program.incremental_safe {
            return Err(EngineError::Unsupported(
                "Traverse reads attributes of non-start walk vertices; the \
                 engine's walk enumeration serves attributes of the walk's \
                 first vertex only (see DESIGN.md §4.3 — restructure the \
                 traversal so values flow from u1, as all the paper's \
                 algorithms do)"
                    .into(),
            ));
        }
        let graph = ClusterGraph::load_with_obs(
            input,
            cfg.machines,
            cfg.buffer_pool_bytes,
            cfg.page_size,
            &cfg.obs,
        );
        let obs = SessionObs::new(&cfg.obs, &program);
        let layout = AccmLayout::new(&program.symbols.accms);
        let (vertex_lanes, global_lanes) = if cfg.opts.specialize {
            (program.vertex_lanes(), program.global_lanes())
        } else {
            (
                vec![AccmLane::Generic; program.symbols.accms.len()],
                vec![AccmLane::Generic; program.symbols.globals.len()],
            )
        };
        let attr_types: Vec<_> = program.symbols.attrs.iter().map(|a| a.ty).collect();
        let accm_types = layout.column_types();
        let mut parts = Vec::with_capacity(cfg.machines);
        for w in 0..cfg.machines {
            let n_local = graph.local_vertices(w).count();
            let stats = graph.partitions[w].stats.clone();
            let mut attr_store =
                AttrStore::new(attr_types.clone(), n_local, cfg.maintenance, stats.clone());
            attr_store.set_cache_capacity(cfg.cache_bytes);
            let mut accm_store = AttrStore::new(
                accm_types.clone(),
                n_local,
                cfg.maintenance,
                stats.clone(),
            );
            accm_store.set_init(layout.identity_columns(n_local));
            accm_store.set_cache_capacity(cfg.cache_bytes);
            parts.push(PartitionState {
                worker: w,
                n_local,
                attr_store,
                accm_store,
                cur_attrs: Vec::new(),
                prev_attrs: Vec::new(),
                cur_accm: Vec::new(),
                prev_accm: Vec::new(),
                changed: FxHashSet::default(),
                degree_changed: FxHashSet::default(),
            });
        }
        Ok(Session {
            cfg,
            program,
            graph,
            layout,
            vertex_lanes,
            global_lanes,
            window_loads: 0,
            parts,
            globals_history: Vec::new(),
            superstep_counts: Vec::new(),
            ran_oneshot: false,
            obs,
            plane,
            owned,
            barrier_seq: 0,
            durable: None,
        })
    }

    /// The active transport endpoint.
    fn transport_mut(&mut self) -> &mut dyn Transport {
        match &mut self.plane {
            Plane::Local(t) => t.as_mut(),
            Plane::Worker(link) => link,
            Plane::Coordinator(t) => t,
        }
    }

    pub(crate) fn is_coordinator(&self) -> bool {
        matches!(self.plane, Plane::Coordinator(_))
    }

    /// The coordinator's process transport. Panics outside that role.
    pub(crate) fn coord(&mut self) -> &mut ProcessTransport {
        match &mut self.plane {
            Plane::Coordinator(t) => t,
            _ => unreachable!("coordinator-only operation on a non-coordinator session"),
        }
    }

    /// The next control payload from the coordinator (worker plane only).
    pub(crate) fn worker_recv_ctrl(&mut self) -> Payload {
        match &mut self.plane {
            Plane::Worker(link) => link.recv_ctrl().expect("coordinator control message"),
            _ => unreachable!("control receive outside the worker plane"),
        }
    }

    /// The worker plane's pipe link. Panics outside that role.
    pub(crate) fn worker_link(&mut self) -> &mut PipeLink {
        match &mut self.plane {
            Plane::Worker(link) => link,
            _ => unreachable!("worker-only operation on a non-worker session"),
        }
    }

    /// Reduce this plane's active-set cardinality `mine` to the cluster
    /// total: identity under [`Plane::Local`] (it owns every machine); a
    /// frontier-vote round trip through the coordinator under
    /// [`Plane::Worker`]. Every worker evaluates the identical break
    /// condition on the returned total, keeping superstep counts in
    /// lockstep.
    fn plane_total_active(&mut self, superstep: usize, mine: usize) -> usize {
        match &mut self.plane {
            Plane::Local(_) => mine,
            Plane::Worker(link) => {
                let from = link.rank();
                link.send(
                    COORD,
                    Payload::Frontier {
                        from,
                        superstep: superstep as u64,
                        active: mine as u64,
                    },
                )
                .expect("frontier vote send");
                match link.recv_ctrl().expect("frontier total") {
                    Payload::FrontierTotal { superstep: s, active } => {
                        assert_eq!(s, superstep as u64, "frontier superstep lockstep");
                        active as usize
                    }
                    other => panic!("expected FrontierTotal, got {}", other.kind()),
                }
            }
            Plane::Coordinator(_) => {
                unreachable!("the coordinator does not drive supersteps locally")
            }
        }
    }

    /// Agree on the cluster-wide monoid-recompute sets: identity under
    /// [`Plane::Local`]; under [`Plane::Worker`], ship this worker's sets
    /// (sorted, for a canonical wire form) and receive the coordinator's
    /// union. Only set *content* must agree across peers — the recompute
    /// phase's folds are order-insensitive (reset + commutative min/max
    /// re-derivation).
    fn plane_union_recompute(
        &mut self,
        recompute: Vec<FxHashSet<VertexId>>,
    ) -> Vec<FxHashSet<VertexId>> {
        match &mut self.plane {
            Plane::Local(_) => recompute,
            Plane::Worker(link) => {
                let from = link.rank();
                let sets: Vec<Vec<VertexId>> = recompute
                    .iter()
                    .map(|s| {
                        let mut v: Vec<VertexId> = s.iter().copied().collect();
                        v.sort_unstable();
                        v
                    })
                    .collect();
                link.send(COORD, Payload::RecomputeSets { from, sets })
                    .expect("recompute sets send");
                match link.recv_ctrl().expect("recompute union") {
                    Payload::RecomputeUnion { sets } => {
                        sets.into_iter().map(|s| s.into_iter().collect()).collect()
                    }
                    other => panic!("expected RecomputeUnion, got {}", other.kind()),
                }
            }
            Plane::Coordinator(_) => {
                unreachable!("the coordinator does not drive supersteps locally")
            }
        }
    }

    /// The current snapshot index.
    pub fn snapshot(&self) -> usize {
        self.graph.snapshot()
    }

    /// Read a vertex's attribute by name from the final state of the last
    /// run.
    pub fn attr_value(&self, v: VertexId, name: &str) -> Result<Value, EngineError> {
        let idx = self
            .program
            .symbols
            .attr_index(name)
            .ok_or_else(|| EngineError::UnknownAttr(name.to_string()))?;
        let w = self.graph.owner(v);
        let l = self.graph.local_index(v);
        Ok(self.parts[w].cur_attrs[idx].get(l))
    }

    /// Read a global accumulator's value at a superstep of the last run
    /// (defaults to superstep 0 when `superstep` is `None` — the common
    /// single-superstep analytics case). A superstep past the executed
    /// range is [`EngineError::BadSuperstep`], not a silent clamp.
    pub fn global_value(&self, name: &str, superstep: Option<usize>) -> Result<Value, EngineError> {
        let idx = self
            .program
            .symbols
            .global_index(name)
            .ok_or_else(|| EngineError::UnknownAttr(name.to_string()))?;
        let snap = self.globals_history.last().ok_or_else(|| {
            EngineError::Unsupported("no run has been executed yet".into())
        })?;
        let s = superstep.unwrap_or(0);
        if s >= snap.len() {
            return Err(EngineError::BadSuperstep {
                requested: s,
                executed: snap.len(),
            });
        }
        Ok(snap[s][idx].clone())
    }

    /// All final attribute values of `name` as a dense vector by vertex id.
    pub fn attr_column(&self, name: &str) -> Result<Vec<Value>, EngineError> {
        let idx = self
            .program
            .symbols
            .attr_index(name)
            .ok_or_else(|| EngineError::UnknownAttr(name.to_string()))?;
        let n = self.graph.num_vertices();
        let mut out = Vec::with_capacity(n);
        for v in 0..n as u64 {
            let w = self.graph.owner(v);
            let l = self.graph.local_index(v);
            out.push(self.parts[w].cur_attrs[idx].get(l));
        }
        Ok(out)
    }

    pub(crate) fn global_infos(&self) -> &[AccmInfo] {
        &self.program.symbols.globals
    }

    /// A fresh contribution buffer with this session's selected lanes.
    pub(crate) fn new_buffer(&self) -> AccBuffer {
        AccBuffer::with_lanes(
            self.global_infos(),
            &self.vertex_lanes,
            &self.global_lanes,
        )
    }

    /// The accumulate lane selected for each vertex accumulator (plan
    /// order). All [`AccmLane::Generic`] when specialization is disabled.
    pub fn vertex_lanes(&self) -> &[AccmLane] {
        &self.vertex_lanes
    }

    /// The accumulate lane selected for each global accumulator.
    pub fn global_lanes(&self) -> &[AccmLane] {
        &self.global_lanes
    }

    /// Cacheable window loads executed so far; equals `cache/hit +
    /// cache/miss` at every `cache_bytes` capacity, including 0.
    pub fn window_loads(&self) -> u64 {
        self.window_loads
    }

    pub(crate) fn identity_globals(&self) -> Vec<Value> {
        self.global_infos()
            .iter()
            .map(|g| g.op.identity(g.prim))
            .collect()
    }

    // ---------------------------------------------------------------
    // One-shot execution (P_Q) at snapshot 0.
    // ---------------------------------------------------------------

    /// Run the one-shot analytics on the current graph. Must be the first
    /// run of the session.
    pub fn run_oneshot(&mut self) -> RunMetrics {
        assert!(!self.ran_oneshot, "one-shot runs once, then apply mutations");
        if self.is_coordinator() {
            return self
                .coordinate_oneshot()
                .unwrap_or_else(|e| panic!("process transport: {e}"));
        }
        self.log_command(&WalEntry::OneshotRun);
        let t0 = Instant::now();
        let io0 = self.graph.total_io();
        let mut metrics = RunMetrics::new(RunKind::OneShot);
        let prof0 = self.obs.enabled.then(|| self.cfg.obs.profile());

        // Initialize (owned partitions only — replicated non-owned parts
        // keep empty state and are driven by their owning worker).
        let setup_span = self.obs.setup.clone();
        let setup_g = setup_span.start();
        let n_attr_types: Vec<_> = self.program.symbols.attrs.iter().map(|a| a.ty).collect();
        for w in self.owned.clone() {
            let n_local = self.parts[w].n_local;
            let mut cols: Vec<ColumnData> = n_attr_types
                .iter()
                .map(|&t| ColumnData::zeros(t, n_local))
                .collect();
            for (l, v) in self.graph.local_vertices(w).enumerate() {
                let ctx = VertexCtx::new(v, l, &cols, None, &[], &self.graph);
                execute(&self.program.init, &ctx, &mut |_, _| {});
                for (attr, value) in ctx.into_writes() {
                    cols[attr].set(l, &value);
                }
            }
            self.parts[w].attr_store.set_init(cols.clone());
            self.parts[w].cur_attrs = cols;
            self.parts[w].cur_accm = self.layout.identity_columns(n_local);
        }
        drop(setup_g);

        let mut snapshot_globals: Vec<Vec<Value>> = Vec::new();
        let mut s = 0usize;
        loop {
            let sched_span = self.obs.schedule.clone();
            let sched_g = sched_span.start();
            let actives: Vec<Vec<VertexId>> = (0..self.cfg.machines)
                .map(|w| {
                    if self.owned.contains(&w) {
                        self.active_vertices(w)
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            drop(sched_g);
            let mine: usize = actives.iter().map(|a| a.len()).sum();
            metrics.work_units += mine as u64;
            let total_active = self.plane_total_active(s, mine);
            if total_active == 0 || s >= self.cfg.max_supersteps {
                break;
            }

            // Traverse phase.
            let trav_span = self.obs.traverse.clone();
            let trav_g = trav_span.start();
            let owned_list: Vec<usize> = self.owned.clone().collect();
            let outputs: Vec<(AccBuffer, PhaseStats)> = self.run_partition_phase(|sess, w| {
                sess.oneshot_traverse(w, &actives[w])
            });
            let mut buffers = Vec::with_capacity(outputs.len());
            for (&w, (buf, stats)) in owned_list.iter().zip(outputs) {
                metrics.parallel.record_phase(stats.chunks, &stats.per_worker_units, &stats.per_worker_ns);
                buffers.push((w, buf));
            }
            drop(trav_g);

            // Exchange with partial pre-aggregation.
            let exch_span = self.obs.exchange.clone();
            let exch_g = exch_span.start();
            let (inbox, global_contrib) = self.exchange(buffers, false);
            drop(exch_g);

            // Accumulate + record + Update.
            let upd_span = self.obs.update.clone();
            let upd_g = upd_span.start();
            let globals_s = match global_contrib {
                Some(gc) => {
                    let mut globals_s = self.identity_globals();
                    for (g, c) in gc.iter().enumerate() {
                        let info = &self.global_infos()[g];
                        globals_s[g] = info.op.combine(&globals_s[g], &c.folded, info.prim);
                        if let Some(m) = &c.monoid {
                            globals_s[g] = info.op.combine(&globals_s[g], &m.value, info.prim);
                        }
                    }
                    globals_s
                }
                None => match self.worker_recv_ctrl() {
                    Payload::GlobalsFinal { values, .. } => values,
                    other => panic!("expected GlobalsFinal, got {}", other.kind()),
                },
            };
            for w in self.owned.clone() {
                self.oneshot_apply_and_update(w, s, &inbox[w], &globals_s);
            }
            drop(upd_g);
            snapshot_globals.push(globals_s);
            s += 1;
        }

        self.globals_history.push(snapshot_globals);
        self.superstep_counts.push(s);
        self.ran_oneshot = true;
        metrics.supersteps = s;
        metrics.io = self.graph.total_io().since(&io0);
        metrics.wall = t0.elapsed();
        metrics.profile = prof0.map(|p0| self.cfg.obs.profile().since(&p0));
        metrics
    }

    /// Stable operator labels of the compiled plan — `(op_id, label)`
    /// pairs for joining profile rows ([`itg_obs::SpanStat::op`],
    /// [`itg_obs::CounterStat::op`]) to human-readable operator names.
    pub fn operator_labels(&self) -> Vec<(u32, String)> {
        self.program.operator_labels()
    }

    fn active_vertices(&self, w: usize) -> Vec<VertexId> {
        let part = &self.parts[w];
        let mut out = Vec::new();
        for (l, v) in self.graph.local_vertices(w).enumerate() {
            if part.cur_attrs[0].get(l) == Value::Bool(true) {
                out.push(v);
            }
        }
        out
    }

    /// Enumerate all one-shot walks for a worker's active vertices.
    fn oneshot_traverse(&self, w: usize, actives: &[VertexId]) -> (AccBuffer, PhaseStats) {
        let symbols = &self.program.symbols;
        let part = &self.parts[w];
        if self.obs.enabled {
            for qo in &self.obs.oneshot {
                qo.starts.add(actives.len() as u64);
            }
        }
        // Hop bindings are per query, not per start: build them once.
        let bindings: Vec<Vec<HopBinding>> = self
            .program
            .traverse
            .queries
            .iter()
            .map(|q| vec![HopBinding::View(View::New); q.hops.len()])
            .collect();
        self.parallel_enumerate(actives, |&v, buffer| {
            let local = self.graph.local_index(v);
            for (qi, q) in self.program.traverse.queries.iter().enumerate() {
                self.enumerate_query(
                    w,
                    q,
                    v,
                    1,
                    &bindings[qi],
                    &[],
                    &part.cur_attrs,
                    local,
                    View::New,
                    symbols,
                    buffer,
                    None,
                    Some(&self.obs.oneshot[qi]),
                );
            }
        })
    }

    /// Chunk length for intra-partition enumeration: a function of the
    /// work-list length alone — never the thread count — so the chunk
    /// decomposition, and with it the merged result, is identical for every
    /// `threads_per_machine`. Small lists stay in one chunk; large lists
    /// split into ~64 chunks for scheduling granularity, capped at the
    /// window capacity to preserve enumeration locality.
    fn par_chunk_size(&self, total: usize) -> usize {
        let hi = self.cfg.window_capacity.max(16);
        (total / 64).clamp(16, hi)
    }

    /// Run `run` over every item of a per-partition work list, chunked
    /// across up to `threads_per_machine` worker threads, each accumulating
    /// into a thread-local [`AccBuffer`].
    ///
    /// Determinism: chunk boundaries come from [`Session::par_chunk_size`]
    /// (a function of `items.len()` only) and the chunk buffers merge in
    /// chunk-index order, so the returned buffer is byte-identical for any
    /// thread count — including 1, which executes the same chunks inline.
    /// Workers claim chunks from a shared counter (dynamic scheduling), so
    /// only the *scheduling* statistics in [`PhaseStats`] vary with the
    /// thread count, never the buffer.
    fn parallel_enumerate<T: Sync>(
        &self,
        items: &[T],
        run: impl Fn(&T, &mut AccBuffer) + Sync,
    ) -> (AccBuffer, PhaseStats) {
        let accms = &self.program.symbols.accms;
        let globals = self.global_infos();
        if items.is_empty() {
            return (
                self.new_buffer(),
                PhaseStats {
                    chunks: 0,
                    per_worker_units: vec![0],
                    per_worker_ns: vec![0],
                },
            );
        }
        let chunk_len = self.par_chunk_size(items.len());
        let chunks: Vec<&[T]> = items.chunks(chunk_len).collect();
        let threads = self.cfg.threads_per_machine.max(1).min(chunks.len());
        let mut slots: Vec<Option<AccBuffer>> = Vec::new();
        let mut per_worker_units = vec![0u64; threads];
        let mut per_worker_ns = vec![0u64; threads];
        let timed = self.obs.enabled;
        if threads <= 1 {
            let t0 = timed.then(Instant::now);
            for chunk in &chunks {
                let mut buf = self.new_buffer();
                for item in *chunk {
                    run(item, &mut buf);
                }
                per_worker_units[0] += chunk.len() as u64;
                slots.push(Some(buf));
            }
            if let Some(t0) = t0 {
                per_worker_ns[0] = t0.elapsed().as_nanos() as u64;
            }
        } else {
            slots.resize_with(chunks.len(), || None);
            let next = AtomicUsize::new(0);
            // (chunk-indexed buffers, items processed, worker ns)
            type WorkerResult = (Vec<(usize, AccBuffer)>, u64, u64);
            let results: Vec<WorkerResult> =
                crossbeam::thread::scope(|scope| {
                    let handles: Vec<_> = (0..threads)
                        .map(|_| {
                            let next = &next;
                            let chunks = &chunks;
                            let run = &run;
                            scope.spawn(move |_| {
                                let t0 = timed.then(Instant::now);
                                let mut produced: Vec<(usize, AccBuffer)> = Vec::new();
                                let mut units = 0u64;
                                loop {
                                    let ci = next.fetch_add(1, Ordering::Relaxed);
                                    if ci >= chunks.len() {
                                        break;
                                    }
                                    let mut buf = self.new_buffer();
                                    for item in chunks[ci] {
                                        run(item, &mut buf);
                                    }
                                    units += chunks[ci].len() as u64;
                                    produced.push((ci, buf));
                                }
                                let ns = t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
                                (produced, units, ns)
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                })
                .unwrap();
            for (wi, (produced, units, ns)) in results.into_iter().enumerate() {
                per_worker_units[wi] = units;
                per_worker_ns[wi] = ns;
                for (ci, buf) in produced {
                    slots[ci] = Some(buf);
                }
            }
        }
        let mut ordered = slots.into_iter().map(|s| s.expect("every chunk executed"));
        let mut merged = ordered.next().expect("non-empty items produce chunks");
        for buf in ordered {
            merged.merge(buf, accms, globals);
        }
        (
            merged,
            PhaseStats {
                chunks: chunks.len() as u64,
                per_worker_units,
                per_worker_ns,
            },
        )
    }

    /// Run a query from one start vertex, feeding actions into `buffer`.
    /// `target_filter` restricts a specific accumulator's targets (the
    /// recompute path).
    #[allow(clippy::too_many_arguments)]
    fn enumerate_query(
        &self,
        w: usize,
        q: &WalkQuery,
        start: VertexId,
        start_mult: i64,
        bindings: &[HopBinding],
        allowed: &[Option<&FxHashSet<VertexId>>],
        attrs: &[ColumnData],
        local: usize,
        deg_view: View,
        symbols: &itg_lnga::Symbols,
        buffer: &mut AccBuffer,
        target_filter: Option<(usize, &FxHashSet<VertexId>)>,
        qobs: Option<&QueryObs>,
    ) {
        // Start filter (beyond `active`).
        if let Some(f) = &q.start_filter {
            let walk = [start];
            let ctx = crate::walker::WalkCtx {
                walk: &walk,
                attrs,
                local,
                deg_view,
                graph: &self.graph,
            };
            if !eval(f, &ctx).map(|v| v.as_bool().unwrap_or(false)).unwrap_or(false) {
                return;
            }
        }
        let walker = Walker {
            graph: &self.graph,
            worker: w,
            query: q,
            bindings,
            allowed,
            attrs,
            local,
            deg_view,
            use_intersection: true,
            obs: qobs.map(|o| &o.spans),
        };
        // Specialized accumulate path (DESIGN.md §10.1): action values that
        // read only the walk's start vertex — and after incrementalization
        // attribute reads are position-0-only — are evaluated at most once
        // per enumeration instead of once per completed walk. The cache is
        // lazy so a start with no complete walks evaluates nothing, exactly
        // like the generic path.
        let hoist = self.cfg.opts.specialize;
        let mut invariant = 0u64;
        let mut hoisted: Vec<Option<Value>> = Vec::new();
        if hoist {
            hoisted.resize(q.actions.len(), None);
            for (i, a) in q.actions.iter().enumerate().take(64) {
                if a.value.max_walk_pos().unwrap_or(0) == 0 {
                    invariant |= 1 << i;
                }
            }
        }
        let mut contribs = 0u64;
        walker.enumerate(start, start_mult, &mut |ai, walk, mult, ctx| {
            let action = &q.actions[ai];
            let owned;
            let value: &Value = if hoist && ai < 64 && invariant >> ai & 1 == 1 {
                if hoisted[ai].is_none() {
                    hoisted[ai] =
                        Some(eval(&action.value, ctx).expect("action value evaluation"));
                }
                hoisted[ai].as_ref().unwrap()
            } else {
                owned = eval(&action.value, ctx).expect("action value evaluation");
                &owned
            };
            match &action.target {
                ActionTarget::VertexAccm { pos, accm } => {
                    if let Some((fa, set)) = &target_filter {
                        if fa != accm || !set.contains(&walk[*pos]) {
                            return;
                        }
                    }
                    buffer.add_vertex(*accm, &symbols.accms[*accm], walk[*pos], value, mult);
                    contribs += 1;
                }
                ActionTarget::Global(g) => {
                    if target_filter.is_some() {
                        return;
                    }
                    buffer.add_global(*g, &symbols.globals[*g], value, mult);
                    contribs += 1;
                }
            }
        });
        if let Some(o) = qobs {
            if contribs > 0 {
                o.contribs.add(contribs);
            }
        }
    }

    /// Route contributions to their owners through the transport plane
    /// (partial pre-aggregation has already folded per-target within each
    /// sender). Each `(sender, buffer)` pair produces at most one
    /// [`Payload::Contribs`] frame per destination machine, plus exactly one
    /// [`Payload::GlobalsPartial`] to the coordinator. Net bytes are charged
    /// to the sender exactly as the pre-transport exchange did: per
    /// contribution wire size when `owner != sender`, and per global partial
    /// whenever it is non-identity.
    ///
    /// Returns the merged per-machine inbox and — on the local plane and
    /// the coordinator — the fully reduced global contributions. Workers get
    /// `None` and must await the coordinator's [`Payload::GlobalsFinal`].
    ///
    /// With `globals_only` (the global-recompute path), vertex frames are
    /// suppressed after charging: only the global partials travel.
    fn exchange(
        &mut self,
        buffers: Vec<(usize, AccBuffer)>,
        globals_only: bool,
    ) -> (ExchangeInbox, Option<Vec<Contribution>>) {
        let m = self.cfg.machines;
        let n_accms = self.layout.num_accms();
        for (w, buf) in buffers {
            // Route this sender's vertex contributions per destination.
            // Lane cells convert to the generic wire `Contribution` here,
            // once per target; the drain order of a specialized map equals
            // the generic map's (key insertion decides hash layout, the
            // value type does not), so the frames are byte-identical.
            let AccBuffer { vertex, globals } = buf;
            let mut outgoing: Vec<Vec<Vec<(VertexId, Contribution)>>> =
                (0..m).map(|_| (0..n_accms).map(|_| Vec::new()).collect()).collect();
            for (a, map) in vertex.into_iter().enumerate() {
                let info = &self.program.symbols.accms[a];
                map.into_each(info, |v, c| {
                    let owner = self.graph.owner(v);
                    if owner != w {
                        self.graph.partitions[w].stats.add_net(c.wire_bytes());
                    }
                    outgoing[owner][a].push((v, c));
                });
            }
            let globals: Vec<Contribution> = globals
                .into_iter()
                .zip(self.global_infos())
                .map(|(slot, info)| slot.into_contrib(info))
                .collect();
            for c in globals.iter() {
                if c.count != 0 || !c.retractions.is_empty() {
                    self.graph.partitions[w].stats.add_net(c.wire_bytes());
                }
            }
            let transport = self.transport_mut();
            if !globals_only {
                for (dst, vertex) in outgoing.into_iter().enumerate() {
                    if vertex.iter().all(|per_accm| per_accm.is_empty()) {
                        continue;
                    }
                    transport
                        .send(dst, Payload::Contribs { from: w as u32, vertex })
                        .expect("exchange send");
                }
            }
            // The global partial always travels — even when identity — so
            // the coordinator's reduction folds a fixed machine set in a
            // fixed order (exact float-fold replay of the local plane).
            transport
                .send(
                    COORD,
                    Payload::GlobalsPartial {
                        from: w as u32,
                        globals,
                    },
                )
                .expect("exchange globals send");
        }

        self.barrier_seq += 1;
        let seq = self.barrier_seq;
        self.transport_mut().barrier(seq).expect("superstep barrier");
        let frames = self.transport_mut().drain_inbox();

        let mut inbox: ExchangeInbox =
            (0..m).map(|_| (0..n_accms).map(|_| FxHashMap::default()).collect()).collect();
        let mut contrib_frames: Vec<ContribFrame> = Vec::new();
        let mut partials: Vec<(u32, Vec<Contribution>)> = Vec::new();
        for (dst, payload) in frames {
            match payload {
                Payload::Contribs { from, vertex } => contrib_frames.push((dst, from, vertex)),
                Payload::GlobalsPartial { from, globals } if dst == COORD => {
                    partials.push((from, globals));
                }
                other => panic!("unexpected payload in exchange inbox: {}", other.kind()),
            }
        }
        // Merge frames in ascending sender order: one frame per
        // (sender, dst) pair, each frame's list in the sender's map
        // iteration order, replays the pre-transport insertion sequence.
        contrib_frames.sort_by_key(|&(_, from, _)| from);
        for (dst, _, vertex) in contrib_frames {
            for (a, list) in vertex.into_iter().enumerate() {
                let info = &self.program.symbols.accms[a];
                for (v, c) in list {
                    inbox[dst][a]
                        .entry(v)
                        .or_insert_with(|| Contribution::identity(info.op, info.prim))
                        .merge(&c, info.op, info.prim);
                }
            }
        }
        let globals = match &self.plane {
            Plane::Worker(_) => {
                debug_assert!(partials.is_empty(), "workers never see global partials");
                None
            }
            _ => {
                partials.sort_by_key(|&(from, _)| from);
                let mut out: Vec<Contribution> = self
                    .global_infos()
                    .iter()
                    .map(|g| Contribution::identity(g.op, g.prim))
                    .collect();
                for (_, gs) in partials {
                    for (g, c) in gs.into_iter().enumerate() {
                        let info = &self.global_infos()[g];
                        out[g].merge(&c, info.op, info.prim);
                    }
                }
                Some(out)
            }
        };
        (inbox, globals)
    }

    /// One-shot: apply contributions onto identity accumulator state,
    /// record the superstep's stores, and run Update.
    fn oneshot_apply_and_update(
        &mut self,
        w: usize,
        s: usize,
        inbox: &[FxHashMap<VertexId, Contribution>],
        globals_s: &[Value],
    ) {
        let layout = self.layout.clone();
        // Fresh identity state for this superstep.
        let n_local = self.parts[w].n_local;
        let mut accm = layout.identity_columns(n_local);
        let mut touched: FxHashSet<VertexId> = FxHashSet::default();
        for (a, map) in inbox.iter().enumerate() {
            for (v, c) in map {
                let l = self.graph.local_index(*v);
                let out = apply_contribution(&layout, &mut accm, l, a, c, true);
                debug_assert_ne!(out, ApplyOutcome::NeedsRecompute, "one-shot is insert-only");
                touched.insert(*v);
            }
        }
        // Record accumulator after-images for touched vertices.
        let mut touched_sorted: Vec<VertexId> = touched.iter().copied().collect();
        touched_sorted.sort_unstable();
        let (vids, cols) = rows_of(&self.graph, &layout.column_types(), &accm, &touched_sorted);
        self.parts[w].accm_store.record_run(0, s, vids, cols);

        // Update phase.
        let part = &self.parts[w];
        let mut new_attrs = part.cur_attrs.clone();
        set_all_false(&mut new_attrs[0]);
        let mut changed: Vec<VertexId> = Vec::new();
        let mut update_globals: Vec<(usize, Value)> = Vec::new();
        for &v in &touched_sorted {
            let l = self.graph.local_index(v);
            let ctx = VertexCtx::new(
                v,
                l,
                &part.cur_attrs,
                Some((&layout, &accm)),
                globals_s,
                &self.graph,
            );
            execute(&self.program.update, &ctx, &mut |g, val| {
                update_globals.push((g, val.clone()));
            });
            for (attr, value) in ctx.into_writes() {
                new_attrs[attr].set(l, &value);
            }
        }
        // Changed set: previously-active (deactivation) ∪ updated rows.
        let mut candidates: FxHashSet<VertexId> = touched_sorted.iter().copied().collect();
        for (l, v) in self.graph.local_vertices(w).enumerate() {
            if part.cur_attrs[0].get(l) == Value::Bool(true) {
                candidates.insert(v);
            }
        }
        for &v in &candidates {
            let l = self.graph.local_index(v);
            if row_differs(&new_attrs, &part.cur_attrs, l) {
                changed.push(v);
            }
        }
        changed.sort_unstable();
        let attr_types: Vec<_> = self.program.symbols.attrs.iter().map(|a| a.ty).collect();
        let (vids, cols) = rows_of(&self.graph, &attr_types, &new_attrs, &changed);
        let part = &mut self.parts[w];
        part.attr_store.record_run(0, s + 1, vids, cols);
        part.cur_attrs = new_attrs;
        part.cur_accm = accm;
        drop(update_globals); // one-shot Update global accumulation folds below
    }

    /// Run a per-partition phase over this session's owned machines,
    /// optionally in parallel worker threads.
    fn run_partition_phase<R: Send>(
        &self,
        f: impl Fn(&Session, usize) -> R + Sync,
    ) -> Vec<R> {
        let owned: Vec<usize> = self.owned.clone().collect();
        if self.cfg.parallel && owned.len() > 1 {
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = owned
                    .iter()
                    .map(|&w| {
                        let f = &f;
                        scope.spawn(move |_| f(self, w))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
            .unwrap()
        } else {
            owned.into_iter().map(|w| f(self, w)).collect()
        }
    }

    // ---------------------------------------------------------------
    // Mutation ingestion and incremental execution (P_ΔQ).
    // ---------------------------------------------------------------

    /// Apply a mutation batch, advancing to the next snapshot. On a
    /// coordinator the batch is also shipped to every partition worker so
    /// all replicas ingest the same ΔG_t.
    pub fn apply_mutations(&mut self, batch: &MutationBatch) {
        if let Plane::Coordinator(t) = &mut self.plane {
            t.broadcast(&Payload::Mutations(batch.clone()))
                .expect("broadcast mutations");
        }
        self.log_command(&WalEntry::Batch(batch.clone()));
        self.graph.apply_batch(batch);
        // Grow per-partition state to the new vertex space.
        let identity_row: Vec<Value> = {
            let cols = self.layout.identity_columns(1);
            (0..cols.len()).map(|c| cols[c].get(0)).collect()
        };
        for w in 0..self.cfg.machines {
            let n_local = self.graph.local_vertices(w).count();
            let part = &mut self.parts[w];
            part.attr_store.grow(n_local);
            part.accm_store.grow_with(n_local, Some(&identity_row));
            part.n_local = n_local;
            // Degree-changed endpoints (owned side).
            part.degree_changed.clear();
        }
        self.graph.for_each_delta_edge(itg_gsa::EdgeDir::Out, |s, d, _| {
            self.parts[self.graph.owner(s)].degree_changed.insert(s);
            self.parts[self.graph.owner(d)].degree_changed.insert(d);
        });
    }

    /// Run the incremental analytics for the latest snapshot. Panics on
    /// protocol misuse or a program outside the incremental fragment; use
    /// [`Self::try_run_incremental`] for the fallible form.
    pub fn run_incremental(&mut self) -> RunMetrics {
        self.try_run_incremental()
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible incremental run: errors when no one-shot has run, no batch
    /// is pending, or the program is outside the incrementally-supported
    /// fragment (deep attribute reads; global accumulation in Update;
    /// degree-dependent Initialize).
    pub fn try_run_incremental(&mut self) -> Result<RunMetrics, EngineError> {
        if !self.ran_oneshot {
            return Err(EngineError::Unsupported(
                "run the one-shot analytics first".into(),
            ));
        }
        let t = self.snapshot();
        if t < 1 || t < self.superstep_counts.len() {
            return Err(EngineError::Unsupported(
                "apply a mutation batch before running incrementally".into(),
            ));
        }
        if !self.program.incremental_safe {
            return Err(EngineError::Unsupported(
                "Traverse reads attributes of non-start walk vertices; the \
                 incremental fragment restricts attribute reads to the walk's \
                 first vertex (see DESIGN.md §4.3)"
                    .into(),
            ));
        }
        if self.program.analysis.update_accumulates_globals {
            return Err(EngineError::Unsupported(
                "Update accumulates into globals; incremental ΔUpdate cannot \
                 re-derive global deltas for it"
                    .into(),
            ));
        }
        if self.program.analysis.init_reads_degree {
            return Err(EngineError::Unsupported(
                "Initialize reads degrees; initial values would change under \
                 mutations, which incremental runs do not re-derive"
                    .into(),
            ));
        }
        if self.is_coordinator() {
            return self.coordinate_incremental();
        }
        self.log_command(&WalEntry::IncrementalRun);
        let t0 = Instant::now();
        let io0 = self.graph.total_io();
        let mut metrics = RunMetrics::new(RunKind::Incremental);
        let prof0 = self.obs.enabled.then(|| self.cfg.obs.profile());
        let prev_k = self.superstep_counts[t - 1];

        // Setup: prev = A_{t-1,0}; cur = prev + Initialize for new vertices.
        let setup_span = self.obs.setup.clone();
        let setup_g = setup_span.start();
        let attr_types: Vec<_> = self.program.symbols.attrs.iter().map(|a| a.ty).collect();
        let n_old = self.graph.num_vertices_old();
        for w in self.owned.clone() {
            self.window_loads += 1;
            let part = &mut self.parts[w];
            let prev = part
                .attr_store
                .load_window_before(0, t, WindowBase::Init);
            let mut cur = prev.clone();
            part.changed.clear();
            // New vertices: Initialize them in the current snapshot.
            let mut new_rows: Vec<VertexId> = Vec::new();
            for (l, v) in self.graph.local_vertices(w).enumerate() {
                if (v as usize) >= n_old {
                    new_rows.push(v);
                    let ctx = VertexCtx::new(v, l, &cur, None, &[], &self.graph);
                    execute(&self.program.init, &ctx, &mut |_, _| {});
                    for (attr, value) in ctx.into_writes() {
                        cur[attr].set(l, &value);
                    }
                    part.changed.insert(v);
                }
            }
            let (vids, cols) = rows_of(&self.graph, &attr_types, &cur, &new_rows);
            if !vids.is_empty() {
                part.attr_store.record_run(t, 0, vids, cols);
            }
            part.prev_attrs = prev;
            part.cur_attrs = cur;
        }
        drop(setup_g);

        // Precompute the pruning levels for the edge-delta sub-queries
        // (the delta edges are fixed for the whole snapshot).
        let prune_span = self.obs.pruning.clone();
        let prune_g = prune_span.start();
        let pruning = self.compute_pruning();
        drop(prune_g);

        let mut snapshot_globals: Vec<Vec<Value>> = Vec::new();
        let mut s = 0usize;
        let debug = std::env::var_os("ITG_DEBUG").is_some();
        loop {
            let total_changed: usize =
                self.owned.clone().map(|w| self.parts[w].changed.len()).sum();
            metrics.work_units += total_changed as u64;
            if debug {
                eprintln!(
                    "[itg] t={t} s={s} changed={total_changed} recomputed={}",
                    metrics.recomputed_vertices
                );
            }

            // Advance accumulator prev/cur arrays to superstep s.
            let adv_span = self.obs.store_advance.clone();
            let adv_g = adv_span.start();
            for w in self.owned.clone() {
                self.window_loads += 1;
                let identity = self.layout.identity_columns(self.parts[w].n_local);
                let part = &mut self.parts[w];
                let prev =
                    part.accm_store
                        .load_window_before(s, t, WindowBase::Rows(&identity));
                part.cur_accm = prev.clone();
                part.prev_accm = prev;
            }
            drop(adv_g);

            // ΔTraverse.
            let trav_span = self.obs.traverse.clone();
            let trav_g = trav_span.start();
            let outputs: Vec<(AccBuffer, PhaseStats)> =
                self.run_partition_phase(|sess, w| sess.delta_traverse(w, &pruning));
            let owned_list: Vec<usize> = self.owned.clone().collect();
            let mut buffers = Vec::with_capacity(outputs.len());
            for (&w, (buf, stats)) in owned_list.iter().zip(outputs) {
                metrics.parallel.record_phase(stats.chunks, &stats.per_worker_units, &stats.per_worker_ns);
                buffers.push((w, buf));
            }
            drop(trav_g);
            let exch_span = self.obs.exchange.clone();
            let exch_g = exch_span.start();
            let (inbox, global_contrib) = self.exchange(buffers, false);
            drop(exch_g);

            // Apply deltas onto accumulator state; collect recomputes.
            let accm_span = self.obs.accumulate.clone();
            let accm_g = accm_span.start();
            let mut recompute: Vec<FxHashSet<VertexId>> =
                (0..self.layout.num_accms()).map(|_| FxHashSet::default()).collect();
            let mut changed_accm: Vec<FxHashSet<VertexId>> =
                (0..self.cfg.machines).map(|_| FxHashSet::default()).collect();
            for w in self.owned.clone() {
                let layout = self.layout.clone();
                let use_cnt = self.cfg.opts.min_count;
                let part = &mut self.parts[w];
                for (a, map) in inbox[w].iter().enumerate() {
                    for (v, c) in map {
                        let l = self.graph.local_index(*v);
                        match apply_contribution(&layout, &mut part.cur_accm, l, a, c, use_cnt) {
                            ApplyOutcome::Unchanged => {}
                            ApplyOutcome::Changed => {
                                changed_accm[w].insert(*v);
                            }
                            ApplyOutcome::NeedsRecompute => {
                                recompute[a].insert(*v);
                                changed_accm[w].insert(*v);
                            }
                        }
                    }
                }
            }

            drop(accm_g);

            // Monoid recomputation (paper §5.4): reset and re-derive the
            // affected accumulators from a pruned one-shot enumeration.
            // Agree on the global recompute set first — every worker must
            // enter (or skip) the recompute exchange in lockstep.
            let recompute = self.plane_union_recompute(recompute);
            let n_recompute: usize = recompute.iter().map(|r| r.len()).sum();
            if n_recompute > 0 {
                metrics.recomputed_vertices += n_recompute as u64;
                self.obs.recompute_triggers.add(n_recompute as u64);
                let rec_span = self.obs.recompute.clone();
                let rec_g = rec_span.start();
                self.recompute_accumulators(&recompute, &mut changed_accm);
                drop(rec_g);
            }

            // Record accumulator runs.
            let accm_span = self.obs.accumulate.clone();
            let accm_g = accm_span.start();
            for (w, changed) in changed_accm.iter().enumerate() {
                if !self.owned.contains(&w) {
                    continue;
                }
                let layout_types = self.layout.column_types();
                let mut rows: Vec<VertexId> = changed.iter().copied().collect();
                rows.sort_unstable();
                let part = &mut self.parts[w];
                let (vids, cols) = rows_of(&self.graph, &layout_types, &part.cur_accm, &rows);
                if !vids.is_empty() {
                    part.accm_store.record_run(t, s, vids, cols);
                }
            }
            drop(accm_g);

            // Globals: fold the delta into the previous snapshot's value.
            // Workers instead follow the coordinator's recompute decision
            // (so the globals exchange happens in lockstep) and adopt its
            // reduced final values.
            let glob_span = self.obs.globals.clone();
            let glob_g = glob_span.start();
            let (globals_s, globals_changed) = match global_contrib {
                Some(gc) => {
                    let prev_globals: Vec<Value> = self
                        .globals_history
                        .get(t - 1)
                        .and_then(|gh| gh.get(s))
                        .cloned()
                        .unwrap_or_else(|| self.identity_globals());
                    let mut globals_s = prev_globals.clone();
                    let mut needs_global_recompute = false;
                    for (g, c) in gc.iter().enumerate() {
                        let info = &self.global_infos()[g];
                        if info.op.is_group() && c.retractions.is_empty() {
                            globals_s[g] = info.op.combine(&globals_s[g], &c.folded, info.prim);
                        } else if c.count != 0 || !c.retractions.is_empty() || c.monoid.is_some() {
                            needs_global_recompute = true;
                        }
                    }
                    if needs_global_recompute {
                        globals_s = self.recompute_globals(&mut metrics.parallel);
                    }
                    let changed = globals_s != prev_globals;
                    (globals_s, changed)
                }
                None => match self.worker_recv_ctrl() {
                    Payload::GlobalsDecision { recompute } => {
                        if recompute {
                            let _ = self.recompute_globals(&mut metrics.parallel);
                        }
                        match self.worker_recv_ctrl() {
                            Payload::GlobalsFinal { values, changed } => (values, changed),
                            other => panic!("expected GlobalsFinal, got {}", other.kind()),
                        }
                    }
                    other => panic!("expected GlobalsDecision, got {}", other.kind()),
                },
            };
            drop(glob_g);

            // ΔUpdate.
            let upd_span = self.obs.update.clone();
            let upd_g = upd_span.start();
            let changed_next =
                self.delta_update(t, s, prev_k, &changed_accm, &globals_s, globals_changed);
            snapshot_globals.push(globals_s);
            for (w, set) in changed_next.into_iter().enumerate() {
                self.parts[w].changed = set;
            }
            drop(upd_g);

            s += 1;
            let sched_span = self.obs.schedule.clone();
            let sched_g = sched_span.start();
            let mine: usize = self
                .owned
                .clone()
                .map(|w| self.active_vertices(w).len())
                .sum();
            drop(sched_g);
            let total = self.plane_total_active(s, mine);
            if (s >= prev_k && total == 0) || s >= self.cfg.max_supersteps {
                break;
            }
        }

        self.globals_history.push(snapshot_globals);
        self.superstep_counts.push(s);
        metrics.supersteps = s;
        metrics.io = self.graph.total_io().since(&io0);
        metrics.wall = t0.elapsed();
        metrics.profile = prof0.map(|p0| self.cfg.obs.profile().since(&p0));
        Ok(metrics)
    }

    /// Backward MS-BFS levels per delta sub-query (edge-delta ones only).
    fn compute_pruning(&self) -> Vec<Option<PruningLevels>> {
        self.program
            .delta_traverse
            .iter()
            .map(|sq| {
                if sq.delta_stream == 0 {
                    return None;
                }
                if !(self.cfg.opts.traversal_reorder || self.cfg.opts.neighbor_prune) {
                    return None;
                }
                let q = &self.program.traverse.queries[sq.query];
                let hop = &q.hops[sq.delta_stream - 1];
                // Seeds: delta edge sources along the hop's direction.
                let mut seeds = FxHashSet::default();
                self.graph.for_each_delta_edge(hop.dir, |src, _dst, _m| {
                    seeds.insert(src);
                });
                Some(backward_msbfs(&self.graph, q, &sq.pruning_path, seeds))
            })
            .collect()
    }

    /// ΔTraverse for one worker: all Rule ⑦ sub-queries, batched per start
    /// vertex when seek/window sharing is enabled, chunked across the
    /// intra-partition worker pool either way.
    fn delta_traverse(
        &self,
        w: usize,
        pruning: &[Option<PruningLevels>],
    ) -> (AccBuffer, PhaseStats) {
        // Build per-sub-query start lists.
        let mut tasks: Vec<(usize, Vec<VertexId>)> = Vec::new();
        for (i, sq) in self.program.delta_traverse.iter().enumerate() {
            let starts = self.subquery_starts(w, sq, pruning[i].as_ref());
            if self.obs.enabled {
                self.obs.delta[i].starts.add(starts.len() as u64);
            }
            if !starts.is_empty() {
                tasks.push((i, starts));
            }
        }
        // Hop bindings and pruning-allowed sets are functions of the
        // sub-query (and the phase's pruning levels), not the start vertex:
        // build each once per phase, not once per start.
        let bindings: Vec<Vec<HopBinding>> = self
            .program
            .delta_traverse
            .iter()
            .map(|sq| self.subquery_bindings(sq))
            .collect();
        let allowed: Vec<Vec<Option<&FxHashSet<VertexId>>>> = self
            .program
            .delta_traverse
            .iter()
            .enumerate()
            .map(|(i, sq)| {
                let p = pruning[i].as_ref().filter(|_| self.cfg.opts.neighbor_prune);
                let Some(p) = p else { return Vec::new() };
                let k = self.program.traverse.queries[sq.query].hops.len();
                let mut sets: Vec<Option<&FxHashSet<VertexId>>> = vec![None; k];
                for (pi, &hop_idx) in sq.pruning_path.iter().enumerate() {
                    sets[hop_idx] = Some(p.allowed_for_path_hop(pi));
                }
                sets
            })
            .collect();
        if self.cfg.opts.seek_window_share {
            // Interleave: iterate the union of starts in order, running
            // every relevant sub-query while the start's neighborhood is
            // hot in the buffer pool. Chunking by start vertex keeps each
            // start's sub-queries on one worker, preserving the sharing.
            let mut by_start: std::collections::BTreeMap<VertexId, Vec<usize>> =
                std::collections::BTreeMap::new();
            for (i, starts) in &tasks {
                for &v in starts {
                    by_start.entry(v).or_default().push(*i);
                }
            }
            let items: Vec<(VertexId, Vec<usize>)> = by_start.into_iter().collect();
            self.parallel_enumerate(&items, |(v, sqs), buffer| {
                for &i in sqs {
                    self.run_subquery(w, i, *v, &bindings[i], &allowed[i], buffer);
                }
            })
        } else {
            let items: Vec<(usize, VertexId)> = tasks
                .into_iter()
                .flat_map(|(i, starts)| starts.into_iter().map(move |v| (i, v)))
                .collect();
            self.parallel_enumerate(&items, |&(i, v), buffer| {
                self.run_subquery(w, i, v, &bindings[i], &allowed[i], buffer);
            })
        }
    }

    /// The fixed hop-binding pattern of one delta sub-query: all-old views
    /// for Δvs; new-before / delta-at / old-after around hop `j` for Δes_j.
    fn subquery_bindings(&self, sq: &DeltaSubQuery) -> Vec<HopBinding> {
        let k = self.program.traverse.queries[sq.query].hops.len();
        if sq.delta_stream == 0 {
            vec![HopBinding::View(View::Old); k]
        } else {
            let j = sq.delta_stream - 1;
            (0..k)
                .map(|h| {
                    if h < j {
                        HopBinding::View(View::New)
                    } else if h == j {
                        HopBinding::Delta
                    } else {
                        HopBinding::View(View::Old)
                    }
                })
                .collect()
        }
    }

    /// The start-vertex list of one sub-query on one worker.
    fn subquery_starts(
        &self,
        w: usize,
        sq: &DeltaSubQuery,
        pruning: Option<&PruningLevels>,
    ) -> Vec<VertexId> {
        let part = &self.parts[w];
        if sq.delta_stream == 0 {
            // Δvs: changed attribute images (plus degree changes when the
            // program reads degrees).
            let mut starts: Vec<VertexId> = part.changed.iter().copied().collect();
            if self.program.analysis.traverse_reads_degree {
                starts.extend(part.degree_changed.iter().copied());
                starts.sort_unstable();
                starts.dedup();
            } else {
                starts.sort_unstable();
            }
            starts
        } else if self.cfg.opts.traversal_reorder || self.cfg.opts.neighbor_prune {
            let candidates = pruning.expect("pruning computed").start_candidates();
            let mut starts: Vec<VertexId> = candidates
                .iter()
                .copied()
                .filter(|&v| {
                    self.graph.owner(v) == w
                        && self.parts[w].cur_attrs[0].get(self.graph.local_index(v))
                            == Value::Bool(true)
                })
                .collect();
            starts.sort_unstable();
            starts
        } else {
            // BASE: every active vertex re-enumerates against the delta.
            self.active_vertices(w)
        }
    }

    /// Execute one sub-query from one start vertex. `bindings` and
    /// `allowed` are the per-sub-query patterns precomputed by
    /// [`Self::delta_traverse`] (they do not depend on the start).
    fn run_subquery(
        &self,
        w: usize,
        sq_idx: usize,
        start: VertexId,
        bindings: &[HopBinding],
        allowed: &[Option<&FxHashSet<VertexId>>],
        buffer: &mut AccBuffer,
    ) {
        let sq = &self.program.delta_traverse[sq_idx];
        let q = &self.program.traverse.queries[sq.query];
        let part = &self.parts[w];
        let local = self.graph.local_index(start);
        let symbols = &self.program.symbols;
        if sq.delta_stream == 0 {
            // ω(Δvs, es, …): old edges; both images of the start vertex.
            let n_old = self.graph.num_vertices_old();
            let old_ok = (start as usize) < n_old
                && part.prev_attrs[0].get(local) == Value::Bool(true)
                && self.passes_start_filter(q, start, &part.prev_attrs, local, View::Old);
            let new_ok = part.cur_attrs[0].get(local) == Value::Bool(true)
                && self.passes_start_filter(q, start, &part.cur_attrs, local, View::New);
            // Value-change-aware dual enumeration (paper §6.2.1: do not
            // perform computations if the value does not change): when both
            // images are live and the walk *shape* cannot depend on the
            // image (hop constraints read only ids), enumerate the shared
            // walk set once and emit contributions only where the old- and
            // new-image values differ.
            if old_ok && new_ok && hops_are_image_independent(q) {
                // Hoisted skip: when every action's value depends only on
                // the start vertex, compare the old/new values once — if
                // none changed, no walk can contribute and the whole
                // enumeration is skipped (the paper's §6.2.1 value-change
                // check). Typical for the one-hop algorithms, where the
                // integer truncation kills most of the ripple here.
                let hoistable = q
                    .actions
                    .iter()
                    .all(|a| a.value.max_walk_pos().unwrap_or(0) == 0);
                // Under the specialized accumulate path (DESIGN.md §10.1)
                // the hoisted values are also *kept*: the per-walk dual
                // evaluation below collapses to one fused insert of each
                // changed (old, new) pair; `None` marks an unchanged action.
                let mut pre: Option<Vec<Option<(Value, Value)>>> = None;
                if hoistable {
                    let walk = [start];
                    let new_ctx = crate::walker::WalkCtx {
                        walk: &walk,
                        attrs: &part.cur_attrs,
                        local,
                        deg_view: View::New,
                        graph: &self.graph,
                    };
                    let old_ctx = crate::walker::WalkCtx {
                        walk: &walk,
                        attrs: &part.prev_attrs,
                        local,
                        deg_view: View::Old,
                        graph: &self.graph,
                    };
                    if self.cfg.opts.specialize {
                        let mut any_changed = false;
                        let vals: Vec<Option<(Value, Value)>> = q
                            .actions
                            .iter()
                            .map(|a| {
                                let o = eval(&a.value, &old_ctx).expect("action value");
                                let n = eval(&a.value, &new_ctx).expect("action value");
                                if o == n {
                                    None
                                } else {
                                    any_changed = true;
                                    Some((o, n))
                                }
                            })
                            .collect();
                        if !any_changed {
                            return;
                        }
                        pre = Some(vals);
                    } else {
                        let any_changed = q.actions.iter().any(|a| {
                            eval(&a.value, &new_ctx).expect("action value")
                                != eval(&a.value, &old_ctx).expect("action value")
                        });
                        if !any_changed {
                            return;
                        }
                    }
                }
                let walker = Walker {
                    graph: &self.graph,
                    worker: w,
                    query: q,
                    bindings,
                    allowed,
                    attrs: &part.cur_attrs,
                    local,
                    deg_view: View::New,
                    use_intersection: true,
                    obs: Some(&self.obs.delta[sq_idx].spans),
                };
                let mut contribs = 0u64;
                walker.enumerate(start, 1, &mut |ai, walk, mult, new_ctx| {
                    let action = &q.actions[ai];
                    // Action conds are image-independent here (gated by
                    // `hops_are_image_independent`), so firing under the
                    // new image implies firing under the old one.
                    if let Some(pre) = &pre {
                        // Specialized dual emit: the precomputed pair, one
                        // map lookup for both inserts.
                        let Some((old_val, new_val)) = &pre[ai] else {
                            return; // value unchanged: contributions cancel
                        };
                        match &action.target {
                            ActionTarget::VertexAccm { pos, accm } => {
                                buffer.add_vertex_pair(
                                    *accm,
                                    &symbols.accms[*accm],
                                    walk[*pos],
                                    old_val,
                                    new_val,
                                    mult,
                                );
                            }
                            ActionTarget::Global(g) => {
                                let info = &symbols.globals[*g];
                                buffer.add_global(*g, info, old_val, -mult);
                                buffer.add_global(*g, info, new_val, mult);
                            }
                        }
                        contribs += 2;
                        return;
                    }
                    let old_ctx = crate::walker::WalkCtx {
                        walk,
                        attrs: &part.prev_attrs,
                        local,
                        deg_view: View::Old,
                        graph: &self.graph,
                    };
                    let new_val = eval(&action.value, new_ctx).expect("action value");
                    let old_val = eval(&action.value, &old_ctx).expect("action value");
                    if new_val == old_val {
                        return; // value unchanged: contributions cancel
                    }
                    let mut emit = |val: &Value, m: i64| match &action.target {
                        ActionTarget::VertexAccm { pos, accm } => {
                            buffer.add_vertex(*accm, &symbols.accms[*accm], walk[*pos], val, m);
                        }
                        ActionTarget::Global(g) => {
                            buffer.add_global(*g, &symbols.globals[*g], val, m);
                        }
                    };
                    emit(&old_val, -mult);
                    emit(&new_val, mult);
                    contribs += 2;
                });
                if contribs > 0 {
                    self.obs.delta[sq_idx].contribs.add(contribs);
                }
                return;
            }
            if old_ok {
                self.enumerate_query(
                    w, q, start, -1, bindings, allowed, &part.prev_attrs, local,
                    View::Old, symbols, buffer, None,
                    Some(&self.obs.delta[sq_idx]),
                );
            }
            if new_ok {
                self.enumerate_query(
                    w, q, start, 1, bindings, allowed, &part.cur_attrs, local,
                    View::New, symbols, buffer, None,
                    Some(&self.obs.delta[sq_idx]),
                );
            }
        } else {
            self.enumerate_query(
                w, q, start, 1, bindings, allowed, &part.cur_attrs, local, View::New,
                symbols, buffer, None,
                Some(&self.obs.delta[sq_idx]),
            );
        }
    }

    /// Monoid recomputation: reset the affected accumulators, find the
    /// candidate start vertices by backward MS-BFS from the affected set,
    /// and re-derive their values from a restricted one-shot enumeration.
    fn recompute_accumulators(
        &mut self,
        recompute: &[FxHashSet<VertexId>],
        changed_accm: &mut [FxHashSet<VertexId>],
    ) {
        let layout = self.layout.clone();
        // Reset affected rows (owned only — the recompute set is the
        // cluster-wide union, but non-owned replicas carry no state).
        for (a, set) in recompute.iter().enumerate() {
            for &v in set {
                let w = self.graph.owner(v);
                if !self.owned.contains(&w) {
                    continue;
                }
                let l = self.graph.local_index(v);
                reset_state(&layout, &mut self.parts[w].cur_accm, l, a);
                self.graph.partitions[w].stats.add_recomputation();
            }
        }
        // Candidate starts per accumulator.
        let mut buffers: Vec<AccBuffer> = (0..self.cfg.machines)
            .map(|_| self.new_buffer())
            .collect();
        for (a, v_aff) in recompute.iter().enumerate() {
            if v_aff.is_empty() {
                continue;
            }
            for q in &self.program.traverse.queries {
                for action in &q.actions {
                    let ActionTarget::VertexAccm { pos, accm } = &action.target else {
                        continue;
                    };
                    if accm != &a {
                        continue;
                    }
                    let path = q.path_to(*pos);
                    let levels = backward_msbfs(&self.graph, q, &path, v_aff.clone());
                    let v_re = levels.start_candidates();
                    for &start in v_re {
                        let w = self.graph.owner(start);
                        if !self.owned.contains(&w) {
                            continue;
                        }
                        let l = self.graph.local_index(start);
                        if self.parts[w].cur_attrs[0].get(l) != Value::Bool(true) {
                            continue;
                        }
                        let bindings = vec![HopBinding::View(View::New); q.hops.len()];
                        let allowed = vec![None; q.hops.len()];
                        let mut buf = std::mem::replace(&mut buffers[w], self.new_buffer());
                        self.enumerate_query(
                            w,
                            q,
                            start,
                            1,
                            &bindings,
                            &allowed,
                            &self.parts[w].cur_attrs,
                            l,
                            View::New,
                            &self.program.symbols,
                            &mut buf,
                            Some((a, v_aff)),
                            None,
                        );
                        buffers[w] = buf;
                    }
                }
            }
        }
        let owned_buffers: Vec<(usize, AccBuffer)> = buffers
            .into_iter()
            .enumerate()
            .filter(|(w, _)| self.owned.contains(w))
            .collect();
        let (inbox, _globals) = self.exchange(owned_buffers, false);
        for (w, inbox_w) in inbox.iter().enumerate() {
            let part = &mut self.parts[w];
            for (a, map) in inbox_w.iter().enumerate() {
                for (v, c) in map {
                    let l = self.graph.local_index(*v);
                    let out = apply_contribution(&layout, &mut part.cur_accm, l, a, c, true);
                    debug_assert_ne!(out, ApplyOutcome::NeedsRecompute);
                }
            }
        }
        // Affected rows are changed (vs prev) unless they recomputed back
        // to the identical state; compare to be precise.
        for set in recompute.iter() {
            for &v in set {
                let w = self.graph.owner(v);
                if !self.owned.contains(&w) {
                    continue;
                }
                let l = self.graph.local_index(v);
                let differs = (0..layout.num_cols).any(|c| {
                    self.parts[w].cur_accm[c].get(l) != self.parts[w].prev_accm[c].get(l)
                });
                if differs {
                    changed_accm[w].insert(v);
                } else {
                    changed_accm[w].remove(&v);
                }
            }
        }
    }

    /// Recompute global accumulators by re-running the traverse for global
    /// actions only (the fallback for monoid globals under deletions). On
    /// a worker plane the returned values are identities — the reduced
    /// result arrives from the coordinator as [`Payload::GlobalsFinal`].
    fn recompute_globals(&mut self, par: &mut ParallelMetrics) -> Vec<Value> {
        let outputs: Vec<(AccBuffer, PhaseStats)> = self.run_partition_phase(|sess, w| {
            let actives = sess.active_vertices(w);
            sess.oneshot_traverse(w, &actives)
        });
        let owned_list: Vec<usize> = self.owned.clone().collect();
        let mut buffers = Vec::with_capacity(outputs.len());
        for (&w, (buf, stats)) in owned_list.iter().zip(outputs) {
            par.record_phase(stats.chunks, &stats.per_worker_units, &stats.per_worker_ns);
            buffers.push((w, buf));
        }
        let (_inbox, globals) = self.exchange(buffers, true);
        let mut out = self.identity_globals();
        if let Some(globals) = globals {
            for (g, c) in globals.iter().enumerate() {
                let info = &self.global_infos()[g];
                out[g] = info.op.combine(&out[g], &c.folded, info.prim);
                if let Some(m) = &c.monoid {
                    out[g] = info.op.combine(&out[g], &m.value, info.prim);
                }
            }
        }
        out
    }

    /// ΔUpdate: recompute Update for the trigger set, diff against the
    /// previous snapshot's next-superstep image, and record the deltas.
    #[allow(clippy::too_many_arguments)]
    fn delta_update(
        &mut self,
        t: usize,
        s: usize,
        _prev_k: usize,
        changed_accm: &[FxHashSet<VertexId>],
        globals_s: &[Value],
        globals_changed: bool,
    ) -> Vec<FxHashSet<VertexId>> {
        let layout = self.layout.clone();
        let attr_types: Vec<_> = self.program.symbols.attrs.iter().map(|a| a.ty).collect();
        let analysis = self.program.analysis;
        let mut result = Vec::with_capacity(self.cfg.machines);
        for (w, changed_accm_w) in changed_accm.iter().enumerate() {
            if !self.owned.contains(&w) {
                result.push(FxHashSet::default());
                continue;
            }
            // Advance prev to A_{t-1, s+1}.
            {
                let part = &mut self.parts[w];
                let (prev, store) = (&mut part.prev_attrs, &part.attr_store);
                store.load_superstep_before(s + 1, t, prev);
            }
            let part = &self.parts[w];

            // Trigger set.
            let mut trigger: FxHashSet<VertexId> = part.changed.clone();
            trigger.extend(changed_accm_w.iter().copied());
            let touched = |cols: &[ColumnData], l: usize| layout.touched(cols, l);
            if globals_changed && analysis.update_reads_globals {
                for (l, v) in self.graph.local_vertices(w).enumerate() {
                    if touched(&part.cur_accm, l) || touched(&part.prev_accm, l) {
                        trigger.insert(v);
                    }
                }
            }
            if analysis.update_reads_degree {
                for &v in &part.degree_changed {
                    let l = self.graph.local_index(v);
                    if touched(&part.cur_accm, l) || touched(&part.prev_accm, l) {
                        trigger.insert(v);
                    }
                }
            }

            // New image: non-trigger rows take the previous snapshot's
            // next-superstep values (they are provably identical).
            let mut new_attrs = part.prev_attrs.clone();
            let mut changed_next: Vec<VertexId> = Vec::new();
            // The store's overlay invariant (paper §5.5) requires the run
            // at (t, s+1) to contain v when A_{t,s+1}(v) ≠ A_{t-1,s+1}(v)
            // *or* A_{t,s+1}(v) ≠ A_{t,s}(v) — without the second
            // condition, a snapshot that outlives its predecessor leaves
            // stale images (e.g. an eternally-active vertex) for the next
            // snapshot to reconstruct.
            let mut record_set: Vec<VertexId> = Vec::new();
            let mut trigger_sorted: Vec<VertexId> = trigger.into_iter().collect();
            trigger_sorted.sort_unstable();
            for &v in &trigger_sorted {
                let l = self.graph.local_index(v);
                // Base: the carried current image, deactivated.
                let mut row: Vec<Value> = (0..attr_types.len())
                    .map(|c| part.cur_attrs[c].get(l))
                    .collect();
                let row_at_s = row.clone();
                row[0] = Value::Bool(false);
                if touched(&part.cur_accm, l) {
                    let ctx = VertexCtx::new(
                        v,
                        l,
                        &part.cur_attrs,
                        Some((&layout, &part.cur_accm)),
                        globals_s,
                        &self.graph,
                    );
                    execute(&self.program.update, &ctx, &mut |_, _| {});
                    for (attr, value) in ctx.into_writes() {
                        if attr == 0 {
                            row[0] = value;
                        } else {
                            row[attr] = value;
                        }
                    }
                }
                let differs_prev = (0..attr_types.len())
                    .any(|c| row[c] != part.prev_attrs[c].get(l));
                let differs_superstep =
                    (0..attr_types.len()).any(|c| row[c] != row_at_s[c]);
                if differs_prev {
                    changed_next.push(v);
                }
                if differs_prev || differs_superstep {
                    record_set.push(v);
                }
                for (c, val) in row.iter().enumerate() {
                    new_attrs[c].set(l, val);
                }
            }
            changed_next.sort_unstable();
            record_set.sort_unstable();
            let (vids, cols) = rows_of(&self.graph, &attr_types, &new_attrs, &record_set);
            let part = &mut self.parts[w];
            if !vids.is_empty() {
                part.attr_store.record_run(t, s + 1, vids, cols);
            }
            part.cur_attrs = new_attrs;
            result.push(changed_next.into_iter().collect());
        }
        result
    }

    /// Aggregate IO snapshot (graph + stores share the same counters).
    pub fn total_io(&self) -> IoSnapshot {
        self.graph.total_io()
    }

    /// Bytes held by the stores (size reporting).
    pub fn store_bytes(&self) -> u64 {
        self.parts
            .iter()
            .map(|p| p.attr_store.size_bytes() + p.accm_store.size_bytes())
            .sum()
    }

    /// Supersteps executed per snapshot so far.
    pub fn superstep_counts(&self) -> &[usize] {
        &self.superstep_counts
    }

    /// Compact the edge store's segment chains (between snapshots): the
    /// base CSRs are rewritten from the current view and the per-snapshot
    /// delta segments dropped. Call after `run_incremental` has consumed
    /// the latest batch; the next batch then diffs against the compacted
    /// base. Long-running sessions use this to bound the edge-segment
    /// chain the same way the vertex store's merge policy bounds delta
    /// chains.
    pub fn compact_edges(&mut self) {
        if let Plane::Coordinator(t) = &mut self.plane {
            t.broadcast(&Payload::Compact).expect("broadcast compact");
        }
        self.log_command(&WalEntry::Compact);
        self.graph.compact();
    }
}

impl Session {
    /// Evaluate a walk query's start filter for one image.
    fn passes_start_filter(
        &self,
        q: &WalkQuery,
        start: VertexId,
        attrs: &[ColumnData],
        local: usize,
        deg_view: View,
    ) -> bool {
        let Some(f) = &q.start_filter else {
            return true;
        };
        let walk = [start];
        let ctx = crate::walker::WalkCtx {
            walk: &walk,
            attrs,
            local,
            deg_view,
            graph: &self.graph,
        };
        eval(f, &ctx)
            .map(|v| v.as_bool().unwrap_or(false))
            .unwrap_or(false)
    }
}

/// Whether a walk query's *shape* is independent of the start vertex's
/// attribute image: hop constraints and action conditions read only walk
/// ids (no attributes, degrees, or globals). Under this condition the old
/// and new images of a Δvs start vertex enumerate the identical walk set,
/// enabling the dual-image value-diff path.
fn hops_are_image_independent(q: &WalkQuery) -> bool {
    q.hops
        .iter()
        .filter_map(|h| h.constraint.as_ref())
        .chain(q.actions.iter().filter_map(|a| a.cond.as_ref()))
        .all(itg_compiler::optimize::is_pure_order_constraint)
}

/// Extract after-image rows for `vids` (global ids) from columns.
fn rows_of(
    graph: &ClusterGraph,
    types: &[itg_gsa::ValueType],
    cols: &[ColumnData],
    vids: &[VertexId],
) -> (Vec<u32>, Vec<ColumnData>) {
    let mut out_vids = Vec::with_capacity(vids.len());
    let mut out_cols: Vec<ColumnData> = types
        .iter()
        .map(|&t| ColumnData::zeros(t, vids.len()))
        .collect();
    for (j, &v) in vids.iter().enumerate() {
        let l = graph.local_index(v);
        out_vids.push(l as u32);
        for (c, col) in out_cols.iter_mut().enumerate() {
            col.set(j, &cols[c].get(l));
        }
    }
    (out_vids, out_cols)
}

fn set_all_false(col: &mut ColumnData) {
    if let ColumnData::Bool(v) = col {
        v.iter_mut().for_each(|b| *b = false);
    } else {
        panic!("active column must be bool");
    }
}

fn row_differs(a: &[ColumnData], b: &[ColumnData], l: usize) -> bool {
    (0..a.len()).any(|c| a[c].get(l) != b[c].get(l))
}
