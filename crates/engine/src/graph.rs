//! The partitioned cluster graph.
//!
//! Vertices are hash-partitioned across the simulated machines by
//! `vid % machines`; each machine owns the out-adjacency of its vertices
//! (and, for directed graphs, the in-adjacency of vertices it owns as
//! destinations) in its own edge store, behind its own buffer pool. A
//! worker reading the adjacency of a vertex owned by another machine pays
//! the adjacency's size in simulated network bytes — the cost the paper's
//! windowed traversal and pre-aggregation are designed around.

use itg_gsa::expr::EdgeDir;
use itg_gsa::{VertexId};
use itg_store::{BufferPool, EdgeMutation, EdgeStoreDir, IoStats, MutationBatch, View};
use std::sync::Arc;

/// The description of an input graph.
#[derive(Debug, Clone)]
pub struct GraphInput {
    pub num_vertices: usize,
    /// Directed edges. For an undirected graph, pass each edge once; the
    /// loader mirrors them.
    pub edges: Vec<(VertexId, VertexId)>,
    pub undirected: bool,
}

impl GraphInput {
    pub fn undirected(edges: Vec<(VertexId, VertexId)>) -> GraphInput {
        let n = edges
            .iter()
            .map(|&(a, b)| a.max(b) + 1)
            .max()
            .unwrap_or(0) as usize;
        GraphInput {
            num_vertices: n,
            edges,
            undirected: true,
        }
    }

    pub fn directed(edges: Vec<(VertexId, VertexId)>) -> GraphInput {
        let n = edges
            .iter()
            .map(|&(a, b)| a.max(b) + 1)
            .max()
            .unwrap_or(0) as usize;
        GraphInput {
            num_vertices: n,
            edges,
            undirected: false,
        }
    }
}

/// One machine's share of the graph.
pub struct GraphPartition {
    /// Out-adjacency of locally-owned sources (source ids are local).
    pub out: EdgeStoreDir,
    /// In-adjacency (reverse edges) of locally-owned destinations; absent
    /// for undirected graphs where `out` serves both directions.
    pub rev: Option<EdgeStoreDir>,
    pub pool: Arc<BufferPool>,
    pub stats: IoStats,
}

/// The partitioned dynamic graph.
pub struct ClusterGraph {
    machines: usize,
    n: usize,
    n_prev: usize,
    undirected: bool,
    pub partitions: Vec<GraphPartition>,
}

impl ClusterGraph {
    /// Load a graph across `machines` partitions, with IO accounted
    /// against the process-global observability recorder (a no-op unless
    /// `ITG_PROFILE` enabled it — see [`itg_obs::global`]).
    ///
    /// **Deprecated in favor of [`crate::SessionBuilder`]** — sessions
    /// built through the builder load their graph internally with the
    /// session's own recorder ([`ClusterGraph::load_with_obs`]); call this
    /// positional shim only when a bare graph without a session is needed.
    pub fn load(
        input: &GraphInput,
        machines: usize,
        pool_bytes: u64,
        page_size: u64,
    ) -> ClusterGraph {
        Self::load_with_obs(input, machines, pool_bytes, page_size, itg_obs::global())
    }

    /// Load a graph across `machines` partitions, feeding each partition's
    /// IO counters into `obs`'s `store/*` histograms (the
    /// [`crate::EngineConfig::obs`] path).
    pub fn load_with_obs(
        input: &GraphInput,
        machines: usize,
        pool_bytes: u64,
        page_size: u64,
        obs: &itg_obs::Recorder,
    ) -> ClusterGraph {
        assert!(machines >= 1);
        let mut edges: Vec<(VertexId, VertexId)> = input.edges.clone();
        if input.undirected {
            edges.extend(input.edges.iter().map(|&(a, b)| (b, a)));
            edges.sort_unstable();
            edges.dedup();
            edges.retain(|&(a, b)| a != b);
        }
        let n = input.num_vertices;
        let mut partitions = Vec::with_capacity(machines);
        for w in 0..machines {
            let stats = IoStats::with_obs(obs);
            let pool = Arc::new(BufferPool::new(pool_bytes, page_size, stats.clone()));
            let n_local = Self::local_count(n, w, machines);
            let local_out: Vec<(VertexId, VertexId)> = edges
                .iter()
                .filter(|&&(s, _)| s as usize % machines == w)
                .map(|&(s, d)| (s / machines as u64, d))
                .collect();
            let out = EdgeStoreDir::new(n_local, &local_out, 0, pool.clone());
            let rev = if input.undirected {
                None
            } else {
                let local_rev: Vec<(VertexId, VertexId)> = edges
                    .iter()
                    .filter(|&&(_, d)| d as usize % machines == w)
                    .map(|&(s, d)| (d / machines as u64, s))
                    .collect();
                Some(EdgeStoreDir::new(n_local, &local_rev, 1 << 16, pool.clone()))
            };
            partitions.push(GraphPartition {
                out,
                rev,
                pool,
                stats,
            });
        }
        ClusterGraph {
            machines,
            n,
            n_prev: n,
            undirected: input.undirected,
            partitions,
        }
    }

    fn local_count(n: usize, w: usize, machines: usize) -> usize {
        if n == 0 {
            0
        } else {
            (n - 1 - w) / machines + 1
        }
        .max(if w < n { 1 } else { 0 })
    }

    pub fn machines(&self) -> usize {
        self.machines
    }

    pub fn is_undirected(&self) -> bool {
        self.undirected
    }

    /// Total vertices in the current snapshot.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Total vertices in the previous snapshot (before the latest batch).
    pub fn num_vertices_old(&self) -> usize {
        self.n_prev
    }

    pub fn num_edges(&self) -> u64 {
        self.partitions.iter().map(|p| p.out.num_edges()).sum()
    }

    /// The current snapshot index (number of batches applied).
    pub fn snapshot(&self) -> usize {
        self.partitions[0].out.snapshot()
    }

    pub fn owner(&self, v: VertexId) -> usize {
        (v as usize) % self.machines
    }

    pub fn local_index(&self, v: VertexId) -> usize {
        (v as usize) / self.machines
    }

    pub fn global_id(&self, worker: usize, local: usize) -> VertexId {
        (local * self.machines + worker) as VertexId
    }

    /// Vertices owned by `worker`, in id order.
    pub fn local_vertices(&self, worker: usize) -> impl Iterator<Item = VertexId> + '_ {
        let m = self.machines;
        let n = self.n;
        (0..).map(move |l| (l * m + worker) as VertexId).take_while(
            move |&v| (v as usize) < n,
        )
    }

    pub fn local_vertex_count(&self, worker: usize) -> usize {
        if self.n == 0 || worker >= self.n.min(self.machines) && self.n <= worker {
            return 0;
        }
        if worker >= self.n {
            0
        } else {
            (self.n - 1 - worker) / self.machines + 1
        }
    }

    fn dir_store(&self, owner: usize, dir: EdgeDir) -> &EdgeStoreDir {
        let p = &self.partitions[owner];
        match dir {
            EdgeDir::Out | EdgeDir::Both => &p.out,
            EdgeDir::In => p.rev.as_ref().unwrap_or(&p.out),
        }
    }

    /// Visit `v`'s neighbors along `dir` in `view`, from the perspective of
    /// `from_worker`: reading a remote partition's adjacency is charged to
    /// the network.
    pub fn for_each_neighbor(
        &self,
        from_worker: usize,
        v: VertexId,
        dir: EdgeDir,
        view: View,
        mut f: impl FnMut(VertexId),
    ) {
        let owner = self.owner(v);
        let store = self.dir_store(owner, dir);
        let local = self.local_index(v) as VertexId;
        if owner != from_worker {
            let bytes = store.degree(local, view) as u64 * 8;
            self.partitions[from_worker].stats.add_net(bytes);
        }
        store.for_each_neighbor(local, view, &mut f);
    }

    /// Delta-stream neighbors of `v` (±1 per edge), charged like a normal
    /// seek.
    pub fn for_each_delta_neighbor(
        &self,
        from_worker: usize,
        v: VertexId,
        dir: EdgeDir,
        mut f: impl FnMut(VertexId, i64),
    ) {
        let owner = self.owner(v);
        let store = self.dir_store(owner, dir);
        let local = self.local_index(v) as VertexId;
        if owner != from_worker {
            self.partitions[from_worker].stats.add_net(64);
        }
        store.for_each_delta_neighbor(local, &mut f);
    }

    /// All delta edges of the latest batch along `dir`, with multiplicity,
    /// in global ids.
    pub fn for_each_delta_edge(&self, dir: EdgeDir, mut f: impl FnMut(VertexId, VertexId, i64)) {
        let m = self.machines as u64;
        for (w, p) in self.partitions.iter().enumerate() {
            let store = match dir {
                EdgeDir::Out | EdgeDir::Both => &p.out,
                EdgeDir::In => p.rev.as_ref().unwrap_or(&p.out),
            };
            store.for_each_delta_edge(|src_local, dst, mult| {
                f(src_local * m + w as u64, dst, mult);
            });
        }
    }

    pub fn degree(&self, v: VertexId, dir: EdgeDir, view: View) -> u32 {
        if (v as usize) >= self.n {
            return 0;
        }
        let owner = self.owner(v);
        self.dir_store(owner, dir)
            .degree(self.local_index(v) as VertexId, view)
    }

    /// Membership test: multiplicity of edge (src, dst) along `dir` in
    /// `view` (1 if present, 0 if absent). Used by the multi-way
    /// intersection optimization's closing check.
    pub fn edge_mult(
        &self,
        from_worker: usize,
        src: VertexId,
        dst: VertexId,
        dir: EdgeDir,
        view: View,
    ) -> i64 {
        let owner = self.owner(src);
        if owner != from_worker {
            // A remote membership probe ships the key, not the adjacency.
            self.partitions[from_worker].stats.add_net(16);
        }
        self.dir_store(owner, dir)
            .edge_mult(self.local_index(src) as VertexId, dst, view)
    }

    /// Multiplicity of (src, dst) in the latest delta along `dir`
    /// (+1 inserted, −1 deleted, 0 untouched).
    pub fn delta_edge_mult(
        &self,
        from_worker: usize,
        src: VertexId,
        dst: VertexId,
        dir: EdgeDir,
    ) -> i64 {
        let owner = self.owner(src);
        if owner != from_worker {
            self.partitions[from_worker].stats.add_net(16);
        }
        self.dir_store(owner, dir)
            .delta_edge_mult(self.local_index(src) as VertexId, dst)
    }

    /// Apply a mutation batch, advancing the graph to the next snapshot.
    /// For undirected graphs the batch is mirrored automatically. Each
    /// partition direction ingests its localized share through the store's
    /// [`EdgeStoreDir::commit`] choke point; the out-direction receipt of
    /// partition 0 (present for every machine count) reports the new epoch.
    pub fn apply_batch(&mut self, batch: &MutationBatch) -> itg_store::BatchReceipt {
        // Consolidate first: same-edge insert/delete pairs within one
        // batch cancel under the ±1 multiset model.
        let batch = batch.consolidated();
        let batch = if self.undirected {
            dedup_mirror(&batch)
        } else {
            batch
        };
        self.n_prev = self.n;
        if let Some(maxv) = batch.max_vertex() {
            self.n = self.n.max(maxv as usize + 1);
        }
        let m = self.machines;
        let mut receipt = None;
        for w in 0..m {
            let n_local = if self.n == 0 || w >= self.n {
                0
            } else {
                (self.n - 1 - w) / m + 1
            };
            // Localize this partition's share: sources map to the local id
            // space, destinations stay global. `MutationBatch::new`'s
            // stable partition preserves each class's relative order.
            let local: Vec<EdgeMutation> = batch
                .edges()
                .iter()
                .filter(|e| e.src as usize % m == w)
                .map(|e| EdgeMutation {
                    src: e.src / m as u64,
                    dst: e.dst,
                    mult: e.mult,
                })
                .collect();
            let p = &mut self.partitions[w];
            p.out.grow(n_local);
            let r = p.out.commit(&MutationBatch::new(local));
            if w == 0 {
                receipt = Some(r);
            }
            if let Some(rev) = &mut p.rev {
                let rlocal: Vec<EdgeMutation> = batch
                    .edges()
                    .iter()
                    .filter(|e| e.dst as usize % m == w)
                    .map(|e| EdgeMutation {
                        src: e.dst / m as u64,
                        dst: e.src,
                        mult: e.mult,
                    })
                    .collect();
                rev.grow(n_local);
                rev.commit(&MutationBatch::new(rlocal));
            }
        }
        receipt.expect("at least one partition")
    }

    /// Compact every partition's segment chains: rewrite each base CSR
    /// from the current view and drop the delta segments. Only legal
    /// between snapshots (collapses the Old view and the delta stream).
    pub fn compact(&mut self) {
        for p in &mut self.partitions {
            p.out.compact();
            if let Some(r) = &mut p.rev {
                r.compact();
            }
        }
        self.n_prev = self.n;
    }

    /// Total on-disk bytes across all partitions' edge segments.
    pub fn edge_store_bytes(&self) -> u64 {
        self.partitions
            .iter()
            .map(|p| {
                p.out.size_bytes() + p.rev.as_ref().map_or(0, |r| r.size_bytes())
            })
            .sum()
    }

    /// Serialize the partitioned graph for durability snapshots: the
    /// topology scalars plus every partition's edge-store segment chains,
    /// structure preserved exactly (DESIGN.md §9).
    pub(crate) fn encode_into(&self, w: &mut itg_store::Writer) {
        w.u64(self.machines as u64);
        w.u64(self.n as u64);
        w.u64(self.n_prev as u64);
        w.bool(self.undirected);
        for p in &self.partitions {
            p.out.encode_into(w);
            w.bool(p.rev.is_some());
            if let Some(rev) = &p.rev {
                rev.encode_into(w);
            }
        }
    }

    /// Rebuild a graph from its serialized image, giving each partition a
    /// fresh buffer pool and IO counters reporting into `obs` (restoring a
    /// snapshot is not the workload's IO).
    pub(crate) fn decode_from(
        r: &mut itg_store::Reader<'_>,
        pool_bytes: u64,
        page_size: u64,
        obs: &itg_obs::Recorder,
    ) -> itg_store::CodecResult<ClusterGraph> {
        let machines = r.u64()? as usize;
        let n = r.u64()? as usize;
        let n_prev = r.u64()? as usize;
        let undirected = r.bool()?;
        let mut partitions = Vec::with_capacity(machines);
        for _ in 0..machines {
            let stats = IoStats::with_obs(obs);
            let pool = Arc::new(BufferPool::new(pool_bytes, page_size, stats.clone()));
            let out = EdgeStoreDir::decode_from(r, pool.clone())?;
            let rev = if r.bool()? {
                Some(EdgeStoreDir::decode_from(r, pool.clone())?)
            } else {
                None
            };
            partitions.push(GraphPartition {
                out,
                rev,
                pool,
                stats,
            });
        }
        Ok(ClusterGraph {
            machines,
            n,
            n_prev,
            undirected,
            partitions,
        })
    }

    /// Aggregate IO stats across partitions.
    pub fn total_io(&self) -> itg_store::IoSnapshot {
        let mut acc = itg_store::IoSnapshot::default();
        for p in &self.partitions {
            let s = p.stats.snapshot();
            acc.disk_read_bytes += s.disk_read_bytes;
            acc.disk_write_bytes += s.disk_write_bytes;
            acc.page_reads += s.page_reads;
            acc.page_hits += s.page_hits;
            acc.net_bytes += s.net_bytes;
            acc.walks_enumerated += s.walks_enumerated;
            acc.recomputations += s.recomputations;
            acc.cache_hits += s.cache_hits;
            acc.cache_misses += s.cache_misses;
            acc.cache_evictions += s.cache_evictions;
        }
        acc
    }
}

/// Mirror a batch for undirected graphs, avoiding duplicate mirrored pairs
/// when the caller already included both directions.
fn dedup_mirror(batch: &MutationBatch) -> MutationBatch {
    let mut seen = itg_gsa::FxHashSet::default();
    let mut out = Vec::with_capacity(batch.len() * 2);
    for e in batch.edges() {
        for (s, d) in [(e.src, e.dst), (e.dst, e.src)] {
            if s != d && seen.insert((s, d, e.mult)) {
                out.push(EdgeMutation {
                    src: s,
                    dst: d,
                    mult: e.mult,
                });
            }
        }
    }
    MutationBatch::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ClusterGraph {
        // Path 0-1-2-3 plus edge 1-3, undirected.
        let input = GraphInput::undirected(vec![(0, 1), (1, 2), (2, 3), (1, 3)]);
        ClusterGraph::load(&input, 3, 1 << 20, 4096)
    }

    #[test]
    fn partitioning_roundtrip() {
        let g = small();
        assert_eq!(g.num_vertices(), 4);
        for v in 0..4u64 {
            let w = g.owner(v);
            let l = g.local_index(v);
            assert_eq!(g.global_id(w, l), v);
        }
        let locals: Vec<VertexId> = g.local_vertices(1).collect();
        assert_eq!(locals, vec![1]);
        let locals0: Vec<VertexId> = g.local_vertices(0).collect();
        assert_eq!(locals0, vec![0, 3]);
    }

    #[test]
    fn neighbors_cross_partitions() {
        let g = small();
        let mut n1 = Vec::new();
        g.for_each_neighbor(0, 1, EdgeDir::Both, View::New, |d| n1.push(d));
        n1.sort_unstable();
        assert_eq!(n1, vec![0, 2, 3]);
        // Reading v1 (owner 1) from worker 0 charged network bytes.
        assert!(g.partitions[0].stats.snapshot().net_bytes >= 24);
        // Local read: no *additional* network.
        let before = g.partitions[1].stats.snapshot().net_bytes;
        let mut n = Vec::new();
        g.for_each_neighbor(1, 1, EdgeDir::Both, View::New, |d| n.push(d));
        assert_eq!(g.partitions[1].stats.snapshot().net_bytes, before);
    }

    #[test]
    fn degrees_and_membership() {
        let g = small();
        assert_eq!(g.degree(1, EdgeDir::Both, View::New), 3);
        assert_eq!(g.degree(0, EdgeDir::Both, View::New), 1);
        assert_eq!(g.edge_mult(0, 1, 3, EdgeDir::Both, View::New), 1);
        assert_eq!(g.edge_mult(0, 0, 3, EdgeDir::Both, View::New), 0);
    }

    #[test]
    fn mutations_advance_views() {
        let mut g = small();
        g.apply_batch(&MutationBatch::new(vec![
            EdgeMutation::insert(0, 2),
            EdgeMutation::delete(1, 3),
        ]));
        assert_eq!(g.degree(0, EdgeDir::Both, View::New), 2);
        assert_eq!(g.degree(0, EdgeDir::Both, View::Old), 1);
        assert_eq!(g.edge_mult(0, 1, 3, EdgeDir::Both, View::New), 0);
        assert_eq!(g.edge_mult(0, 3, 1, EdgeDir::Both, View::New), 0, "mirrored delete");
        assert_eq!(g.edge_mult(0, 1, 3, EdgeDir::Both, View::Old), 1);
        // Delta stream (both directions of each mutation).
        let mut delta = Vec::new();
        g.for_each_delta_edge(EdgeDir::Both, |s, d, m| delta.push((s, d, m)));
        delta.sort_unstable();
        assert_eq!(
            delta,
            vec![(0, 2, 1), (1, 3, -1), (2, 0, 1), (3, 1, -1)]
        );
        assert_eq!(g.delta_edge_mult(0, 1, 3, EdgeDir::Both), -1);
        assert_eq!(g.delta_edge_mult(0, 2, 0, EdgeDir::Both), 1);
    }

    #[test]
    fn directed_graph_keeps_reverse_store() {
        let input = GraphInput::directed(vec![(0, 1), (2, 1)]);
        let g = ClusterGraph::load(&input, 2, 1 << 20, 4096);
        let mut back = Vec::new();
        g.for_each_neighbor(0, 1, EdgeDir::In, View::New, |d| back.push(d));
        back.sort_unstable();
        assert_eq!(back, vec![0, 2]);
        let mut fwd = Vec::new();
        g.for_each_neighbor(0, 0, EdgeDir::Out, View::New, |d| fwd.push(d));
        assert_eq!(fwd, vec![1]);
    }

    #[test]
    fn vertex_growth_via_batch() {
        let mut g = small();
        g.apply_batch(&MutationBatch::new(vec![EdgeMutation::insert(3, 6)]));
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_vertices_old(), 4);
        assert_eq!(g.degree(6, EdgeDir::Both, View::New), 1);
        let mut n = Vec::new();
        g.for_each_neighbor(0, 6, EdgeDir::Both, View::New, |d| n.push(d));
        assert_eq!(n, vec![3]);
    }
}
