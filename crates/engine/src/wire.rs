//! Versioned binary wire format for the transport layer (ROADMAP item 1).
//!
//! Every byte that crosses a partition boundary in the distributed engine
//! is a [`Payload`] encoded by this module: pre-aggregated accumulator
//! contributions, global-accumulator partials, active-set frontiers
//! (convergence votes and explicit recompute vertex sets), and
//! mutation-batch shipments — exactly the traffic the simulated cluster
//! already charges as `net_bytes` (see DESIGN.md §"Distribution" for the
//! byte-layout table).
//!
//! The codec is deliberately boring: little-endian, length-prefixed,
//! tag-dispatched, with a magic/version header so a coordinator and a
//! worker built from different trees fail loudly instead of mis-parsing.
//! Floating-point values are encoded *bitwise* (`to_bits`/`from_bits`),
//! matching the engine's bitwise [`Value`] equality — a payload that
//! round-trips is byte-identical, NaNs and signed zeros included.
//!
//! Frame layout on a pipe or socket:
//!
//! ```text
//! [len: u32]  [dst: u16]  [magic: u16 = 0xA17B]  [ver: u8 = 1]  [tag: u8]  [body…]
//!  ^ bytes after len        ^ payload starts here
//! ```
//!
//! `dst` is the destination machine index, [`DST_COORD`] for the
//! coordinator, or [`DST_CTRL`] for a control message addressed to the
//! receiving worker process itself.

use crate::accum::Contribution;
use itg_gsa::accm::CountedAccm;
use itg_gsa::value::{ColumnData, Value};
use itg_gsa::VertexId;
use itg_store::{IoSnapshot, MaintenancePolicy, MutationBatch};
use std::io::{Read, Write};

/// Wire magic: the first two payload bytes of every frame.
pub const WIRE_MAGIC: u16 = 0xA17B;
/// Wire format version; bumped on any layout change.
pub const WIRE_VERSION: u8 = 2;
/// Frame destination: the coordinator endpoint.
pub const DST_COORD: u16 = 0xFFFF;
/// Frame destination: the receiving worker process itself (control plane).
pub const DST_CTRL: u16 = 0xFFFE;
/// Upper bound on a single frame's payload, as a corruption guard.
pub const MAX_FRAME_BYTES: u32 = 1 << 30;

/// Decode failures. Transport-level IO failures live in
/// [`crate::transport::TransportError`]; this type covers only the byte
/// layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value did.
    Truncated,
    /// The payload did not start with [`WIRE_MAGIC`].
    BadMagic(u16),
    /// The payload's version byte is not [`WIRE_VERSION`].
    BadVersion(u8),
    /// An unknown tag byte for the named kind.
    BadTag { what: &'static str, tag: u8 },
    /// Bytes remained after a complete payload.
    Trailing(usize),
    /// A string field was not valid UTF-8.
    Utf8,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire payload truncated"),
            WireError::BadMagic(m) => write!(f, "bad wire magic {m:#06x}"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::Trailing(n) => write!(f, "{n} trailing bytes after payload"),
            WireError::Utf8 => write!(f, "invalid UTF-8 in wire string"),
        }
    }
}

impl std::error::Error for WireError {}

type WireResult<T> = Result<T, WireError>;

// ---------------------------------------------------------------
// Primitive writer/reader.
// ---------------------------------------------------------------

/// Append-only little-endian byte writer.
#[derive(Default)]
pub struct Writer {
    pub buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Writer {
        Writer::default()
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i8(&mut self, v: i8) {
        self.buf.push(v as u8);
    }

    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Bitwise float encoding: exact round-trip for every bit pattern.
    pub fn f32(&mut self, v: f32) {
        self.u32(v.to_bits());
    }

    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Cursor over a received payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> WireResult<bool> {
        Ok(self.u8()? != 0)
    }

    pub fn u16(&mut self) -> WireResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> WireResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> WireResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i8(&mut self) -> WireResult<i8> {
        Ok(self.u8()? as i8)
    }

    pub fn i32(&mut self) -> WireResult<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> WireResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f32(&mut self) -> WireResult<f32> {
        Ok(f32::from_bits(self.u32()?))
    }

    pub fn f64(&mut self) -> WireResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn str(&mut self) -> WireResult<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Utf8)
    }

    /// Assert the payload has been fully consumed.
    pub fn finish(&self) -> WireResult<()> {
        if self.remaining() != 0 {
            return Err(WireError::Trailing(self.remaining()));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------
// Value / column / contribution codecs.
// ---------------------------------------------------------------

fn put_value(w: &mut Writer, v: &Value) {
    match v {
        Value::Bool(b) => {
            w.u8(0);
            w.bool(*b);
        }
        Value::Int(x) => {
            w.u8(1);
            w.i32(*x);
        }
        Value::Long(x) => {
            w.u8(2);
            w.i64(*x);
        }
        Value::Float(x) => {
            w.u8(3);
            w.f32(*x);
        }
        Value::Double(x) => {
            w.u8(4);
            w.f64(*x);
        }
        Value::Array(items) => {
            w.u8(5);
            w.u32(items.len() as u32);
            for item in items {
                put_value(w, item);
            }
        }
    }
}

fn get_value(r: &mut Reader<'_>) -> WireResult<Value> {
    Ok(match r.u8()? {
        0 => Value::Bool(r.bool()?),
        1 => Value::Int(r.i32()?),
        2 => Value::Long(r.i64()?),
        3 => Value::Float(r.f32()?),
        4 => Value::Double(r.f64()?),
        5 => {
            let n = r.u32()? as usize;
            let mut items = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                items.push(get_value(r)?);
            }
            Value::Array(items)
        }
        tag => return Err(WireError::BadTag { what: "value", tag }),
    })
}

fn put_column(w: &mut Writer, col: &ColumnData) {
    match col {
        ColumnData::Bool(v) => {
            w.u8(0);
            w.u64(v.len() as u64);
            for &b in v {
                w.bool(b);
            }
        }
        ColumnData::Int(v) => {
            w.u8(1);
            w.u64(v.len() as u64);
            for &x in v {
                w.i32(x);
            }
        }
        ColumnData::Long(v) => {
            w.u8(2);
            w.u64(v.len() as u64);
            for &x in v {
                w.i64(x);
            }
        }
        ColumnData::Float(v) => {
            w.u8(3);
            w.u64(v.len() as u64);
            for &x in v {
                w.f32(x);
            }
        }
        ColumnData::Double(v) => {
            w.u8(4);
            w.u64(v.len() as u64);
            for &x in v {
                w.f64(x);
            }
        }
        ColumnData::Array(v) => {
            w.u8(5);
            w.u64(v.len() as u64);
            for row in v {
                w.u32(row.len() as u32);
                for item in row {
                    put_value(w, item);
                }
            }
        }
    }
}

fn get_column(r: &mut Reader<'_>) -> WireResult<ColumnData> {
    let tag = r.u8()?;
    let n = r.u64()? as usize;
    Ok(match tag {
        0 => {
            let mut v = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                v.push(r.bool()?);
            }
            ColumnData::Bool(v)
        }
        1 => {
            let mut v = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                v.push(r.i32()?);
            }
            ColumnData::Int(v)
        }
        2 => {
            let mut v = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                v.push(r.i64()?);
            }
            ColumnData::Long(v)
        }
        3 => {
            let mut v = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                v.push(r.f32()?);
            }
            ColumnData::Float(v)
        }
        4 => {
            let mut v = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                v.push(r.f64()?);
            }
            ColumnData::Double(v)
        }
        5 => {
            let mut v = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                let len = r.u32()? as usize;
                let mut row = Vec::with_capacity(len.min(1 << 16));
                for _ in 0..len {
                    row.push(get_value(r)?);
                }
                v.push(row);
            }
            ColumnData::Array(v)
        }
        tag => return Err(WireError::BadTag { what: "column", tag }),
    })
}

fn put_contribution(w: &mut Writer, c: &Contribution) {
    put_value(w, &c.folded);
    w.i64(c.count);
    match &c.monoid {
        None => w.u8(0),
        Some(m) => {
            w.u8(1);
            put_value(w, &m.value);
            w.u64(m.count);
        }
    }
    w.u32(c.retractions.len() as u32);
    for v in &c.retractions {
        put_value(w, v);
    }
}

fn get_contribution(r: &mut Reader<'_>) -> WireResult<Contribution> {
    let folded = get_value(r)?;
    let count = r.i64()?;
    let monoid = match r.u8()? {
        0 => None,
        1 => Some(CountedAccm {
            value: get_value(r)?,
            count: r.u64()?,
        }),
        tag => return Err(WireError::BadTag { what: "monoid", tag }),
    };
    let n = r.u32()? as usize;
    let mut retractions = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        retractions.push(get_value(r)?);
    }
    Ok(Contribution {
        folded,
        count,
        monoid,
        retractions,
    })
}

fn put_io(w: &mut Writer, io: &IoSnapshot) {
    w.u64(io.disk_read_bytes);
    w.u64(io.disk_write_bytes);
    w.u64(io.page_reads);
    w.u64(io.page_hits);
    w.u64(io.net_bytes);
    w.u64(io.walks_enumerated);
    w.u64(io.recomputations);
    w.u64(io.cache_hits);
    w.u64(io.cache_misses);
    w.u64(io.cache_evictions);
}

fn get_io(r: &mut Reader<'_>) -> WireResult<IoSnapshot> {
    Ok(IoSnapshot {
        disk_read_bytes: r.u64()?,
        disk_write_bytes: r.u64()?,
        page_reads: r.u64()?,
        page_hits: r.u64()?,
        net_bytes: r.u64()?,
        walks_enumerated: r.u64()?,
        recomputations: r.u64()?,
        cache_hits: r.u64()?,
        cache_misses: r.u64()?,
        cache_evictions: r.u64()?,
    })
}

fn put_maintenance(w: &mut Writer, m: &MaintenancePolicy) {
    match m {
        MaintenancePolicy::NoMerge => {
            w.u8(0);
            w.u64(0);
        }
        MaintenancePolicy::Periodic(k) => {
            w.u8(1);
            w.u64(*k as u64);
        }
        MaintenancePolicy::CostBased => {
            w.u8(2);
            w.u64(0);
        }
    }
}

fn get_maintenance(r: &mut Reader<'_>) -> WireResult<MaintenancePolicy> {
    let tag = r.u8()?;
    let k = r.u64()? as usize;
    Ok(match tag {
        0 => MaintenancePolicy::NoMerge,
        1 => MaintenancePolicy::Periodic(k),
        2 => MaintenancePolicy::CostBased,
        tag => return Err(WireError::BadTag { what: "maintenance", tag }),
    })
}

fn put_vertex_list(w: &mut Writer, vs: &[VertexId]) {
    w.u64(vs.len() as u64);
    for &v in vs {
        w.u64(v);
    }
}

fn get_vertex_list(r: &mut Reader<'_>) -> WireResult<Vec<VertexId>> {
    let n = r.u64()? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(r.u64()?);
    }
    Ok(out)
}

// ---------------------------------------------------------------
// Payload.
// ---------------------------------------------------------------

/// The engine-relevant subset of [`crate::EngineConfig`] shipped to worker
/// processes at bootstrap. The observability recorder and transport kind
/// are deliberately absent: workers always run their own recorder and a
/// pipe link.
#[derive(Debug, Clone, PartialEq)]
pub struct WireConfig {
    pub machines: u64,
    pub window_capacity: u64,
    pub buffer_pool_bytes: u64,
    pub page_size: u64,
    pub max_supersteps: u64,
    pub maintenance: MaintenancePolicy,
    /// `[traversal_reorder, neighbor_prune, seek_window_share, min_count,
    /// specialize]`.
    pub opts: [bool; 5],
    pub parallel: bool,
    pub threads_per_machine: u64,
    /// NGW segment cache capacity per attribute store (0 = off).
    pub cache_bytes: u64,
}

/// Per-run scalar results shipped back by a worker in
/// [`Payload::RunDone`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunDoneStats {
    pub supersteps: u64,
    pub work_units: u64,
    pub recomputed: u64,
    pub phases: u64,
    pub chunks: u64,
    pub max_worker_units: u64,
    pub min_worker_units: u64,
    pub io: IoSnapshot,
}

/// Everything that crosses a partition boundary, coordinator ↔ worker or
/// worker ↔ worker (relayed through the coordinator's star topology).
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Coordinator → worker: program source, graph image, and config.
    Bootstrap {
        rank: u32,
        workers: u32,
        source: String,
        num_vertices: u64,
        undirected: bool,
        edges: Vec<(VertexId, VertexId)>,
        cfg: WireConfig,
    },
    /// Worker → coordinator: bootstrap complete, session built.
    Hello { rank: u32 },
    /// Coordinator → worker run commands.
    RunOneshot,
    RunIncremental,
    /// Coordinator → worker: apply this mutation batch to the local graph.
    Mutations(MutationBatch),
    /// Coordinator → worker: compact edge-store segment chains.
    Compact,
    /// Coordinator → worker: exit cleanly.
    Shutdown,
    /// Sender machine's pre-aggregated accumulator contributions for one
    /// destination machine: `vertex[a]` lists `(target, contribution)` in
    /// the sender's deterministic pre-aggregation order.
    Contribs {
        from: u32,
        vertex: Vec<Vec<(VertexId, Contribution)>>,
    },
    /// Sender machine's global-accumulator partials, reduced at the
    /// coordinator in machine order.
    GlobalsPartial { from: u32, globals: Vec<Contribution> },
    /// Worker → coordinator: active-set cardinality — the convergence vote.
    Frontier {
        from: u32,
        superstep: u64,
        active: u64,
    },
    /// Coordinator → workers: the reduced active total; every worker
    /// evaluates the identical break condition on it.
    FrontierTotal { superstep: u64, active: u64 },
    /// Worker → coordinator: per-accumulator vertex sets needing monoid
    /// recomputation, in first-trigger order (the order is part of the
    /// protocol — it seeds hash-set construction on every peer).
    RecomputeSets {
        from: u32,
        sets: Vec<Vec<VertexId>>,
    },
    /// Coordinator → workers: the rank-ordered concatenation of all
    /// workers' recompute sets.
    RecomputeUnion { sets: Vec<Vec<VertexId>> },
    /// Coordinator → workers (incremental): whether monoid/retraction
    /// damage forces a full global-accumulator recompute round.
    GlobalsDecision { recompute: bool },
    /// Coordinator → workers: the superstep's final global values.
    GlobalsFinal { values: Vec<Value>, changed: bool },
    /// Worker → coordinator at run end: one machine's final attribute
    /// columns.
    AttrImage { machine: u32, cols: Vec<ColumnData> },
    /// Worker → coordinator at run end: scalar run results.
    RunDone { from: u32, stats: RunDoneStats },
    /// Worker → coordinator: entered barrier `seq`; all data frames for
    /// this round have been written.
    BarrierAck { from: u32, seq: u64 },
    /// Coordinator → workers: barrier `seq` released; all data frames for
    /// this round have been delivered.
    Barrier { seq: u64 },
}

impl Payload {
    fn tag(&self) -> u8 {
        match self {
            Payload::Bootstrap { .. } => 0,
            Payload::Hello { .. } => 1,
            Payload::RunOneshot => 2,
            Payload::RunIncremental => 3,
            Payload::Mutations(_) => 4,
            Payload::Compact => 5,
            Payload::Shutdown => 6,
            Payload::Contribs { .. } => 7,
            Payload::GlobalsPartial { .. } => 8,
            Payload::Frontier { .. } => 9,
            Payload::FrontierTotal { .. } => 10,
            Payload::RecomputeSets { .. } => 11,
            Payload::RecomputeUnion { .. } => 12,
            Payload::GlobalsDecision { .. } => 13,
            Payload::GlobalsFinal { .. } => 14,
            Payload::AttrImage { .. } => 15,
            Payload::RunDone { .. } => 16,
            Payload::BarrierAck { .. } => 17,
            Payload::Barrier { .. } => 18,
        }
    }

    /// A short label for tracing and error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Payload::Bootstrap { .. } => "Bootstrap",
            Payload::Hello { .. } => "Hello",
            Payload::RunOneshot => "RunOneshot",
            Payload::RunIncremental => "RunIncremental",
            Payload::Mutations(_) => "Mutations",
            Payload::Compact => "Compact",
            Payload::Shutdown => "Shutdown",
            Payload::Contribs { .. } => "Contribs",
            Payload::GlobalsPartial { .. } => "GlobalsPartial",
            Payload::Frontier { .. } => "Frontier",
            Payload::FrontierTotal { .. } => "FrontierTotal",
            Payload::RecomputeSets { .. } => "RecomputeSets",
            Payload::RecomputeUnion { .. } => "RecomputeUnion",
            Payload::GlobalsDecision { .. } => "GlobalsDecision",
            Payload::GlobalsFinal { .. } => "GlobalsFinal",
            Payload::AttrImage { .. } => "AttrImage",
            Payload::RunDone { .. } => "RunDone",
            Payload::BarrierAck { .. } => "BarrierAck",
            Payload::Barrier { .. } => "Barrier",
        }
    }
}

/// Encode a payload: `[magic][version][tag][body]`.
pub fn encode_payload(p: &Payload) -> Vec<u8> {
    let mut w = Writer::new();
    w.u16(WIRE_MAGIC);
    w.u8(WIRE_VERSION);
    w.u8(p.tag());
    match p {
        Payload::Bootstrap {
            rank,
            workers,
            source,
            num_vertices,
            undirected,
            edges,
            cfg,
        } => {
            w.u32(*rank);
            w.u32(*workers);
            w.str(source);
            w.u64(*num_vertices);
            w.bool(*undirected);
            w.u64(edges.len() as u64);
            for &(s, d) in edges {
                w.u64(s);
                w.u64(d);
            }
            w.u64(cfg.machines);
            w.u64(cfg.window_capacity);
            w.u64(cfg.buffer_pool_bytes);
            w.u64(cfg.page_size);
            w.u64(cfg.max_supersteps);
            put_maintenance(&mut w, &cfg.maintenance);
            for b in cfg.opts {
                w.bool(b);
            }
            w.bool(cfg.parallel);
            w.u64(cfg.threads_per_machine);
            w.u64(cfg.cache_bytes);
        }
        Payload::Hello { rank } => w.u32(*rank),
        Payload::RunOneshot
        | Payload::RunIncremental
        | Payload::Compact
        | Payload::Shutdown => {}
        Payload::Mutations(batch) => {
            w.u64(batch.len() as u64);
            for e in batch.edges() {
                w.u64(e.src);
                w.u64(e.dst);
                w.i8(e.mult);
            }
        }
        Payload::Contribs { from, vertex } => {
            w.u32(*from);
            w.u32(vertex.len() as u32);
            for list in vertex {
                w.u64(list.len() as u64);
                for (v, c) in list {
                    w.u64(*v);
                    put_contribution(&mut w, c);
                }
            }
        }
        Payload::GlobalsPartial { from, globals } => {
            w.u32(*from);
            w.u32(globals.len() as u32);
            for c in globals {
                put_contribution(&mut w, c);
            }
        }
        Payload::Frontier {
            from,
            superstep,
            active,
        } => {
            w.u32(*from);
            w.u64(*superstep);
            w.u64(*active);
        }
        Payload::FrontierTotal { superstep, active } => {
            w.u64(*superstep);
            w.u64(*active);
        }
        Payload::RecomputeSets { from, sets } => {
            w.u32(*from);
            w.u32(sets.len() as u32);
            for set in sets {
                put_vertex_list(&mut w, set);
            }
        }
        Payload::RecomputeUnion { sets } => {
            w.u32(sets.len() as u32);
            for set in sets {
                put_vertex_list(&mut w, set);
            }
        }
        Payload::GlobalsDecision { recompute } => w.bool(*recompute),
        Payload::GlobalsFinal { values, changed } => {
            w.u32(values.len() as u32);
            for v in values {
                put_value(&mut w, v);
            }
            w.bool(*changed);
        }
        Payload::AttrImage { machine, cols } => {
            w.u32(*machine);
            w.u32(cols.len() as u32);
            for col in cols {
                put_column(&mut w, col);
            }
        }
        Payload::RunDone { from, stats } => {
            w.u32(*from);
            w.u64(stats.supersteps);
            w.u64(stats.work_units);
            w.u64(stats.recomputed);
            w.u64(stats.phases);
            w.u64(stats.chunks);
            w.u64(stats.max_worker_units);
            w.u64(stats.min_worker_units);
            put_io(&mut w, &stats.io);
        }
        Payload::BarrierAck { from, seq } => {
            w.u32(*from);
            w.u64(*seq);
        }
        Payload::Barrier { seq } => w.u64(*seq),
    }
    w.buf
}

/// Decode a payload produced by [`encode_payload`].
pub fn decode_payload(bytes: &[u8]) -> WireResult<Payload> {
    let mut r = Reader::new(bytes);
    let magic = r.u16()?;
    if magic != WIRE_MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let ver = r.u8()?;
    if ver != WIRE_VERSION {
        return Err(WireError::BadVersion(ver));
    }
    let tag = r.u8()?;
    let payload = match tag {
        0 => {
            let rank = r.u32()?;
            let workers = r.u32()?;
            let source = r.str()?;
            let num_vertices = r.u64()?;
            let undirected = r.bool()?;
            let n = r.u64()? as usize;
            let mut edges = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                edges.push((r.u64()?, r.u64()?));
            }
            let cfg = WireConfig {
                machines: r.u64()?,
                window_capacity: r.u64()?,
                buffer_pool_bytes: r.u64()?,
                page_size: r.u64()?,
                max_supersteps: r.u64()?,
                maintenance: get_maintenance(&mut r)?,
                opts: [r.bool()?, r.bool()?, r.bool()?, r.bool()?, r.bool()?],
                parallel: r.bool()?,
                threads_per_machine: r.u64()?,
                cache_bytes: r.u64()?,
            };
            Payload::Bootstrap {
                rank,
                workers,
                source,
                num_vertices,
                undirected,
                edges,
                cfg,
            }
        }
        1 => Payload::Hello { rank: r.u32()? },
        2 => Payload::RunOneshot,
        3 => Payload::RunIncremental,
        4 => {
            let n = r.u64()? as usize;
            let mut edges = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                edges.push(itg_store::EdgeMutation {
                    src: r.u64()?,
                    dst: r.u64()?,
                    mult: r.i8()?,
                });
            }
            Payload::Mutations(MutationBatch::new(edges))
        }
        5 => Payload::Compact,
        6 => Payload::Shutdown,
        7 => {
            let from = r.u32()?;
            let n_accms = r.u32()? as usize;
            let mut vertex = Vec::with_capacity(n_accms.min(1 << 10));
            for _ in 0..n_accms {
                let n = r.u64()? as usize;
                let mut list = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let v = r.u64()?;
                    list.push((v, get_contribution(&mut r)?));
                }
                vertex.push(list);
            }
            Payload::Contribs { from, vertex }
        }
        8 => {
            let from = r.u32()?;
            let n = r.u32()? as usize;
            let mut globals = Vec::with_capacity(n.min(1 << 10));
            for _ in 0..n {
                globals.push(get_contribution(&mut r)?);
            }
            Payload::GlobalsPartial { from, globals }
        }
        9 => Payload::Frontier {
            from: r.u32()?,
            superstep: r.u64()?,
            active: r.u64()?,
        },
        10 => Payload::FrontierTotal {
            superstep: r.u64()?,
            active: r.u64()?,
        },
        11 => {
            let from = r.u32()?;
            let n = r.u32()? as usize;
            let mut sets = Vec::with_capacity(n.min(1 << 10));
            for _ in 0..n {
                sets.push(get_vertex_list(&mut r)?);
            }
            Payload::RecomputeSets { from, sets }
        }
        12 => {
            let n = r.u32()? as usize;
            let mut sets = Vec::with_capacity(n.min(1 << 10));
            for _ in 0..n {
                sets.push(get_vertex_list(&mut r)?);
            }
            Payload::RecomputeUnion { sets }
        }
        13 => Payload::GlobalsDecision {
            recompute: r.bool()?,
        },
        14 => {
            let n = r.u32()? as usize;
            let mut values = Vec::with_capacity(n.min(1 << 10));
            for _ in 0..n {
                values.push(get_value(&mut r)?);
            }
            Payload::GlobalsFinal {
                values,
                changed: r.bool()?,
            }
        }
        15 => {
            let machine = r.u32()?;
            let n = r.u32()? as usize;
            let mut cols = Vec::with_capacity(n.min(1 << 10));
            for _ in 0..n {
                cols.push(get_column(&mut r)?);
            }
            Payload::AttrImage { machine, cols }
        }
        16 => Payload::RunDone {
            from: r.u32()?,
            stats: RunDoneStats {
                supersteps: r.u64()?,
                work_units: r.u64()?,
                recomputed: r.u64()?,
                phases: r.u64()?,
                chunks: r.u64()?,
                max_worker_units: r.u64()?,
                min_worker_units: r.u64()?,
                io: get_io(&mut r)?,
            },
        },
        17 => Payload::BarrierAck {
            from: r.u32()?,
            seq: r.u64()?,
        },
        18 => Payload::Barrier { seq: r.u64()? },
        tag => return Err(WireError::BadTag { what: "payload", tag }),
    };
    r.finish()?;
    Ok(payload)
}

// ---------------------------------------------------------------
// Frame IO.
// ---------------------------------------------------------------

/// Write one frame: `[len: u32][dst: u16][payload]`.
pub fn write_frame(out: &mut impl Write, dst: u16, payload: &Payload) -> std::io::Result<()> {
    write_frame_bytes(out, dst, &encode_payload(payload))
}

/// Write one pre-encoded frame (the coordinator's relay path: no decode,
/// no re-encode).
pub fn write_frame_bytes(out: &mut impl Write, dst: u16, payload: &[u8]) -> std::io::Result<()> {
    let len = (payload.len() + 2) as u32;
    out.write_all(&len.to_le_bytes())?;
    out.write_all(&dst.to_le_bytes())?;
    out.write_all(payload)?;
    out.flush()
}

/// Read one frame; `Ok(None)` on clean EOF at a frame boundary.
pub fn read_frame(input: &mut impl Read) -> std::io::Result<Option<(u16, Vec<u8>)>> {
    let mut len_buf = [0u8; 4];
    match input.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if !(2..=MAX_FRAME_BYTES).contains(&len) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("bad frame length {len}"),
        ));
    }
    let mut dst_buf = [0u8; 2];
    input.read_exact(&mut dst_buf)?;
    let mut body = vec![0u8; len as usize - 2];
    input.read_exact(&mut body)?;
    Ok(Some((u16::from_le_bytes(dst_buf), body)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use itg_gsa::accm::AccmOp;
    use itg_gsa::value::PrimType;
    use itg_store::EdgeMutation;

    fn roundtrip(p: &Payload) {
        let bytes = encode_payload(p);
        let back = decode_payload(&bytes).expect("decodes");
        assert_eq!(&back, p);
        // Re-encoding is byte-identical (the canonical-form property the
        // proptest suite checks at scale).
        assert_eq!(encode_payload(&back), bytes);
    }

    #[test]
    fn control_payloads_roundtrip() {
        roundtrip(&Payload::RunOneshot);
        roundtrip(&Payload::RunIncremental);
        roundtrip(&Payload::Compact);
        roundtrip(&Payload::Shutdown);
        roundtrip(&Payload::Hello { rank: 3 });
        roundtrip(&Payload::Barrier { seq: u64::MAX });
        roundtrip(&Payload::BarrierAck { from: 7, seq: 0 });
        roundtrip(&Payload::GlobalsDecision { recompute: true });
        roundtrip(&Payload::FrontierTotal {
            superstep: 9,
            active: u64::MAX,
        });
    }

    #[test]
    fn contribs_roundtrip_with_monoid_and_retractions() {
        let mut c = Contribution::identity(AccmOp::Min, PrimType::Long);
        c.add(AccmOp::Min, PrimType::Long, &Value::Long(5), 1);
        c.add(AccmOp::Min, PrimType::Long, &Value::Long(9), -1);
        let mut s = Contribution::identity(AccmOp::Sum, PrimType::Double);
        s.add(AccmOp::Sum, PrimType::Double, &Value::Double(-0.0), 1);
        roundtrip(&Payload::Contribs {
            from: 2,
            vertex: vec![vec![(17, c)], vec![], vec![(u64::MAX, s)]],
        });
    }

    #[test]
    fn float_encoding_is_bitwise() {
        let nan = f64::from_bits(0x7ff8_dead_beef_0001);
        let p = Payload::GlobalsFinal {
            values: vec![Value::Double(nan), Value::Double(-0.0), Value::Float(f32::NAN)],
            changed: false,
        };
        let bytes = encode_payload(&p);
        let back = decode_payload(&bytes).unwrap();
        let Payload::GlobalsFinal { values, .. } = back else {
            panic!("wrong variant");
        };
        let Value::Double(d) = values[0] else { panic!() };
        assert_eq!(d.to_bits(), nan.to_bits());
        let Value::Double(z) = values[1] else { panic!() };
        assert_eq!(z.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn bootstrap_roundtrip() {
        roundtrip(&Payload::Bootstrap {
            rank: 1,
            workers: 4,
            source: "Vertex (id, active, nbrs)\nInitialize (u): { }".into(),
            num_vertices: 1 << 20,
            undirected: true,
            edges: vec![(0, 1), (1, 2), (u64::MAX - 1, 3)],
            cfg: WireConfig {
                machines: 8,
                window_capacity: 1024,
                buffer_pool_bytes: 64 << 20,
                page_size: 4096,
                max_supersteps: u64::MAX,
                maintenance: MaintenancePolicy::Periodic(6),
                opts: [true, false, true, true, true],
                parallel: true,
                threads_per_machine: 4,
                cache_bytes: 1 << 16,
            },
        });
    }

    #[test]
    fn mutations_and_images_roundtrip() {
        roundtrip(&Payload::Mutations(MutationBatch::new(vec![
            EdgeMutation::insert(0, 9),
            EdgeMutation::delete(4, 2),
        ])));
        roundtrip(&Payload::AttrImage {
            machine: 3,
            cols: vec![
                ColumnData::Bool(vec![true, false]),
                ColumnData::Double(vec![0.5, -0.0]),
                ColumnData::Array(vec![vec![Value::Float(1.5)], vec![]]),
            ],
        });
    }

    #[test]
    fn frames_roundtrip_over_a_stream() {
        let mut buf: Vec<u8> = Vec::new();
        write_frame(&mut buf, 3, &Payload::Hello { rank: 0 }).unwrap();
        write_frame(&mut buf, DST_COORD, &Payload::Barrier { seq: 5 }).unwrap();
        let mut cur = &buf[..];
        let (d1, b1) = read_frame(&mut cur).unwrap().unwrap();
        assert_eq!(d1, 3);
        assert_eq!(decode_payload(&b1).unwrap(), Payload::Hello { rank: 0 });
        let (d2, b2) = read_frame(&mut cur).unwrap().unwrap();
        assert_eq!(d2, DST_COORD);
        assert_eq!(decode_payload(&b2).unwrap(), Payload::Barrier { seq: 5 });
        assert!(read_frame(&mut cur).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn corruption_is_detected() {
        let bytes = encode_payload(&Payload::RunOneshot);
        assert_eq!(
            decode_payload(&bytes[..bytes.len() - 1]).unwrap_err(),
            WireError::Truncated
        );
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            decode_payload(&bad_magic).unwrap_err(),
            WireError::BadMagic(_)
        ));
        let mut bad_ver = bytes.clone();
        bad_ver[2] = 99;
        assert_eq!(decode_payload(&bad_ver).unwrap_err(), WireError::BadVersion(99));
        let mut trailing = bytes;
        trailing.push(0);
        assert_eq!(decode_payload(&trailing).unwrap_err(), WireError::Trailing(1));
    }
}
