//! Shared infrastructure for the experiment harness (see DESIGN.md §3 for
//! the experiment index).
//!
//! The paper's datasets are terabyte-scale; the harness reproduces every
//! table and figure at laptop scale with RMAT graphs of matching *relative*
//! sizes and a DD memory budget scaled by the same factor, so the shapes —
//! who wins, by roughly what factor, where the OOM walls fall — carry
//! over. EXPERIMENTS.md records paper-vs-measured for each artifact.

use iturbograph::graphgen::{canonical_undirected, generate, generate_undirected, RmatConfig};
use iturbograph::prelude::*;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The DD per-run memory budget standing in for the paper's 64 GB/machine:
/// the evaluation graphs are scaled down by ~2×10⁴ from the paper's, and
/// so is the budget.
pub const DD_BUDGET: u64 = 24 << 20;

/// Scaled stand-ins for the paper's real-graph ladder (Table 5):
/// TWT → GSH15 → CW12 → HL in increasing size.
pub const REAL_GRAPHS: &[(&str, u32)] = &[
    ("TWT*", 16),
    ("GSH15*", 17),
    ("CW12*", 18),
    ("HL*", 19),
];

/// A prepared experiment dataset: the 90% initial graph plus mutation
/// pools following the paper's workload protocol (§6.1).
pub struct Dataset {
    pub name: String,
    pub n: usize,
    pub initial: Vec<(u64, u64)>,
    insert_pool: Vec<(u64, u64)>,
    alive: Vec<(u64, u64)>,
    rng: SmallRng,
    pub undirected: bool,
}

impl Dataset {
    /// Undirected RMAT_x dataset (canonical edges; mirrored at load).
    pub fn rmat_undirected(name: &str, x: u32, seed: u64) -> Dataset {
        let cfg = RmatConfig::paper_scale(x, seed);
        let edges = canonical_undirected(&generate_undirected(&cfg));
        Dataset::from_edges(name, cfg.num_vertices(), edges, seed, true)
    }

    /// Directed RMAT_x dataset (for PR).
    pub fn rmat_directed(name: &str, x: u32, seed: u64) -> Dataset {
        let cfg = RmatConfig::paper_scale(x, seed);
        let edges = generate(&cfg);
        Dataset::from_edges(name, cfg.num_vertices(), edges, seed, false)
    }

    /// The paper's TWT_X analogue: an RMAT base graph upscaled
    /// EvoGraph-style by `factor` (undirected).
    pub fn twt_upscaled(name: &str, base_x: u32, factor: usize, seed: u64) -> Dataset {
        let cfg = RmatConfig::paper_scale(base_x, seed);
        let base = generate(&cfg);
        let (n, edges) = iturbograph::graphgen::upscale(cfg.num_vertices(), &base, factor, seed);
        let canonical = canonical_undirected(&edges);
        Dataset::from_edges(name, n, canonical, seed, true)
    }

    /// Directed variant of [`Self::twt_upscaled`] (for PR).
    pub fn twt_upscaled_directed(name: &str, base_x: u32, factor: usize, seed: u64) -> Dataset {
        let cfg = RmatConfig::paper_scale(base_x, seed);
        let base = generate(&cfg);
        let (n, edges) = iturbograph::graphgen::upscale(cfg.num_vertices(), &base, factor, seed);
        Dataset::from_edges(name, n, edges, seed, false)
    }

    fn from_edges(
        name: &str,
        n: usize,
        edges: Vec<(u64, u64)>,
        seed: u64,
        undirected: bool,
    ) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9);
        let mut shuffled = edges;
        shuffled.shuffle(&mut rng);
        let cut = shuffled.len() * 9 / 10;
        let initial = shuffled[..cut].to_vec();
        let insert_pool = shuffled[cut..].to_vec();
        Dataset {
            name: name.to_string(),
            n,
            alive: initial.clone(),
            initial,
            insert_pool,
            rng,
            undirected,
        }
    }

    pub fn graph_input(&self) -> GraphInput {
        let mut input = if self.undirected {
            GraphInput::undirected(self.initial.clone())
        } else {
            GraphInput::directed(self.initial.clone())
        };
        input.num_vertices = self.n;
        input
    }

    pub fn num_edges(&self) -> usize {
        self.initial.len()
    }

    /// Draw the next ΔG batch: `size` mutations at `insert_pct`:rest.
    pub fn next_batch(&mut self, size: usize, insert_pct: u32) -> MutationBatch {
        let want_ins = size * insert_pct as usize / 100;
        let mut muts = Vec::with_capacity(size);
        for _ in 0..want_ins {
            if let Some(e) = self.insert_pool.pop() {
                muts.push(EdgeMutation::insert(e.0, e.1));
                self.alive.push(e);
            }
        }
        while muts.len() < size && !self.alive.is_empty() {
            let i = self.rng.gen_range(0..self.alive.len());
            let e = self.alive.swap_remove(i);
            muts.push(EdgeMutation::delete(e.0, e.1));
        }
        MutationBatch::new(muts)
    }

    /// The currently alive edges (for baseline engines that ingest plain
    /// lists).
    pub fn alive_edges(&self) -> &[(u64, u64)] {
        &self.alive
    }

    /// Mirror a canonical undirected edge list into both directions.
    pub fn mirrored(edges: &[(u64, u64)]) -> Vec<(u64, u64)> {
        edges.iter().flat_map(|&(a, b)| [(a, b), (b, a)]).collect()
    }
}

/// Result cell for report tables: seconds, or a failure marker.
#[derive(Debug, Clone)]
pub enum Cell {
    Secs(f64),
    /// Out of memory (the paper's "O").
    Oom,
    /// Not run / not supported (the paper's "F").
    Skip,
}

impl std::fmt::Display for Cell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Cell::Secs(s) => write!(f, "{s:>9.4}"),
            Cell::Oom => write!(f, "{:>9}", "O"),
            Cell::Skip => write!(f, "{:>9}", "-"),
        }
    }
}

/// Print a table with a header row and aligned columns.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Run a full incremental experiment: one-shot at G_0, then the mean of
/// `batches` consecutive incremental refreshes (the paper reports the
/// average of four).
pub struct IncrementalResult {
    pub one_shot: RunMetrics,
    pub incremental: Vec<RunMetrics>,
}

impl IncrementalResult {
    pub fn mean_incremental_secs(&self) -> f64 {
        if self.incremental.is_empty() {
            return f64::NAN;
        }
        self.incremental.iter().map(|m| m.secs()).sum::<f64>() / self.incremental.len() as f64
    }

    pub fn speedup(&self) -> f64 {
        self.one_shot.secs() / self.mean_incremental_secs().max(1e-12)
    }
}

/// Drive iTurboGraph over a dataset.
pub fn run_itbgpp(
    dataset: &mut Dataset,
    src: &str,
    cfg: EngineConfig,
    batches: usize,
    batch_size: usize,
    insert_pct: u32,
) -> IncrementalResult {
    let mut session = SessionBuilder::from_config(cfg)
        .from_source(src, &dataset.graph_input())
        .expect("program compiles");
    let one_shot = session.run_oneshot();
    let mut incremental = Vec::with_capacity(batches);
    for _ in 0..batches {
        let batch = dataset.next_batch(batch_size, insert_pct);
        session.apply_mutations(&batch);
        incremental.push(session.run_incremental());
    }
    IncrementalResult {
        one_shot,
        incremental,
    }
}

/// Session superstep cap per algorithm (the paper's protocol: Group 1 runs
/// 10 iterations, Group 2 to convergence).
pub fn superstep_cap(algo: &str) -> usize {
    match algo {
        "pr" | "lp" => 10,
        _ => usize::MAX,
    }
}

/// DD iteration count per algorithm (fixed-point unrolling depth for the
/// connectivity algorithms at harness scale).
pub fn dd_iterations(algo: &str) -> usize {
    match algo {
        "pr" | "lp" => 10,
        _ => 30,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_protocol_is_90_10() {
        let mut d = Dataset::rmat_undirected("t", 10, 1);
        let total = d.initial.len() + d.insert_pool.len();
        assert!(d.initial.len() >= total * 9 / 10 - 1);
        let b = d.next_batch(20, 75);
        assert_eq!(b.len(), 20);
        assert_eq!(b.inserts().count(), 15);
    }

    #[test]
    fn itbgpp_runner_produces_metrics() {
        let mut d = Dataset::rmat_undirected("t", 9, 2);
        let r = run_itbgpp(
            &mut d,
            iturbograph::algorithms::TRIANGLE_COUNT,
            EngineConfig::default(),
            2,
            8,
            75,
        );
        assert_eq!(r.incremental.len(), 2);
        assert!(r.one_shot.secs() > 0.0);
        assert!(r.speedup().is_finite());
    }

    #[test]
    fn cells_format() {
        assert_eq!(format!("{}", Cell::Oom).trim(), "O");
        assert!(format!("{}", Cell::Secs(1.5)).contains("1.5"));
    }
}
